//! The SDK's memory primitives, with their (in)efficiencies.
//!
//! The SGX SDK's proprietary `memset` operates **byte-wise** — "extremely
//! inefficient on a 64 bit platform" (paper §3.2.1) — and is what makes the
//! `out` transfer mode so much slower than `in&out`. `memcpy` is word-wise.
//! Both also generate real cache/MEE traffic through the machine model.

use sgx_sim::{Addr, Cycles, Machine};

use crate::error::Result;

/// The SDK's word-wise `memcpy`: per-word compute plus the memory traffic of
/// reading the source span and writing the destination span.
///
/// # Errors
///
/// Propagates memory-model errors (uncommitted EPC pages).
pub fn sdk_memcpy(m: &mut Machine, dst: Addr, src: Addr, len: u64) -> Result<Cycles> {
    let start = m.now();
    let words = len.div_ceil(8);
    m.charge(Cycles::new(words * m.config().sdk.memcpy_per_word));
    m.read(src, len)?;
    m.write(dst, len)?;
    Ok(m.now() - start)
}

/// The SDK's byte-wise `memset`. When `optimized` is true, models the
/// word-wise variant the paper suggests Intel adopt ("Further
/// optimizations", §3.5).
///
/// # Errors
///
/// Propagates memory-model errors.
pub fn sdk_memset(m: &mut Machine, dst: Addr, len: u64, optimized: bool) -> Result<Cycles> {
    let start = m.now();
    let compute = if optimized {
        len.div_ceil(8) * m.config().sdk.memcpy_per_word
    } else {
        len * m.config().sdk.memset_per_byte
    };
    m.charge(Cycles::new(compute));
    m.write(dst, len)?;
    Ok(m.now() - start)
}

/// What happened to one staging region's pre-call zeroing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZeroOutcome {
    /// The region was zeroed (`memset`): bytes written.
    Zeroed(u64),
    /// No-Redundant-Zeroing elided the `memset`: bytes *not* written. Only
    /// the per-buffer tracking cost was charged.
    Elided(u64),
}

/// Zeroes (or, under No-Redundant-Zeroing, deliberately does not zero) one
/// staging region, charging the two variants their distinct costs: the
/// SDK-faithful path pays the `memset` compute plus its write traffic, the
/// NRZ path pays only [`sgx_sim::SdkCostConfig::nrz_track_per_buffer`] of
/// bookkeeping (deciding from the EDL direction that the region will be
/// fully overwritten).
///
/// # Errors
///
/// Propagates memory-model errors from the `memset` write.
pub fn sdk_zero_staging(
    m: &mut Machine,
    dst: Addr,
    len: u64,
    optimized: bool,
    elide: bool,
) -> Result<ZeroOutcome> {
    if elide {
        m.charge(Cycles::new(m.config().sdk.nrz_track_per_buffer));
        Ok(ZeroOutcome::Elided(len))
    } else {
        sdk_memset(m, dst, len, optimized)?;
        Ok(ZeroOutcome::Zeroed(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::SimConfig;

    fn machine() -> Machine {
        Machine::new(SimConfig::builder().deterministic().build())
    }

    #[test]
    fn memset_bytewise_dwarfs_optimized() {
        let mut m = machine();
        let a = m.alloc_untrusted(2048, 64);
        let slow = sdk_memset(&mut m, a, 2048, false).unwrap();
        let fast = sdk_memset(&mut m, a, 2048, true).unwrap();
        // Byte-wise: 2048 compute cycles vs 256. Memory traffic is warmer
        // the second time, so the gap is conservative.
        assert!(slow.get() > fast.get() + 1_500, "slow={slow} fast={fast}");
    }

    #[test]
    fn memcpy_charges_both_spans() {
        let mut m = machine();
        let src = m.alloc_untrusted(1024, 64);
        let dst = m.alloc_untrusted(1024, 64);
        let c = sdk_memcpy(&mut m, dst, src, 1024).unwrap();
        assert!(c.get() >= 128, "at least the per-word compute: {c}");
        // Warm copy is cheaper.
        let warm = sdk_memcpy(&mut m, dst, src, 1024).unwrap();
        assert!(warm < c);
    }

    #[test]
    fn zero_length_is_free_of_memory_traffic() {
        let mut m = machine();
        let a = m.alloc_untrusted(64, 64);
        let c = sdk_memcpy(&mut m, a, a, 0).unwrap();
        assert_eq!(c, Cycles::ZERO);
    }

    #[test]
    fn elided_zeroing_charges_only_the_tracking_cost() {
        let mut m = machine();
        let a = m.alloc_untrusted(4096, 64);
        let s = m.now();
        let outcome = sdk_zero_staging(&mut m, a, 4096, false, true).unwrap();
        let elided_cost = (m.now() - s).get();
        assert_eq!(outcome, ZeroOutcome::Elided(4096));
        assert_eq!(elided_cost, m.config().sdk.nrz_track_per_buffer);

        let s = m.now();
        let outcome = sdk_zero_staging(&mut m, a, 4096, false, false).unwrap();
        let zeroed_cost = (m.now() - s).get();
        assert_eq!(outcome, ZeroOutcome::Zeroed(4096));
        assert!(
            zeroed_cost > elided_cost * 10,
            "memset {zeroed_cost} vs tracking {elided_cost}"
        );
    }
}
