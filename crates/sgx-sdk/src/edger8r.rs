//! The edge-function generator ("edger8r").
//!
//! Intel's tool parses EDL and emits trusted + untrusted C glue. The
//! simulated equivalent emits [`ProxyPlan`]s — interpretable descriptions of
//! exactly the work that glue performs: parameter-struct layout, pointer
//! boundary checks, and per-buffer copy/zero operations. HotCalls reuses
//! these plans verbatim (paper §4.2: "the code to encapsulate parameters …
//! is the same code used by the SDK ecalls/ocalls mechanism").

use std::collections::HashMap;

use crate::edl::{Direction, EdgeFn, Edl, ParamKind, SizeSpec};
use crate::error::{Result, SdkError};

/// One buffer-marshalling step of a generated proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarshalStep {
    /// Which declared parameter this step handles (index into the EDL
    /// declaration).
    pub param_index: usize,
    /// Parameter name (diagnostics).
    pub param_name: String,
    /// Transfer mode.
    pub direction: Direction,
    /// Declared size source (validated against the EDL at generation time;
    /// the runtime length always comes from the caller, as in the SDK).
    pub size: SizeSpec,
}

/// The generated proxy for one edge function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyPlan {
    /// Edge-function name.
    pub name: String,
    /// Index in the call table (the SDK's `ocall_index` / ecall table slot,
    /// which HotCalls reuses as its `call_ID`).
    pub index: usize,
    /// Bytes of the marshalled parameter struct.
    pub struct_bytes: u64,
    /// Buffer steps in declaration order.
    pub steps: Vec<MarshalStep>,
    /// Does the function produce a return value (adds 8 bytes to the
    /// marshalled struct on the way back)?
    pub returns_value: bool,
}

/// The full output of generation: ecall and ocall tables with name lookup.
#[derive(Debug, Clone, Default)]
pub struct Proxies {
    /// Trusted-side table (ecalls).
    pub ecalls: Vec<ProxyPlan>,
    /// Untrusted-side table (ocalls).
    pub ocalls: Vec<ProxyPlan>,
    ecall_index: HashMap<String, usize>,
    ocall_index: HashMap<String, usize>,
}

impl Proxies {
    /// Looks up an ecall plan by name.
    ///
    /// # Errors
    ///
    /// Returns [`SdkError::UnknownFunction`] for undeclared names.
    pub fn ecall(&self, name: &str) -> Result<&ProxyPlan> {
        self.ecall_index
            .get(name)
            .map(|&i| &self.ecalls[i])
            .ok_or_else(|| SdkError::UnknownFunction(name.to_owned()))
    }

    /// Looks up an ocall plan by name.
    ///
    /// # Errors
    ///
    /// Returns [`SdkError::UnknownFunction`] for undeclared names.
    pub fn ocall(&self, name: &str) -> Result<&ProxyPlan> {
        self.ocall_index
            .get(name)
            .map(|&i| &self.ocalls[i])
            .ok_or_else(|| SdkError::UnknownFunction(name.to_owned()))
    }
}

fn generate_plan(f: &EdgeFn, index: usize) -> Result<ProxyPlan> {
    // Validate size= references: they must name a by-value parameter.
    for (i, p) in f.params.iter().enumerate() {
        if let ParamKind::Buffer {
            size: SizeSpec::Param(size_param),
            ..
        } = &p.kind
        {
            let ok = f
                .params
                .iter()
                .any(|q| q.name == *size_param && matches!(q.kind, ParamKind::Value { .. }));
            if !ok {
                return Err(SdkError::Edl(crate::edl::EdlError {
                    line: 0,
                    message: format!(
                        "`{}` parameter {} (`{}`): size={size_param} does not name a value parameter",
                        f.name, i, p.name
                    ),
                }));
            }
        }
    }
    let steps = f
        .params
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match &p.kind {
            ParamKind::Buffer { direction, size } => Some(MarshalStep {
                param_index: i,
                param_name: p.name.clone(),
                direction: *direction,
                size: size.clone(),
            }),
            ParamKind::Value { .. } => None,
        })
        .collect();
    Ok(ProxyPlan {
        name: f.name.clone(),
        index,
        struct_bytes: f.value_bytes() + 8, // +8: status/return slot
        steps,
        returns_value: f.returns_value,
    })
}

/// Generates proxy plans for every edge function in the EDL.
///
/// # Errors
///
/// Fails if a `size=` attribute references a parameter that is not a
/// by-value length.
///
/// # Examples
///
/// ```
/// use sgx_sdk::edl::parse_edl;
/// use sgx_sdk::edger8r::edger8r;
///
/// # fn main() -> Result<(), sgx_sdk::SdkError> {
/// let edl = parse_edl(
///     "enclave { untrusted {
///          void ocall_send([in, size=n] const uint8_t* b, size_t n);
///      }; };",
/// )?;
/// let proxies = edger8r(&edl)?;
/// assert_eq!(proxies.ocall("ocall_send")?.steps.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn edger8r(edl: &Edl) -> Result<Proxies> {
    let mut proxies = Proxies::default();
    for (i, f) in edl.trusted.iter().enumerate() {
        proxies.ecalls.push(generate_plan(f, i)?);
        proxies.ecall_index.insert(f.name.clone(), i);
    }
    for (i, f) in edl.untrusted.iter().enumerate() {
        proxies.ocalls.push(generate_plan(f, i)?);
        proxies.ocall_index.insert(f.name.clone(), i);
    }
    Ok(proxies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edl::parse_edl;

    #[test]
    fn generates_tables_with_stable_indices() {
        let edl = parse_edl(
            "enclave {
                trusted { public void e0(); public void e1(); };
                untrusted { void o0(); void o1(); void o2(); };
             };",
        )
        .unwrap();
        let p = edger8r(&edl).unwrap();
        assert_eq!(p.ecall("e1").unwrap().index, 1);
        assert_eq!(p.ocall("o2").unwrap().index, 2);
        assert!(matches!(p.ocall("nope"), Err(SdkError::UnknownFunction(_))));
    }

    #[test]
    fn size_param_must_reference_value_param() {
        let edl = parse_edl(
            "enclave { untrusted {
                void bad([in, size=missing] const uint8_t* b, size_t n);
             }; };",
        )
        .unwrap();
        assert!(matches!(edger8r(&edl), Err(SdkError::Edl(_))));
    }

    #[test]
    fn struct_bytes_cover_values_pointers_and_status() {
        let edl = parse_edl(
            "enclave { untrusted {
                void f([in, size=n] const uint8_t* b, size_t n, int flags);
             }; };",
        )
        .unwrap();
        let p = edger8r(&edl).unwrap();
        // pointer 16 + size_t 8 + int 4 + status 8
        assert_eq!(p.ocall("f").unwrap().struct_bytes, 36);
    }

    #[test]
    fn steps_preserve_declaration_order() {
        let edl = parse_edl(
            "enclave { trusted {
                public void f([in, size=a] const uint8_t* x, size_t a,
                              [out, size=b] uint8_t* y, size_t b);
             }; };",
        )
        .unwrap();
        let p = edger8r(&edl).unwrap();
        let plan = p.ecall("f").unwrap();
        assert_eq!(plan.steps.len(), 2);
        assert_eq!(plan.steps[0].param_name, "x");
        assert_eq!(plan.steps[1].param_name, "y");
        assert_eq!(plan.steps[0].direction, crate::edl::Direction::In);
        assert_eq!(plan.steps[1].direction, crate::edl::Direction::Out);
    }
}
