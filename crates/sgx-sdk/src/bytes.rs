//! Byte-accurate staging twin of [`crate::marshal`].
//!
//! `sgx-sim` is a pure cycle model — it charges for copies and zeroing but
//! stores no byte contents, so it cannot *witness* that No-Redundant-Zeroing
//! leaves observable bytes untouched. This module re-implements the staging
//! data movement on real `Vec<u8>` memory with the same per-direction
//! policy, so tests can assert byte-for-byte equivalence between the
//! SDK-faithful (zeroing) and NRZ (eliding) marshallers.
//!
//! Fidelity points that matter for the equivalence argument:
//!
//! * The scratch region is **reused across calls and never cleared** — like
//!   the ocall stack frame and the HotCalls shared buffer, it retains
//!   whatever the previous call left behind. Under NRZ a callee genuinely
//!   sees stale garbage in its `out` regions.
//! * Fresh scratch growth is poisoned with `0xA5`, never zero, so a test
//!   cannot pass by accident on conveniently-zero memory.
//! * The zeroing policy mirrors [`crate::marshal::stage`]: the SDK-faithful
//!   untrusted proxy zeroes `out` *and* `in&out` staging regions (the
//!   whole-frame `memset`); NRZ elides both.

use crate::edl::Direction;

/// The poison byte used for never-touched scratch memory.
pub const POISON: u8 = 0xA5;

/// A reusable untrusted staging region holding real bytes.
///
/// One instance models one ocall stack frame / HotCalls channel buffer:
/// call it repeatedly and each call stages over whatever the previous call
/// left behind, exactly the condition NRZ must be safe under.
#[derive(Debug, Default)]
pub struct ByteStaging {
    scratch: Vec<u8>,
}

/// Where one buffer landed in the scratch region.
#[derive(Debug, Clone, Copy)]
struct ByteStaged {
    offset: usize,
    len: usize,
    direction: Direction,
}

impl ByteStaging {
    /// A fresh, empty staging region.
    pub fn new() -> Self {
        ByteStaging::default()
    }

    /// Ensures capacity for `len` more bytes, poisoning any growth.
    fn grow_to(&mut self, len: usize) {
        if self.scratch.len() < len {
            self.scratch.resize(len, POISON);
        }
    }

    /// Runs one marshalled call over real bytes.
    ///
    /// Each element of `bufs` is a caller buffer plus its EDL transfer
    /// mode. The callee is invoked once per buffer, in declaration order,
    /// with the buffer's index and the bytes it is allowed to see:
    ///
    /// * `user_check` — the caller bytes themselves (zero-copy);
    /// * `in` / `in&out` / `out` — the staged copy.
    ///
    /// When `nrz` is false the staged region is zeroed for `out` and
    /// `in&out` before any copy-in (the SDK-faithful whole-frame `memset`);
    /// when `nrz` is true that zeroing is skipped and `out` regions expose
    /// whatever bytes the previous call left. After the callee runs,
    /// `out`/`in&out` staged bytes are copied back to the caller.
    pub fn run_call(
        &mut self,
        bufs: &mut [(Vec<u8>, Direction)],
        nrz: bool,
        mut callee: impl FnMut(usize, &mut [u8]),
    ) {
        // Carve disjoint 64-byte-aligned regions, like StagingArea::alloc.
        let mut staged = Vec::with_capacity(bufs.len());
        let mut offset = 0usize;
        for (caller, direction) in bufs.iter() {
            if *direction == Direction::UserCheck {
                staged.push(None);
                continue;
            }
            let aligned = (offset + 63) & !63;
            staged.push(Some(ByteStaged {
                offset: aligned,
                len: caller.len(),
                direction: *direction,
            }));
            offset = aligned + caller.len();
        }
        self.grow_to(offset);

        // Stage in: zero (or don't), then copy callee-bound data.
        for (s, (caller, _)) in staged.iter().zip(bufs.iter()) {
            let Some(s) = s else { continue };
            let region = &mut self.scratch[s.offset..s.offset + s.len];
            match s.direction {
                Direction::Out => {
                    if !nrz {
                        region.fill(0);
                    }
                }
                Direction::InOut => {
                    if !nrz {
                        region.fill(0);
                    }
                    region.copy_from_slice(caller);
                }
                Direction::In => region.copy_from_slice(caller),
                Direction::UserCheck => unreachable!("not staged"),
            }
        }

        // Callee body: sees staged copies (or the original for user_check).
        for (i, (s, (caller, _))) in staged.iter().zip(bufs.iter_mut()).enumerate() {
            match s {
                None => callee(i, caller.as_mut_slice()),
                Some(s) => callee(i, &mut self.scratch[s.offset..s.offset + s.len]),
            }
        }

        // Unstage: copy caller-bound data back.
        for (s, (caller, _)) in staged.iter().zip(bufs.iter_mut()) {
            let Some(s) = s else { continue };
            if matches!(s.direction, Direction::Out | Direction::InOut) {
                caller.copy_from_slice(&self.scratch[s.offset..s.offset + s.len]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nrz_exposes_stale_bytes_to_a_lazy_callee() {
        let mut staging = ByteStaging::new();
        // First call leaves a distinctive pattern in scratch.
        let mut first = [(vec![0u8; 128], Direction::Out)];
        staging.run_call(&mut first, false, |_, b| b.fill(0xEE));
        // Second call's callee writes nothing: under NRZ it reads back the
        // previous call's garbage, under zeroing it reads zeros. This is the
        // hazard NRZ accepts — and why it is only safe for callees that
        // fully write their out buffers.
        let mut zeroed = [(vec![1u8; 128], Direction::Out)];
        staging.run_call(&mut zeroed, false, |_, _| {});
        assert!(zeroed[0].0.iter().all(|&b| b == 0));
        staging.run_call(&mut first, false, |_, b| b.fill(0xEE));
        let mut stale = [(vec![1u8; 128], Direction::Out)];
        staging.run_call(&mut stale, true, |_, _| {});
        assert!(stale[0].0.iter().all(|&b| b == 0xEE));
    }

    #[test]
    fn fresh_scratch_is_poisoned_not_zero() {
        let mut staging = ByteStaging::new();
        let mut bufs = [(vec![0u8; 64], Direction::Out)];
        staging.run_call(&mut bufs, true, |_, b| {
            assert!(b.iter().all(|&x| x == POISON));
            b.fill(7);
        });
        assert!(bufs[0].0.iter().all(|&b| b == 7));
    }

    #[test]
    fn user_check_passes_caller_bytes_through() {
        let mut staging = ByteStaging::new();
        let mut bufs = [(vec![3u8; 32], Direction::UserCheck)];
        staging.run_call(&mut bufs, true, |_, b| {
            assert!(b.iter().all(|&x| x == 3));
            b[0] = 9;
        });
        assert_eq!(bufs[0].0[0], 9);
    }
}
