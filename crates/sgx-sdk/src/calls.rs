//! The SDK ecall/ocall runtime: the full cost path of SGX SDK 1.5.80.
//!
//! An [`EnclaveCtx`] binds a built enclave to the proxy plans generated from
//! its EDL and executes calls against the machine model:
//!
//! * **ecall** — untrusted prologue (enclave-table lookup, rwlock, TCS
//!   selection, AVX save), parameter-struct marshalling, `EENTER`, trusted
//!   dispatch, pointer boundary checks, per-buffer copies by transfer mode,
//!   the trusted body, out-copies, `EEXIT`.
//! * **ocall** — trusted marshalling and checks, copies into untrusted
//!   stack buffers (including the redundant zeroing of `out` buffers the
//!   paper's *No-Redundant-Zeroing* removes), `EEXIT`, untrusted dispatch,
//!   the OS body, re-entry, copy-back.

use sgx_sim::{Addr, Cycles, EnclaveId, Machine};

use crate::edger8r::{edger8r, Proxies, ProxyPlan};
use crate::edl::Edl;
use crate::error::{Result, SdkError};
use crate::marshal::{stage, unstage, CallerSide, StagingArea};
use crate::stats::CallStats;

/// A buffer argument supplied by the caller, in the order of the EDL
/// declaration's buffer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufArg {
    /// Caller-side address of the buffer.
    pub addr: Addr,
    /// Length in bytes (the "size parameter supplied by the untrusted
    /// code").
    pub len: u64,
}

impl BufArg {
    /// Convenience constructor.
    pub fn new(addr: Addr, len: u64) -> Self {
        BufArg { addr, len }
    }
}

/// Marshalling behaviour switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MarshalOptions {
    /// Skip the security-pointless zeroing of `out` buffers in *untrusted*
    /// memory on the ocall path (the paper's No-Redundant-Zeroing, §3.3).
    pub no_redundant_zeroing: bool,
    /// Use a word-wise `memset` instead of the SDK's byte-wise one for the
    /// zeroing that *is* required (ecall `out` buffers on the secure heap) —
    /// the "further optimization" of §3.5.
    pub optimized_memset: bool,
}

impl MarshalOptions {
    /// The No-Redundant-Zeroing variant: skip the security-pointless
    /// zeroing of `out`/`in&out` staging regions in untrusted memory,
    /// keeping the byte-wise `memset` for the zeroing that remains
    /// security-mandatory.
    pub fn nrz() -> Self {
        MarshalOptions {
            no_redundant_zeroing: true,
            optimized_memset: false,
        }
    }
}

/// The pointers the callee sees for each buffer parameter after
/// marshalling: secure copies for `in`/`out`/`in&out`, the original for
/// `user_check`.
#[derive(Debug, Clone, Default)]
pub struct CallArgs {
    /// Callee-visible buffer addresses, in declaration order.
    pub bufs: Vec<Addr>,
}

/// How many scratch bytes each side reserves for marshalling.
const SCRATCH_BYTES: u64 = 1 << 20;

/// An enclave bound to its EDL interface.
///
/// # Examples
///
/// ```
/// use sgx_sim::{Machine, SimConfig, EnclaveBuildOptions};
/// use sgx_sdk::edl::parse_edl;
/// use sgx_sdk::{EnclaveCtx, MarshalOptions};
///
/// # fn main() -> Result<(), sgx_sdk::SdkError> {
/// let mut m = Machine::new(SimConfig::default());
/// let eid = m.build_enclave(EnclaveBuildOptions::default())?;
/// let edl = parse_edl("enclave { trusted { public void ecall_empty(); }; };")?;
/// let mut ctx = EnclaveCtx::new(&mut m, eid, &edl, MarshalOptions::default())?;
/// let cost = ctx.ecall(&mut m, "ecall_empty", &[], |_, _, _| Ok(()))?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EnclaveCtx {
    /// The bound enclave.
    pub eid: EnclaveId,
    proxies: Proxies,
    options: MarshalOptions,
    /// Lines touched by the untrusted ecall prologue (enclave table,
    /// rwlock, TCS bookkeeping).
    untrusted_meta: Vec<Addr>,
    /// EPC lines touched by trusted dispatch (call table, thread data).
    trusted_meta: Vec<Addr>,
    /// Untrusted scratch: marshalled parameter structs and ocall stack
    /// buffers.
    marshal_area: Addr,
    /// Secure scratch: staged ecall buffers.
    secure_area: Addr,
    stats: CallStats,
    current_tcs: Option<usize>,
}

impl EnclaveCtx {
    /// Binds `eid` to the interface described by `edl`.
    ///
    /// # Errors
    ///
    /// Fails if plan generation fails (bad `size=` references) or if the
    /// enclave's heap cannot hold the secure scratch area.
    pub fn new(
        m: &mut Machine,
        eid: EnclaveId,
        edl: &Edl,
        options: MarshalOptions,
    ) -> Result<Self> {
        let proxies = edger8r(edl)?;
        let meta_base = m.alloc_untrusted(4 * 64, 64);
        let untrusted_meta = (0..4).map(|i| meta_base.offset(i * 64)).collect();
        let trusted_base = m.alloc_enclave_heap(eid, 3 * 64, 64)?;
        let trusted_meta = (0..3).map(|i| trusted_base.offset(i * 64)).collect();
        let marshal_area = m.alloc_untrusted(SCRATCH_BYTES, 4096);
        let secure_area = m.alloc_enclave_heap(eid, SCRATCH_BYTES, 4096)?;
        Ok(EnclaveCtx {
            eid,
            proxies,
            options,
            untrusted_meta,
            trusted_meta,
            marshal_area,
            secure_area,
            stats: CallStats::new(),
            current_tcs: None,
        })
    }

    /// The marshalling options in force.
    pub fn options(&self) -> MarshalOptions {
        self.options
    }

    /// Replaces the marshalling options (e.g. toggling NRZ between runs).
    pub fn set_options(&mut self, options: MarshalOptions) {
        self.options = options;
    }

    /// Call statistics collected so far.
    pub fn stats(&self) -> &CallStats {
        &self.stats
    }

    /// Clears the statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Records one switchless (hot) ocall into the same per-name ledger
    /// the SDK path feeds, so Table-2-style censuses see every edge
    /// crossing regardless of transport. The caller measures the cycles
    /// (the hot path never enters the SDK, so the SDK cannot).
    pub fn record_hot_ocall(&mut self, name: &str, cycles: Cycles) {
        self.stats.record_ocall(name, cycles);
    }

    /// As [`EnclaveCtx::record_hot_ocall`], for hot ecalls.
    pub fn record_hot_ecall(&mut self, name: &str, cycles: Cycles) {
        self.stats.record_ecall(name, cycles);
    }

    /// Generated proxy plans (exposed so HotCalls can reuse exactly this
    /// marshalling code, as the paper's implementation does).
    pub fn proxies(&self) -> &Proxies {
        &self.proxies
    }

    /// Is the virtual thread currently executing inside the enclave?
    pub fn in_enclave(&self) -> bool {
        self.current_tcs.is_some()
    }

    fn find_free_tcs(&self, m: &Machine) -> Result<usize> {
        let enclave = m.enclave(self.eid)?;
        enclave
            .tcs
            .iter()
            .position(|t| !t.busy)
            .ok_or(SdkError::Sgx(sgx_sim::SgxError::TcsBusy))
    }

    /// Performs an ecall: full SDK path around the trusted `body`.
    ///
    /// `bufs` supplies one entry per buffer parameter in the EDL
    /// declaration. The body receives the callee-visible addresses.
    ///
    /// # Errors
    ///
    /// Fails on unknown names, argument-count mismatches, boundary-check
    /// violations, nested ecalls, or machine-model errors.
    pub fn ecall<R, F>(
        &mut self,
        m: &mut Machine,
        name: &str,
        bufs: &[BufArg],
        body: F,
    ) -> Result<R>
    where
        F: FnOnce(&mut EnclaveCtx, &mut Machine, &CallArgs) -> Result<R>,
    {
        if self.current_tcs.is_some() {
            return Err(SdkError::AlreadyInEnclave);
        }
        let start = m.now();
        let plan = self.proxies.ecall(name)?.clone();
        check_arg_count(&plan, bufs)?;

        // Untrusted software prologue: enclave lookup, rwlock, TCS
        // selection, AVX save, FP-exception check.
        m.charge(Cycles::new(m.config().sdk.ecall_untrusted_sw));
        for line in self.untrusted_meta.clone() {
            m.read(line, 8)?;
        }
        // Marshal the parameter struct into untrusted memory.
        m.write(self.marshal_area, plan.struct_bytes)?;

        let tcs = self.find_free_tcs(m)?;
        m.eenter(self.eid, tcs)?;
        self.current_tcs = Some(tcs);

        // Trusted dispatch: index check + call-table jump + reading the
        // parameter struct from untrusted memory.
        m.charge(Cycles::new(m.config().sdk.ecall_trusted_dispatch));
        for line in self.trusted_meta.clone() {
            m.read(line, 8)?;
        }
        m.read(self.marshal_area, plan.struct_bytes)?;

        // Stage buffers per transfer mode into the secure scratch (the same
        // code HotCalls reuses — see `crate::marshal`).
        let mut area = StagingArea::secure(m, self.secure_area, SCRATCH_BYTES);
        let result = stage(
            m,
            &plan,
            bufs,
            &mut area,
            CallerSide::Untrusted,
            self.options,
        )
        .and_then(|(args, staged)| {
            let r = body(self, m, &args)?;
            unstage(m, &staged)?;
            Ok(r)
        });

        // EEXIT happens regardless of body outcome (the SDK's error paths
        // also leave the enclave).
        m.eexit(self.eid, tcs)?;
        self.current_tcs = None;
        // Untrusted epilogue: AVX restore, lock release.
        m.charge(Cycles::new(120));
        // Status/return propagation.
        m.read(self.marshal_area, 8)?;

        self.stats.record_ecall(name, m.now() - start);
        result
    }

    /// Performs an ocall from inside the enclave: trusted marshalling,
    /// `EEXIT`, the untrusted `body` (the OS work), re-entry and copy-back.
    ///
    /// # Errors
    ///
    /// Fails if no ecall is active, on unknown names or argument
    /// mismatches, boundary violations, or machine errors.
    pub fn ocall<R, F>(
        &mut self,
        m: &mut Machine,
        name: &str,
        bufs: &[BufArg],
        body: F,
    ) -> Result<R>
    where
        F: FnOnce(&mut EnclaveCtx, &mut Machine, &CallArgs) -> Result<R>,
    {
        let tcs = self.current_tcs.ok_or(SdkError::NotInEnclave)?;
        let start = m.now();
        let plan = self.proxies.ocall(name)?.clone();
        check_arg_count(&plan, bufs)?;

        // Trusted prologue: marshalling setup, pointer checks, writing the
        // ocall frame (struct + index) to untrusted memory.
        m.charge(Cycles::new(m.config().sdk.ocall_trusted_sw));
        for line in self.trusted_meta.clone() {
            m.read(line, 8)?;
        }
        m.write(self.marshal_area, plan.struct_bytes)?;

        // Stage buffers on the untrusted stack (trusted side does the
        // copies — including the redundant zeroing of `out` buffers unless
        // NRZ — before EEXIT). Same shared code as HotCalls.
        let mut area = StagingArea::untrusted(m, self.marshal_area, SCRATCH_BYTES);
        area.reserve(plan.struct_bytes);
        let (args, staged_bufs) =
            stage(m, &plan, bufs, &mut area, CallerSide::Trusted, self.options)?;

        m.eexit(self.eid, tcs)?;
        // Untrusted dispatch: ocall-table jump + reading the frame.
        m.charge(Cycles::new(m.config().sdk.ocall_untrusted_dispatch));
        for line in self.untrusted_meta.clone() {
            m.read(line, 8)?;
        }
        m.read(self.marshal_area, plan.struct_bytes)?;

        let result = body(self, m, &args);

        // Return to the enclave (the SDK's ORET re-entry).
        m.eenter(self.eid, tcs)?;
        // Copy results back into secure memory (trusted side).
        unstage(m, &staged_bufs)?;
        m.charge(Cycles::new(100));

        self.stats.record_ocall(name, m.now() - start);
        result
    }

    /// Enters the enclave and stays there (the applications' `main` ecall
    /// pattern, §6.1). Subsequent [`EnclaveCtx::ocall`]s run against this
    /// entry until [`EnclaveCtx::leave_main`].
    ///
    /// # Errors
    ///
    /// Fails if already inside or on machine errors.
    pub fn enter_main(&mut self, m: &mut Machine) -> Result<()> {
        if self.current_tcs.is_some() {
            return Err(SdkError::AlreadyInEnclave);
        }
        m.charge(Cycles::new(m.config().sdk.ecall_untrusted_sw));
        let tcs = self.find_free_tcs(m)?;
        m.eenter(self.eid, tcs)?;
        self.current_tcs = Some(tcs);
        Ok(())
    }

    /// Leaves the long-running main ecall.
    ///
    /// # Errors
    ///
    /// Fails if not inside the enclave.
    pub fn leave_main(&mut self, m: &mut Machine) -> Result<()> {
        let tcs = self.current_tcs.take().ok_or(SdkError::NotInEnclave)?;
        m.eexit(self.eid, tcs)?;
        Ok(())
    }
}

fn check_arg_count(plan: &ProxyPlan, bufs: &[BufArg]) -> Result<()> {
    if plan.steps.len() != bufs.len() {
        return Err(SdkError::ArgCountMismatch {
            name: plan.name.clone(),
            expected: plan.steps.len(),
            got: bufs.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edl::parse_edl;
    use sgx_sim::{EnclaveBuildOptions, SimConfig};

    const TEST_EDL: &str = "enclave {
        trusted {
            public void ecall_empty();
            public void ecall_in([in, size=n] const uint8_t* b, size_t n);
            public void ecall_out([out, size=n] uint8_t* b, size_t n);
            public void ecall_inout([in, out, size=n] uint8_t* b, size_t n);
            public void ecall_raw([user_check] void* p);
        };
        untrusted {
            void ocall_empty();
            void ocall_in([in, size=n] const uint8_t* b, size_t n);
            size_t ocall_out([out, size=n] uint8_t* b, size_t n);
            void ocall_inout([in, out, size=n] uint8_t* b, size_t n);
        };
    };";

    fn setup() -> (Machine, EnclaveCtx) {
        let mut m = Machine::new(SimConfig::builder().deterministic().build());
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        let edl = parse_edl(TEST_EDL).unwrap();
        let ctx = EnclaveCtx::new(&mut m, eid, &edl, MarshalOptions::default()).unwrap();
        (m, ctx)
    }

    fn warm_up(m: &mut Machine, ctx: &mut EnclaveCtx) {
        for _ in 0..3 {
            ctx.ecall(m, "ecall_empty", &[], |_, _, _| Ok(())).unwrap();
        }
    }

    #[test]
    fn empty_ecall_runs_and_counts() {
        let (mut m, mut ctx) = setup();
        let before = m.now();
        ctx.ecall(&mut m, "ecall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        assert!(m.now() > before);
        assert_eq!(ctx.stats().ecalls()["ecall_empty"].count, 1);
    }

    #[test]
    fn warm_ecall_lands_in_papers_ballpark() {
        let (mut m, mut ctx) = setup();
        warm_up(&mut m, &mut ctx);
        let start = m.now();
        ctx.ecall(&mut m, "ecall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        let cost = (m.now() - start).get();
        assert!(
            (7_000..11_000).contains(&cost),
            "warm empty ecall should be ~8,640 cycles, got {cost}"
        );
    }

    #[test]
    fn cold_ecall_costs_well_over_warm() {
        let (mut m, mut ctx) = setup();
        warm_up(&mut m, &mut ctx);
        let start = m.now();
        ctx.ecall(&mut m, "ecall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        let warm = (m.now() - start).get();
        m.flush_all_caches();
        let start = m.now();
        ctx.ecall(&mut m, "ecall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        let cold = (m.now() - start).get();
        assert!(
            cold as f64 > warm as f64 * 1.35,
            "cold {cold} vs warm {warm}"
        );
    }

    #[test]
    fn ecall_out_slower_than_inout_slower_than_in() {
        let (mut m, mut ctx) = setup();
        warm_up(&mut m, &mut ctx);
        let buf = m.alloc_untrusted(2048, 64);
        let arg = [BufArg::new(buf, 2048)];
        let time = |m: &mut Machine, ctx: &mut EnclaveCtx, name: &str| {
            // Flush the transferred buffers, as the paper does for in-copy
            // accuracy; call structures stay warm.
            m.clflush_span(buf, 2048);
            m.reset_stream_detector();
            let s = m.now();
            ctx.ecall(m, name, &arg, |_, _, _| Ok(())).unwrap();
            (m.now() - s).get()
        };
        // Warm the paths once each.
        for name in ["ecall_in", "ecall_out", "ecall_inout"] {
            time(&mut m, &mut ctx, name);
        }
        let t_in = time(&mut m, &mut ctx, "ecall_in");
        let t_out = time(&mut m, &mut ctx, "ecall_out");
        let t_inout = time(&mut m, &mut ctx, "ecall_inout");
        assert!(t_out > t_inout, "out {t_out} must exceed inout {t_inout}");
        assert!(t_inout > t_in, "inout {t_inout} must exceed in {t_in}");
    }

    #[test]
    fn user_check_is_cheapest() {
        let (mut m, mut ctx) = setup();
        warm_up(&mut m, &mut ctx);
        let buf = m.alloc_untrusted(2048, 64);
        let arg = [BufArg::new(buf, 2048)];
        let s = m.now();
        ctx.ecall(&mut m, "ecall_raw", &arg, |_, _, a| {
            assert_eq!(a.bufs[0], buf); // zero-copy: callee sees the original
            Ok(())
        })
        .unwrap();
        let t_raw = (m.now() - s).get();
        let s = m.now();
        ctx.ecall(&mut m, "ecall_in", &arg, |_, _, a| {
            assert_ne!(a.bufs[0], buf); // copied: callee sees the staged copy
            Ok(())
        })
        .unwrap();
        let t_in = (m.now() - s).get();
        assert!(t_raw < t_in);
    }

    #[test]
    fn ecall_rejects_enclave_pointer_arguments() {
        let (mut m, mut ctx) = setup();
        let inside = m.alloc_enclave_heap(ctx.eid, 64, 64).unwrap();
        let err = ctx
            .ecall(&mut m, "ecall_in", &[BufArg::new(inside, 64)], |_, _, _| {
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, SdkError::PointerMustBeOutside(_)));
    }

    #[test]
    fn ocall_requires_enclave_context_and_runs_nested() {
        let (mut m, mut ctx) = setup();
        let err = ctx
            .ocall(&mut m, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap_err();
        assert!(matches!(err, SdkError::NotInEnclave));

        let secure = m.alloc_enclave_heap(ctx.eid, 2048, 64).unwrap();
        ctx.enter_main(&mut m).unwrap();
        let got = ctx
            .ocall(
                &mut m,
                "ocall_out",
                &[BufArg::new(secure, 2048)],
                |_, _, args| {
                    // The OS body sees an untrusted staging buffer.
                    Ok(args.bufs[0])
                },
            )
            .unwrap();
        assert_ne!(got, secure);
        ctx.leave_main(&mut m).unwrap();
        assert_eq!(ctx.stats().ocalls()["ocall_out"].count, 1);
    }

    #[test]
    fn ocall_out_rejects_untrusted_source_pointer() {
        let (mut m, mut ctx) = setup();
        ctx.enter_main(&mut m).unwrap();
        let outside = m.alloc_untrusted(64, 64);
        let err = ctx
            .ocall(
                &mut m,
                "ocall_in",
                &[BufArg::new(outside, 64)],
                |_, _, _| Ok(()),
            )
            .unwrap_err();
        assert!(matches!(err, SdkError::PointerMustBeInside(_)));
    }

    #[test]
    fn nrz_makes_ocall_out_cheaper() {
        let (mut m, mut ctx) = setup();
        let secure = m.alloc_enclave_heap(ctx.eid, 2048, 64).unwrap();
        ctx.enter_main(&mut m).unwrap();
        let run = |m: &mut Machine, ctx: &mut EnclaveCtx| {
            let s = m.now();
            ctx.ocall(m, "ocall_out", &[BufArg::new(secure, 2048)], |_, _, _| {
                Ok(0u64)
            })
            .unwrap();
            (m.now() - s).get()
        };
        run(&mut m, &mut ctx); // warm
        let with_zeroing = run(&mut m, &mut ctx);
        ctx.set_options(MarshalOptions {
            no_redundant_zeroing: true,
            optimized_memset: false,
        });
        let without = run(&mut m, &mut ctx);
        assert!(
            with_zeroing > without + 1_500,
            "NRZ should save ~2k cycles on 2 KB: {with_zeroing} vs {without}"
        );
    }

    #[test]
    fn nested_ecall_is_rejected() {
        let (mut m, mut ctx) = setup();
        let err = ctx
            .ecall(&mut m, "ecall_empty", &[], |ctx, m, _| {
                ctx.ecall(m, "ecall_empty", &[], |_, _, _| Ok(()))
            })
            .unwrap_err();
        assert!(matches!(err, SdkError::AlreadyInEnclave));
    }

    #[test]
    fn arg_count_mismatch_detected() {
        let (mut m, mut ctx) = setup();
        let err = ctx
            .ecall(&mut m, "ecall_in", &[], |_, _, _| Ok(()))
            .unwrap_err();
        assert!(matches!(err, SdkError::ArgCountMismatch { .. }));
    }

    #[test]
    fn ocall_inside_ecall_body_works() {
        let (mut m, mut ctx) = setup();
        let r = ctx
            .ecall(&mut m, "ecall_empty", &[], |ctx, m, _| {
                ctx.ocall(m, "ocall_empty", &[], |_, _, _| Ok(41u64))
                    .map(|v| v + 1)
            })
            .unwrap();
        assert_eq!(r, 42);
        assert_eq!(ctx.stats().total_calls(), 2);
    }
}
