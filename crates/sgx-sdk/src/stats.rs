//! Per-edge-function call accounting.
//!
//! The paper's Table 2 is a breakdown of API-call frequencies and the core
//! time they burn; these counters are how the reproduction derives it.

use std::collections::BTreeMap;

use sgx_sim::Cycles;

/// Count and cumulative cost of one edge function.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CallStat {
    /// Number of invocations.
    pub count: u64,
    /// Total cycles spent in the call path (including marshalling and
    /// context switches, excluding the callee body is *not* true — body
    /// time is included; interface-only cost can be derived by subtracting
    /// the callee's own accounting).
    pub cycles: Cycles,
}

/// Call statistics for one enclave interface.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CallStats {
    ecalls: BTreeMap<String, CallStat>,
    ocalls: BTreeMap<String, CallStat>,
}

impl CallStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one ecall.
    pub fn record_ecall(&mut self, name: &str, cycles: Cycles) {
        let s = self.ecalls.entry(name.to_owned()).or_default();
        s.count += 1;
        s.cycles += cycles;
    }

    /// Records one ocall.
    pub fn record_ocall(&mut self, name: &str, cycles: Cycles) {
        let s = self.ocalls.entry(name.to_owned()).or_default();
        s.count += 1;
        s.cycles += cycles;
    }

    /// Per-name ecall statistics.
    pub fn ecalls(&self) -> &BTreeMap<String, CallStat> {
        &self.ecalls
    }

    /// Per-name ocall statistics.
    pub fn ocalls(&self) -> &BTreeMap<String, CallStat> {
        &self.ocalls
    }

    /// Total number of edge calls (ecalls + ocalls).
    pub fn total_calls(&self) -> u64 {
        self.ecalls.values().map(|s| s.count).sum::<u64>()
            + self.ocalls.values().map(|s| s.count).sum::<u64>()
    }

    /// Total cycles across all edge calls.
    pub fn total_cycles(&self) -> Cycles {
        self.ecalls
            .values()
            .chain(self.ocalls.values())
            .map(|s| s.cycles)
            .sum()
    }

    /// The paper's "Core Time" column: the fraction of `elapsed` spent
    /// inside edge calls.
    pub fn core_time_fraction(&self, elapsed: Cycles) -> f64 {
        if elapsed == Cycles::ZERO {
            0.0
        } else {
            self.total_cycles().get() as f64 / elapsed.get() as f64
        }
    }

    /// The most frequent calls, descending, as (name, count) — the shape of
    /// Table 2's "Frequent Calls" column.
    pub fn top_calls(&self, n: usize) -> Vec<(String, u64)> {
        let mut all: Vec<(String, u64)> = self
            .ecalls
            .iter()
            .chain(self.ocalls.iter())
            .map(|(k, v)| (k.clone(), v.count))
            .collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Ecalls and ocalls folded into one per-name map — the shape the
    /// Table-2 census wants, where a row is an API function regardless of
    /// crossing direction. A name used in both directions (rare, but legal)
    /// sums its counts and cycles.
    pub fn merged(&self) -> BTreeMap<String, CallStat> {
        let mut all: BTreeMap<String, CallStat> = BTreeMap::new();
        for (name, stat) in self.ecalls.iter().chain(self.ocalls.iter()) {
            let row = all.entry(name.clone()).or_default();
            row.count += stat.count;
            row.cycles += stat.cycles;
        }
        all
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.ecalls.clear();
        self.ocalls.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_ranks() {
        let mut s = CallStats::new();
        for _ in 0..5 {
            s.record_ocall("read", Cycles::new(100));
        }
        s.record_ocall("sendmsg", Cycles::new(50));
        s.record_ecall("run", Cycles::new(10));
        assert_eq!(s.total_calls(), 7);
        assert_eq!(s.total_cycles(), Cycles::new(560));
        assert_eq!(s.top_calls(2)[0], ("read".into(), 5));
    }

    #[test]
    fn core_time_fraction_matches_table2_shape() {
        let mut s = CallStats::new();
        // 200k calls x 8,300 cycles on a 4 GHz second = 41.5%.
        for _ in 0..200 {
            s.record_ocall("read", Cycles::new(8_300));
        }
        let elapsed = Cycles::new(4_000_000); // scaled-down "second"
        let f = s.core_time_fraction(elapsed);
        assert!((f - 0.415).abs() < 0.01, "{f}");
    }

    #[test]
    fn zero_elapsed_is_zero_fraction() {
        let s = CallStats::new();
        assert_eq!(s.core_time_fraction(Cycles::ZERO), 0.0);
    }

    #[test]
    fn merged_folds_both_directions() {
        let mut s = CallStats::new();
        s.record_ecall("process", Cycles::new(10));
        s.record_ocall("process", Cycles::new(30));
        s.record_ocall("read", Cycles::new(100));
        let m = s.merged();
        assert_eq!(m.len(), 2);
        assert_eq!(m["process"].count, 2);
        assert_eq!(m["process"].cycles, Cycles::new(40));
        assert_eq!(m["read"].count, 1);
    }

    #[test]
    fn reset_clears() {
        let mut s = CallStats::new();
        s.record_ecall("x", Cycles::new(1));
        s.reset();
        assert_eq!(s.total_calls(), 0);
    }
}
