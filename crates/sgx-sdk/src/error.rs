//! Error types for the simulated SDK.

use core::fmt;

use sgx_sim::SgxError;

use crate::edl::EdlError;

/// Errors returned by the SDK call paths.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdkError {
    /// The underlying hardware model rejected an operation.
    Sgx(SgxError),
    /// EDL parsing or validation failed.
    Edl(EdlError),
    /// No edge function with this name was declared in the EDL.
    UnknownFunction(String),
    /// The caller supplied a different number of buffer arguments than the
    /// EDL declares for the function.
    ArgCountMismatch {
        /// Edge-function name.
        name: String,
        /// Buffers the EDL declares.
        expected: usize,
        /// Buffers the caller supplied.
        got: usize,
    },
    /// A pointer that must lie outside the enclave (ecall inputs) points
    /// into it — the check that prevents the enclave dereferencing
    /// attacker-chosen secure addresses.
    PointerMustBeOutside(sgx_sim::Addr),
    /// A pointer that must lie inside the enclave (ocall sources) points
    /// outside it.
    PointerMustBeInside(sgx_sim::Addr),
    /// An ocall was issued while no ecall was executing.
    NotInEnclave,
    /// A nested ecall was issued from inside the enclave.
    AlreadyInEnclave,
    /// The marshalling scratch area is too small for the requested buffer.
    ScratchExhausted {
        /// Bytes requested.
        requested: u64,
    },
}

impl fmt::Display for SdkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdkError::Sgx(e) => write!(f, "sgx: {e}"),
            SdkError::Edl(e) => write!(f, "edl: {e}"),
            SdkError::UnknownFunction(n) => write!(f, "no edge function named `{n}`"),
            SdkError::ArgCountMismatch {
                name,
                expected,
                got,
            } => write!(
                f,
                "`{name}` declares {expected} buffers but {got} were supplied"
            ),
            SdkError::PointerMustBeOutside(a) => {
                write!(f, "pointer {a} must reference untrusted memory")
            }
            SdkError::PointerMustBeInside(a) => {
                write!(f, "pointer {a} must reference enclave memory")
            }
            SdkError::NotInEnclave => write!(f, "ocall issued while not executing in the enclave"),
            SdkError::AlreadyInEnclave => write!(f, "nested ecall is not supported"),
            SdkError::ScratchExhausted { requested } => {
                write!(
                    f,
                    "marshalling scratch exhausted ({requested} bytes requested)"
                )
            }
        }
    }
}

impl std::error::Error for SdkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdkError::Sgx(e) => Some(e),
            SdkError::Edl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SgxError> for SdkError {
    fn from(e: SgxError) -> Self {
        SdkError::Sgx(e)
    }
}

impl From<EdlError> for SdkError {
    fn from(e: EdlError) -> Self {
        SdkError::Edl(e)
    }
}

/// Convenience alias for SDK results.
pub type Result<T> = core::result::Result<T, SdkError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_chains_source() {
        let e = SdkError::Sgx(SgxError::TcsBusy);
        assert!(e.to_string().contains("busy"));
        assert!(std::error::Error::source(&e).is_some());
        let u = SdkError::UnknownFunction("x".into());
        assert!(std::error::Error::source(&u).is_none());
    }
}
