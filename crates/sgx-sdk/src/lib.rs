//! # sgx-sdk — the simulated Intel SGX SDK
//!
//! The SDK layer of the HotCalls reproduction: everything Intel's SDK
//! 1.5.80 puts between an application and the SGX hardware, with the cost
//! characteristics the paper measures.
//!
//! * [`edl`] — the Enclave Definition Language: AST + parser for the subset
//!   the paper's applications need (`[in]`/`[out]`/`[user_check]`,
//!   `size=`/`count=`).
//! * [`edger8r`] — the edge-function generator: EDL declarations become
//!   [`edger8r::ProxyPlan`]s describing exactly the marshalling work the
//!   real tool's generated C performs.
//! * [`EnclaveCtx`] — the ecall/ocall runtime: untrusted prologue, `EENTER`,
//!   trusted dispatch, pointer boundary checks, per-mode buffer copies
//!   (including the byte-wise `memset` zeroing the paper dissects), `EEXIT`,
//!   and per-call statistics for Table 2.
//! * [`sync`] — `sgx_spin_lock`-style primitives, both real (for the
//!   threaded HotCalls runtime) and as machine-model costs.
//!
//! ## Example
//!
//! ```
//! use sgx_sim::{Machine, SimConfig, EnclaveBuildOptions};
//! use sgx_sdk::edl::parse_edl;
//! use sgx_sdk::{BufArg, EnclaveCtx, MarshalOptions};
//!
//! # fn main() -> Result<(), sgx_sdk::SdkError> {
//! let mut m = Machine::new(SimConfig::default());
//! let eid = m.build_enclave(EnclaveBuildOptions::default())?;
//! let edl = parse_edl(
//!     "enclave {
//!          trusted { public void ecall_sum([in, size=n] const uint8_t* v, size_t n); };
//!      };",
//! )?;
//! let mut ctx = EnclaveCtx::new(&mut m, eid, &edl, MarshalOptions::default())?;
//!
//! let buf = m.alloc_untrusted(2048, 64);
//! ctx.ecall(&mut m, "ecall_sum", &[BufArg::new(buf, 2048)], |_ctx, m, args| {
//!     // `args.bufs[0]` is the staged secure copy; do trusted work here.
//!     m.read(args.bufs[0], 2048)?;
//!     Ok(())
//! })?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bytes;
mod calls;
pub mod edger8r;
pub mod edl;
mod error;
pub mod marshal;
pub mod memops;
mod stats;
pub mod sync;

pub use calls::{BufArg, CallArgs, EnclaveCtx, MarshalOptions};
pub use error::{Result, SdkError};
pub use stats::{CallStat, CallStats};
