//! Synchronization primitives in the SDK's style.
//!
//! `sgx_spin_lock` is "a straightforward busy-wait implementation and does
//! not relate to SGX, so it can be used by both the enclave and the
//! untrusted code" (paper §4.2). Two views are provided:
//!
//! * [`SpinLock`] — a real atomic spin lock usable by the threaded HotCalls
//!   runtime;
//! * [`sim_spin_acquire`] / [`sim_spin_release`] — the cycle-cost of the
//!   same operations against the machine model, for simulated HotCalls.

use std::sync::atomic::{AtomicBool, Ordering};

use sgx_sim::{Addr, Cycles, Machine};

use crate::error::Result;

/// A minimal test-and-test-and-set spin lock with `PAUSE` hints.
///
/// Unlike a mutex it never calls into the OS — which is the entire point:
/// a POSIX mutex would defeat HotCalls by reintroducing syscalls.
#[derive(Debug, Default)]
pub struct SpinLock {
    locked: AtomicBool,
}

impl SpinLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Acquires the lock, spinning with `PAUSE` until available.
    pub fn lock(&self) {
        loop {
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            while self.locked.load(Ordering::Relaxed) {
                core::hint::spin_loop();
            }
        }
    }

    /// Tries to acquire without spinning. Returns `true` on success.
    pub fn try_lock(&self) -> bool {
        !self.locked.swap(true, Ordering::Acquire)
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the lock was held.
    pub fn unlock(&self) {
        debug_assert!(self.locked.load(Ordering::Relaxed), "unlock of free lock");
        self.locked.store(false, Ordering::Release);
    }

    /// Is the lock currently held?
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

/// Cycle cost of acquiring an uncontended spin lock at `lock_addr` in the
/// simulated machine: one read-modify-write of the lock's cache line.
///
/// # Errors
///
/// Propagates memory-model errors.
pub fn sim_spin_acquire(m: &mut Machine, lock_addr: Addr) -> Result<Cycles> {
    let start = m.now();
    // LOCK XCHG: load + locked store on the same line.
    m.read(lock_addr, 8)?;
    m.write(lock_addr, 8)?;
    m.charge(Cycles::new(18)); // atomic-op core cost
    Ok(m.now() - start)
}

/// Cycle cost of releasing the spin lock (a plain store + release fence).
///
/// # Errors
///
/// Propagates memory-model errors.
pub fn sim_spin_release(m: &mut Machine, lock_addr: Addr) -> Result<Cycles> {
    let start = m.now();
    m.write(lock_addr, 8)?;
    Ok(m.now() - start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spin_lock_excludes_concurrent_increments() {
        let lock = Arc::new(SpinLock::new());
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    lock.lock();
                    // Simulated critical section: non-atomic read-modify-write
                    // made safe by the lock.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.unlock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 40_000);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let lock = SpinLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn sim_costs_are_small_when_warm() {
        let mut m = Machine::new(sgx_sim::SimConfig::builder().deterministic().build());
        let addr = m.alloc_untrusted(64, 64);
        sim_spin_acquire(&mut m, addr).unwrap(); // cold
        let warm = sim_spin_acquire(&mut m, addr).unwrap();
        assert!(warm.get() < 60, "warm spin acquire should be cheap: {warm}");
    }
}
