//! The Enclave Definition Language: AST and parser.
//!
//! Programmers describe edge functions (ecalls and ocalls) in an EDL file;
//! the [`crate::edger8r`] module turns the parsed declarations into
//! marshalling plans, exactly as Intel's `edger8r` turns EDL into generated
//! C glue.

mod ast;
mod parser;

pub use ast::{Direction, EdgeFn, Edl, Param, ParamKind, SizeSpec};
pub use parser::{parse_edl, EdlError};
