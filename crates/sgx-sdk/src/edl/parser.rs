//! A hand-rolled parser for the EDL subset used by the paper's applications.
//!
//! Grammar (informally):
//!
//! ```text
//! enclave {
//!     trusted {
//!         public void ecall_main([in, size=cfg_len] const uint8_t* cfg, size_t cfg_len);
//!     };
//!     untrusted {
//!         size_t ocall_read([out, size=cap] uint8_t* buf, size_t cap);
//!     };
//! };
//! ```
//!
//! `//` and `/* */` comments are skipped. Pointer parameters must carry an
//! attribute list (`[user_check]`, `[in]`, `[out]`, `[in, out]`, with an
//! optional `size=`/`count=`), mirroring the real edger8r's refusal to guess.

use core::fmt;

use super::ast::{Direction, EdgeFn, Edl, Param, ParamKind, SizeSpec};

/// Parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdlError {
    /// Line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for EdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for EdlError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(u64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Star,
    Eq,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> EdlError {
        EdlError {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_trivia(&mut self) -> Result<(), EdlError> {
        loop {
            match self.src.get(self.pos) {
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(&c) = self.src.get(self.pos) {
                        self.pos += 1;
                        if c == b'\n' {
                            self.line += 1;
                            break;
                        }
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    self.pos += 2;
                    loop {
                        match self.src.get(self.pos) {
                            Some(b'*') if self.src.get(self.pos + 1) == Some(&b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(b'\n') => {
                                self.line += 1;
                                self.pos += 1;
                            }
                            Some(_) => self.pos += 1,
                            None => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next(&mut self) -> Result<Option<(Tok, usize)>, EdlError> {
        self.skip_trivia()?;
        let line = self.line;
        let Some(&c) = self.src.get(self.pos) else {
            return Ok(None);
        };
        let tok = match c {
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'[' => {
                self.pos += 1;
                Tok::LBracket
            }
            b']' => {
                self.pos += 1;
                Tok::RBracket
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b';' => {
                self.pos += 1;
                Tok::Semi
            }
            b'*' => {
                self.pos += 1;
                Tok::Star
            }
            b'=' => {
                self.pos += 1;
                Tok::Eq
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while self.src.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
                let text = core::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
                Tok::Number(
                    text.parse()
                        .map_err(|_| self.error(format!("number out of range: {text}")))?,
                )
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self
                    .src
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
                {
                    self.pos += 1;
                }
                Tok::Ident(
                    core::str::from_utf8(&self.src[start..self.pos])
                        .expect("ascii idents")
                        .to_owned(),
                )
            }
            other => return Err(self.error(format!("unexpected character `{}`", other as char))),
        };
        Ok(Some((tok, line)))
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> EdlError {
        EdlError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Result<Tok, EdlError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.error("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), EdlError> {
        let got = self.bump()?;
        if &got == want {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.error(format!("expected {what}, found {got:?}")))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, EdlError> {
        match self.bump()? {
            Tok::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                Err(self.error(format!("expected {what}, found {other:?}")))
            }
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), EdlError> {
        let s = self.expect_ident(&format!("`{kw}`"))?;
        if s == kw {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.error(format!("expected `{kw}`, found `{s}`")))
        }
    }

    fn parse_enclave(&mut self) -> Result<Edl, EdlError> {
        self.expect_keyword("enclave")?;
        self.expect(&Tok::LBrace, "`{`")?;
        let mut edl = Edl::default();
        loop {
            match self.peek() {
                Some(Tok::RBrace) => break,
                Some(Tok::Ident(s)) if s == "trusted" => {
                    self.bump()?;
                    edl.trusted.extend(self.parse_block()?);
                }
                Some(Tok::Ident(s)) if s == "untrusted" => {
                    self.bump()?;
                    edl.untrusted.extend(self.parse_block()?);
                }
                _ => return Err(self.error("expected `trusted`, `untrusted` or `}`")),
            }
        }
        self.expect(&Tok::RBrace, "`}`")?;
        self.expect(&Tok::Semi, "`;`")?;
        if self.pos != self.toks.len() {
            return Err(self.error("trailing input after enclave declaration"));
        }
        Ok(edl)
    }

    fn parse_block(&mut self) -> Result<Vec<EdgeFn>, EdlError> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut fns = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            fns.push(self.parse_fn()?);
        }
        self.expect(&Tok::RBrace, "`}`")?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(fns)
    }

    fn parse_fn(&mut self) -> Result<EdgeFn, EdlError> {
        let mut public = false;
        if self.peek() == Some(&Tok::Ident("public".into())) {
            public = true;
            self.bump()?;
        }
        let (ret_type, _) = self.parse_type()?;
        let returns_value = ret_type != "void";
        let name = self.expect_ident("function name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                params.push(self.parse_param()?);
                match self.bump()? {
                    Tok::Comma => continue,
                    Tok::RParen => {
                        self.pos -= 1;
                        break;
                    }
                    other => {
                        self.pos -= 1;
                        return Err(self.error(format!("expected `,` or `)`, found {other:?}")));
                    }
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(EdgeFn {
            name,
            public,
            params,
            returns_value,
        })
    }

    /// Parses an optional attribute list + type + name.
    fn parse_param(&mut self) -> Result<Param, EdlError> {
        let attrs = if self.peek() == Some(&Tok::LBracket) {
            Some(self.parse_attrs()?)
        } else {
            None
        };
        let (c_type, is_pointer) = self.parse_type()?;
        let name = self.expect_ident("parameter name")?;

        if is_pointer {
            let attrs = attrs.ok_or_else(|| {
                self.error(format!(
                    "pointer parameter `{name}` requires an attribute ([in]/[out]/[user_check])"
                ))
            })?;
            let direction = match (attrs.user_check, attrs.is_in, attrs.is_out) {
                (true, false, false) => Direction::UserCheck,
                (false, true, false) => Direction::In,
                (false, false, true) => Direction::Out,
                (false, true, true) => Direction::InOut,
                (true, _, _) => {
                    return Err(self.error(format!(
                        "`{name}`: user_check cannot be combined with in/out"
                    )))
                }
                (false, false, false) => {
                    return Err(self.error(format!(
                        "pointer parameter `{name}` needs in/out/user_check"
                    )))
                }
            };
            let elem = sizeof_pointee(&c_type);
            let size = match (attrs.size, attrs.count) {
                (Some(s), None) => s,
                (None, Some(SizeSpec::Fixed(n))) => SizeSpec::Fixed(n * elem),
                (None, Some(spec @ SizeSpec::Param(_))) => spec,
                (Some(_), Some(_)) => {
                    return Err(self.error(format!(
                        "`{name}`: specify either size= or count=, not both"
                    )))
                }
                (None, None) => SizeSpec::Fixed(elem.max(1)),
            };
            Ok(Param {
                name,
                c_type,
                kind: ParamKind::Buffer { direction, size },
            })
        } else {
            if attrs.is_some() {
                return Err(self.error(format!(
                    "value parameter `{name}` cannot carry buffer attributes"
                )));
            }
            let bytes = sizeof_value(&c_type)
                .ok_or_else(|| self.error(format!("unknown value type `{c_type}`")))?;
            Ok(Param {
                name,
                c_type,
                kind: ParamKind::Value { bytes },
            })
        }
    }

    fn parse_attrs(&mut self) -> Result<Attrs, EdlError> {
        self.expect(&Tok::LBracket, "`[`")?;
        let mut attrs = Attrs::default();
        loop {
            let key = self.expect_ident("attribute")?;
            match key.as_str() {
                "in" => attrs.is_in = true,
                "out" => attrs.is_out = true,
                "user_check" => attrs.user_check = true,
                "size" | "count" => {
                    self.expect(&Tok::Eq, "`=`")?;
                    let spec = match self.bump()? {
                        Tok::Number(n) => SizeSpec::Fixed(n),
                        Tok::Ident(p) => SizeSpec::Param(p),
                        other => {
                            self.pos -= 1;
                            return Err(self.error(format!("expected size value, found {other:?}")));
                        }
                    };
                    if key == "size" {
                        attrs.size = Some(spec);
                    } else {
                        attrs.count = Some(spec);
                    }
                }
                other => return Err(self.error(format!("unknown attribute `{other}`"))),
            }
            match self.bump()? {
                Tok::Comma => continue,
                Tok::RBracket => break,
                other => {
                    self.pos -= 1;
                    return Err(self.error(format!("expected `,` or `]`, found {other:?}")));
                }
            }
        }
        Ok(attrs)
    }

    /// Parses a C type: idents (`const unsigned long`) plus optional stars.
    /// Returns (canonical spelling, is_pointer).
    fn parse_type(&mut self) -> Result<(String, bool), EdlError> {
        let mut words: Vec<String> = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Ident(s)) if is_type_word(s) || (words.is_empty() && s != "public") => {
                    // First word is always consumed as part of the type; the
                    // *last* ident before `(`/`,` is the name, handled by the
                    // caller, so stop when the next-next token says so.
                    let s = s.clone();
                    // Lookahead: if the following token is an ident too, the
                    // current one is part of the type; if it is `(`/`,`/`)`,
                    // the current ident is actually the name — stop.
                    let next_is_ident =
                        matches!(self.toks.get(self.pos + 1), Some((Tok::Ident(_), _)))
                            || matches!(self.toks.get(self.pos + 1), Some((Tok::Star, _)));
                    if words.is_empty() || is_type_word(&s) || next_is_ident {
                        self.bump()?;
                        words.push(s);
                    } else {
                        break;
                    }
                }
                Some(Tok::Star) => {
                    self.bump()?;
                    words.push("*".into());
                }
                _ => break,
            }
            // A `*` can only be followed by the parameter name or more stars.
            if words.last().map(String::as_str) != Some("*")
                && !matches!(self.peek(), Some(Tok::Ident(_)) | Some(Tok::Star))
            {
                break;
            }
            // Stop when exactly one ident remains before a non-ident token:
            // that ident is the parameter/function name.
            if let (Some(Tok::Ident(_)), Some((next2, _))) =
                (self.peek(), self.toks.get(self.pos + 1))
            {
                if !matches!(next2, Tok::Ident(_) | Tok::Star) {
                    break;
                }
            }
        }
        if words.is_empty() {
            return Err(self.error("expected a type"));
        }
        let is_pointer = words.iter().any(|w| w == "*");
        let spelling = words
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(" ")
            .replace(" *", "*");
        Ok((spelling, is_pointer))
    }
}

#[derive(Debug, Default)]
struct Attrs {
    is_in: bool,
    is_out: bool,
    user_check: bool,
    size: Option<SizeSpec>,
    count: Option<SizeSpec>,
}

fn is_type_word(s: &str) -> bool {
    matches!(
        s,
        "const"
            | "unsigned"
            | "signed"
            | "struct"
            | "void"
            | "char"
            | "short"
            | "int"
            | "long"
            | "float"
            | "double"
    ) || sizeof_value(s).is_some()
}

/// Byte size of a by-value C type; `None` for unknown spellings.
fn sizeof_value(c_type: &str) -> Option<u64> {
    let t = c_type.replace("const", "");
    let t = t.trim();
    Some(match t {
        "void" => 0,
        "char" | "int8_t" | "uint8_t" | "bool" => 1,
        "short" | "int16_t" | "uint16_t" | "unsigned short" => 2,
        "int" | "int32_t" | "uint32_t" | "unsigned" | "unsigned int" | "float" => 4,
        "long" | "unsigned long" | "int64_t" | "uint64_t" | "size_t" | "ssize_t" | "time_t"
        | "double" | "intptr_t" | "uintptr_t" | "off_t" | "pid_t" => 8,
        _ => return None,
    })
}

/// Element size of a pointer's pointee (for `count=`); unknown types count
/// as opaque bytes.
fn sizeof_pointee(c_type: &str) -> u64 {
    let base = c_type.replace(['*'], "");
    sizeof_value(base.trim()).filter(|&b| b > 0).unwrap_or(1)
}

/// Parses EDL source text.
///
/// # Errors
///
/// Returns an [`EdlError`] with line information for lexical or syntactic
/// problems, missing pointer attributes, or unknown value types.
///
/// # Examples
///
/// ```
/// use sgx_sdk::edl::parse_edl;
///
/// # fn main() -> Result<(), sgx_sdk::edl::EdlError> {
/// let edl = parse_edl(
///     "enclave {
///          trusted {
///              public void ecall_go([in, size=n] const uint8_t* data, size_t n);
///          };
///          untrusted {
///              void ocall_log([in, size=len] const char* msg, size_t len);
///          };
///      };",
/// )?;
/// assert_eq!(edl.trusted.len(), 1);
/// assert_eq!(edl.untrusted[0].name, "ocall_log");
/// # Ok(())
/// # }
/// ```
pub fn parse_edl(src: &str) -> Result<Edl, EdlError> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lexer.next()? {
        toks.push(t);
    }
    Parser { toks, pos: 0 }.parse_enclave()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_enclave() {
        let edl = parse_edl("enclave { trusted { public void f(); }; };").unwrap();
        assert_eq!(edl.trusted.len(), 1);
        assert!(edl.trusted[0].public);
        assert!(edl.trusted[0].params.is_empty());
        assert!(!edl.trusted[0].returns_value);
    }

    #[test]
    fn parses_buffer_attributes() {
        let edl = parse_edl(
            "enclave { untrusted {
                size_t ocall_read([out, size=cap] uint8_t* buf, size_t cap);
                void ocall_send([in, out, size=n] uint8_t* b, size_t n);
                void ocall_raw([user_check] void* p);
             }; };",
        )
        .unwrap();
        let read = &edl.untrusted[0];
        assert!(read.returns_value);
        assert!(matches!(
            read.params[0].kind,
            ParamKind::Buffer {
                direction: Direction::Out,
                size: SizeSpec::Param(ref p)
            } if p == "cap"
        ));
        assert!(matches!(
            edl.untrusted[1].params[0].kind,
            ParamKind::Buffer {
                direction: Direction::InOut,
                ..
            }
        ));
        assert!(matches!(
            edl.untrusted[2].params[0].kind,
            ParamKind::Buffer {
                direction: Direction::UserCheck,
                size: SizeSpec::Fixed(1)
            }
        ));
    }

    #[test]
    fn comments_are_skipped() {
        let edl =
            parse_edl("// header\nenclave { /* block\ncomment */ trusted { public void f(); }; };")
                .unwrap();
        assert_eq!(edl.trusted[0].name, "f");
    }

    #[test]
    fn const_pointer_types_parse() {
        let edl = parse_edl(
            "enclave { trusted {
                public void f([in, size=len] const uint8_t* data, size_t len);
             }; };",
        )
        .unwrap();
        let p = &edl.trusted[0].params[0];
        assert_eq!(p.name, "data");
        assert!(p.c_type.contains("uint8_t"));
    }

    #[test]
    fn pointer_without_attribute_is_rejected() {
        let err = parse_edl("enclave { trusted { public void f(uint8_t* p); }; };").unwrap_err();
        assert!(err.message.contains("requires an attribute"), "{err}");
    }

    #[test]
    fn user_check_with_in_is_rejected() {
        let err =
            parse_edl("enclave { trusted { public void f([user_check, in] uint8_t* p); }; };")
                .unwrap_err();
        assert!(err.message.contains("user_check"), "{err}");
    }

    #[test]
    fn count_scales_by_element_size() {
        let edl =
            parse_edl("enclave { trusted { public void f([in, count=4] const uint64_t* v); }; };")
                .unwrap();
        assert!(matches!(
            edl.trusted[0].params[0].kind,
            ParamKind::Buffer {
                size: SizeSpec::Fixed(32),
                ..
            }
        ));
    }

    #[test]
    fn error_reports_line() {
        let err =
            parse_edl("enclave {\n  trusted {\n    public void f(???);\n  };\n};").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(parse_edl("enclave { /* oops").is_err());
    }

    #[test]
    fn many_functions_parse() {
        // A taste of the scale the porting framework generates (93-144 fns).
        let mut src = String::from("enclave { untrusted {\n");
        for i in 0..120 {
            src.push_str(&format!(
                "void ocall_{i}([in, size=l{i}] const uint8_t* b{i}, size_t l{i});\n"
            ));
        }
        src.push_str("}; };");
        let edl = parse_edl(&src).unwrap();
        assert_eq!(edl.untrusted.len(), 120);
    }
}
