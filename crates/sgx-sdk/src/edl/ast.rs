//! Abstract syntax of the Enclave Definition Language subset the paper's
//! applications use.

use serde::{Deserialize, Serialize};

/// Buffer transfer mode, straight from the EDL attribute the programmer
/// writes (`[user_check]`, `[in]`, `[out]`, `[in, out]`).
///
/// Note the direction semantics invert between ecalls and ocalls (paper
/// §3.2.1 / §3.3): for an ecall `in` copies *into* the enclave; for an ocall
/// `in` copies *into the ocall*, i.e. out of the enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Zero-copy, no checks.
    UserCheck,
    /// Copied toward the callee.
    In,
    /// Allocated and zeroed at the callee, copied back to the caller.
    Out,
    /// Copied both ways.
    InOut,
}

impl Direction {
    /// The EDL attribute spelling.
    pub fn as_edl(&self) -> &'static str {
        match self {
            Direction::UserCheck => "user_check",
            Direction::In => "in",
            Direction::Out => "out",
            Direction::InOut => "in, out",
        }
    }
}

/// How a buffer's byte length is determined.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizeSpec {
    /// `size=4096` — a literal.
    Fixed(u64),
    /// `size=len` — the value parameter named here carries the length.
    Param(String),
}

/// One parameter of an edge function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// The C type as written (`const uint8_t*`, `size_t`, ...).
    pub c_type: String,
    /// Value vs buffer semantics.
    pub kind: ParamKind,
}

/// Value or pointer semantics of a parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamKind {
    /// Passed by value in the marshalled struct.
    Value {
        /// Size of the value in bytes.
        bytes: u64,
    },
    /// A pointer with a transfer attribute.
    Buffer {
        /// Transfer mode.
        direction: Direction,
        /// Length source.
        size: SizeSpec,
    },
}

/// One `ecall` or `ocall` declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeFn {
    /// Function name.
    pub name: String,
    /// `public` ecalls are callable from untrusted code at any time.
    pub public: bool,
    /// Declared parameters, in order.
    pub params: Vec<Param>,
    /// Does the function return a (value) result?
    pub returns_value: bool,
}

impl EdgeFn {
    /// Indexes of the buffer parameters, in declaration order.
    pub fn buffer_params(&self) -> impl Iterator<Item = (usize, &Param)> {
        self.params
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.kind, ParamKind::Buffer { .. }))
    }

    /// Number of buffer parameters.
    pub fn buffer_count(&self) -> usize {
        self.buffer_params().count()
    }

    /// Total bytes of by-value parameters (the marshalled struct payload).
    pub fn value_bytes(&self) -> u64 {
        self.params
            .iter()
            .map(|p| match p.kind {
                ParamKind::Value { bytes } => bytes,
                // A pointer travels as 8 bytes plus its size field.
                ParamKind::Buffer { .. } => 16,
            })
            .sum()
    }
}

/// A parsed EDL file: the `trusted` (ecall) and `untrusted` (ocall) blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edl {
    /// Functions callable *into* the enclave.
    pub trusted: Vec<EdgeFn>,
    /// Functions the enclave calls *out* to.
    pub untrusted: Vec<EdgeFn>,
}

impl Edl {
    /// Finds a trusted (ecall) declaration by name.
    pub fn trusted_fn(&self, name: &str) -> Option<&EdgeFn> {
        self.trusted.iter().find(|f| f.name == name)
    }

    /// Finds an untrusted (ocall) declaration by name.
    pub fn untrusted_fn(&self, name: &str) -> Option<&EdgeFn> {
        self.untrusted.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(name: &str, d: Direction) -> Param {
        Param {
            name: name.into(),
            c_type: "uint8_t*".into(),
            kind: ParamKind::Buffer {
                direction: d,
                size: SizeSpec::Param("len".into()),
            },
        }
    }

    fn val(name: &str, bytes: u64) -> Param {
        Param {
            name: name.into(),
            c_type: "size_t".into(),
            kind: ParamKind::Value { bytes },
        }
    }

    #[test]
    fn value_bytes_counts_pointers_as_16() {
        let f = EdgeFn {
            name: "f".into(),
            public: true,
            params: vec![buf("b", Direction::In), val("len", 8)],
            returns_value: false,
        };
        assert_eq!(f.value_bytes(), 24);
        assert_eq!(f.buffer_count(), 1);
    }

    #[test]
    fn direction_spellings() {
        assert_eq!(Direction::InOut.as_edl(), "in, out");
        assert_eq!(Direction::UserCheck.as_edl(), "user_check");
    }
}
