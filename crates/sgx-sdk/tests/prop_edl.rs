//! Property tests: EDL pretty-print → parse round-trip, and marshalling
//! invariants under arbitrary buffer shapes.

use proptest::prelude::*;

use sgx_sdk::bytes::ByteStaging;
use sgx_sdk::edger8r::edger8r;
use sgx_sdk::edl::{parse_edl, Direction, EdgeFn, Edl, Param, ParamKind, SizeSpec};
use sgx_sdk::marshal::{stage, unstage, CallerSide, StagingArea};
use sgx_sdk::{BufArg, MarshalOptions};
use sgx_sim::{EnclaveBuildOptions, Machine, SimConfig};

fn direction_strategy() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::In),
        Just(Direction::Out),
        Just(Direction::InOut),
        Just(Direction::UserCheck),
    ]
}

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,12}".prop_map(|s| s)
}

fn edge_fn_strategy() -> impl Strategy<Value = EdgeFn> {
    (
        ident(),
        any::<bool>(),
        proptest::collection::vec(direction_strategy(), 0..3),
    )
        .prop_map(|(name, returns_value, dirs)| {
            let mut params = Vec::new();
            for (i, d) in dirs.into_iter().enumerate() {
                // user_check pointers carry no size attribute in EDL, so
                // the parser assigns the pointee size (1 for uint8_t).
                let size = if d == Direction::UserCheck {
                    SizeSpec::Fixed(1)
                } else {
                    SizeSpec::Param(format!("n{i}"))
                };
                params.push(Param {
                    name: format!("b{i}"),
                    c_type: "uint8_t*".into(),
                    kind: ParamKind::Buffer { direction: d, size },
                });
                params.push(Param {
                    name: format!("n{i}"),
                    c_type: "size_t".into(),
                    kind: ParamKind::Value { bytes: 8 },
                });
            }
            EdgeFn {
                name: format!("fn_{name}"),
                public: true,
                params,
                returns_value,
            }
        })
}

/// Pretty-prints an AST back to EDL source.
fn print_edl(edl: &Edl) -> String {
    let mut out = String::from("enclave {\n");
    for (block, fns) in [("trusted", &edl.trusted), ("untrusted", &edl.untrusted)] {
        out.push_str(&format!("    {block} {{\n"));
        for f in fns {
            let ret = if f.returns_value { "size_t" } else { "void" };
            let vis = if block == "trusted" { "public " } else { "" };
            let params: Vec<String> = f
                .params
                .iter()
                .map(|p| match &p.kind {
                    ParamKind::Value { .. } => format!("{} {}", p.c_type, p.name),
                    ParamKind::Buffer { direction, size } => {
                        let size_str = match size {
                            SizeSpec::Fixed(n) => format!("size={n}"),
                            SizeSpec::Param(s) => format!("size={s}"),
                        };
                        match direction {
                            Direction::UserCheck => {
                                format!("[user_check] {} {}", p.c_type, p.name)
                            }
                            d => format!("[{}, {size_str}] {} {}", d.as_edl(), p.c_type, p.name),
                        }
                    }
                })
                .collect();
            out.push_str(&format!(
                "        {vis}{ret} {}({});\n",
                f.name,
                params.join(", ")
            ));
        }
        out.push_str("    };\n");
    }
    out.push_str("};\n");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// print -> parse round-trips the function structure.
    #[test]
    fn edl_print_parse_roundtrip(
        trusted in proptest::collection::vec(edge_fn_strategy(), 0..5),
        untrusted in proptest::collection::vec(edge_fn_strategy(), 0..5),
    ) {
        let edl = Edl { trusted, untrusted };
        let src = print_edl(&edl);
        let parsed = parse_edl(&src).unwrap_or_else(|e| panic!("generated EDL failed: {e}\n{src}"));
        prop_assert_eq!(parsed.trusted.len(), edl.trusted.len());
        prop_assert_eq!(parsed.untrusted.len(), edl.untrusted.len());
        for (a, b) in parsed.trusted.iter().zip(edl.trusted.iter()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.params.len(), b.params.len());
            prop_assert_eq!(a.returns_value, b.returns_value);
            for (pa, pb) in a.params.iter().zip(b.params.iter()) {
                prop_assert_eq!(&pa.kind, &pb.kind);
            }
        }
        // And plan generation agrees on buffer counts.
        let proxies = edger8r(&parsed).unwrap();
        for f in &edl.trusted {
            prop_assert_eq!(
                proxies.ecall(&f.name).unwrap().steps.len(),
                f.buffer_count()
            );
        }
    }

    /// Marshalling: every staged buffer preserves its length, and the
    /// callee-visible pointer is on the opposite side of the boundary for
    /// copying modes (and the same pointer for user_check).
    #[test]
    fn staging_respects_boundary(
        dirs in proptest::collection::vec(direction_strategy(), 1..4),
        lens in proptest::collection::vec(64u64..4_096, 1..4),
    ) {
        let mut m = Machine::new(SimConfig::builder().deterministic().build());
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();

        let params: Vec<String> = dirs.iter().enumerate().map(|(i, d)| {
            let attr = match d {
                Direction::UserCheck => "[user_check]".to_string(),
                d => format!("[{}, size=n{i}]", d.as_edl()),
            };
            format!("{attr} uint8_t* b{i}, size_t n{i}")
        }).collect();
        let src = format!(
            "enclave {{ untrusted {{ void f({}); }}; }};",
            params.join(", ")
        );
        let edl = parse_edl(&src).unwrap();
        let proxies = edger8r(&edl).unwrap();
        let plan = proxies.ocall("f").unwrap();

        let bufs: Vec<BufArg> = dirs.iter().zip(lens.iter().cycle()).map(|(_, &len)| {
            BufArg::new(m.alloc_enclave_heap(eid, len, 64).unwrap(), len)
        }).collect();
        let area_base = m.alloc_untrusted(1 << 20, 4096);
        let mut area = StagingArea::untrusted(&m, area_base, 1 << 20);
        let (args, staged) = stage(
            &mut m, plan, &bufs, &mut area, CallerSide::Trusted, MarshalOptions::default(),
        ).unwrap();

        prop_assert_eq!(args.bufs.len(), dirs.len());
        let mut staged_iter = staged.iter();
        for ((dir, arg), seen) in dirs.iter().zip(bufs.iter()).zip(args.bufs.iter()) {
            match dir {
                Direction::UserCheck => prop_assert_eq!(*seen, arg.addr),
                _ => {
                    let s = staged_iter.next().unwrap();
                    prop_assert_eq!(s.len, arg.len);
                    prop_assert!(!m.is_enclave_addr(s.staged), "staged copy must be untrusted");
                    prop_assert!(m.is_enclave_addr(s.caller));
                }
            }
        }
        unstage(&mut m, &staged).unwrap();
    }

    /// Staged areas never overlap: distinct buffers get disjoint spans.
    #[test]
    fn staging_allocations_are_disjoint(lens in proptest::collection::vec(1u64..2_000, 2..6)) {
        let mut m = Machine::new(SimConfig::builder().deterministic().build());
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        let n = lens.len();
        let params: Vec<String> = (0..n)
            .map(|i| format!("[in, size=n{i}] const uint8_t* b{i}, size_t n{i}"))
            .collect();
        let src = format!("enclave {{ untrusted {{ void f({}); }}; }};", params.join(", "));
        let edl = parse_edl(&src).unwrap();
        let proxies = edger8r(&edl).unwrap();
        let bufs: Vec<BufArg> = lens
            .iter()
            .map(|&len| BufArg::new(m.alloc_enclave_heap(eid, len, 64).unwrap(), len))
            .collect();
        let area_base = m.alloc_untrusted(1 << 20, 4096);
        let mut area = StagingArea::untrusted(&m, area_base, 1 << 20);
        let (_, staged) = stage(
            &mut m,
            proxies.ocall("f").unwrap(),
            &bufs,
            &mut area,
            CallerSide::Trusted,
            MarshalOptions::default(),
        )
        .unwrap();
        for (i, a) in staged.iter().enumerate() {
            for b in staged.iter().skip(i + 1) {
                let a_end = a.staged.get() + a.len;
                let b_end = b.staged.get() + b.len;
                prop_assert!(
                    a_end <= b.staged.get() || b_end <= a.staged.get(),
                    "overlap between staged buffers"
                );
            }
        }
    }

    /// No-Redundant-Zeroing is observationally equivalent to the
    /// SDK-faithful zeroing marshaller for callees that fully write their
    /// `out` regions: across a sequence of calls reusing one (dirty)
    /// staging region, with arbitrary buffer shapes spanning all four EDL
    /// directions, every caller buffer ends byte-for-byte identical.
    #[test]
    fn nrz_marshalling_is_byte_equivalent(
        calls in proptest::collection::vec(
            proptest::collection::vec((direction_strategy(), 1usize..512), 1..5),
            1..6,
        ),
        seed in any::<u8>(),
    ) {
        let mut outcomes = Vec::new();
        for nrz in [false, true] {
            let mut staging = ByteStaging::new();
            let mut finals = Vec::new();
            for (c, shape) in calls.iter().enumerate() {
                let mut bufs: Vec<(Vec<u8>, Direction)> = shape
                    .iter()
                    .enumerate()
                    .map(|(i, &(d, len))| {
                        let data = (0..len)
                            .map(|j| seed ^ (c as u8) ^ (i as u8 ^ j as u8).wrapping_mul(31))
                            .collect();
                        (data, d)
                    })
                    .collect();
                let dirs: Vec<Direction> = shape.iter().map(|&(d, _)| d).collect();
                staging.run_call(&mut bufs, nrz, |i, b| match dirs[i] {
                    // `out`: fully written without reading — the contract
                    // NRZ requires of callees.
                    Direction::Out => {
                        for (j, x) in b.iter_mut().enumerate() {
                            *x = (i as u8).wrapping_add(j as u8).wrapping_mul(13);
                        }
                    }
                    // Input-visible modes may read their incoming bytes
                    // (identical in both runs) and mix them into the
                    // response.
                    _ => {
                        let sum = b.iter().fold(0u8, |a, &x| a.wrapping_add(x));
                        for (j, x) in b.iter_mut().enumerate() {
                            *x = sum ^ (j as u8);
                        }
                    }
                });
                finals.push(bufs.into_iter().map(|(v, _)| v).collect::<Vec<_>>());
            }
            outcomes.push(finals);
        }
        prop_assert_eq!(
            &outcomes[0], &outcomes[1],
            "NRZ and zeroing marshallers must agree byte-for-byte"
        );
    }

    /// Cycle-model cross-check: on the untrusted staging side, the bytes
    /// NRZ elides are exactly the bytes the SDK-faithful marshaller zeroes,
    /// and NRZ itself zeroes nothing.
    #[test]
    fn nrz_elides_exactly_what_zeroing_zeroes(
        dirs in proptest::collection::vec(direction_strategy(), 1..4),
        lens in proptest::collection::vec(64u64..4_096, 1..4),
    ) {
        let params: Vec<String> = dirs.iter().enumerate().map(|(i, d)| {
            let attr = match d {
                Direction::UserCheck => "[user_check]".to_string(),
                d => format!("[{}, size=n{i}]", d.as_edl()),
            };
            format!("{attr} uint8_t* b{i}, size_t n{i}")
        }).collect();
        let src = format!(
            "enclave {{ untrusted {{ void f({}); }}; }};",
            params.join(", ")
        );
        let edl = parse_edl(&src).unwrap();
        let proxies = edger8r(&edl).unwrap();

        let mut ledgers = Vec::new();
        for options in [MarshalOptions::default(), MarshalOptions::nrz()] {
            let mut m = Machine::new(SimConfig::builder().deterministic().build());
            let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
            let bufs: Vec<BufArg> = dirs.iter().zip(lens.iter().cycle()).map(|(_, &len)| {
                BufArg::new(m.alloc_enclave_heap(eid, len, 64).unwrap(), len)
            }).collect();
            let area_base = m.alloc_untrusted(1 << 20, 4096);
            let mut area = StagingArea::untrusted(&m, area_base, 1 << 20);
            stage(
                &mut m, proxies.ocall("f").unwrap(), &bufs, &mut area,
                CallerSide::Trusted, options,
            ).unwrap();
            ledgers.push(area.ledger());
        }

        let (faithful, nrz) = (ledgers[0], ledgers[1]);
        prop_assert_eq!(faithful.elided_bytes(), 0);
        prop_assert_eq!(nrz.zeroed_bytes(), 0);
        prop_assert_eq!(nrz.elided_bytes(), faithful.zeroed_bytes());
    }
}
