//! The MEE integrity tree.
//!
//! The Memory Encryption Engine protects the EPC with an 8-ary counter tree
//! (Gueron, "A Memory Encryption Engine Suitable for General Purpose
//! Processors"). Every 64 B line has a version counter; counters are grouped
//! into nodes, nodes into parent nodes, with the root held on-die. A demand
//! read must walk the tree upward until it finds a node it can trust — one
//! cached inside the MEE — and that walk is what makes encrypted-memory
//! reads increasingly expensive as footprints outgrow the MEE cache (Fig. 6
//! of the paper).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Identity of one integrity-tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId {
    /// Tree level; 0 covers `arity` data lines, each higher level covers
    /// `arity`× more.
    pub level: u8,
    /// Index within the level.
    pub index: u64,
}

/// The tree's static shape plus the per-line version counters that provide
/// anti-rollback protection.
#[derive(Debug, Clone)]
pub struct IntegrityTree {
    arity: u64,
    levels: u8,
    lines: u64,
    versions: HashMap<u64, u64>,
}

impl IntegrityTree {
    /// Builds a tree covering `epc_bytes` of protected memory in 64 B lines.
    ///
    /// # Panics
    ///
    /// Panics if `arity < 2`.
    pub fn new(epc_bytes: u64, arity: u64) -> Self {
        assert!(arity >= 2, "tree arity must be at least 2");
        let lines = epc_bytes / 64;
        let mut levels = 0u8;
        let mut covered = arity;
        while covered < lines {
            covered = covered.saturating_mul(arity);
            levels += 1;
        }
        IntegrityTree {
            arity,
            levels: levels + 1,
            lines,
            versions: HashMap::new(),
        }
    }

    /// Number of levels below the on-die root.
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// The node at `level` covering data line `line` (line index within the
    /// EPC, not a global address).
    pub fn node_for(&self, line: u64, level: u8) -> NodeId {
        let divisor = self.arity.pow(u32::from(level) + 1);
        NodeId {
            level,
            index: line / divisor,
        }
    }

    /// The bottom-to-top path of nodes covering `line`.
    pub fn path(&self, line: u64) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.levels).map(move |lvl| self.node_for(line, lvl))
    }

    /// Current anti-rollback version of a line (0 if never written back).
    pub fn version(&self, line: u64) -> u64 {
        self.versions.get(&line).copied().unwrap_or(0)
    }

    /// Records a write-back of `line`: bumps its counter, as hardware does
    /// when an EPC line leaves the LLC.
    pub fn record_writeback(&mut self, line: u64) -> u64 {
        let v = self.versions.entry(line).or_insert(0);
        *v += 1;
        *v
    }

    /// Verifies that a claimed version matches the tree (the rollback
    /// check). The simulator models tampering by letting tests supply stale
    /// versions.
    pub fn verify_version(&self, line: u64, claimed: u64) -> bool {
        self.version(line) == claimed
    }

    /// Total data lines covered.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_grow_logarithmically() {
        // 93 MB EPC = ~1.5 M lines; 8-ary => 7 levels below the root.
        let t = IntegrityTree::new(93 * 1024 * 1024, 8);
        assert_eq!(t.levels(), 7);
        let small = IntegrityTree::new(4096, 8);
        assert_eq!(small.levels(), 2);
    }

    #[test]
    fn path_is_bottom_up_and_coarsening() {
        let t = IntegrityTree::new(1 << 20, 8);
        let path: Vec<NodeId> = t.path(1000).collect();
        assert_eq!(path.len(), t.levels() as usize);
        assert_eq!(
            path[0],
            NodeId {
                level: 0,
                index: 125
            }
        );
        assert_eq!(
            path[1],
            NodeId {
                level: 1,
                index: 15
            }
        );
        // Indexes shrink monotonically going up.
        for w in path.windows(2) {
            assert!(w[1].index <= w[0].index);
        }
    }

    #[test]
    fn adjacent_lines_share_l0_node() {
        let t = IntegrityTree::new(1 << 20, 8);
        assert_eq!(t.node_for(8, 0), t.node_for(15, 0));
        assert_ne!(t.node_for(8, 0), t.node_for(16, 0));
    }

    #[test]
    fn writeback_bumps_version_monotonically() {
        let mut t = IntegrityTree::new(1 << 20, 8);
        assert_eq!(t.version(7), 0);
        assert_eq!(t.record_writeback(7), 1);
        assert_eq!(t.record_writeback(7), 2);
        assert!(t.verify_version(7, 2));
        assert!(!t.verify_version(7, 1), "stale version must be rejected");
    }
}
