//! The Memory Encryption Engine cost model.
//!
//! Every LLC miss whose target lies in the EPC passes through the MEE: the
//! line is decrypted and its integrity verified against the counter tree
//! ([`IntegrityTree`]), walking upward until a node hits the MEE-internal
//! cache ([`MeeCache`]). Writes are encrypted on eviction and bump version
//! counters. The per-event costs come from [`MeeConfig`].

mod integrity_tree;
mod mee_cache;

pub use integrity_tree::{IntegrityTree, NodeId};
pub use mee_cache::{MeeCache, Replacement};

use crate::config::MeeConfig;
use crate::cycles::Cycles;

/// Whether an access reached DRAM as part of a sequential run (prefetchable)
/// or as an isolated demand miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Next line of an ongoing sequential sweep; crypto overlaps with
    /// prefetch.
    Streamed,
    /// Isolated (random) demand miss; full decrypt + verify latency is
    /// exposed.
    Demand,
}

/// The engine: tree + node cache + cost parameters.
#[derive(Debug, Clone)]
pub struct Mee {
    tree: IntegrityTree,
    cache: MeeCache,
    config: MeeConfig,
}

impl Mee {
    /// Builds the MEE protecting `epc_bytes` of memory. The node cache uses
    /// deterministic pseudo-random replacement (see [`Replacement`]).
    pub fn new(epc_bytes: u64, config: MeeConfig) -> Self {
        Mee {
            tree: IntegrityTree::new(epc_bytes, config.arity),
            cache: MeeCache::with_policy(config.cache_entries, Replacement::Random(0x4D45_4531)),
            config,
        }
    }

    /// Walks the tree for `line` (EPC-relative line index) until a node
    /// hits the MEE cache; installs missed nodes. Returns the number of
    /// node fetches performed.
    fn walk(&mut self, line: u64) -> u64 {
        let mut fetched = 0;
        let path: Vec<NodeId> = self.tree.path(line).collect();
        for node in path {
            if self.cache.probe(node) {
                break;
            }
            self.cache.insert(node);
            fetched += 1;
        }
        fetched
    }

    /// Cost the MEE adds to a *load* of an EPC line that missed the LLC.
    pub fn load_cost(&mut self, line: u64, pattern: AccessPattern) -> Cycles {
        let fetched = self.walk(line);
        let crypto = match pattern {
            AccessPattern::Streamed => self.config.crypto_stream,
            AccessPattern::Demand => self.config.crypto_load,
        };
        Cycles::new(crypto + fetched * self.config.node_fetch)
    }

    /// Cost the MEE adds when an EPC line is *written back* from the LLC
    /// (encryption + counter update). Bumps the line's version counter.
    pub fn writeback_cost(&mut self, line: u64, pattern: AccessPattern) -> Cycles {
        self.tree.record_writeback(line);
        let cost = match pattern {
            // Streamed write-backs pipeline behind the eviction itself.
            AccessPattern::Streamed => self.config.crypto_writeback,
            AccessPattern::Demand => self.config.crypto_writeback + self.config.store_extra,
        };
        // Counter updates hit the just-walked nodes; charge at most one
        // refresh fetch if the L0 node fell out meanwhile.
        let refresh = if self.cache.probe(self.tree.node_for(line, 0)) {
            0
        } else {
            self.cache.insert(self.tree.node_for(line, 0));
            self.config.node_fetch
        };
        Cycles::new(cost + refresh)
    }

    /// Extra cost a demand *store* (RFO) to EPC pays over a demand load.
    pub fn store_fill_extra(&self) -> Cycles {
        Cycles::new(self.config.store_extra)
    }

    /// Read access to the integrity tree (tests, paging MAC verification).
    pub fn tree(&self) -> &IntegrityTree {
        &self.tree
    }

    /// MEE cache statistics: (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Clears the node cache (machine reset; the version tree survives, as
    /// counters live in protected DRAM, not in the cache).
    pub fn reset_cache(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn mee() -> Mee {
        Mee::new(93 * 1024 * 1024, SimConfig::default().mee)
    }

    #[test]
    fn repeated_loads_of_same_region_get_cheaper() {
        let mut m = mee();
        let first = m.load_cost(0, AccessPattern::Demand);
        let second = m.load_cost(1, AccessPattern::Demand);
        // Line 1 shares the L0 node with line 0: walk terminates instantly.
        assert!(second < first);
        assert_eq!(second, Cycles::new(SimConfig::default().mee.crypto_load));
    }

    #[test]
    fn cold_walk_fetches_whole_path() {
        let mut m = mee();
        let cfg = SimConfig::default().mee;
        let cost = m.load_cost(0, AccessPattern::Demand);
        let levels = u64::from(m.tree().levels());
        assert_eq!(cost, Cycles::new(cfg.crypto_load + levels * cfg.node_fetch));
    }

    #[test]
    fn large_footprint_walks_longer_than_small() {
        let cfg = SimConfig::default().mee;
        // Small footprint: 32 lines (2 KB), repeat twice; second sweep warm.
        let mut m = mee();
        for l in 0..32 {
            m.load_cost(l, AccessPattern::Streamed);
        }
        let small: u64 = (0..32)
            .map(|l| m.load_cost(l, AccessPattern::Streamed).get())
            .sum();
        // Large footprint: 512 lines (32 KB), second sweep still thrashes.
        let mut m2 = mee();
        for l in 0..512 {
            m2.load_cost(l, AccessPattern::Streamed);
        }
        let large: u64 = (0..512)
            .map(|l| m2.load_cost(l, AccessPattern::Streamed).get())
            .sum();
        let small_per_line = small as f64 / 32.0;
        let large_per_line = large as f64 / 512.0;
        assert!(
            large_per_line > small_per_line,
            "MEE cost/line must grow with footprint: {small_per_line} vs {large_per_line}"
        );
        assert!(small_per_line >= cfg.crypto_stream as f64);
    }

    #[test]
    fn writeback_bumps_versions() {
        let mut m = mee();
        m.writeback_cost(42, AccessPattern::Streamed);
        m.writeback_cost(42, AccessPattern::Demand);
        assert_eq!(m.tree().version(42), 2);
    }

    #[test]
    fn streamed_cheaper_than_demand() {
        let mut m = mee();
        // Warm the path first so both probes see identical tree state.
        m.load_cost(100, AccessPattern::Demand);
        let streamed = m.load_cost(100, AccessPattern::Streamed);
        let demand = m.load_cost(100, AccessPattern::Demand);
        assert!(streamed < demand);
    }
}
