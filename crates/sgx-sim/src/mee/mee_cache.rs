//! The MEE's internal cache of integrity-tree nodes.
//!
//! A small fully-associative LRU. Its capacity is the lever that reproduces
//! the paper's footprint-dependent read overhead: working sets whose
//! level-0 node count fits keep tree walks one probe long; larger working
//! sets thrash the cache and force multi-level walks on every miss.

use super::integrity_tree::NodeId;

/// Victim selection policy for the MEE node cache.
///
/// Hardware caches of this kind typically use a cheap pseudo-random or
/// not-recently-used policy; random replacement also degrades *gradually*
/// as the working set outgrows capacity, which is the behaviour Fig. 6 of
/// the paper exhibits. LRU is available for unit tests and experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// True least-recently-used.
    Lru,
    /// Pseudo-random victim (deterministic, seeded).
    Random(u64),
}

/// Fully-associative cache of tree-node identities.
#[derive(Debug, Clone)]
pub struct MeeCache {
    entries: Vec<(NodeId, u64)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    policy: Replacement,
    rng_state: u64,
}

impl MeeCache {
    /// Creates a cache holding `capacity` nodes with LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — the root is held on-die, but a
    /// zero-entry node cache cannot terminate walks below the root.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, Replacement::Lru)
    }

    /// Creates a cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_policy(capacity: usize, policy: Replacement) -> Self {
        assert!(capacity > 0, "MEE cache capacity must be positive");
        let seed = match policy {
            Replacement::Random(s) => s | 1,
            Replacement::Lru => 1,
        };
        MeeCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            policy,
            rng_state: seed,
        }
    }

    /// SplitMix64 step for deterministic random victim selection.
    fn next_rand(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Probes for a node; refreshes its LRU position on hit.
    pub fn probe(&mut self, node: NodeId) -> bool {
        self.tick += 1;
        if let Some(entry) = self.entries.iter_mut().find(|(n, _)| *n == node) {
            entry.1 = self.tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Installs a node, evicting the LRU entry if full.
    pub fn insert(&mut self, node: NodeId) {
        self.tick += 1;
        if let Some(entry) = self.entries.iter_mut().find(|(n, _)| *n == node) {
            entry.1 = self.tick;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((node, self.tick));
            return;
        }
        let tick = self.tick;
        match self.policy {
            Replacement::Lru => {
                let lru = self
                    .entries
                    .iter_mut()
                    .min_by_key(|(_, t)| *t)
                    .expect("cache is full, hence non-empty");
                *lru = (node, tick);
            }
            Replacement::Random(_) => {
                let victim = (self.next_rand() as usize) % self.entries.len();
                self.entries[victim] = (node, tick);
            }
        }
    }

    /// Drops everything (machine reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(level: u8, index: u64) -> NodeId {
        NodeId { level, index }
    }

    #[test]
    fn probe_miss_then_hit() {
        let mut c = MeeCache::new(4);
        assert!(!c.probe(node(0, 1)));
        c.insert(node(0, 1));
        assert!(c.probe(node(0, 1)));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = MeeCache::new(2);
        c.insert(node(0, 1));
        c.insert(node(0, 2));
        c.probe(node(0, 1)); // 2 becomes LRU
        c.insert(node(0, 3));
        assert!(c.probe(node(0, 1)));
        assert!(!c.probe(node(0, 2)));
        assert!(c.probe(node(0, 3)));
    }

    #[test]
    fn levels_are_distinct_namespaces() {
        let mut c = MeeCache::new(4);
        c.insert(node(0, 5));
        assert!(!c.probe(node(1, 5)));
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = MeeCache::new(2);
        c.insert(node(0, 1));
        c.insert(node(0, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = MeeCache::new(0);
    }

    #[test]
    fn random_policy_degrades_gradually() {
        // Cyclic sweep over a working set slightly larger than capacity:
        // LRU gets 0% hits, random replacement keeps a substantial fraction.
        let capacity = 32;
        let working_set = 40u64;
        let sweep = |mut c: MeeCache| {
            for _ in 0..50 {
                for i in 0..working_set {
                    if !c.probe(node(0, i)) {
                        c.insert(node(0, i));
                    }
                }
            }
            let (h, m) = c.stats();
            h as f64 / (h + m) as f64
        };
        let lru_rate = sweep(MeeCache::with_policy(capacity, Replacement::Lru));
        let rnd_rate = sweep(MeeCache::with_policy(capacity, Replacement::Random(7)));
        assert!(lru_rate < 0.01, "LRU thrashes cyclic sweeps: {lru_rate}");
        assert!(
            rnd_rate > 0.3 && rnd_rate < 0.95,
            "random replacement hits partially: {rnd_rate}"
        );
    }

    #[test]
    fn random_policy_is_deterministic() {
        let run = || {
            let mut c = MeeCache::with_policy(4, Replacement::Random(99));
            let mut hits = 0;
            for i in 0..1000u64 {
                if c.probe(node(0, i % 9)) {
                    hits += 1;
                } else {
                    c.insert(node(0, i % 9));
                }
            }
            hits
        };
        assert_eq!(run(), run());
    }
}
