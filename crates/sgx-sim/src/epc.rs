//! Enclave Page Cache residency and paging (EWB / ELDU).
//!
//! Enclaves commit pages from a virtual EPC window larger than the physical
//! EPC. When residency exceeds physical capacity, a victim page is evicted
//! with `EWB` — encrypted, MACed and versioned into regular RAM — and must
//! be restored with `ELDU` on the next touch. A working set slightly larger
//! than the 93 MB EPC (libquantum's 96 MB) therefore thrashes, reproducing
//! the paper's 5.2× slowdown.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::config::PagingConfig;
use crate::crypto::{hmac_sha256, verify_tag, DIGEST_LEN};
use crate::cycles::Cycles;
use crate::error::{Result, SgxError};
use crate::mem::{Addr, AddrRange, BumpAllocator, EPC_WINDOW, PAGE_SIZE, PRM_BASE};

/// Outcome of touching an EPC page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTouch {
    /// Cycles charged for paging activity (zero when the page was resident).
    pub cost: Cycles,
    /// Did the touch trigger an ELDU (page-in)?
    pub paged_in: bool,
    /// Did making room trigger an EWB (page-out) of a victim?
    pub evicted: Option<u64>,
}

#[derive(Debug, Clone)]
struct SwappedPage {
    version: u64,
    mac: [u8; DIGEST_LEN],
}

/// Counters for paging activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EpcStats {
    /// Pages evicted (EWB executions).
    pub ewb: u64,
    /// Pages restored (ELDU executions).
    pub eldu: u64,
    /// Page touches that found the page resident.
    pub resident_hits: u64,
    /// Total cycles charged to paging (fault overhead + ELDU + EWB), the
    /// numerator of any paging-cost-per-byte rate an adaptive chunker
    /// watches.
    pub paging_cycles: u64,
}

/// The EPC manager: committed pages, physical residency, FIFO eviction, and
/// the EWB/ELDU protocol with versioned MACs.
#[derive(Debug, Clone)]
pub struct Epc {
    allocator: BumpAllocator,
    committed: HashMap<u64, u64>, // page number -> owning enclave id
    resident: HashSet<u64>,
    fifo: VecDeque<u64>,
    swapped: HashMap<u64, SwappedPage>,
    next_version: u64,
    capacity_pages: u64,
    paging_key: [u8; DIGEST_LEN],
    config: PagingConfig,
    stats: EpcStats,
}

impl Epc {
    /// Builds an EPC with the physical capacity from `config`.
    pub fn new(config: PagingConfig) -> Self {
        Epc {
            allocator: BumpAllocator::new(AddrRange::new(
                Addr::new(PRM_BASE),
                Addr::new(PRM_BASE + EPC_WINDOW),
            )),
            committed: HashMap::new(),
            resident: HashSet::new(),
            fifo: VecDeque::new(),
            swapped: HashMap::new(),
            next_version: 1,
            capacity_pages: config.epc_bytes / PAGE_SIZE,
            paging_key: [0xA5; DIGEST_LEN],
            config,
            stats: EpcStats::default(),
        }
    }

    /// Physical capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Currently resident pages.
    pub fn resident_pages(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Paging statistics so far.
    pub fn stats(&self) -> EpcStats {
        self.stats
    }

    /// Commits `pages` contiguous pages for enclave `enclave_id` (the EADD
    /// path). The pages start resident; committing may evict other pages.
    /// Returns the base address and the paging cost incurred.
    pub fn commit(&mut self, enclave_id: u64, pages: u64) -> Result<(Addr, Cycles)> {
        let base = self
            .allocator
            .alloc(pages * PAGE_SIZE, PAGE_SIZE)
            .ok_or(SgxError::EnclaveRangeExhausted)?;
        let mut cost = Cycles::ZERO;
        for i in 0..pages {
            let page = base.offset(i * PAGE_SIZE).page();
            self.committed.insert(page, enclave_id);
            let (c, _victim) = self.make_resident(page)?;
            cost += c;
        }
        self.stats.paging_cycles += cost.get();
        Ok((base, cost))
    }

    /// Is this page committed to an enclave?
    pub fn is_committed(&self, page: u64) -> bool {
        self.committed.contains_key(&page)
    }

    /// Touches a committed page: pages it in if swapped out, evicting a
    /// victim if the EPC is full.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::NotEnclaveMemory`] for uncommitted pages and
    /// [`SgxError::ReportMacMismatch`] if a swapped page's MAC fails (which
    /// would mean the untrusted OS tampered with the evicted image).
    pub fn touch(&mut self, page: u64) -> Result<PageTouch> {
        if !self.committed.contains_key(&page) {
            return Err(SgxError::NotEnclaveMemory(Addr::new(page * PAGE_SIZE)));
        }
        if self.resident.contains(&page) {
            self.stats.resident_hits += 1;
            return Ok(PageTouch {
                cost: Cycles::ZERO,
                paged_in: false,
                evicted: None,
            });
        }
        // Page fault path: kernel overhead + ELDU (+ EWB for the victim).
        let mut cost = Cycles::new(self.config.fault_overhead);

        if let Some(swapped) = self.swapped.remove(&page) {
            let expected = self.page_mac(page, swapped.version);
            if !verify_tag(&expected, &swapped.mac) {
                return Err(SgxError::ReportMacMismatch);
            }
        }
        cost += Cycles::new(self.config.eldu);
        self.stats.eldu += 1;

        let (make_cost, evicted) = self.make_resident(page)?;
        cost += make_cost;
        self.stats.paging_cycles += cost.get();
        Ok(PageTouch {
            cost,
            paged_in: true,
            evicted,
        })
    }

    /// Inserts `page` into the resident set, evicting the FIFO victim if
    /// the EPC is at capacity. Returns the EWB cost (zero if no eviction)
    /// and the victim page, if any.
    fn make_resident(&mut self, page: u64) -> Result<(Cycles, Option<u64>)> {
        let mut cost = Cycles::ZERO;
        let mut evicted = None;
        if self.resident.len() as u64 >= self.capacity_pages {
            let victim = loop {
                let candidate = self.fifo.pop_front().ok_or(SgxError::EpcExhausted)?;
                if self.resident.contains(&candidate) {
                    break candidate;
                }
            };
            self.resident.remove(&victim);
            let version = self.next_version;
            self.next_version += 1;
            let mac = self.page_mac(victim, version);
            self.swapped.insert(victim, SwappedPage { version, mac });
            self.stats.ewb += 1;
            cost += Cycles::new(self.config.ewb);
            evicted = Some(victim);
        }
        self.resident.insert(page);
        self.fifo.push_back(page);
        Ok((cost, evicted))
    }

    fn page_mac(&self, page: u64, version: u64) -> [u8; DIGEST_LEN] {
        let mut msg = [0u8; 16];
        msg[..8].copy_from_slice(&page.to_le_bytes());
        msg[8..].copy_from_slice(&version.to_le_bytes());
        hmac_sha256(&self.paging_key, &msg)
    }

    /// Test hook: corrupt the stored MAC of a swapped-out page, modelling an
    /// OS that tampers with the evicted image.
    #[doc(hidden)]
    pub fn corrupt_swapped_page(&mut self, page: u64) -> bool {
        if let Some(s) = self.swapped.get_mut(&page) {
            s.mac[0] ^= 0xFF;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_epc(pages: u64) -> Epc {
        Epc::new(PagingConfig {
            epc_bytes: pages * PAGE_SIZE,
            ewb: 7_000,
            eldu: 7_000,
            fault_overhead: 5_000,
        })
    }

    #[test]
    fn commit_within_capacity_is_free_of_paging() {
        let mut epc = small_epc(8);
        let (base, cost) = epc.commit(1, 4).unwrap();
        assert_eq!(cost, Cycles::ZERO);
        assert_eq!(epc.resident_pages(), 4);
        assert!(epc.is_committed(base.page()));
    }

    #[test]
    fn touch_resident_page_is_free() {
        let mut epc = small_epc(8);
        let (base, _) = epc.commit(1, 2).unwrap();
        let t = epc.touch(base.page()).unwrap();
        assert_eq!(t.cost, Cycles::ZERO);
        assert!(!t.paged_in);
    }

    #[test]
    fn overcommit_triggers_thrash() {
        let mut epc = small_epc(4);
        let (base, commit_cost) = epc.commit(1, 6).unwrap();
        assert!(commit_cost > Cycles::ZERO, "commit beyond capacity evicts");
        // Sweep all 6 pages repeatedly: every touch of a non-resident page
        // pays fault + ELDU + EWB.
        let mut paged_in = 0;
        for round in 0..3 {
            for i in 0..6 {
                let t = epc.touch(base.offset(i * PAGE_SIZE).page()).unwrap();
                if t.paged_in {
                    paged_in += 1;
                    assert!(t.cost >= Cycles::new(5_000 + 7_000), "round {round}");
                }
            }
        }
        assert!(paged_in >= 6, "FIFO sweep over capacity must thrash");
        assert!(epc.stats().ewb > 0 && epc.stats().eldu > 0);
    }

    #[test]
    fn working_set_within_capacity_never_pages_after_warmup() {
        let mut epc = small_epc(8);
        let (base, _) = epc.commit(1, 8).unwrap();
        for _ in 0..5 {
            for i in 0..8 {
                let t = epc.touch(base.offset(i * PAGE_SIZE).page()).unwrap();
                assert!(!t.paged_in);
            }
        }
        assert_eq!(epc.stats().ewb, 0);
    }

    #[test]
    fn uncommitted_page_rejected() {
        let mut epc = small_epc(4);
        assert!(matches!(
            epc.touch(12345),
            Err(SgxError::NotEnclaveMemory(_))
        ));
    }

    #[test]
    fn tampered_swapped_page_fails_mac() {
        let mut epc = small_epc(2);
        let (base, _) = epc.commit(1, 4).unwrap();
        // Pages 0,1 were evicted during commit of 2,3; but those early
        // evictions happen before any swap image exists. Force a real swap:
        let first = base.page();
        // Touch page 0 -> evicts page 2 (FIFO), creating a swap image.
        epc.touch(first).unwrap();
        let swapped: Vec<u64> = epc.swapped.keys().copied().collect();
        let victim = swapped[0];
        assert!(epc.corrupt_swapped_page(victim));
        assert_eq!(epc.touch(victim), Err(SgxError::ReportMacMismatch));
    }

    #[test]
    fn stats_count_events() {
        let mut epc = small_epc(2);
        let (base, _) = epc.commit(1, 3).unwrap();
        for i in 0..3 {
            epc.touch(base.offset(i * PAGE_SIZE).page()).unwrap();
        }
        let s = epc.stats();
        assert!(s.ewb >= 1);
        assert!(s.eldu >= 1);
    }

    #[test]
    fn paging_cycles_sum_every_charged_fault() {
        let mut epc = small_epc(2);
        let (base, commit_cost) = epc.commit(1, 3).unwrap();
        assert_eq!(epc.stats().paging_cycles, commit_cost.get());
        let mut charged = commit_cost.get();
        for i in 0..3 {
            charged += epc
                .touch(base.offset(i * PAGE_SIZE).page())
                .unwrap()
                .cost
                .get();
        }
        assert_eq!(epc.stats().paging_cycles, charged);
        // A resident working set charges nothing more.
        let mut small = small_epc(8);
        let (b, _) = small.commit(1, 4).unwrap();
        small.touch(b.page()).unwrap();
        assert_eq!(small.stats().paging_cycles, 0);
    }
}
