//! The simulated machine: one virtual core, the cache hierarchy, the MEE,
//! the EPC, and every enclave. This is the facade the SDK layer, HotCalls,
//! applications and benchmarks drive.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::attest::{Report, REPORT_DATA_LEN};
use crate::cache::{Hierarchy, ServedBy};
use crate::config::SimConfig;
use crate::crypto::DIGEST_LEN;
use crate::cycles::{Clock, Cycles};
use crate::enclave::{Enclave, EnclaveId, EnclaveState, Measurement, PageType, Secs, Tcs};
use crate::epc::{Epc, EpcStats};
use crate::error::{Result, SgxError};
use crate::mee::{AccessPattern, Mee};
use crate::mem::{Addr, AddrRange, AddressSpace, PAGE_SIZE, PRM_BASE};
use crate::seal::{self, SealError, SealPolicy, SealedBlob};
use crate::tlb::Tlb;

/// Kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read (load).
    Load,
    /// Write (store).
    Store,
}

/// Sizing of an enclave produced by [`Machine::build_enclave`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnclaveBuildOptions {
    /// Bytes of trusted code (rounded up to pages).
    pub code_bytes: u64,
    /// Bytes of secure heap.
    pub heap_bytes: u64,
    /// Bytes of trusted stack per TCS.
    pub stack_bytes_per_tcs: u64,
    /// Number of Thread Control Structures.
    pub tcs_count: usize,
}

impl Default for EnclaveBuildOptions {
    fn default() -> Self {
        EnclaveBuildOptions {
            code_bytes: 64 * 1024,
            heap_bytes: 4 * 1024 * 1024,
            stack_bytes_per_tcs: 64 * 1024,
            tcs_count: 4,
        }
    }
}

/// Result of a timed measurement (see [`Machine::measure`]), mirroring the
/// paper's RDTSCP methodology including AEX detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measured {
    /// Elapsed virtual cycles, including harness overhead and jitter.
    pub cycles: Cycles,
    /// Whether an Asynchronous Exit contaminated the run (the paper
    /// discards such measurements).
    pub aex: bool,
}

/// A snapshot of every model component's counters — the observability
/// surface for debugging cost anomalies and writing ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Telemetry {
    /// L1 data cache (hits, misses).
    pub l1: (u64, u64),
    /// L2 cache (hits, misses).
    pub l2: (u64, u64),
    /// Last-level cache (hits, misses).
    pub llc: (u64, u64),
    /// TLB (hits, misses).
    pub tlb: (u64, u64),
    /// MEE node cache (hits, misses).
    pub mee_cache: (u64, u64),
    /// EPC paging statistics.
    pub epc: EpcStats,
    /// Asynchronous exits observed (injected + sampled).
    pub aex_events: u64,
}

impl Telemetry {
    /// Overall hit rate of one (hits, misses) pair.
    pub fn hit_rate(pair: (u64, u64)) -> f64 {
        let total = pair.0 + pair.1;
        if total == 0 {
            0.0
        } else {
            pair.0 as f64 / total as f64
        }
    }
}

/// One-time lifecycle instruction costs (not on any hot path the paper
/// times, so plain constants rather than configuration).
const ECREATE_COST: u64 = 10_000;
const EADD_COST_PER_PAGE: u64 = 1_500;
const EEXTEND_COST_PER_CHUNK: u64 = 90;
const EINIT_COST: u64 = 50_000;
const EREPORT_COST: u64 = 4_000;
const EAUG_COST_PER_PAGE: u64 = 1_900;
const EACCEPT_COST: u64 = 2_400;

/// The simulated machine.
///
/// # Examples
///
/// ```
/// use sgx_sim::{Machine, SimConfig, EnclaveBuildOptions};
///
/// # fn main() -> Result<(), sgx_sim::SgxError> {
/// let mut m = Machine::new(SimConfig::default());
/// let eid = m.build_enclave(EnclaveBuildOptions::default())?;
/// let tcs = 0;
/// m.eenter(eid, tcs)?;
/// m.eexit(eid, tcs)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Machine {
    config: SimConfig,
    clock: Clock,
    rng: StdRng,
    caches: Hierarchy,
    mee: Mee,
    epc: Epc,
    space: AddressSpace,
    enclaves: BTreeMap<u64, Enclave>,
    next_enclave: u64,
    last_miss_line: Option<u64>,
    master_secret: [u8; DIGEST_LEN],
    /// Untrusted lines the entry/exit paths touch (ocall table, saved AVX
    /// state, untrusted stack).
    untrusted_entry_lines: Vec<Addr>,
    tlb: Tlb,
    aex_events: u64,
    seal_nonce: u64,
    /// Pages added with EAUG but not yet EACCEPTed (SGX2 dynamic memory).
    pending_pages: std::collections::HashSet<u64>,
}

impl Machine {
    /// Creates a machine from a configuration.
    pub fn new(config: SimConfig) -> Self {
        let mut space = AddressSpace::new();
        let untrusted_entry_lines = {
            let base = space
                .alloc_regular(config.entry.regular_lines_touched * 64, 64)
                .expect("fresh arena cannot be exhausted");
            (0..config.entry.regular_lines_touched)
                .map(|i| base.offset(i * 64))
                .collect()
        };
        let mut seed_bytes = [0u8; 32];
        seed_bytes[..8].copy_from_slice(&config.seed.to_le_bytes());
        let mut master_secret = [0u8; DIGEST_LEN];
        master_secret[..8].copy_from_slice(&config.seed.to_le_bytes());
        master_secret[8] = 0x42;
        Machine {
            tlb: Tlb::new(config.tlb_entries),
            caches: Hierarchy::new(&config),
            mee: Mee::new(config.paging.epc_bytes, config.mee),
            epc: Epc::new(config.paging),
            space,
            enclaves: BTreeMap::new(),
            next_enclave: 1,
            last_miss_line: None,
            master_secret,
            untrusted_entry_lines,
            aex_events: 0,
            seal_nonce: 0,
            pending_pages: std::collections::HashSet::new(),
            rng: StdRng::from_seed(seed_bytes),
            clock: Clock::new(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current virtual time.
    pub fn now(&self) -> Cycles {
        self.clock.now()
    }

    /// Advances virtual time by `cost` (pure compute, no memory traffic).
    pub fn charge(&mut self, cost: Cycles) {
        self.clock.advance(cost);
    }

    /// Executes RDTSCP: charges its cost and returns the new timestamp.
    pub fn rdtscp(&mut self) -> Cycles {
        self.charge(Cycles::new(self.config.rdtscp / 2));
        self.now()
    }

    /// Attempts RDTSCP while executing inside an enclave. On SGX1
    /// production hardware this is illegal — "running RDTSCP inside the
    /// enclave generates a fault" (paper §3.1) — so the attempt #UDs,
    /// triggering an Asynchronous Exit. This is why all of the paper's
    /// measurements bracket whole round trips from the untrusted side.
    ///
    /// # Errors
    ///
    /// Always fails: [`SgxError::NotEntered`] if the TCS is not executing,
    /// otherwise [`SgxError::InvalidState`] after charging the AEX.
    pub fn rdtscp_in_enclave(&mut self, eid: EnclaveId, tcs: usize) -> Result<Cycles> {
        let busy = self
            .enclave(eid)?
            .tcs
            .get(tcs)
            .ok_or(SgxError::NoSuchTcs(tcs))?
            .busy;
        if !busy {
            return Err(SgxError::NotEntered);
        }
        self.inject_aex(eid, tcs)?;
        Err(SgxError::InvalidState {
            op: "RDTSCP",
            state: "executing in-enclave (SGX1 forbids the TSC family)",
        })
    }

    /// Executes MFENCE.
    pub fn mfence(&mut self) {
        self.charge(Cycles::new(self.config.mfence));
    }

    /// Executes PAUSE (spin-loop hint).
    pub fn pause(&mut self) {
        self.charge(Cycles::new(self.config.pause));
    }

    /// Allocates untrusted (plaintext) memory.
    ///
    /// # Panics
    ///
    /// Panics if the 1 GB untrusted arena is exhausted.
    pub fn alloc_untrusted(&mut self, size: u64, align: u64) -> Addr {
        self.space
            .alloc_regular(size, align)
            .expect("untrusted arena exhausted")
    }

    /// Allocates from an enclave's secure heap.
    ///
    /// # Errors
    ///
    /// Fails if the enclave does not exist or its heap is exhausted.
    pub fn alloc_enclave_heap(&mut self, eid: EnclaveId, size: u64, align: u64) -> Result<Addr> {
        self.enclave_mut(eid)?.alloc_heap(size, align)
    }

    /// Is the address inside the (virtual) EPC window?
    pub fn is_enclave_addr(&self, addr: Addr) -> bool {
        self.space.is_epc(addr)
    }

    /// SDK boundary check: entire span strictly outside enclave memory.
    pub fn span_outside_epc(&self, addr: Addr, len: u64) -> bool {
        self.space.span_outside_epc(addr, len)
    }

    /// SDK boundary check: entire span strictly inside enclave memory.
    pub fn span_in_epc(&self, addr: Addr, len: u64) -> bool {
        self.space.span_in_epc(addr, len)
    }

    /// Reads `len` bytes starting at `addr`, charging the cache/MEE model.
    /// Returns the cost (also already charged to the clock).
    ///
    /// # Errors
    ///
    /// Fails if the span touches EPC pages not committed to any enclave.
    pub fn read(&mut self, addr: Addr, len: u64) -> Result<Cycles> {
        self.access_span(addr, len, AccessKind::Load)
    }

    /// Writes `len` bytes starting at `addr`; see [`Machine::read`].
    ///
    /// # Errors
    ///
    /// Fails if the span touches EPC pages not committed to any enclave.
    pub fn write(&mut self, addr: Addr, len: u64) -> Result<Cycles> {
        self.access_span(addr, len, AccessKind::Store)
    }

    fn access_span(&mut self, addr: Addr, len: u64, kind: AccessKind) -> Result<Cycles> {
        if len == 0 {
            return Ok(Cycles::ZERO);
        }
        let line_size = self.caches.line_size();
        let first = addr.get() / line_size;
        let last = (addr.get() + len - 1) / line_size;
        let mut total = Cycles::ZERO;
        for line in first..=last {
            total += self.access_line(Addr::new(line * line_size), kind)?;
        }
        Ok(total)
    }

    /// One line-granular access through the full model.
    fn access_line(&mut self, line_addr: Addr, kind: AccessKind) -> Result<Cycles> {
        let line = line_addr.get() / self.caches.line_size();
        let mut tlb_cost = Cycles::ZERO;
        if !self.tlb.touch(line_addr.page()) {
            tlb_cost = Cycles::new(self.config.tlb_miss);
        }
        let served = self.caches.access_line(line);
        let cost = tlb_cost
            + match served {
                ServedBy::L1 | ServedBy::L2 | ServedBy::Llc => {
                    let latency = self
                        .caches
                        .hit_latency(served)
                        .expect("hit levels have latencies");
                    Cycles::new(latency)
                }
                ServedBy::Memory => self.miss_cost(line_addr, line, kind)?,
            };
        if kind == AccessKind::Store {
            self.caches.mark_dirty(line);
        }
        self.charge(cost);
        Ok(cost)
    }

    /// Cost of a miss that reached DRAM, split by region and pattern.
    ///
    /// Loads expose full DRAM (+MEE) latency. Store misses are absorbed by
    /// the store buffer: they cost only a few cycles here, and the real
    /// write-back price is charged when the line is forced out with
    /// `clflush` — exactly how the paper's write benchmark observes it.
    fn miss_cost(&mut self, line_addr: Addr, line: u64, kind: AccessKind) -> Result<Cycles> {
        let streamed = self.last_miss_line == Some(line.wrapping_sub(1));
        self.last_miss_line = Some(line);
        let pattern = if streamed {
            AccessPattern::Streamed
        } else {
            AccessPattern::Demand
        };

        let mut cost = Cycles::ZERO;
        let in_epc = self.space.is_epc(line_addr);
        if in_epc {
            // SGX2: an EAUGed page is unusable until the enclave accepts it.
            if self.pending_pages.contains(&line_addr.page()) {
                return Err(SgxError::PageNotAccepted(line_addr));
            }
            // Residency first: a paged-out page costs a fault + ELDU (+EWB).
            // Page faults cannot be hidden by the store buffer.
            let touch = self.epc.touch(line_addr.page())?;
            cost += touch.cost;
        }

        match kind {
            AccessKind::Load => {
                cost += match pattern {
                    AccessPattern::Streamed => Cycles::new(self.config.dram_stream),
                    AccessPattern::Demand => Cycles::new(self.config.dram_random),
                };
                if in_epc {
                    let epc_line = (line_addr.get() - PRM_BASE) / 64;
                    cost += self.mee.load_cost(epc_line, pattern);
                }
                // Per-miss jitter (row buffer, scheduling).
                if self.config.noise.per_miss_jitter > 0 && pattern == AccessPattern::Demand {
                    let j = self.rng.gen_range(0..=self.config.noise.per_miss_jitter);
                    cost += Cycles::new(j);
                }
            }
            AccessKind::Store => {
                cost += Cycles::new(self.config.store_buffer);
            }
        }
        Ok(cost)
    }

    /// Cost of forcing a dirty line out to memory.
    fn writeback_cost(&mut self, line_addr: Addr, pattern: AccessPattern) -> Cycles {
        let mut cost = match pattern {
            AccessPattern::Streamed => Cycles::new(self.config.writeback_stream),
            AccessPattern::Demand => Cycles::new(self.config.writeback_demand),
        };
        if self.space.is_epc(line_addr) {
            let epc_line = (line_addr.get() - PRM_BASE) / 64;
            // Demand write-backs already carry the MEE's store_extra inside
            // `Mee::writeback_cost`.
            cost += self.mee.writeback_cost(epc_line, pattern);
        }
        if self.config.noise.per_miss_jitter > 0 && pattern == AccessPattern::Demand {
            let j = self.rng.gen_range(0..=self.config.noise.per_miss_jitter);
            cost += Cycles::new(j);
        }
        cost
    }

    /// Flushes the line containing `addr` from the whole hierarchy, paying
    /// the demand write-back price if it was dirty.
    pub fn clflush(&mut self, addr: Addr) {
        let line = addr.get() / self.caches.line_size();
        self.caches.clflush(addr.get());
        if self.caches.clear_dirty(line) {
            let wb = self.writeback_cost(addr, AccessPattern::Demand);
            self.charge(wb);
        }
        self.charge(Cycles::new(5));
    }

    /// Flushes every line of `[addr, addr+len)`, paying streamed write-back
    /// costs for dirty lines (the write benchmark's flush loop).
    pub fn clflush_span(&mut self, addr: Addr, len: u64) {
        let line_size = self.caches.line_size();
        let first = addr.get() / line_size;
        let last = (addr.get() + len.max(1) - 1) / line_size;
        for line in first..=last {
            self.caches.clflush(line * line_size);
            if self.caches.clear_dirty(line) {
                let wb = self.writeback_cost(Addr::new(line * line_size), AccessPattern::Streamed);
                self.charge(wb);
            }
        }
        self.charge(Cycles::new(5 * (last - first + 1)));
    }

    /// Flushes the entire cache hierarchy *and* the MEE node cache — the
    /// paper's cold-cache setup (flushing 8 MB of LLC displaces the MEE's
    /// internal state too).
    pub fn flush_all_caches(&mut self) {
        self.caches.flush_all();
        self.mee.reset_cache();
        self.tlb.flush();
        self.last_miss_line = None;
    }

    /// Breaks the streaming-detector state (call between independent
    /// experiments so one sweep does not appear to continue another).
    pub fn reset_stream_detector(&mut self) {
        self.last_miss_line = None;
    }

    // ----- Enclave lifecycle -------------------------------------------------

    /// ECREATE: allocates the SECS and opens a building enclave with `pages`
    /// regular pages of committed span (code + data + heap + stacks).
    ///
    /// # Errors
    ///
    /// Fails if the EPC virtual window is exhausted.
    pub fn ecreate(&mut self, pages: u64) -> Result<EnclaveId> {
        let id = EnclaveId(self.next_enclave);
        // SECS page + requested pages.
        let (base, paging_cost) = self.epc.commit(id.0, pages + 1)?;
        self.charge(paging_cost + Cycles::new(ECREATE_COST));
        let secs = Secs {
            addr: base,
            base: base.offset(PAGE_SIZE),
            size: pages * PAGE_SIZE,
        };
        // The heap is carved later by `build_enclave`; raw ecreate leaves the
        // whole span heap-addressable after its first page of entry code.
        let heap = AddrRange::new(
            base.offset(2 * PAGE_SIZE),
            base.offset((pages + 1) * PAGE_SIZE),
        );
        let enclave = Enclave::new(id, secs, heap, base.offset(PAGE_SIZE));
        self.enclaves.insert(id.0, enclave);
        self.next_enclave += 1;
        Ok(id)
    }

    /// EADD + implicit EEXTENDs: measures `content` into the enclave at
    /// `offset` pages from its base.
    ///
    /// # Errors
    ///
    /// Fails if the enclave does not exist or is already initialized.
    pub fn eadd(
        &mut self,
        eid: EnclaveId,
        page_offset: u64,
        page_type: PageType,
        content: &[u8],
    ) -> Result<Addr> {
        let enclave = self
            .enclaves
            .get_mut(&eid.0)
            .ok_or(SgxError::NoSuchEnclave(eid.0))?;
        enclave.record_eadd(page_offset * PAGE_SIZE, page_type)?;
        let chunks = content.chunks(256);
        let mut n_chunks = 0u64;
        for (i, chunk) in chunks.enumerate() {
            enclave.record_eextend(page_offset * PAGE_SIZE + i as u64 * 256, chunk)?;
            n_chunks += 1;
        }
        let addr = enclave.secs.base.offset(page_offset * PAGE_SIZE);
        self.charge(Cycles::new(
            EADD_COST_PER_PAGE + n_chunks * EEXTEND_COST_PER_CHUNK,
        ));
        Ok(addr)
    }

    /// Registers a TCS (and its SSA + stack region) with the enclave.
    ///
    /// # Errors
    ///
    /// Fails if the enclave does not exist or is initialized.
    pub fn add_tcs(&mut self, eid: EnclaveId, tcs: Tcs) -> Result<usize> {
        let enclave = self
            .enclaves
            .get_mut(&eid.0)
            .ok_or(SgxError::NoSuchEnclave(eid.0))?;
        if enclave.state != EnclaveState::Building {
            return Err(SgxError::InvalidState {
                op: "EADD(TCS)",
                state: enclave.state.name(),
            });
        }
        enclave.tcs.push(tcs);
        Ok(enclave.tcs.len() - 1)
    }

    /// EINIT: finalizes the measurement; the enclave becomes enterable.
    ///
    /// # Errors
    ///
    /// Fails if the enclave does not exist or was already initialized.
    pub fn einit(&mut self, eid: EnclaveId) -> Result<Measurement> {
        self.charge(Cycles::new(EINIT_COST));
        self.enclave_mut(eid)?.initialize()
    }

    /// Convenience: full ECREATE/EADD/EEXTEND/EINIT flow with a standard
    /// layout (entry trampoline, code, per-TCS SSA+stack, heap).
    ///
    /// # Errors
    ///
    /// Propagates any lifecycle failure.
    pub fn build_enclave(&mut self, opts: EnclaveBuildOptions) -> Result<EnclaveId> {
        let code_pages = opts.code_bytes.div_ceil(PAGE_SIZE).max(1);
        let stack_pages = opts.stack_bytes_per_tcs.div_ceil(PAGE_SIZE).max(1);
        let heap_pages = opts.heap_bytes.div_ceil(PAGE_SIZE).max(1);
        let per_tcs_pages = 1 + 2 + stack_pages; // TCS + 2 SSA pages + stack
        let total = 1 + code_pages + opts.tcs_count as u64 * per_tcs_pages + heap_pages;

        let eid = self.ecreate(total)?;
        let base = self.enclave(eid)?.secs.base;

        // Entry trampoline + code.
        for p in 0..code_pages {
            // Synthetic deterministic "code" so measurements are stable.
            let content = [0x90u8; 256];
            self.eadd(eid, 1 + p, PageType::Regular, &content)?;
        }
        // TCS areas.
        let mut next_page = 1 + code_pages;
        for _ in 0..opts.tcs_count {
            let tcs_addr = base.offset(next_page * PAGE_SIZE);
            self.eadd(eid, next_page, PageType::Tcs, &[])?;
            let ssa = base.offset((next_page + 1) * PAGE_SIZE);
            self.eadd(eid, next_page + 1, PageType::Regular, &[])?;
            self.eadd(eid, next_page + 2, PageType::Regular, &[])?;
            let stack = base.offset((next_page + 3) * PAGE_SIZE);
            for sp in 0..stack_pages {
                self.eadd(eid, next_page + 3 + sp, PageType::Regular, &[])?;
            }
            self.add_tcs(
                eid,
                Tcs {
                    addr: tcs_addr,
                    ssa,
                    stack,
                    busy: false,
                    interrupted: false,
                },
            )?;
            next_page += per_tcs_pages;
        }
        // Heap.
        for hp in 0..heap_pages {
            self.eadd(eid, next_page + hp, PageType::Regular, &[])?;
        }
        let heap_range = AddrRange::new(
            base.offset(next_page * PAGE_SIZE),
            base.offset((next_page + heap_pages) * PAGE_SIZE),
        );
        self.enclave_mut(eid)?.set_heap(heap_range);
        self.einit(eid)?;
        Ok(eid)
    }

    /// Immutable access to an enclave.
    ///
    /// # Errors
    ///
    /// Fails if the id is unknown.
    pub fn enclave(&self, eid: EnclaveId) -> Result<&Enclave> {
        self.enclaves
            .get(&eid.0)
            .ok_or(SgxError::NoSuchEnclave(eid.0))
    }

    /// Mutable access to an enclave.
    ///
    /// # Errors
    ///
    /// Fails if the id is unknown.
    pub fn enclave_mut(&mut self, eid: EnclaveId) -> Result<&mut Enclave> {
        self.enclaves
            .get_mut(&eid.0)
            .ok_or(SgxError::NoSuchEnclave(eid.0))
    }

    // ----- Entry / exit -------------------------------------------------------

    /// EENTER on `tcs`: performs the secure context switch into the enclave.
    /// Returns the cycles charged.
    ///
    /// # Errors
    ///
    /// Fails if the enclave is not initialized, the TCS does not exist, or
    /// the TCS is already executing.
    pub fn eenter(&mut self, eid: EnclaveId, tcs: usize) -> Result<Cycles> {
        self.transition(eid, tcs, Transition::Eenter)
    }

    /// EEXIT from `tcs`: the reverse context switch.
    ///
    /// # Errors
    ///
    /// Fails if the enclave/TCS is not currently entered.
    pub fn eexit(&mut self, eid: EnclaveId, tcs: usize) -> Result<Cycles> {
        self.transition(eid, tcs, Transition::Eexit)
    }

    /// ERESUME after an AEX.
    ///
    /// # Errors
    ///
    /// Fails unless the TCS has a preserved SSA frame.
    pub fn eresume(&mut self, eid: EnclaveId, tcs: usize) -> Result<Cycles> {
        self.transition(eid, tcs, Transition::Eresume)
    }

    /// Injects an Asynchronous Exit on a currently executing TCS.
    ///
    /// # Errors
    ///
    /// Fails unless the TCS is busy.
    pub fn inject_aex(&mut self, eid: EnclaveId, tcs: usize) -> Result<Cycles> {
        let c = self.transition(eid, tcs, Transition::Aex)?;
        self.aex_events += 1;
        Ok(c)
    }

    fn transition(&mut self, eid: EnclaveId, tcs: usize, t: Transition) -> Result<Cycles> {
        let start = self.now();
        // Validate state and collect the EPC footprint.
        let footprint = {
            let enclave = self.enclave(eid)?;
            if enclave.state != EnclaveState::Initialized {
                return Err(SgxError::InvalidState {
                    op: t.name(),
                    state: enclave.state.name(),
                });
            }
            enclave.entry_footprint(tcs)?
        };
        {
            let enclave = self.enclave_mut(eid)?;
            let slot = enclave.tcs.get_mut(tcs).ok_or(SgxError::NoSuchTcs(tcs))?;
            match t {
                Transition::Eenter => {
                    if slot.busy {
                        return Err(SgxError::AlreadyEntered);
                    }
                    slot.busy = true;
                }
                Transition::Eexit => {
                    if !slot.busy {
                        return Err(SgxError::NotEntered);
                    }
                    slot.busy = false;
                    slot.interrupted = false;
                }
                Transition::Eresume => {
                    if !slot.interrupted {
                        return Err(SgxError::NotEntered);
                    }
                    slot.interrupted = false;
                }
                Transition::Aex => {
                    if !slot.busy {
                        return Err(SgxError::NotEntered);
                    }
                    slot.interrupted = true;
                }
            }
        }

        let base = match t {
            Transition::Eenter => self.config.entry.eenter_base,
            Transition::Eexit => self.config.entry.eexit_base,
            Transition::Eresume => self.config.entry.eresume_base,
            Transition::Aex => self.config.entry.aex_base,
        };
        self.charge(Cycles::new(base));

        // Microcode memory traffic. EENTER/ERESUME touch the full
        // footprint; EEXIT/AEX rewrite the SSA-and-stack half of it. All
        // accesses expose full latency: the serializing microcode cannot
        // hide its stores in the store buffer.
        let (epc_share, kind) = match t {
            Transition::Eenter | Transition::Eresume => (footprint.len(), AccessKind::Load),
            Transition::Eexit | Transition::Aex => (footprint.len() / 2, AccessKind::Load),
        };
        // The structure lines are demand accesses, not a stream.
        self.reset_stream_detector();
        for addr in footprint.iter().take(epc_share) {
            self.access_line(*addr, kind)?;
            self.reset_stream_detector();
        }
        let untrusted: Vec<Addr> = match t {
            Transition::Eenter | Transition::Eexit => self.untrusted_entry_lines.clone(),
            _ => self.untrusted_entry_lines.iter().take(2).copied().collect(),
        };
        for addr in untrusted {
            self.access_line(addr, AccessKind::Load)?;
            self.reset_stream_detector();
        }
        Ok(self.now() - start)
    }

    // ----- Measurement harness ------------------------------------------------

    /// Times a closure the way the paper does: RDTSCP before and after, a
    /// jitter term, and probabilistic AEX contamination that callers should
    /// discard (reported in [`Measured::aex`]).
    ///
    /// # Errors
    ///
    /// Propagates errors from the closure.
    pub fn measure<F>(&mut self, f: F) -> Result<Measured>
    where
        F: FnOnce(&mut Machine) -> Result<()>,
    {
        let start = self.rdtscp();
        f(self)?;
        let aex = self.config.noise.aex_probability > 0.0
            && self.rng.gen_bool(self.config.noise.aex_probability);
        if aex {
            self.charge(Cycles::new(self.config.noise.aex_penalty));
            self.aex_events += 1;
        }
        if self.config.noise.jitter > 0 {
            let j = self.rng.gen_range(0..=self.config.noise.jitter);
            self.charge(Cycles::new(j));
        }
        let end = self.rdtscp();
        Ok(Measured {
            cycles: end - start,
            aex,
        })
    }

    /// Number of AEX events (injected + sampled) so far.
    pub fn aex_events(&self) -> u64 {
        self.aex_events
    }

    // ----- Attestation ----------------------------------------------------------

    /// EREPORT: produces a MACed report for an initialized enclave.
    ///
    /// # Errors
    ///
    /// Fails if the enclave does not exist or is not initialized.
    pub fn ereport(&mut self, eid: EnclaveId, data: [u8; REPORT_DATA_LEN]) -> Result<Report> {
        self.charge(Cycles::new(EREPORT_COST));
        let m = self
            .enclave(eid)?
            .measurement()
            .ok_or(SgxError::InvalidState {
                op: "EREPORT",
                state: "building",
            })?;
        Ok(Report::create(&self.master_secret, m, data))
    }

    /// Verifies a report produced on this machine (the EGETKEY path).
    pub fn verify_report(&mut self, report: &Report) -> bool {
        self.charge(Cycles::new(EREPORT_COST));
        report.verify(&self.master_secret)
    }

    // ----- SGX2 dynamic memory ---------------------------------------------------

    /// EAUG: adds `pages` fresh EPC pages to an *initialized* enclave
    /// (SGX2 dynamic memory). The pages are PENDING — unusable until the
    /// enclave runs [`Machine::eaccept`] on each.
    ///
    /// # Errors
    ///
    /// Fails if the enclave does not exist, is still building (use EADD),
    /// or the EPC window is exhausted.
    pub fn eaug(&mut self, eid: EnclaveId, pages: u64) -> Result<Addr> {
        let enclave = self.enclave(eid)?;
        if enclave.state != EnclaveState::Initialized {
            return Err(SgxError::InvalidState {
                op: "EAUG",
                state: enclave.state.name(),
            });
        }
        let (base, paging_cost) = self.epc.commit(eid.0, pages)?;
        self.charge(paging_cost + Cycles::new(EAUG_COST_PER_PAGE * pages));
        for p in 0..pages {
            self.pending_pages.insert(base.offset(p * PAGE_SIZE).page());
        }
        Ok(base)
    }

    /// EACCEPT: the enclave accepts one EAUGed page, making it usable.
    ///
    /// # Errors
    ///
    /// Fails if the page was not pending.
    pub fn eaccept(&mut self, _eid: EnclaveId, page_addr: Addr) -> Result<()> {
        if !self.pending_pages.remove(&page_addr.page()) {
            return Err(SgxError::NotEnclaveMemory(page_addr));
        }
        self.charge(Cycles::new(EACCEPT_COST));
        Ok(())
    }

    /// Convenience: EAUG + EACCEPT a whole region, returning its base —
    /// dynamic heap growth as the SGX2 SDK's `sgx_alloc_rsrv_mem` exposes.
    ///
    /// # Errors
    ///
    /// As [`Machine::eaug`] / [`Machine::eaccept`].
    pub fn eaug_accept(&mut self, eid: EnclaveId, pages: u64) -> Result<Addr> {
        let base = self.eaug(eid, pages)?;
        for p in 0..pages {
            self.eaccept(eid, base.offset(p * PAGE_SIZE))?;
        }
        Ok(base)
    }

    // ----- Sealing ---------------------------------------------------------------

    /// Seals `plaintext` for enclave `eid` under `policy` (the SDK's
    /// `sgx_seal_data`). The blob may be stored untrusted and unsealed
    /// after a restart by [`Machine::unseal_data`].
    ///
    /// # Errors
    ///
    /// Fails if the enclave does not exist or is not initialized.
    pub fn seal_data(
        &mut self,
        eid: EnclaveId,
        policy: SealPolicy,
        plaintext: &[u8],
    ) -> Result<SealedBlob> {
        let measurement = self
            .enclave(eid)?
            .measurement()
            .ok_or(SgxError::InvalidState {
                op: "EGETKEY(seal)",
                state: "building",
            })?;
        self.seal_nonce += 1;
        let mut nonce = [0u8; 16];
        nonce[..8].copy_from_slice(&self.seal_nonce.to_le_bytes());
        nonce[8..].copy_from_slice(&eid.0.to_le_bytes());
        // EGETKEY + keystream + MAC: ~5 cycles/byte of crypto.
        self.charge(Cycles::new(2_000 + plaintext.len() as u64 * 5));
        Ok(seal::seal(
            &self.master_secret,
            &measurement,
            policy,
            nonce,
            plaintext,
        ))
    }

    /// Unseals a blob inside enclave `eid`.
    ///
    /// # Errors
    ///
    /// Fails with [`SgxError::ReportMacMismatch`] if the blob was sealed
    /// on another machine, bound to another enclave, or tampered with.
    pub fn unseal_data(&mut self, eid: EnclaveId, blob: &SealedBlob) -> Result<Vec<u8>> {
        let measurement = self
            .enclave(eid)?
            .measurement()
            .ok_or(SgxError::InvalidState {
                op: "EGETKEY(unseal)",
                state: "building",
            })?;
        self.charge(Cycles::new(2_000 + blob.ciphertext.len() as u64 * 5));
        seal::unseal(&self.master_secret, &measurement, blob).map_err(|e: SealError| {
            debug_assert_eq!(e, SealError::MacMismatch);
            SgxError::ReportMacMismatch
        })
    }

    // ----- Statistics -----------------------------------------------------------

    /// EPC paging statistics.
    pub fn epc_stats(&self) -> EpcStats {
        self.epc.stats()
    }

    /// A full counter snapshot across every model component.
    pub fn telemetry(&self) -> Telemetry {
        let [l1, l2, llc] = self.caches.level_stats();
        Telemetry {
            l1,
            l2,
            llc,
            tlb: self.tlb.stats(),
            mee_cache: self.mee.cache_stats(),
            epc: self.epc.stats(),
            aex_events: self.aex_events,
        }
    }

    /// MEE cache statistics: (hits, misses).
    pub fn mee_stats(&self) -> (u64, u64) {
        self.mee.cache_stats()
    }

    /// Samples the per-measurement jitter distribution (exposed for layered
    /// cost models like HotCalls' poll-delay).
    pub fn sample_uniform(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.rng.gen_range(0..=bound)
        }
    }

    /// Samples a boolean with probability `p` (for AEX-like events in
    /// layered models).
    pub fn sample_bool(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen_bool(p)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transition {
    Eenter,
    Eexit,
    Eresume,
    Aex,
}

impl Transition {
    fn name(self) -> &'static str {
        match self {
            Transition::Eenter => "EENTER",
            Transition::Eexit => "EEXIT",
            Transition::Eresume => "ERESUME",
            Transition::Aex => "AEX",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(SimConfig::builder().deterministic().build())
    }

    #[test]
    fn untrusted_reads_hit_after_first_access() {
        let mut m = machine();
        let a = m.alloc_untrusted(4096, 64);
        let first = m.read(a, 64).unwrap();
        let second = m.read(a, 64).unwrap();
        assert!(first > second);
        assert_eq!(second, Cycles::new(m.config().l1.hit_latency));
    }

    #[test]
    fn enclave_reads_cost_more_than_plain_on_miss() {
        let mut m = machine();
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        let enc = m.alloc_enclave_heap(eid, 64, 64).unwrap();
        let plain = m.alloc_untrusted(64, 64);
        // Make both demand misses.
        m.flush_all_caches();
        let enc_cost = m.read(enc, 8).unwrap();
        m.reset_stream_detector();
        let plain_cost = m.read(plain, 8).unwrap();
        assert!(
            enc_cost > plain_cost,
            "EPC read {enc_cost} must exceed plain {plain_cost}"
        );
    }

    #[test]
    fn eenter_requires_initialized_enclave() {
        let mut m = machine();
        let eid = m.ecreate(16).unwrap();
        assert!(matches!(
            m.eenter(eid, 0),
            Err(SgxError::InvalidState { op: "EENTER", .. })
        ));
    }

    #[test]
    fn enter_exit_roundtrip_and_busy_tracking() {
        let mut m = machine();
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        m.eenter(eid, 0).unwrap();
        assert!(matches!(m.eenter(eid, 0), Err(SgxError::AlreadyEntered)));
        m.eexit(eid, 0).unwrap();
        assert!(matches!(m.eexit(eid, 0), Err(SgxError::NotEntered)));
    }

    #[test]
    fn cold_entry_costs_more_than_warm() {
        let mut m = machine();
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        // Warm up.
        for _ in 0..4 {
            m.eenter(eid, 0).unwrap();
            m.eexit(eid, 0).unwrap();
        }
        let warm_start = m.now();
        m.eenter(eid, 0).unwrap();
        m.eexit(eid, 0).unwrap();
        let warm = m.now() - warm_start;

        m.flush_all_caches();
        let cold_start = m.now();
        m.eenter(eid, 0).unwrap();
        m.eexit(eid, 0).unwrap();
        let cold = m.now() - cold_start;
        assert!(
            cold.get() as f64 > warm.get() as f64 * 1.3,
            "cold {cold} must be well above warm {warm}"
        );
    }

    #[test]
    fn aex_then_eresume() {
        let mut m = machine();
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        m.eenter(eid, 0).unwrap();
        assert!(matches!(m.eresume(eid, 0), Err(SgxError::NotEntered)));
        m.inject_aex(eid, 0).unwrap();
        m.eresume(eid, 0).unwrap();
        m.eexit(eid, 0).unwrap();
        assert_eq!(m.aex_events(), 1);
    }

    #[test]
    fn measure_reports_elapsed_cycles() {
        let mut m = machine();
        let r = m
            .measure(|m| {
                m.charge(Cycles::new(1_000));
                Ok(())
            })
            .unwrap();
        assert!(!r.aex);
        assert!(r.cycles >= Cycles::new(1_000));
        assert!(r.cycles < Cycles::new(1_200));
    }

    #[test]
    fn attestation_roundtrip() {
        let mut m = machine();
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        let report = m.ereport(eid, [5u8; REPORT_DATA_LEN]).unwrap();
        assert!(m.verify_report(&report));
        let mut other = Machine::new(SimConfig::builder().seed(999).deterministic().build());
        assert!(!other.verify_report(&report));
    }

    #[test]
    fn overcommitted_heap_pages_thrash() {
        let mut m = Machine::new(
            SimConfig::builder()
                .deterministic()
                .epc_bytes(64 * PAGE_SIZE)
                .build(),
        );
        let eid = m
            .build_enclave(EnclaveBuildOptions {
                code_bytes: PAGE_SIZE,
                heap_bytes: 80 * PAGE_SIZE,
                stack_bytes_per_tcs: PAGE_SIZE,
                tcs_count: 1,
            })
            .unwrap();
        let heap = m
            .alloc_enclave_heap(eid, 70 * PAGE_SIZE, PAGE_SIZE)
            .unwrap();
        // Sweep the heap twice; the second sweep still page-faults.
        for _ in 0..2 {
            for p in 0..70 {
                m.read(heap.offset(p * PAGE_SIZE), 8).unwrap();
            }
        }
        assert!(m.epc_stats().eldu > 0, "overcommit must trigger paging");
    }

    #[test]
    fn uncommitted_epc_access_is_rejected() {
        let mut m = machine();
        let err = m.read(Addr::new(PRM_BASE + (1 << 29)), 8);
        assert!(matches!(err, Err(SgxError::NotEnclaveMemory(_))));
    }
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;

    #[test]
    fn telemetry_counts_every_component() {
        let mut m = Machine::new(SimConfig::builder().deterministic().build());
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        let enc = m.alloc_enclave_heap(eid, 4096, 64).unwrap();
        m.read(enc, 4096).unwrap();
        m.read(enc, 4096).unwrap(); // warm pass
        let t = m.telemetry();
        assert!(t.l1.0 > 0, "warm pass must hit L1");
        assert!(t.llc.1 > 0, "cold pass must miss LLC");
        assert!(t.tlb.1 > 0, "first touch misses the TLB");
        assert!(t.mee_cache.0 + t.mee_cache.1 > 0, "EPC reads walk the tree");
        assert!(Telemetry::hit_rate(t.l1) > 0.0);
        assert_eq!(Telemetry::hit_rate((0, 0)), 0.0);
    }

    #[test]
    fn sealing_roundtrip_via_machine() {
        let mut m = Machine::new(SimConfig::builder().deterministic().build());
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        let blob = m
            .seal_data(eid, crate::seal::SealPolicy::MrEnclave, b"machine secret")
            .unwrap();
        assert_eq!(m.unseal_data(eid, &blob).unwrap(), b"machine secret");
        // Sealing charges virtual time (EGETKEY + crypto).
        let before = m.now();
        let _ = m.seal_data(eid, crate::seal::SealPolicy::MrEnclave, &[0u8; 4096]);
        assert!((m.now() - before).get() > 4_000);
        // Unsealing inside a building enclave is rejected.
        let building = m.ecreate(16).unwrap();
        assert!(matches!(
            m.unseal_data(building, &blob),
            Err(SgxError::InvalidState { .. })
        ));
    }
}

#[cfg(test)]
mod sgx2_tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(SimConfig::builder().deterministic().build())
    }

    #[test]
    fn eaug_requires_initialized_enclave() {
        let mut m = machine();
        let building = m.ecreate(16).unwrap();
        assert!(matches!(
            m.eaug(building, 4),
            Err(SgxError::InvalidState { op: "EAUG", .. })
        ));
    }

    #[test]
    fn pending_pages_fault_until_accepted() {
        let mut m = machine();
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        let grown = m.eaug(eid, 2).unwrap();
        assert!(matches!(
            m.read(grown, 8),
            Err(SgxError::PageNotAccepted(_))
        ));
        m.eaccept(eid, grown).unwrap();
        m.read(grown, 8).unwrap();
        // Second page still pending.
        assert!(matches!(
            m.write(grown.offset(PAGE_SIZE), 8),
            Err(SgxError::PageNotAccepted(_))
        ));
        m.eaccept(eid, grown.offset(PAGE_SIZE)).unwrap();
        m.write(grown.offset(PAGE_SIZE), 8).unwrap();
    }

    #[test]
    fn eaccept_of_unaugmented_page_fails() {
        let mut m = machine();
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        let heap = m.alloc_enclave_heap(eid, 4096, 4096).unwrap();
        assert!(m.eaccept(eid, heap).is_err());
    }

    #[test]
    fn dynamic_growth_integrates_with_paging() {
        use crate::mem::PAGE_SIZE as PS;
        let mut m = Machine::new(
            SimConfig::builder()
                .deterministic()
                .epc_bytes(64 * PS)
                .build(),
        );
        let eid = m
            .build_enclave(EnclaveBuildOptions {
                code_bytes: PS,
                heap_bytes: 8 * PS,
                stack_bytes_per_tcs: PS,
                tcs_count: 1,
            })
            .unwrap();
        // Grow well past physical capacity; the new pages page like any
        // others.
        let grown = m.eaug_accept(eid, 80).unwrap();
        for p in 0..80 {
            m.read(grown.offset(p * PS), 8).unwrap();
        }
        assert!(m.epc_stats().ewb > 0, "overgrowth must page");
    }
}

#[cfg(test)]
mod rdtscp_tests {
    use super::*;

    #[test]
    fn rdtscp_inside_enclave_faults_with_aex() {
        let mut m = Machine::new(SimConfig::builder().deterministic().build());
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        m.eenter(eid, 0).unwrap();
        let before_aex = m.aex_events();
        let err = m.rdtscp_in_enclave(eid, 0).unwrap_err();
        assert!(matches!(err, SgxError::InvalidState { op: "RDTSCP", .. }));
        assert_eq!(m.aex_events(), before_aex + 1);
        // The enclave can resume and exit normally afterwards.
        m.eresume(eid, 0).unwrap();
        m.eexit(eid, 0).unwrap();
    }

    #[test]
    fn rdtscp_outside_enclave_is_fine_and_in_idle_tcs_is_not_entered() {
        let mut m = Machine::new(SimConfig::builder().deterministic().build());
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        let _ = m.rdtscp(); // untrusted RDTSCP always works
        assert!(matches!(
            m.rdtscp_in_enclave(eid, 0),
            Err(SgxError::NotEntered)
        ));
    }
}
