//! Local attestation: EREPORT / report verification.
//!
//! A report binds an enclave's measurement and 64 bytes of caller-chosen
//! data under a MAC keyed by the processor's report key (derived from the
//! fused master secret). The simulator uses HMAC-SHA-256 in place of the
//! hardware CMAC; the protocol shape is the same.

use crate::crypto::{derive_key, hmac_sha256, verify_tag, DIGEST_LEN};
use crate::enclave::Measurement;

/// Caller-supplied data bound into a report (hash of a public key, nonce,
/// etc.).
pub const REPORT_DATA_LEN: usize = 64;

/// An attestation report produced by [`crate::machine::Machine::ereport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Measurement of the reporting enclave.
    pub measurement: Measurement,
    /// Caller-chosen payload.
    pub report_data: [u8; REPORT_DATA_LEN],
    /// MAC over measurement and data.
    pub mac: [u8; DIGEST_LEN],
}

impl Report {
    /// Computes the MAC input for a report body.
    fn mac_message(measurement: &Measurement, data: &[u8; REPORT_DATA_LEN]) -> Vec<u8> {
        let mut msg = Vec::with_capacity(DIGEST_LEN + REPORT_DATA_LEN);
        msg.extend_from_slice(measurement.as_ref());
        msg.extend_from_slice(data);
        msg
    }

    /// Creates a MACed report. Used by the machine's EREPORT path.
    pub(crate) fn create(
        master_secret: &[u8; DIGEST_LEN],
        measurement: Measurement,
        report_data: [u8; REPORT_DATA_LEN],
    ) -> Report {
        let key = derive_key(master_secret, "report", b"");
        let mac = hmac_sha256(&key, &Self::mac_message(&measurement, &report_data));
        Report {
            measurement,
            report_data,
            mac,
        }
    }

    /// Verifies the report against a processor master secret (the EGETKEY
    /// path run by a verifying enclave on the same machine).
    pub(crate) fn verify(&self, master_secret: &[u8; DIGEST_LEN]) -> bool {
        let key = derive_key(master_secret, "report", b"");
        let expected = hmac_sha256(
            &key,
            &Self::mac_message(&self.measurement, &self.report_data),
        );
        verify_tag(&expected, &self.mac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement() -> Measurement {
        Measurement([7u8; DIGEST_LEN])
    }

    #[test]
    fn roundtrip_verifies() {
        let master = [3u8; DIGEST_LEN];
        let r = Report::create(&master, measurement(), [9u8; REPORT_DATA_LEN]);
        assert!(r.verify(&master));
    }

    #[test]
    fn wrong_machine_rejects() {
        let r = Report::create(&[3u8; DIGEST_LEN], measurement(), [0u8; REPORT_DATA_LEN]);
        assert!(!r.verify(&[4u8; DIGEST_LEN]));
    }

    #[test]
    fn tampered_data_rejects() {
        let master = [3u8; DIGEST_LEN];
        let mut r = Report::create(&master, measurement(), [0u8; REPORT_DATA_LEN]);
        r.report_data[5] ^= 1;
        assert!(!r.verify(&master));
    }

    #[test]
    fn tampered_measurement_rejects() {
        let master = [3u8; DIGEST_LEN];
        let mut r = Report::create(&master, measurement(), [0u8; REPORT_DATA_LEN]);
        r.measurement.0[0] ^= 1;
        assert!(!r.verify(&master));
    }
}
