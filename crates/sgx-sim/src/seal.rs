//! Data sealing (the `EGETKEY` + `sgx_seal_data` path of the real SDK).
//!
//! Sealing lets an enclave encrypt data under a key derived from the
//! processor's fused master secret and (optionally) its own measurement,
//! so the blob can live in untrusted storage and survive restarts. Two
//! policies mirror the SDK's:
//!
//! * [`SealPolicy::MrEnclave`] — only the *identical* enclave can unseal;
//! * [`SealPolicy::AnyEnclave`] — any enclave on the same processor can
//!   unseal (the simulator's stand-in for `MRSIGNER`, which would need a
//!   signing-identity scheme the paper does not exercise).
//!
//! The cipher is a SHA-256-based counter-mode keystream with an
//! HMAC-SHA-256 tag (encrypt-then-MAC) — the protocol shape of AES-GCM
//! sealing without external crypto dependencies.

use serde::{Deserialize, Serialize};

use crate::crypto::{derive_key, hmac_sha256, verify_tag, Sha256, DIGEST_LEN};
use crate::enclave::Measurement;

/// Who may unseal a blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SealPolicy {
    /// Bound to the exact enclave measurement.
    MrEnclave,
    /// Bound only to the processor.
    AnyEnclave,
}

/// A sealed blob, safe to hand to untrusted storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    /// Sealing policy recorded in the (authenticated) header.
    pub policy: SealPolicy,
    /// Measurement the key was bound to (zeroed under `AnyEnclave`).
    pub bound_measurement: [u8; DIGEST_LEN],
    /// Nonce for the keystream.
    pub nonce: [u8; 16],
    /// Encrypted payload.
    pub ciphertext: Vec<u8>,
    /// HMAC over header + ciphertext.
    pub mac: [u8; DIGEST_LEN],
}

/// Errors from unsealing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// The MAC did not verify: wrong processor, wrong enclave, or a
    /// tampered blob.
    MacMismatch,
}

impl core::fmt::Display for SealError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SealError::MacMismatch => write!(f, "sealed blob failed authentication"),
        }
    }
}

impl std::error::Error for SealError {}

fn seal_key(
    master: &[u8; DIGEST_LEN],
    policy: SealPolicy,
    measurement: &Measurement,
) -> ([u8; DIGEST_LEN], [u8; DIGEST_LEN], [u8; DIGEST_LEN]) {
    let bound = match policy {
        SealPolicy::MrEnclave => measurement.0,
        SealPolicy::AnyEnclave => [0u8; DIGEST_LEN],
    };
    let enc = derive_key(master, "seal-enc", &bound);
    let mac = derive_key(master, "seal-mac", &bound);
    (enc, mac, bound)
}

fn keystream_xor(key: &[u8; DIGEST_LEN], nonce: &[u8; 16], data: &mut [u8]) {
    for (block_idx, chunk) in data.chunks_mut(DIGEST_LEN).enumerate() {
        let mut h = Sha256::new();
        h.update(key);
        h.update(nonce);
        h.update(&(block_idx as u64).to_le_bytes());
        let ks = h.finalize();
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

fn blob_mac(mac_key: &[u8; DIGEST_LEN], blob: &SealedBlob) -> [u8; DIGEST_LEN] {
    let mut msg = Vec::with_capacity(1 + DIGEST_LEN + 16 + blob.ciphertext.len());
    msg.push(match blob.policy {
        SealPolicy::MrEnclave => 1,
        SealPolicy::AnyEnclave => 2,
    });
    msg.extend_from_slice(&blob.bound_measurement);
    msg.extend_from_slice(&blob.nonce);
    msg.extend_from_slice(&blob.ciphertext);
    hmac_sha256(mac_key, &msg)
}

/// Seals `plaintext` under the machine's `master` secret for the enclave
/// with `measurement`. `nonce` must be unique per blob (the machine
/// supplies a counter-derived one).
pub(crate) fn seal(
    master: &[u8; DIGEST_LEN],
    measurement: &Measurement,
    policy: SealPolicy,
    nonce: [u8; 16],
    plaintext: &[u8],
) -> SealedBlob {
    let (enc_key, mac_key, bound) = seal_key(master, policy, measurement);
    let mut ciphertext = plaintext.to_vec();
    keystream_xor(&enc_key, &nonce, &mut ciphertext);
    let mut blob = SealedBlob {
        policy,
        bound_measurement: bound,
        nonce,
        ciphertext,
        mac: [0u8; DIGEST_LEN],
    };
    blob.mac = blob_mac(&mac_key, &blob);
    blob
}

/// Unseals a blob for the enclave with `measurement` on the machine with
/// `master`.
///
/// # Errors
///
/// [`SealError::MacMismatch`] if the blob was sealed on another machine,
/// for another enclave (under `MrEnclave` policy), or was modified.
pub(crate) fn unseal(
    master: &[u8; DIGEST_LEN],
    measurement: &Measurement,
    blob: &SealedBlob,
) -> Result<Vec<u8>, SealError> {
    let (enc_key, mac_key, _) = seal_key(master, blob.policy, measurement);
    let expected = blob_mac(&mac_key, blob);
    if !verify_tag(&expected, &blob.mac) {
        return Err(SealError::MacMismatch);
    }
    let mut plaintext = blob.ciphertext.clone();
    keystream_xor(&enc_key, &blob.nonce, &mut plaintext);
    Ok(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(x: u8) -> Measurement {
        Measurement([x; DIGEST_LEN])
    }

    #[test]
    fn roundtrip_mrenclave() {
        let master = [9u8; DIGEST_LEN];
        let blob = seal(
            &master,
            &m(1),
            SealPolicy::MrEnclave,
            [7; 16],
            b"secret state",
        );
        assert_ne!(blob.ciphertext, b"secret state");
        let out = unseal(&master, &m(1), &blob).unwrap();
        assert_eq!(out, b"secret state");
    }

    #[test]
    fn other_enclave_cannot_unseal_mrenclave_blob() {
        let master = [9u8; DIGEST_LEN];
        let blob = seal(&master, &m(1), SealPolicy::MrEnclave, [7; 16], b"x");
        assert_eq!(unseal(&master, &m(2), &blob), Err(SealError::MacMismatch));
    }

    #[test]
    fn any_enclave_policy_is_machine_wide() {
        let master = [9u8; DIGEST_LEN];
        let blob = seal(&master, &m(1), SealPolicy::AnyEnclave, [7; 16], b"shared");
        assert_eq!(unseal(&master, &m(2), &blob).unwrap(), b"shared");
    }

    #[test]
    fn other_machine_cannot_unseal() {
        let blob = seal(&[1u8; 32], &m(1), SealPolicy::AnyEnclave, [7; 16], b"x");
        assert_eq!(
            unseal(&[2u8; 32], &m(1), &blob),
            Err(SealError::MacMismatch)
        );
    }

    #[test]
    fn tampering_detected_everywhere() {
        let master = [9u8; DIGEST_LEN];
        let clean = seal(&master, &m(1), SealPolicy::MrEnclave, [7; 16], &[5u8; 100]);
        let mut t = clean.clone();
        t.ciphertext[50] ^= 1;
        assert!(unseal(&master, &m(1), &t).is_err());
        let mut t = clean.clone();
        t.nonce[0] ^= 1;
        assert!(unseal(&master, &m(1), &t).is_err());
        let mut t = clean.clone();
        t.policy = SealPolicy::AnyEnclave;
        assert!(unseal(&master, &m(1), &t).is_err());
        assert!(unseal(&master, &m(1), &clean).is_ok());
    }

    #[test]
    fn distinct_nonces_give_distinct_ciphertexts() {
        let master = [9u8; DIGEST_LEN];
        let a = seal(&master, &m(1), SealPolicy::MrEnclave, [1; 16], b"same");
        let b = seal(&master, &m(1), SealPolicy::MrEnclave, [2; 16], b"same");
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let master = [3u8; DIGEST_LEN];
        let blob = seal(&master, &m(1), SealPolicy::MrEnclave, [0; 16], b"");
        assert_eq!(unseal(&master, &m(1), &blob).unwrap(), Vec::<u8>::new());
    }
}
