//! Enclave state: control structures, measurement, layout, and the memory
//! footprint of entry/exit transitions.
//!
//! The [`crate::machine::Machine`] owns enclaves and drives their lifecycle;
//! this module holds the per-enclave bookkeeping.

mod measurement;
mod structures;

pub use measurement::{Measurement, MeasurementBuilder};
pub use structures::{EnclaveState, PageType, Secs, Tcs};

use crate::error::{Result, SgxError};
use crate::mem::{Addr, AddrRange, BumpAllocator};

/// Identifier of a simulated enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EnclaveId(pub u64);

impl core::fmt::Display for EnclaveId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "enclave#{}", self.0)
    }
}

/// A fully described enclave instance.
#[derive(Debug, Clone)]
pub struct Enclave {
    /// This enclave's id.
    pub id: EnclaveId,
    /// Lifecycle state.
    pub state: EnclaveState,
    /// Control structure.
    pub secs: Secs,
    /// Thread control structures.
    pub tcs: Vec<Tcs>,
    /// Secure-heap allocator over the committed heap region.
    heap: BumpAllocator,
    builder: Option<MeasurementBuilder>,
    measurement: Option<Measurement>,
    entry_code: Addr,
}

impl Enclave {
    /// Creates the bookkeeping for a freshly ECREATEd enclave.
    ///
    /// `base`/`size` describe the committed EPC span; `heap` the sub-range
    /// reserved for secure-heap allocations; `entry_code` the trampoline
    /// page EENTER jumps through.
    pub fn new(id: EnclaveId, secs: Secs, heap: AddrRange, entry_code: Addr) -> Self {
        let size = secs.size;
        Enclave {
            id,
            state: EnclaveState::Building,
            secs,
            tcs: Vec::new(),
            heap: BumpAllocator::new(heap),
            builder: Some(MeasurementBuilder::ecreate(size)),
            measurement: None,
            entry_code,
        }
    }

    /// Records an EADD into the running measurement.
    ///
    /// # Errors
    ///
    /// Fails if the enclave is already initialized.
    pub fn record_eadd(&mut self, offset: u64, page_type: PageType) -> Result<()> {
        match self.builder.as_mut() {
            Some(b) => {
                b.eadd(offset, page_type);
                Ok(())
            }
            None => Err(SgxError::InvalidState {
                op: "EADD",
                state: self.state.name(),
            }),
        }
    }

    /// Records an EEXTEND chunk into the running measurement.
    ///
    /// # Errors
    ///
    /// Fails if the enclave is already initialized.
    pub fn record_eextend(&mut self, offset: u64, chunk: &[u8]) -> Result<()> {
        match self.builder.as_mut() {
            Some(b) => {
                b.eextend(offset, chunk);
                Ok(())
            }
            None => Err(SgxError::InvalidState {
                op: "EEXTEND",
                state: self.state.name(),
            }),
        }
    }

    /// Finalizes the measurement (EINIT).
    ///
    /// # Errors
    ///
    /// Fails if already initialized.
    pub fn initialize(&mut self) -> Result<Measurement> {
        let builder = self.builder.take().ok_or(SgxError::InvalidState {
            op: "EINIT",
            state: self.state.name(),
        })?;
        let m = builder.finalize();
        self.measurement = Some(m);
        self.state = EnclaveState::Initialized;
        Ok(m)
    }

    /// The finalized measurement, if EINIT has run.
    pub fn measurement(&self) -> Option<Measurement> {
        self.measurement
    }

    /// Replaces the secure-heap range (used by the standard-layout builder
    /// once the final page layout is known).
    pub(crate) fn set_heap(&mut self, range: AddrRange) {
        self.heap = BumpAllocator::new(range);
    }

    /// Allocates from the secure heap.
    ///
    /// # Errors
    ///
    /// Fails with [`SgxError::EnclaveRangeExhausted`] when the heap is full.
    pub fn alloc_heap(&mut self, size: u64, align: u64) -> Result<Addr> {
        self.heap
            .alloc(size, align)
            .ok_or(SgxError::EnclaveRangeExhausted)
    }

    /// Claims a free TCS, returning its index.
    ///
    /// # Errors
    ///
    /// Fails with [`SgxError::TcsBusy`] if every TCS is executing.
    pub fn claim_tcs(&mut self) -> Result<usize> {
        for (i, t) in self.tcs.iter_mut().enumerate() {
            if !t.busy {
                t.busy = true;
                return Ok(i);
            }
        }
        Err(SgxError::TcsBusy)
    }

    /// Releases a TCS claimed by [`Enclave::claim_tcs`].
    ///
    /// # Errors
    ///
    /// Fails if the index is invalid or the TCS was not busy.
    pub fn release_tcs(&mut self, index: usize) -> Result<()> {
        let t = self.tcs.get_mut(index).ok_or(SgxError::NoSuchTcs(index))?;
        if !t.busy {
            return Err(SgxError::NotEntered);
        }
        t.busy = false;
        t.interrupted = false;
        Ok(())
    }

    /// The cache lines the EENTER/EEXIT microcode touches for `tcs_index`:
    /// SECS (2 lines), TCS (1), SSA frame (2), trusted stack top (2), entry
    /// trampoline code (1). These all live in the EPC, which is why a cold
    /// cache makes enclave transitions so much more expensive (Fig. 2).
    pub fn entry_footprint(&self, tcs_index: usize) -> Result<Vec<Addr>> {
        let t = self
            .tcs
            .get(tcs_index)
            .ok_or(SgxError::NoSuchTcs(tcs_index))?;
        Ok(vec![
            self.secs.addr,
            self.secs.addr.offset(64),
            t.addr,
            t.ssa,
            t.ssa.offset(64),
            t.stack,
            t.stack.offset(64),
            self.entry_code,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::PRM_BASE;

    fn enclave() -> Enclave {
        let base = Addr::new(PRM_BASE);
        let secs = Secs {
            addr: base,
            base,
            size: 64 * 4096,
        };
        let heap = AddrRange::new(base.offset(16 * 4096), base.offset(64 * 4096));
        let mut e = Enclave::new(EnclaveId(1), secs, heap, base.offset(4096));
        e.tcs.push(Tcs {
            addr: base.offset(2 * 4096),
            ssa: base.offset(3 * 4096),
            stack: base.offset(8 * 4096),
            busy: false,
            interrupted: false,
        });
        e
    }

    #[test]
    fn lifecycle_enforced() {
        let mut e = enclave();
        e.record_eadd(0, PageType::Regular).unwrap();
        let m = e.initialize().unwrap();
        assert_eq!(e.measurement(), Some(m));
        assert!(matches!(
            e.record_eadd(4096, PageType::Regular),
            Err(SgxError::InvalidState { op: "EADD", .. })
        ));
        assert!(matches!(
            e.initialize(),
            Err(SgxError::InvalidState { op: "EINIT", .. })
        ));
    }

    #[test]
    fn tcs_claim_and_release() {
        let mut e = enclave();
        let i = e.claim_tcs().unwrap();
        assert_eq!(i, 0);
        assert!(matches!(e.claim_tcs(), Err(SgxError::TcsBusy)));
        e.release_tcs(i).unwrap();
        assert!(e.claim_tcs().is_ok());
    }

    #[test]
    fn release_of_idle_tcs_fails() {
        let mut e = enclave();
        assert!(matches!(e.release_tcs(0), Err(SgxError::NotEntered)));
        assert!(matches!(e.release_tcs(7), Err(SgxError::NoSuchTcs(7))));
    }

    #[test]
    fn heap_allocations_stay_in_heap_range() {
        let mut e = enclave();
        let a = e.alloc_heap(1024, 64).unwrap();
        assert!(a.get() >= PRM_BASE + 16 * 4096);
        let b = e.alloc_heap(1024, 64).unwrap();
        assert!(b.get() >= a.get() + 1024);
    }

    #[test]
    fn entry_footprint_is_ten_distinct_epc_lines() {
        let e = enclave();
        let fp = e.entry_footprint(0).unwrap();
        assert_eq!(fp.len(), 8);
        let mut lines: Vec<u64> = fp.iter().map(|a| a.get() / 64).collect();
        lines.sort_unstable();
        lines.dedup();
        assert_eq!(lines.len(), 8, "footprint lines must be distinct");
    }
}
