//! Enclave measurement (`MRENCLAVE`).
//!
//! The measurement is a running SHA-256 over the enclave-building leaf
//! functions and page contents, finalized at `EINIT`, exactly mirroring the
//! structure (if not the field encodings) of real SGX.

use core::fmt;

use crate::crypto::{Sha256, DIGEST_LEN};

use super::structures::PageType;

/// A finalized enclave measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement(pub [u8; DIGEST_LEN]);

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl AsRef<[u8]> for Measurement {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Accumulates the measurement during enclave construction.
#[derive(Debug, Clone)]
pub struct MeasurementBuilder {
    hasher: Sha256,
}

impl MeasurementBuilder {
    /// Starts a measurement for an enclave of `size` bytes (the ECREATE
    /// contribution).
    pub fn ecreate(size: u64) -> Self {
        let mut hasher = Sha256::new();
        hasher.update(b"ECREATE");
        hasher.update(&size.to_le_bytes());
        MeasurementBuilder { hasher }
    }

    /// Records an EADD of a page at enclave-relative `offset`.
    pub fn eadd(&mut self, offset: u64, page_type: PageType) {
        self.hasher.update(b"EADD");
        self.hasher.update(&offset.to_le_bytes());
        self.hasher.update(&[page_type as u8]);
    }

    /// Records an EEXTEND over a 256-byte chunk of page content.
    pub fn eextend(&mut self, offset: u64, chunk: &[u8]) {
        debug_assert!(chunk.len() <= 256);
        self.hasher.update(b"EEXTEND");
        self.hasher.update(&offset.to_le_bytes());
        self.hasher.update(chunk);
    }

    /// Finalizes at EINIT.
    pub fn finalize(self) -> Measurement {
        Measurement(self.hasher.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_builds_produce_identical_measurements() {
        let build = || {
            let mut m = MeasurementBuilder::ecreate(8192);
            m.eadd(0, PageType::Regular);
            m.eextend(0, &[1u8; 256]);
            m.eadd(4096, PageType::Tcs);
            m.finalize()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn content_changes_measurement() {
        let mut a = MeasurementBuilder::ecreate(4096);
        a.eadd(0, PageType::Regular);
        a.eextend(0, &[1u8; 256]);
        let mut b = MeasurementBuilder::ecreate(4096);
        b.eadd(0, PageType::Regular);
        b.eextend(0, &[2u8; 256]);
        assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn page_order_matters() {
        let mut a = MeasurementBuilder::ecreate(8192);
        a.eadd(0, PageType::Regular);
        a.eadd(4096, PageType::Tcs);
        let mut b = MeasurementBuilder::ecreate(8192);
        b.eadd(4096, PageType::Tcs);
        b.eadd(0, PageType::Regular);
        assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn display_is_hex() {
        let m = MeasurementBuilder::ecreate(0).finalize();
        let s = m.to_string();
        assert_eq!(s.len(), 64);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
