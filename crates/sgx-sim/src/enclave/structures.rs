//! SGX enclave management structures: SECS, TCS, and page typing.

use crate::mem::Addr;

/// Type of a page added to an enclave with EADD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PageType {
    /// SGX Enclave Control Structure (one per enclave, added by ECREATE).
    Secs = 0,
    /// Thread Control Structure — one per concurrently executing thread.
    Tcs = 1,
    /// Regular code/data/heap/stack page.
    Regular = 2,
}

/// Lifecycle state of an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclaveState {
    /// Created; pages may still be added. Cannot be entered.
    Building,
    /// Measurement finalized by EINIT; pages can no longer be added.
    Initialized,
}

impl EnclaveState {
    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            EnclaveState::Building => "building",
            EnclaveState::Initialized => "initialized",
        }
    }
}

/// The SGX Enclave Control Structure.
#[derive(Debug, Clone)]
pub struct Secs {
    /// Address of the SECS page itself (inside the EPC).
    pub addr: Addr,
    /// Base of the enclave's committed range.
    pub base: Addr,
    /// Committed bytes.
    pub size: u64,
}

/// One Thread Control Structure and its associated save area / stack.
#[derive(Debug, Clone)]
pub struct Tcs {
    /// Address of the TCS page.
    pub addr: Addr,
    /// Base of the State Save Area frames for this thread.
    pub ssa: Addr,
    /// Base of the trusted stack for this thread.
    pub stack: Addr,
    /// Is a logical processor currently executing on this TCS?
    pub busy: bool,
    /// Is there a preserved SSA frame (set by AEX, consumed by ERESUME)?
    pub interrupted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_type_discriminants_are_stable() {
        assert_eq!(PageType::Secs as u8, 0);
        assert_eq!(PageType::Tcs as u8, 1);
        assert_eq!(PageType::Regular as u8, 2);
    }

    #[test]
    fn state_names() {
        assert_eq!(EnclaveState::Building.name(), "building");
        assert_eq!(EnclaveState::Initialized.name(), "initialized");
    }
}
