//! # sgx-sim — a cycle-cost simulator of Intel SGX hardware
//!
//! This crate is the hardware substrate of the HotCalls reproduction
//! (Weisse, Bertacco, Austin — *"Regaining Lost Cycles with HotCalls"*,
//! ISCA 2017). Real SGX silicon is unavailable in this environment, so the
//! crate models the *mechanisms* the paper's measurements hinge on:
//!
//! * a Skylake-like **cache hierarchy** (L1D/L2/8 MB LLC) with LRU tag
//!   state, `clflush`, and whole-hierarchy flushes for cold-cache
//!   experiments ([`cache`]);
//! * the **Memory Encryption Engine**: an 8-ary counter/integrity tree over
//!   the EPC plus a small internal node cache whose capacity produces the
//!   footprint-dependent encrypted-read overhead of the paper's Fig. 6
//!   ([`mee`]);
//! * the **Enclave Page Cache** with EWB/ELDU paging and MACed, versioned
//!   swap images — the libquantum cliff of Fig. 8 ([`epc`]);
//! * the **enclave lifecycle** (ECREATE/EADD/EEXTEND/EINIT, measurements,
//!   TCS management) and the EENTER/EEXIT/ERESUME/AEX transitions whose
//!   warm/cold costs reproduce Table 1 rows 1-5 ([`enclave`], [`Machine`]);
//! * **local attestation** reports ([`attest`]).
//!
//! Everything runs in *virtual cycles* on a 4 GHz virtual core; no wall
//! clock is involved, so results are deterministic under a fixed seed.
//!
//! ## Quick start
//!
//! ```
//! use sgx_sim::{Machine, SimConfig, EnclaveBuildOptions};
//!
//! # fn main() -> Result<(), sgx_sim::SgxError> {
//! let mut machine = Machine::new(SimConfig::default());
//! let enclave = machine.build_enclave(EnclaveBuildOptions::default())?;
//!
//! // Time one enclave round trip the way the paper does.
//! let measured = machine.measure(|m| {
//!     m.eenter(enclave, 0)?;
//!     m.eexit(enclave, 0)?;
//!     Ok(())
//! })?;
//! assert!(measured.cycles.get() > 1_000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attest;
pub mod cache;
mod config;
pub mod crypto;
mod cycles;
pub mod enclave;
pub mod epc;
mod error;
pub mod eventloop;
mod machine;
pub mod mee;
pub mod mem;
pub mod seal;
pub mod tlb;
pub mod topology;

pub use attest::{Report, REPORT_DATA_LEN};
pub use config::{
    CacheGeometry, EntryConfig, MeeConfig, NoiseConfig, PagingConfig, SdkCostConfig, SimConfig,
    SimConfigBuilder,
};
pub use cycles::{Clock, CycleFeed, CycleLedger, Cycles};
pub use enclave::{Enclave, EnclaveId, EnclaveState, Measurement, PageType};
pub use epc::EpcStats;
pub use error::{Result, SgxError};
pub use eventloop::{VirtualEpoll, VirtualEvent};
pub use machine::{AccessKind, EnclaveBuildOptions, Machine, Measured, Telemetry};
pub use mem::Addr;
pub use seal::{SealError, SealPolicy, SealedBlob};
pub use topology::{Placement, Topology, TransferCosts};
