//! Error types for the SGX simulator.

use core::fmt;

use crate::mem::Addr;

/// Errors returned by simulated SGX leaf functions and memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SgxError {
    /// The referenced enclave id does not exist.
    NoSuchEnclave(u64),
    /// The enclave is not in the state required for the operation (e.g.
    /// `EADD` after `EINIT`, or `EENTER` before `EINIT`).
    InvalidState {
        /// Operation that was attempted.
        op: &'static str,
        /// Human-readable state description.
        state: &'static str,
    },
    /// All Thread Control Structures of the enclave are in use.
    TcsBusy,
    /// The requested TCS index does not exist.
    NoSuchTcs(usize),
    /// The EPC is exhausted and no page could be evicted.
    EpcExhausted,
    /// The enclave's virtual range is exhausted.
    EnclaveRangeExhausted,
    /// An address was expected to fall inside enclave memory but does not.
    NotEnclaveMemory(Addr),
    /// An address was expected to fall outside enclave memory but does not.
    NotUntrustedMemory(Addr),
    /// Attestation report verification failed.
    ReportMacMismatch,
    /// An EAUGed page was touched before the enclave EACCEPTed it (SGX2
    /// dynamic memory).
    PageNotAccepted(Addr),
    /// Entering an enclave that is already executing on this TCS.
    AlreadyEntered,
    /// Exiting an enclave that is not currently executing.
    NotEntered,
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::NoSuchEnclave(id) => write!(f, "no enclave with id {id}"),
            SgxError::InvalidState { op, state } => {
                write!(f, "{op} not permitted while enclave is {state}")
            }
            SgxError::TcsBusy => write!(f, "all thread control structures are busy"),
            SgxError::NoSuchTcs(i) => write!(f, "no TCS at index {i}"),
            SgxError::EpcExhausted => write!(f, "enclave page cache exhausted"),
            SgxError::EnclaveRangeExhausted => write!(f, "enclave virtual range exhausted"),
            SgxError::NotEnclaveMemory(a) => {
                write!(f, "address {a} is not inside enclave memory")
            }
            SgxError::NotUntrustedMemory(a) => {
                write!(f, "address {a} is not outside enclave memory")
            }
            SgxError::ReportMacMismatch => write!(f, "report MAC verification failed"),
            SgxError::PageNotAccepted(a) => {
                write!(f, "page at {a} was EAUGed but not yet EACCEPTed")
            }
            SgxError::AlreadyEntered => write!(f, "enclave already entered on this TCS"),
            SgxError::NotEntered => write!(f, "enclave is not currently entered"),
        }
    }
}

impl std::error::Error for SgxError {}

/// Convenience alias for simulator results.
pub type Result<T> = core::result::Result<T, SgxError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs: Vec<SgxError> = vec![
            SgxError::NoSuchEnclave(3),
            SgxError::TcsBusy,
            SgxError::EpcExhausted,
            SgxError::ReportMacMismatch,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SgxError>();
    }
}
