//! Core/NUMA placement and the handoff transfer-cost model.
//!
//! The HotCalls protocol never crosses the enclave boundary on the hot
//! path, so what is left of the per-call cost is *where the two endpoints
//! run*: every mailbox (or ring-slot) handoff moves a cache line from the
//! writer's core to the reader's. On one physical core that transfer is
//! free (same L1/L2); across cores on one socket it is a coherence
//! transfer through the shared LLC; across NUMA nodes it additionally
//! rides the interconnect. This module gives the simulator explicit
//! coordinates for both sides of a channel and a cost table for the three
//! regimes, so lane↔core affinity is *measured* rather than an accident
//! of where the OS happened to schedule the threads.
//!
//! The default cost table keeps the paper's calibration: a cross-core
//! transfer is the 60-cycle coherence hop the ~620-cycle HotCall round
//! trip was fitted with, a same-core handoff is free, and a cross-node
//! hop is 3× the on-socket cost (the usual QPI/UPI multiplier class).

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::cycles::Cycles;

/// Where a thread (a requester lane or a responder) runs: a logical core
/// and the NUMA node that core belongs to.
///
/// Placements are usually minted through [`Topology::place`], which
/// derives the node from the core index; constructing one directly is for
/// tests that want deliberately inconsistent coordinates.
///
/// # Examples
///
/// ```
/// use sgx_sim::{Placement, Topology};
///
/// let topo = Topology::default();
/// let a = topo.place(0);
/// let b = topo.place(1);
/// assert_eq!((a.core, a.node), (0, 0));
/// assert_eq!(b.node, 0, "cores 0..cores_per_node share node 0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placement {
    /// Logical core index.
    pub core: usize,
    /// NUMA node the core belongs to.
    pub node: usize,
}

impl Placement {
    /// A placement with explicit coordinates.
    pub const fn new(core: usize, node: usize) -> Self {
        Placement { core, node }
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}/node{}", self.core, self.node)
    }
}

/// The cycle cost of one cache-line handoff in each placement regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferCosts {
    /// Both sides on the same logical core (shared L1/L2): no coherence
    /// traffic at all — the fused run-to-completion regime.
    pub same_core: Cycles,
    /// Different cores on the same node: one LLC coherence transfer (the
    /// paper's mailbox ping-pong cost).
    pub cross_core: Cycles,
    /// Different NUMA nodes: the coherence transfer plus the interconnect
    /// hop.
    pub cross_node: Cycles,
}

impl Default for TransferCosts {
    fn default() -> Self {
        TransferCosts {
            same_core: Cycles::ZERO,
            cross_core: Cycles::new(60),
            cross_node: Cycles::new(180),
        }
    }
}

/// The machine's core layout plus the handoff cost table.
///
/// # Examples
///
/// ```
/// use sgx_sim::{Cycles, Topology};
///
/// let topo = Topology::default();
/// let requester = topo.place(0);
/// let same = topo.place(0);
/// let sibling = topo.place(1);
/// let remote = topo.place(topo.cores_per_node); // first core of node 1
/// assert_eq!(topo.transfer_cost(requester, same), Cycles::ZERO);
/// assert_eq!(topo.transfer_cost(requester, sibling), Cycles::new(60));
/// assert_eq!(topo.transfer_cost(requester, remote), Cycles::new(180));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Logical cores per NUMA node.
    pub cores_per_node: usize,
    /// NUMA nodes in the machine.
    pub nodes: usize,
    /// Handoff costs for the three placement regimes.
    pub costs: TransferCosts,
}

impl Default for Topology {
    fn default() -> Self {
        // A dual-socket quad-core layout: enough cores that a shard plane
        // can spread over both nodes, matching nothing more specific than
        // "a two-socket server".
        Topology {
            cores_per_node: 4,
            nodes: 2,
            costs: TransferCosts::default(),
        }
    }
}

impl Topology {
    /// Total logical cores in the machine.
    pub fn cores(&self) -> usize {
        self.cores_per_node * self.nodes
    }

    /// The placement of a logical core (node derived by layout; core
    /// indices wrap, so any thread index maps onto a valid core).
    pub fn place(&self, core: usize) -> Placement {
        let core = core % self.cores().max(1);
        Placement {
            core,
            node: core / self.cores_per_node.max(1),
        }
    }

    /// The cycle cost of handing a cache line from `from` to `to`.
    pub fn transfer_cost(&self, from: Placement, to: Placement) -> Cycles {
        if from.core == to.core {
            self.costs.same_core
        } else if from.node == to.node {
            self.costs.cross_core
        } else {
            self.costs.cross_node
        }
    }

    /// The [`crate::CycleLedger`] account a handoff between `from` and
    /// `to` files under.
    pub fn transfer_account(&self, from: Placement, to: Placement) -> &'static str {
        if from.core == to.core {
            "handoff-same-core"
        } else if from.node == to.node {
            "handoff-cross-core"
        } else {
            "handoff-cross-node"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placements_derive_nodes_from_layout() {
        let topo = Topology::default();
        assert_eq!(topo.cores(), 8);
        assert_eq!(topo.place(3), Placement::new(3, 0));
        assert_eq!(topo.place(4), Placement::new(4, 1));
        // Core indices wrap instead of panicking.
        assert_eq!(topo.place(9), Placement::new(1, 0));
    }

    #[test]
    fn transfer_costs_follow_the_three_regimes() {
        let topo = Topology::default();
        let a = topo.place(0);
        assert_eq!(topo.transfer_cost(a, topo.place(0)), Cycles::ZERO);
        assert_eq!(topo.transfer_cost(a, topo.place(2)), Cycles::new(60));
        assert_eq!(topo.transfer_cost(a, topo.place(5)), Cycles::new(180));
        assert_eq!(topo.transfer_account(a, topo.place(0)), "handoff-same-core");
        assert_eq!(
            topo.transfer_account(a, topo.place(2)),
            "handoff-cross-core"
        );
        assert_eq!(
            topo.transfer_account(a, topo.place(5)),
            "handoff-cross-node"
        );
    }

    #[test]
    fn degenerate_layouts_do_not_divide_by_zero() {
        let topo = Topology {
            cores_per_node: 0,
            nodes: 0,
            costs: TransferCosts::default(),
        };
        // A broken layout degrades to "everything on core 0".
        assert_eq!(topo.place(7).core, 0);
    }

    #[test]
    fn display_names_the_coordinates() {
        assert_eq!(Placement::new(2, 1).to_string(), "core2/node1");
    }
}
