//! HMAC-SHA-256 (RFC 2104), built on the local [`Sha256`].
//!
//! Used as the simulator's stand-in for the CMAC the real SGX hardware uses
//! for report MACs, paging MACs (EWB version-array protection) and sealing
//! key derivation. The substitution is documented in DESIGN.md; only the
//! *shape* of the protocol matters for the reproduction.

use super::sha256::{Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Examples
///
/// ```
/// use sgx_sim::crypto::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(tag[0], 0xf7);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let d = Sha256::digest(key);
        k[..DIGEST_LEN].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time-style tag comparison (the simulator does not defend against
/// real timing attacks, but the comparison shape matches hardware behaviour).
pub fn verify_tag(expected: &[u8; DIGEST_LEN], actual: &[u8; DIGEST_LEN]) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

/// Derives a sub-key from a master secret and a labelled context, mirroring
/// SGX's `EGETKEY` key-derivation structure.
pub fn derive_key(master: &[u8; DIGEST_LEN], label: &str, context: &[u8]) -> [u8; DIGEST_LEN] {
    let mut msg = Vec::with_capacity(label.len() + 1 + context.len());
    msg.extend_from_slice(label.as_bytes());
    msg.push(0);
    msg.extend_from_slice(context);
    hmac_sha256(master, &msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_tag_detects_single_bit_flip() {
        let tag = hmac_sha256(b"k", b"m");
        let mut bad = tag;
        bad[13] ^= 0x40;
        assert!(verify_tag(&tag, &tag.clone()));
        assert!(!verify_tag(&tag, &bad));
    }

    #[test]
    fn derived_keys_are_domain_separated() {
        let master = [7u8; DIGEST_LEN];
        let a = derive_key(&master, "seal", b"ctx");
        let b = derive_key(&master, "report", b"ctx");
        let c = derive_key(&master, "seal", b"other");
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Label/context boundary must matter: "se"+"alctx" != "seal"+"ctx".
        let d = derive_key(&master, "se", b"alctx");
        assert_ne!(a, d);
    }
}
