//! Minimal cryptographic primitives for the simulator.
//!
//! Only what the SGX model needs: SHA-256 for measurements, HMAC-SHA-256 as
//! the stand-in for hardware CMACs and key derivation. These are verified
//! against NIST / RFC test vectors but are **not** hardened implementations —
//! they exist so the enclave lifecycle, attestation, and paging protocols can
//! be executed faithfully without external crypto dependencies.

mod hmac;
mod sha256;

pub use hmac::{derive_key, hmac_sha256, verify_tag};
pub use sha256::{Sha256, DIGEST_LEN};
