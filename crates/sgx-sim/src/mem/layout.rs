//! Physical address-space layout of the simulated machine.
//!
//! Two regions matter to the cost model: ordinary DRAM, and the Processor
//! Reserved Memory holding the Enclave Page Cache. The simulator uses
//! identity-mapped addresses (linear == physical), which is sufficient
//! because costs depend only on *which region* a line lives in and on cache
//! state, never on translation itself.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Base of ordinary (untrusted, unencrypted) allocations.
pub const REGULAR_BASE: u64 = 0x0000_1000_0000;
/// Base of the Processor Reserved Memory window.
pub const PRM_BASE: u64 = 0x2000_0000_0000;
/// Size of a page, for EPC management.
pub const PAGE_SIZE: u64 = 4096;

/// A simulated physical/linear address.
///
/// A newtype so enclave code cannot accidentally mix raw integers with
/// addresses the memory model understands.
///
/// # Examples
///
/// ```
/// use sgx_sim::mem::Addr;
///
/// let a = Addr::new(0x1000);
/// assert_eq!(a.offset(0x20).get(), 0x1020);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Raw address value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Address `bytes` beyond this one.
    #[inline]
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }

    /// Page number containing this address.
    #[inline]
    pub const fn page(self) -> u64 {
        self.0 / PAGE_SIZE
    }

    /// Is this address inside the Processor Reserved Memory window?
    #[inline]
    pub const fn is_prm(self) -> bool {
        self.0 >= PRM_BASE
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> u64 {
        a.0
    }
}

/// A half-open address range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddrRange {
    /// Inclusive start.
    pub start: Addr,
    /// Exclusive end.
    pub end: Addr,
}

impl AddrRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: Addr, end: Addr) -> Self {
        assert!(end.get() >= start.get(), "inverted address range");
        AddrRange { start, end }
    }

    /// Range length in bytes.
    pub fn len(&self) -> u64 {
        self.end.get() - self.start.get()
    }

    /// Is the range empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does the range contain `addr`?
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Does the whole `[addr, addr+len)` span fall inside this range?
    pub fn contains_span(&self, addr: Addr, len: u64) -> bool {
        self.contains(addr) && addr.get() + len <= self.end.get()
    }

    /// Does `[addr, addr+len)` overlap this range at all?
    pub fn overlaps_span(&self, addr: Addr, len: u64) -> bool {
        addr.get() < self.end.get() && addr.get() + len > self.start.get()
    }
}

/// A simple bump allocator over an address range.
///
/// The simulator never frees individual allocations (workloads reset the
/// whole machine instead), so bump allocation keeps the layout deterministic
/// and reproducible across runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BumpAllocator {
    range: AddrRange,
    next: u64,
}

impl BumpAllocator {
    /// Creates an allocator over `range`.
    pub fn new(range: AddrRange) -> Self {
        BumpAllocator {
            next: range.start.get(),
            range,
        }
    }

    /// Allocates `size` bytes aligned to `align` (which must be a power of
    /// two). Returns `None` when the range is exhausted.
    pub fn alloc(&mut self, size: u64, align: u64) -> Option<Addr> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let aligned = (self.next + align - 1) & !(align - 1);
        let end = aligned.checked_add(size)?;
        if end > self.range.end.get() {
            return None;
        }
        self.next = end;
        Some(Addr::new(aligned))
    }

    /// Bytes still available (ignoring alignment padding).
    pub fn remaining(&self) -> u64 {
        self.range.end.get() - self.next
    }

    /// The range this allocator hands out addresses from.
    pub fn range(&self) -> AddrRange {
        self.range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_page_and_offset() {
        let a = Addr::new(PAGE_SIZE * 3 + 5);
        assert_eq!(a.page(), 3);
        assert_eq!(a.offset(10).get(), PAGE_SIZE * 3 + 15);
    }

    #[test]
    fn prm_classification() {
        assert!(!Addr::new(REGULAR_BASE).is_prm());
        assert!(Addr::new(PRM_BASE).is_prm());
        assert!(Addr::new(PRM_BASE + 1).is_prm());
    }

    #[test]
    fn range_contains_span() {
        let r = AddrRange::new(Addr::new(100), Addr::new(200));
        assert!(r.contains_span(Addr::new(100), 100));
        assert!(!r.contains_span(Addr::new(150), 51));
        assert!(!r.contains_span(Addr::new(99), 1));
        assert!(r.overlaps_span(Addr::new(90), 20));
        assert!(!r.overlaps_span(Addr::new(200), 10));
    }

    #[test]
    fn bump_allocates_aligned_and_exhausts() {
        let mut b = BumpAllocator::new(AddrRange::new(Addr::new(0x100), Addr::new(0x200)));
        let a = b.alloc(8, 64).unwrap();
        assert_eq!(a.get() % 64, 0);
        let c = b.alloc(8, 64).unwrap();
        assert!(c.get() > a.get());
        assert!(b.alloc(0x1000, 1).is_none());
    }

    #[test]
    fn bump_returns_none_when_full_not_panic() {
        let mut b = BumpAllocator::new(AddrRange::new(Addr::new(0), Addr::new(64)));
        assert!(b.alloc(64, 1).is_some());
        assert!(b.alloc(1, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let _ = AddrRange::new(Addr::new(10), Addr::new(5));
    }
}
