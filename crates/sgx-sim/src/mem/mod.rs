//! Address space and allocation for the simulated machine.

mod layout;

pub use layout::{Addr, AddrRange, BumpAllocator, PAGE_SIZE, PRM_BASE, REGULAR_BASE};

use serde::{Deserialize, Serialize};

/// Size of the *virtual* EPC window. Enclaves may commit more pages than the
/// physical EPC holds — the surplus lives paged-out in regular RAM (EWB) and
/// is paged back on demand (ELDU), which is exactly the libquantum cliff the
/// paper measures. Physical capacity is enforced by [`crate::epc::Epc`].
pub const EPC_WINDOW: u64 = 4 << 30;

/// Tracks the machine's two allocation arenas: regular DRAM and the EPC
/// window inside PRM. Classification of an address into "encrypted EPC" vs
/// "plaintext DRAM" — the distinction the whole cost model revolves
/// around — happens here.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressSpace {
    regular: BumpAllocator,
    epc_range: AddrRange,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Builds the address space: a 1 GB regular arena and the EPC window.
    pub fn new() -> Self {
        AddressSpace {
            regular: BumpAllocator::new(AddrRange::new(
                Addr::new(REGULAR_BASE),
                Addr::new(REGULAR_BASE + (1 << 30)),
            )),
            epc_range: AddrRange::new(Addr::new(PRM_BASE), Addr::new(PRM_BASE + EPC_WINDOW)),
        }
    }

    /// Allocates plaintext (untrusted) memory.
    pub fn alloc_regular(&mut self, size: u64, align: u64) -> Option<Addr> {
        self.regular.alloc(size, align)
    }

    /// The virtual EPC window. Page residency itself lives in
    /// [`crate::epc::Epc`]; this is only the address classification.
    pub fn epc_range(&self) -> AddrRange {
        self.epc_range
    }

    /// Is `addr` inside the encrypted EPC window?
    pub fn is_epc(&self, addr: Addr) -> bool {
        self.epc_range.contains(addr)
    }

    /// Does the whole span lie inside the EPC window?
    pub fn span_in_epc(&self, addr: Addr, len: u64) -> bool {
        self.epc_range.contains_span(addr, len)
    }

    /// Does the span lie entirely *outside* the EPC (the SDK's
    /// `sgx_is_outside_enclave` check)?
    pub fn span_outside_epc(&self, addr: Addr, len: u64) -> bool {
        !self.epc_range.overlaps_span(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_exclusive() {
        let mut a = AddressSpace::new();
        let r = a.alloc_regular(128, 64).unwrap();
        assert!(!a.is_epc(r));
        assert!(a.is_epc(Addr::new(PRM_BASE)));
        assert!(!a.is_epc(Addr::new(PRM_BASE + EPC_WINDOW)));
    }

    #[test]
    fn outside_check_rejects_straddling_span() {
        let a = AddressSpace::new();
        // Span beginning just below the EPC and ending inside it.
        assert!(!a.span_outside_epc(Addr::new(PRM_BASE - 8), 16));
        assert!(a.span_outside_epc(Addr::new(PRM_BASE - 16), 16));
        assert!(a.span_in_epc(Addr::new(PRM_BASE), 4096));
        assert!(!a.span_in_epc(Addr::new(PRM_BASE + EPC_WINDOW - 8), 16));
    }

    #[test]
    fn regular_allocations_are_disjoint() {
        let mut a = AddressSpace::new();
        let x = a.alloc_regular(100, 8).unwrap();
        let y = a.alloc_regular(100, 8).unwrap();
        assert!(y.get() >= x.get() + 100);
    }
}
