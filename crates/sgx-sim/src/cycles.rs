//! Virtual-time bookkeeping.
//!
//! All costs in the simulator are expressed in [`Cycles`] of a fixed-frequency
//! virtual core (4 GHz by default, matching the i7-6700k used by the paper).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A count of virtual clock cycles.
///
/// `Cycles` is a transparent newtype over `u64` providing saturating-free,
/// checked-in-debug arithmetic. It is the unit in which every simulated
/// operation reports its cost.
///
/// # Examples
///
/// ```
/// use sgx_sim::Cycles;
///
/// let a = Cycles::new(100);
/// let b = Cycles::new(20);
/// assert_eq!((a + b).get(), 120);
/// assert_eq!((a - b).get(), 80);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts to nanoseconds at the given core frequency in GHz.
    ///
    /// ```
    /// use sgx_sim::Cycles;
    /// assert_eq!(Cycles::new(4_000).as_nanos(4.0), 1_000.0);
    /// ```
    #[inline]
    pub fn as_nanos(self, ghz: f64) -> f64 {
        self.0 as f64 / ghz
    }

    /// Converts to seconds at the given core frequency in GHz.
    #[inline]
    pub fn as_secs(self, ghz: f64) -> f64 {
        self.0 as f64 / (ghz * 1e9)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(n: u64) -> Self {
        Cycles(n)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

/// A monotonically increasing virtual clock.
///
/// The clock only moves forward via [`Clock::advance`]; reading it is free
/// (the cost of the `RDTSCP` instruction itself is charged by the CPU model,
/// not by the clock).
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Clock {
    now: Cycles,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Advances virtual time by `delta`.
    #[inline]
    pub fn advance(&mut self, delta: Cycles) {
        self.now += delta;
    }
}

/// Named accounts of where virtual cycles went.
///
/// The cost model reports everything as one [`Cycles`] total; the ledger
/// splits that total into labelled accounts ("ecall-crossing",
/// "enclave-compute", "epc-paging", ...) so a telemetry snapshot can say
/// *which* part of the simulated machine burned the time. Accounts are
/// ordered (BTreeMap) so serialized ledgers are deterministic, and ledgers
/// merge by account name so per-worker ledgers roll up like histograms.
///
/// # Examples
///
/// ```
/// use sgx_sim::{CycleLedger, Cycles};
///
/// let mut ledger = CycleLedger::new();
/// ledger.credit("ecall-crossing", Cycles::new(8_000));
/// ledger.credit("enclave-compute", Cycles::new(1_000));
/// ledger.credit("ecall-crossing", Cycles::new(8_000));
/// assert_eq!(ledger.get("ecall-crossing"), Cycles::new(16_000));
/// assert_eq!(ledger.total(), Cycles::new(17_000));
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleLedger {
    accounts: std::collections::BTreeMap<String, Cycles>,
}

impl CycleLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` to the named account, creating it at zero first.
    pub fn credit(&mut self, account: &str, amount: Cycles) {
        *self
            .accounts
            .entry(account.to_string())
            .or_insert(Cycles::ZERO) += amount;
    }

    /// The balance of one account (zero if it was never credited).
    pub fn get(&self, account: &str) -> Cycles {
        self.accounts.get(account).copied().unwrap_or(Cycles::ZERO)
    }

    /// All accounts in name order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, Cycles)> {
        self.accounts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Sum over every account.
    pub fn total(&self) -> Cycles {
        self.accounts.values().copied().sum()
    }

    /// Adds every account of `other` into `self` by name.
    pub fn merge(&mut self, other: &CycleLedger) {
        for (name, cycles) in other.entries() {
            self.credit(name, cycles);
        }
    }
}

/// Window-delta tracker over a virtual clock: the cycle feed a control
/// loop samples between decisions.
///
/// A controller that acts every N calls needs "cycles spent since my last
/// look", not absolute time. `CycleFeed` remembers the clock reading of
/// the previous sample and returns the delta, monotone-proofed (a clock
/// that was swapped or reset yields zero rather than a huge bogus
/// window).
///
/// # Examples
///
/// ```
/// use sgx_sim::{CycleFeed, Cycles};
///
/// let mut feed = CycleFeed::new(Cycles::new(1_000));
/// assert_eq!(feed.delta(Cycles::new(1_750)), 750);
/// assert_eq!(feed.delta(Cycles::new(1_750)), 0);
/// // A rewound clock is treated as an empty window, not an underflow.
/// assert_eq!(feed.delta(Cycles::new(500)), 0);
/// assert_eq!(feed.delta(Cycles::new(900)), 400);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleFeed {
    last: Cycles,
}

impl CycleFeed {
    /// A feed anchored at the clock's current reading.
    pub fn new(now: Cycles) -> Self {
        CycleFeed { last: now }
    }

    /// Cycles elapsed since the previous sample; re-anchors at `now`.
    pub fn delta(&mut self, now: Cycles) -> u64 {
        let d = now.saturating_sub(self.last).get();
        self.last = now;
        d
    }

    /// The clock reading of the previous sample.
    pub fn last(&self) -> Cycles {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Cycles::new(1_000);
        let b = Cycles::new(250);
        assert_eq!(a + b, Cycles::new(1_250));
        assert_eq!(a - b, Cycles::new(750));
        assert_eq!(a * 3, Cycles::new(3_000));
        assert_eq!(a / 4, Cycles::new(250));
    }

    #[test]
    fn sum_of_iterator() {
        let total: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(10));
    }

    #[test]
    fn saturating_sub_clamps_to_zero() {
        assert_eq!(Cycles::new(5).saturating_sub(Cycles::new(9)), Cycles::ZERO);
    }

    #[test]
    fn nanos_at_4ghz() {
        assert!((Cycles::new(8_000).as_nanos(4.0) - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), Cycles::ZERO);
        c.advance(Cycles::new(7));
        c.advance(Cycles::new(3));
        assert_eq!(c.now(), Cycles::new(10));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycles::new(42).to_string(), "42 cycles");
    }

    #[test]
    fn ledger_merges_by_account_in_name_order() {
        let mut a = CycleLedger::new();
        a.credit("ocall", Cycles::new(10));
        a.credit("ecall", Cycles::new(5));
        let mut b = CycleLedger::new();
        b.credit("ocall", Cycles::new(7));
        b.credit("aex", Cycles::new(1));
        a.merge(&b);
        assert_eq!(a.get("ocall"), Cycles::new(17));
        assert_eq!(a.get("never-credited"), Cycles::ZERO);
        assert_eq!(a.total(), Cycles::new(23));
        let names: Vec<&str> = a.entries().map(|(n, _)| n).collect();
        assert_eq!(names, ["aex", "ecall", "ocall"]);
    }
}
