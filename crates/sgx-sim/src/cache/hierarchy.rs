//! The three-level cache hierarchy (L1D / L2 / LLC) of the simulated core.
//!
//! The hierarchy resolves an access to the level that serves it and installs
//! the line on the way back down (fill on miss). Costs are *not* computed
//! here — the memory engine combines the hierarchy outcome with the DRAM/MEE
//! model — so the hierarchy stays a pure state machine that is easy to test.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::config::SimConfig;

use super::set_assoc::SetAssocCache;

/// Which component ultimately served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServedBy {
    /// Hit in the L1 data cache.
    L1,
    /// Hit in the unified L2.
    L2,
    /// Hit in the shared last-level cache.
    Llc,
    /// Missed everywhere; served by DRAM (possibly through the MEE).
    Memory,
}

/// L1/L2/LLC tag hierarchy with fill-on-miss and whole-hierarchy flush.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    llc: SetAssocCache,
    dirty: HashSet<u64>,
    line_size: u64,
    l1_hit: u64,
    l2_hit: u64,
    llc_hit: u64,
}

impl Hierarchy {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: &SimConfig) -> Self {
        Hierarchy {
            l1: SetAssocCache::new(&config.l1),
            l2: SetAssocCache::new(&config.l2),
            llc: SetAssocCache::new(&config.llc),
            dirty: HashSet::new(),
            line_size: config.l1.line,
            l1_hit: config.l1.hit_latency,
            l2_hit: config.l2.hit_latency,
            llc_hit: config.llc.hit_latency,
        }
    }

    /// Marks a line dirty (a store touched it). Write-back cost is charged
    /// when the line is *forced* out (clflush + fence), matching how store
    /// buffers hide write-miss latency on real hardware.
    pub fn mark_dirty(&mut self, line: u64) {
        self.dirty.insert(line);
    }

    /// Clears a line's dirty bit, reporting whether it was set.
    pub fn clear_dirty(&mut self, line: u64) -> bool {
        self.dirty.remove(&line)
    }

    /// Is the line dirty?
    pub fn is_dirty(&self, line: u64) -> bool {
        self.dirty.contains(&line)
    }

    /// Cache line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Converts a byte address to a line number.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_size
    }

    /// Performs one line-granular access: returns the serving level and
    /// installs the line in every level above it.
    pub fn access_line(&mut self, line: u64) -> ServedBy {
        if self.l1.probe(line) {
            return ServedBy::L1;
        }
        if self.l2.probe(line) {
            self.l1.insert(line);
            return ServedBy::L2;
        }
        if self.llc.probe(line) {
            self.l2.insert(line);
            self.l1.insert(line);
            return ServedBy::Llc;
        }
        self.llc.insert(line);
        self.l2.insert(line);
        self.l1.insert(line);
        ServedBy::Memory
    }

    /// Is the line resident anywhere in the hierarchy? Does not disturb LRU
    /// state.
    pub fn contains_line(&self, line: u64) -> bool {
        self.l1.contains(line) || self.l2.contains(line) || self.llc.contains(line)
    }

    /// Hit latency of the level an access was served by; memory latency is
    /// supplied by the memory engine instead.
    pub fn hit_latency(&self, served: ServedBy) -> Option<u64> {
        match served {
            ServedBy::L1 => Some(self.l1_hit),
            ServedBy::L2 => Some(self.l2_hit),
            ServedBy::Llc => Some(self.llc_hit),
            ServedBy::Memory => None,
        }
    }

    /// `clflush` of the line containing `addr` from every level.
    pub fn clflush(&mut self, addr: u64) {
        let line = self.line_of(addr);
        self.l1.invalidate(line);
        self.l2.invalidate(line);
        self.llc.invalidate(line);
    }

    /// Flushes the entire hierarchy — the paper's cold-cache experiment
    /// setup ("the entire 8 MB LLC cache was flushed prior to every
    /// experiment"). Dirty state is dropped without cost: the flush happens
    /// outside the measured window.
    pub fn flush_all(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.llc.clear();
        self.dirty.clear();
    }

    /// Total valid lines across all levels (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.l1.occupancy() + self.l2.occupancy() + self.llc.occupancy()
    }

    /// Per-level (hits, misses) since construction: [L1, L2, LLC].
    pub fn level_stats(&self) -> [(u64, u64); 3] {
        [self.l1.stats(), self.l2.stats(), self.llc.stats()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Hierarchy {
        Hierarchy::new(&SimConfig::default())
    }

    #[test]
    fn first_access_misses_second_hits_l1() {
        let mut h = h();
        assert_eq!(h.access_line(1000), ServedBy::Memory);
        assert_eq!(h.access_line(1000), ServedBy::L1);
    }

    #[test]
    fn l1_capacity_eviction_falls_back_to_l2() {
        let mut h = h();
        // L1: 32 KB / 64 B = 512 lines, 64 sets x 8 ways. Fill set 0 of L1
        // with 9 lines (stride = 64 sets apart).
        for i in 0..9u64 {
            h.access_line(i * 64);
        }
        // Line 0 was evicted from L1 (LRU) but still sits in L2.
        assert_eq!(h.access_line(0), ServedBy::L2);
    }

    #[test]
    fn clflush_forces_memory_access() {
        let mut h = h();
        h.access_line(5);
        h.clflush(5 * 64);
        assert_eq!(h.access_line(5), ServedBy::Memory);
    }

    #[test]
    fn flush_all_empties_everything() {
        let mut h = h();
        for i in 0..100 {
            h.access_line(i);
        }
        h.flush_all();
        assert_eq!(h.occupancy(), 0);
        assert_eq!(h.access_line(0), ServedBy::Memory);
    }

    #[test]
    fn line_of_uses_line_size() {
        let h = h();
        assert_eq!(h.line_of(0), 0);
        assert_eq!(h.line_of(63), 0);
        assert_eq!(h.line_of(64), 1);
    }

    #[test]
    fn hit_latencies_are_increasing() {
        let h = h();
        let l1 = h.hit_latency(ServedBy::L1).unwrap();
        let l2 = h.hit_latency(ServedBy::L2).unwrap();
        let llc = h.hit_latency(ServedBy::Llc).unwrap();
        assert!(l1 < l2 && l2 < llc);
        assert!(h.hit_latency(ServedBy::Memory).is_none());
    }
}
