//! Simulated cache hierarchy.
//!
//! [`SetAssocCache`] is a single LRU tag store; [`Hierarchy`] composes three
//! of them into the Skylake-like L1D/L2/LLC stack the paper's machine had.

mod hierarchy;
mod set_assoc;

pub use hierarchy::{Hierarchy, ServedBy};
pub use set_assoc::SetAssocCache;
