//! A generic set-associative cache tag store with true-LRU replacement.
//!
//! The simulator caches only *tags* (line identity), never data: the cost
//! model needs hit/miss behaviour, while payload bytes live in ordinary Rust
//! values owned by the code under simulation.

use crate::config::CacheGeometry;

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    last_used: u64,
    valid: bool,
}

/// One cache level: a set-associative array of line tags with LRU eviction.
///
/// Addresses supplied to the cache are *line numbers* (byte address divided
/// by the line size), which keeps the arithmetic uniform across levels.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if the number of sets is not a power of two (real caches index
    /// with address bits; simulated ones here do the same).
    pub fn new(geometry: &CacheGeometry) -> Self {
        let sets = geometry.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        SetAssocCache {
            sets: (0..sets)
                .map(|_| {
                    Vec::with_capacity(geometry.ways as usize).tap_fill(geometry.ways as usize)
                })
                .collect(),
            set_mask: sets - 1,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    fn tag_of(&self, line: u64) -> u64 {
        line >> self.set_mask.trailing_ones()
    }

    /// Looks up a line; on hit, refreshes its LRU position. Returns `true`
    /// on hit.
    pub fn probe(&mut self, line: u64) -> bool {
        self.tick += 1;
        let tag = self.tag_of(line);
        let set_idx = self.set_of(line);
        let tick = self.tick;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_used = tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inspects whether a line is present without touching LRU state or
    /// statistics.
    pub fn contains(&self, line: u64) -> bool {
        let tag = self.tag_of(line);
        self.sets[self.set_of(line)]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Installs a line, evicting the LRU way if the set is full. Returns the
    /// evicted line number, if any.
    pub fn insert(&mut self, line: u64) -> Option<u64> {
        self.tick += 1;
        let tag = self.tag_of(line);
        let set_idx = self.set_of(line);
        let shift = self.set_mask.trailing_ones();
        let tick = self.tick;
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_used = tick;
            return None;
        }
        if let Some(way) = set.iter_mut().find(|w| !w.valid) {
            *way = Way {
                tag,
                last_used: tick,
                valid: true,
            };
            return None;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|w| w.last_used)
            .expect("non-empty set");
        let evicted_line = (victim.tag << shift) | set_idx as u64;
        *victim = Way {
            tag,
            last_used: tick,
            valid: true,
        };
        Some(evicted_line)
    }

    /// Invalidates a single line (the `clflush` path). Returns `true` if it
    /// was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let tag = self.tag_of(line);
        let set_idx = self.set_of(line);
        for way in &mut self.sets[set_idx] {
            if way.valid && way.tag == tag {
                way.valid = false;
                return true;
            }
        }
        false
    }

    /// Invalidates everything (the cold-cache experiment setup).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            for way in set.iter_mut() {
                way.valid = false;
            }
        }
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|w| w.valid).count())
            .sum()
    }
}

// Small private helper to pre-fill the way vectors.
trait TapFill {
    fn tap_fill(self, ways: usize) -> Self;
}

impl TapFill for Vec<Way> {
    fn tap_fill(mut self, ways: usize) -> Self {
        self.resize(
            ways,
            Way {
                tag: 0,
                last_used: 0,
                valid: false,
            },
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways, 64 B lines => 512 B cache.
        SetAssocCache::new(&CacheGeometry {
            capacity: 512,
            ways: 2,
            line: 64,
            hit_latency: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.probe(100));
        c.insert(100);
        assert!(c.probe(100));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.insert(0);
        c.insert(4);
        assert!(c.probe(0)); // 0 becomes MRU; 4 is now LRU.
        let evicted = c.insert(8);
        assert_eq!(evicted, Some(4));
        assert!(c.contains(0));
        assert!(!c.contains(4));
        assert!(c.contains(8));
    }

    #[test]
    fn insert_existing_line_does_not_evict() {
        let mut c = tiny();
        c.insert(0);
        c.insert(4);
        assert_eq!(c.insert(0), None);
        assert!(c.contains(4));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.insert(12);
        assert!(c.invalidate(12));
        assert!(!c.contains(12));
        assert!(!c.invalidate(12));
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = tiny();
        for l in 0..8 {
            c.insert(l);
        }
        assert!(c.occupancy() > 0);
        c.clear();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        // Lines 0..4 map to distinct sets.
        for l in 0..4 {
            c.insert(l);
        }
        for l in 0..4 {
            assert!(c.contains(l));
        }
    }

    #[test]
    fn eviction_reconstructs_correct_line_number() {
        let mut c = tiny();
        c.insert(1); // set 1
        c.insert(5); // set 1
        let evicted = c.insert(9); // set 1, evicts line 1
        assert_eq!(evicted, Some(1));
    }
}
