//! Simulator configuration.
//!
//! Every latency constant in the cost model lives here, with the value it was
//! calibrated against (Table 1 of the paper, measured on an i7-6700k with SGX
//! SDK 1.5.80). The *mechanisms* — cache lookups, MEE tree walks, EPC
//! paging — are simulated structurally; these constants set the per-event
//! price.

use serde::{Deserialize, Serialize};

/// Geometry of one level of the simulated cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero line size or ways).
    pub fn sets(&self) -> u64 {
        assert!(self.line > 0 && self.ways > 0, "degenerate cache geometry");
        self.capacity / (self.line * u64::from(self.ways))
    }
}

/// Costs of the Memory Encryption Engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeeConfig {
    /// Entries in the MEE-internal cache of integrity-tree nodes.
    ///
    /// The real MEE cache is small; its capacity is what makes the encrypted
    /// read overhead *grow* with buffer footprint (54.5% at 2 KB to 102% at
    /// 32 KB in Fig. 6).
    pub cache_entries: usize,
    /// Arity of the integrity tree (children per node). SGX uses 8.
    pub arity: u64,
    /// Cycles to decrypt + MAC-check one 64 B line on a demand (random) load.
    pub crypto_load: u64,
    /// Cycles of crypto exposed per line on a *streamed* (prefetched) load.
    pub crypto_stream: u64,
    /// Cycles of crypto exposed per line on a streamed write-back.
    pub crypto_writeback: u64,
    /// Cycles to fetch one missed integrity-tree node during a walk.
    pub node_fetch: u64,
    /// Extra cycles a demand store (RFO to EPC) pays over a demand load.
    pub store_extra: u64,
}

/// Costs of EPC paging (EWB / ELDU leaf functions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PagingConfig {
    /// Usable EPC capacity in bytes (93 MB on the paper's machine: 128 MB
    /// PRM minus MEE metadata).
    pub epc_bytes: u64,
    /// Cycles for EWB: encrypt + MAC + version a 4 KB page out to RAM.
    pub ewb: u64,
    /// Cycles for ELDU: load + decrypt + verify a 4 KB page back in.
    pub eldu: u64,
    /// Cycles of kernel/driver overhead per page fault that triggers paging.
    pub fault_overhead: u64,
}

/// Cost decomposition of the SGX entry/exit microcode and the SDK software
/// layers around it. Memory accesses made by these paths go through the
/// simulated cache hierarchy, so only *compute* bases are listed here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntryConfig {
    /// EENTER microcode base (checks of SECS/TCS, debug suppression,
    /// register save/restore) excluding its memory accesses.
    pub eenter_base: u64,
    /// EEXIT microcode base.
    pub eexit_base: u64,
    /// ERESUME microcode base (slightly heavier than EENTER: restores the
    /// full SSA frame).
    pub eresume_base: u64,
    /// AEX microcode base (synchronous part of an asynchronous exit).
    pub aex_base: u64,
    /// Number of distinct EPC cache lines the microcode touches per
    /// entry/exit pair (SECS, TCS, SSA/GPRSGX, trusted stack, entry
    /// trampoline code).
    pub epc_lines_touched: u64,
    /// Number of regular-memory lines touched (untrusted stack, ocall
    /// tables, saved AVX state).
    pub regular_lines_touched: u64,
}

/// Per-measurement noise model, reproducing the spread of the paper's CDFs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Uniform jitter (cycles) added to every timed region, reflecting bus
    /// and pipeline nondeterminism. The paper's warm-cache ecall CDF spans
    /// ~80 cycles at the 99.9th percentile.
    pub jitter: u64,
    /// Uniform jitter added to every DRAM demand miss (row-buffer state,
    /// scheduling). This is what widens the *cold*-cache CDFs of Fig. 2
    /// relative to the warm ones.
    pub per_miss_jitter: u64,
    /// Probability that a measurement suffers an Asynchronous Exit (the
    /// paper saw 200-300 of 200,000 runs).
    pub aex_probability: f64,
    /// Cycles consumed by an AEX + OS interrupt handling + ERESUME, added to
    /// contaminated runs.
    pub aex_penalty: u64,
}

/// Full simulator configuration.
///
/// Construct with [`SimConfig::default`] for the paper's machine (Supermicro
/// X11SSZ-QF, i7-6700k @ 4 GHz, 8 MB LLC, SDK 1.5.80) or adjust fields via
/// [`SimConfigBuilder`].
///
/// # Examples
///
/// ```
/// use sgx_sim::SimConfig;
///
/// let config = SimConfig::builder().seed(7).build();
/// assert_eq!(config.seed, 7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed for reproducible jitter and AEX injection.
    pub seed: u64,
    /// Core frequency in GHz (4.0 on the paper's machine).
    pub core_ghz: f64,
    /// L1 data cache geometry.
    pub l1: CacheGeometry,
    /// L2 cache geometry.
    pub l2: CacheGeometry,
    /// Last-level cache geometry.
    pub llc: CacheGeometry,
    /// DRAM latency for a demand (random) access, cycles.
    pub dram_random: u64,
    /// Effective per-line DRAM cost for streamed (prefetched) accesses.
    pub dram_stream: u64,
    /// Cycles a store miss occupies the store buffer. Write misses do not
    /// stall the pipeline; their real cost surfaces only when a line is
    /// forced out (clflush + mfence), which is how the paper's write
    /// benchmark measures them.
    pub store_buffer: u64,
    /// Per-line cost of a *forced* write-back during a sequential flush
    /// (the write benchmark's clflush loop).
    pub writeback_stream: u64,
    /// Cost of a forced write-back of a single (demand) dirty line.
    pub writeback_demand: u64,
    /// MEE cost model.
    pub mee: MeeConfig,
    /// EPC paging cost model.
    pub paging: PagingConfig,
    /// Entry/exit cost decomposition.
    pub entry: EntryConfig,
    /// SDK software-layer compute bases (cycles, excluding memory accesses).
    pub sdk: SdkCostConfig,
    /// Noise model.
    pub noise: NoiseConfig,
    /// Cost of the RDTSCP instruction pair bracketing a measurement. The
    /// paper's numbers include this harness overhead.
    pub rdtscp: u64,
    /// Cost of an MFENCE.
    pub mfence: u64,
    /// Cost of a PAUSE (Skylake pre-errata value used in spin loops).
    pub pause: u64,
    /// TLB capacity in page translations (Skylake L2 STLB: 1536).
    pub tlb_entries: usize,
    /// Cycles of page-walk latency on a TLB miss (page tables are read
    /// through the — possibly cold — cache).
    pub tlb_miss: u64,
}

/// Compute bases of the (simulated) Intel SGX SDK software layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdkCostConfig {
    /// Untrusted ecall prologue: enclave-table lookup, read/write lock,
    /// TCS selection, AVX state save, FP exception check.
    pub ecall_untrusted_sw: u64,
    /// Trusted-side ecall dispatch (index check, call-table jump).
    pub ecall_trusted_dispatch: u64,
    /// Trusted ocall prologue: marshalling setup and pointer checks.
    pub ocall_trusted_sw: u64,
    /// Untrusted ocall dispatch (ocall-table jump, stack setup).
    pub ocall_untrusted_dispatch: u64,
    /// Per-8-bytes cost of the SDK's word-wise `memcpy`.
    pub memcpy_per_word: u64,
    /// Per-byte cost of the SDK's byte-wise `memset` (the inefficiency the
    /// paper's No-Redundant-Zeroing removes).
    pub memset_per_byte: u64,
    /// Fixed overhead of a `malloc` on the secure heap.
    pub secure_malloc: u64,
    /// Fixed overhead of allocating on the untrusted stack (ocall path).
    pub untrusted_stack_alloc: u64,
    /// Per-buffer bookkeeping of the No-Redundant-Zeroing marshaller:
    /// deciding (from the EDL direction) that a staging region will be
    /// fully overwritten and may skip its `memset`. Charged *instead of*
    /// the zeroing, so the NRZ and SDK-faithful variants carry distinct,
    /// comparable costs.
    pub nrz_track_per_buffer: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x5eed_0001,
            core_ghz: 4.0,
            l1: CacheGeometry {
                capacity: 32 * 1024,
                ways: 8,
                line: 64,
                hit_latency: 4,
            },
            l2: CacheGeometry {
                capacity: 256 * 1024,
                ways: 4,
                line: 64,
                hit_latency: 12,
            },
            llc: CacheGeometry {
                capacity: 8 * 1024 * 1024,
                ways: 16,
                line: 64,
                hit_latency: 42,
            },
            // Calibration: Table 1 row 9, plaintext cache-load miss = 308
            // cycles including ~100 cycles of harness (rdtscp pair+mfence).
            dram_random: 125,
            // Row 7: 2 KB plaintext consecutive read = 727 cycles =>
            // (727-harness)/32 lines ~= 19.6/line with prefetching.
            dram_stream: 12,
            store_buffer: 8,
            // Row 8: 2 KB plaintext write+flush = 6458 cycles => ~190/line
            // of forced write-back during the clflush loop.
            writeback_stream: 182,
            // Row 10: plaintext store miss + single clflush+mfence = 481.
            writeback_demand: 289,
            mee: MeeConfig {
                cache_entries: 24,
                arity: 8,
                // Row 9: encrypted load miss 400 vs plaintext 308.
                crypto_load: 80,
                // Fig 6 @2 KB: +12.4 cycles/line when tree nodes hit.
                crypto_stream: 9,
                // Fig 7: ~6% write overhead => ~13 cycles/line of encrypt
                // exposed during forced write-back.
                crypto_writeback: 13,
                // Fig 6 growth to 102% @32 KB when the MEE cache thrashes.
                node_fetch: 25,
                // Row 10: encrypted store miss 575 = 481 + ~94 of MEE
                // work on the demand write-back path.
                store_extra: 81,
            },
            paging: PagingConfig {
                epc_bytes: 93 * 1024 * 1024,
                ewb: 7_000,
                eldu: 7_000,
                fault_overhead: 5_000,
            },
            entry: EntryConfig {
                eenter_base: 3_200,
                eexit_base: 2_900,
                eresume_base: 3_100,
                aex_base: 3_300,
                epc_lines_touched: 8,
                regular_lines_touched: 4,
            },
            sdk: SdkCostConfig {
                ecall_untrusted_sw: 1_730,
                ecall_trusted_dispatch: 500,
                ocall_trusted_sw: 1_550,
                ocall_untrusted_dispatch: 380,
                memcpy_per_word: 1,
                memset_per_byte: 1,
                secure_malloc: 250,
                untrusted_stack_alloc: 60,
                nrz_track_per_buffer: 15,
            },
            noise: NoiseConfig {
                jitter: 80,
                per_miss_jitter: 150,
                aex_probability: 0.00125,
                aex_penalty: 9_500,
            },
            rdtscp: 64,
            mfence: 33,
            pause: 70,
            tlb_entries: 1536,
            tlb_miss: 150,
        }
    }
}

impl SimConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig::default(),
        }
    }
}

/// Builder for [`SimConfig`].
///
/// # Examples
///
/// ```
/// use sgx_sim::SimConfig;
///
/// let cfg = SimConfig::builder()
///     .seed(42)
///     .epc_bytes(32 * 1024 * 1024)
///     .build();
/// assert_eq!(cfg.paging.epc_bytes, 32 * 1024 * 1024);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the core frequency in GHz.
    pub fn core_ghz(mut self, ghz: f64) -> Self {
        self.config.core_ghz = ghz;
        self
    }

    /// Sets the usable EPC capacity in bytes.
    pub fn epc_bytes(mut self, bytes: u64) -> Self {
        self.config.paging.epc_bytes = bytes;
        self
    }

    /// Sets the MEE-internal cache size in entries.
    pub fn mee_cache_entries(mut self, entries: usize) -> Self {
        self.config.mee.cache_entries = entries;
        self
    }

    /// Disables all measurement noise (jitter and AEX injection), for
    /// deterministic unit tests.
    pub fn deterministic(mut self) -> Self {
        self.config.noise = NoiseConfig {
            jitter: 0,
            per_miss_jitter: 0,
            aex_probability: 0.0,
            aex_penalty: 0,
        };
        self
    }

    /// Replaces the noise model.
    pub fn noise(mut self, noise: NoiseConfig) -> Self {
        self.config.noise = noise;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a cache geometry is degenerate (zero sets) or the EPC is
    /// smaller than one page.
    pub fn build(self) -> SimConfig {
        let c = &self.config;
        assert!(c.l1.sets() > 0 && c.l2.sets() > 0 && c.llc.sets() > 0);
        assert!(c.paging.epc_bytes >= 4096, "EPC smaller than one page");
        assert!(c.core_ghz > 0.0, "core frequency must be positive");
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_skylake() {
        let c = SimConfig::default();
        assert_eq!(c.l1.sets(), 64);
        assert_eq!(c.l2.sets(), 1024);
        assert_eq!(c.llc.sets(), 8192);
        assert_eq!(c.llc.capacity, 8 * 1024 * 1024);
    }

    #[test]
    fn builder_overrides_fields() {
        let c = SimConfig::builder()
            .seed(9)
            .core_ghz(3.5)
            .mee_cache_entries(64)
            .build();
        assert_eq!(c.seed, 9);
        assert!((c.core_ghz - 3.5).abs() < f64::EPSILON);
        assert_eq!(c.mee.cache_entries, 64);
    }

    #[test]
    fn deterministic_builder_zeroes_noise() {
        let c = SimConfig::builder().deterministic().build();
        assert_eq!(c.noise.jitter, 0);
        assert_eq!(c.noise.aex_probability, 0.0);
    }

    #[test]
    #[should_panic(expected = "EPC smaller")]
    fn tiny_epc_rejected() {
        let _ = SimConfig::builder().epc_bytes(1024).build();
    }

    #[test]
    fn debug_is_nonempty() {
        let c = SimConfig::default();
        assert!(format!("{c:?}").contains("SimConfig"));
    }
}
