//! A simple TLB model.
//!
//! The cold-cache experiments of the paper flush the LLC, which also costs
//! the subsequent run its TLB warmth (the page walker reads page tables
//! *through the cache*). Each first touch of a page after a flush pays a
//! page-walk penalty; this is a visible share of the cold-call cost in
//! Fig. 2.

use std::collections::{HashSet, VecDeque};

/// A FIFO TLB of fixed capacity (Skylake's L2 STLB holds 1536 entries).
#[derive(Debug, Clone)]
pub struct Tlb {
    present: HashSet<u64>,
    fifo: VecDeque<u64>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB holding `capacity` page translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            present: HashSet::with_capacity(capacity),
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Touches a page; returns `true` on hit, installing the translation
    /// (and evicting the oldest) on miss.
    pub fn touch(&mut self, page: u64) -> bool {
        if self.present.contains(&page) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.fifo.len() >= self.capacity {
            if let Some(old) = self.fifo.pop_front() {
                self.present.remove(&old);
            }
        }
        self.fifo.push_back(page);
        self.present.insert(page);
        false
    }

    /// Drops every translation (the cold-cache experiment's side effect).
    pub fn flush(&mut self) {
        self.present.clear();
        self.fifo.clear();
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4);
        assert!(!t.touch(1));
        assert!(t.touch(1));
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut t = Tlb::new(2);
        t.touch(1);
        t.touch(2);
        t.touch(3); // evicts 1
        assert!(!t.touch(1));
        assert!(t.touch(3));
    }

    #[test]
    fn flush_forgets_everything() {
        let mut t = Tlb::new(8);
        t.touch(5);
        t.flush();
        assert!(!t.touch(5));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0);
    }
}
