//! A virtual epoll: deterministic event multiplexing in simulated time.
//!
//! The HotCalls pay-off case is IO concurrency far beyond the lane count —
//! hundreds of thousands of connections funnelled onto a handful of
//! switchless rings. Reproducing that regime with real sockets would need
//! a kernel and wall-clock time; this module instead models the *event
//! loop* the way the rest of `sgx-sim` models the hardware: readiness is
//! a timer wheel in [`Cycles`] of the 4 GHz virtual core, and waiting
//! advances the virtual clock to the next readiness instant instead of
//! blocking.
//!
//! One `(token, ready_at)` arm per simulated connection is all the state
//! a connection costs (16 bytes in a binary heap), so a million
//! concurrent connections fit comfortably and run in deterministic order:
//! events fire strictly by `(time, token)`, independent of the host
//! machine, so a seeded load run produces the same latency histogram
//! everywhere.
//!
//! # Examples
//!
//! ```
//! use sgx_sim::{Cycles, VirtualEpoll};
//!
//! let mut ep = VirtualEpoll::new();
//! ep.arm_after(7, Cycles::new(4_000)); // connection 7 ready in 1 µs
//! ep.arm_after(3, Cycles::new(2_000)); // connection 3 ready in 500 ns
//!
//! let batch = ep.wait(64);
//! assert_eq!(batch.len(), 1);
//! assert_eq!(batch[0].token, 3);
//! assert_eq!(ep.now(), Cycles::new(2_000)); // time jumped, not spun
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cycles::{Clock, Cycles};

/// One readiness event delivered by [`VirtualEpoll::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualEvent {
    /// The caller's identifier for the connection/timer that fired.
    pub token: u64,
    /// Virtual instant the event became ready (≤ the loop's `now` at
    /// delivery).
    pub at: Cycles,
}

/// An epoll-shaped readiness multiplexer over virtual time.
///
/// `arm` registers interest, `wait` delivers the next batch — but where a
/// real epoll blocks the thread, this one *advances the virtual clock* to
/// the earliest readiness instant. Between arms and waits the clock can
/// also be pushed forward explicitly ([`VirtualEpoll::advance`]) to model
/// the cycles the event-loop thread itself consumed servicing a batch.
#[derive(Debug, Default)]
pub struct VirtualEpoll {
    clock: Clock,
    /// Min-heap on `(ready_at, token)`: ties on time fire in token order,
    /// making delivery fully deterministic.
    timers: BinaryHeap<Reverse<(u64, u64)>>,
    /// High-water mark of concurrently armed timers.
    peak_pending: usize,
}

impl VirtualEpoll {
    /// An empty loop at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Cycles {
        self.clock.now()
    }

    /// Number of armed, not-yet-delivered events — the loop's concurrent
    /// connection count.
    #[inline]
    pub fn pending(&self) -> usize {
        self.timers.len()
    }

    /// Highest [`VirtualEpoll::pending`] ever observed (the witness that
    /// a run really multiplexed N connections at once).
    #[inline]
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Registers `token` as ready at absolute virtual instant `at`. An
    /// instant in the past is delivered by the next `wait` without moving
    /// the clock backwards. Tokens are caller-defined; arming the same
    /// token twice yields two events.
    pub fn arm(&mut self, token: u64, at: Cycles) {
        self.timers.push(Reverse((at.get(), token)));
        self.peak_pending = self.peak_pending.max(self.timers.len());
    }

    /// Registers `token` as ready `delay` cycles from now.
    pub fn arm_after(&mut self, token: u64, delay: Cycles) {
        let at = self.clock.now() + delay;
        self.arm(token, at);
    }

    /// Models work done by the loop thread itself: pushes virtual time
    /// forward by `delta` (events that become ready in the interval are
    /// delivered by the next `wait`).
    pub fn advance(&mut self, delta: Cycles) {
        self.clock.advance(delta);
    }

    /// Delivers the next batch of ready events, at most `max_events` of
    /// them, advancing virtual time to the earliest readiness instant if
    /// nothing is ready *now*. Returns an empty batch only when no timer
    /// is armed at all — a virtual wait never times out, it time-travels.
    pub fn wait(&mut self, max_events: usize) -> Vec<VirtualEvent> {
        let mut batch = Vec::new();
        let Some(&Reverse((earliest, _))) = self.timers.peek() else {
            return batch;
        };
        // Jump, don't spin: this is where simulated idle time comes from.
        if earliest > self.clock.now().get() {
            self.clock
                .advance(Cycles::new(earliest - self.clock.now().get()));
        }
        let now = self.clock.now().get();
        while batch.len() < max_events {
            match self.timers.peek() {
                Some(&Reverse((at, token))) if at <= now => {
                    self.timers.pop();
                    batch.push(VirtualEvent {
                        token,
                        at: Cycles::new(at),
                    });
                }
                _ => break,
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_then_token_order() {
        let mut ep = VirtualEpoll::new();
        ep.arm(9, Cycles::new(100));
        ep.arm(2, Cycles::new(100));
        ep.arm(5, Cycles::new(50));
        let batch = ep.wait(16);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].token, 5);
        let batch = ep.wait(16);
        assert_eq!(
            batch.iter().map(|e| e.token).collect::<Vec<_>>(),
            vec![2, 9],
            "ties on readiness time fire in token order"
        );
        assert_eq!(ep.now(), Cycles::new(100));
    }

    #[test]
    fn wait_advances_time_instead_of_spinning() {
        let mut ep = VirtualEpoll::new();
        ep.arm_after(1, Cycles::new(1_000_000));
        assert_eq!(ep.wait(1).len(), 1);
        assert_eq!(ep.now(), Cycles::new(1_000_000));
        // Nothing armed: no events, no time travel.
        assert!(ep.wait(1).is_empty());
        assert_eq!(ep.now(), Cycles::new(1_000_000));
    }

    #[test]
    fn max_events_bounds_the_batch() {
        let mut ep = VirtualEpoll::new();
        for t in 0..10 {
            ep.arm(t, Cycles::new(5));
        }
        assert_eq!(ep.pending(), 10);
        let batch = ep.wait(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(ep.pending(), 6);
        // The rest are already ready; the clock does not move again.
        assert_eq!(ep.wait(100).len(), 6);
        assert_eq!(ep.now(), Cycles::new(5));
    }

    #[test]
    fn late_arm_fires_without_rewinding() {
        let mut ep = VirtualEpoll::new();
        ep.advance(Cycles::new(500));
        ep.arm(3, Cycles::new(100)); // already in the past
        let batch = ep.wait(8);
        assert_eq!(batch[0].at, Cycles::new(100));
        assert_eq!(ep.now(), Cycles::new(500), "clock never rewinds");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut ep = VirtualEpoll::new();
            // Arm a pseudo-random schedule (fixed seed).
            let mut x = 0x9e3779b97f4a7c15u64;
            for t in 0..1_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ep.arm(t, Cycles::new(x % 10_000));
            }
            let mut order = Vec::new();
            loop {
                let batch = ep.wait(32);
                if batch.is_empty() {
                    break;
                }
                order.extend(batch.iter().map(|e| e.token));
            }
            (order, ep.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hundred_thousand_pending_is_cheap() {
        let mut ep = VirtualEpoll::new();
        for t in 0..100_000u64 {
            ep.arm(t, Cycles::new(t * 7 % 1_000));
        }
        assert_eq!(ep.pending(), 100_000);
        assert_eq!(ep.peak_pending(), 100_000);
        let mut total = 0;
        loop {
            let n = ep.wait(1_024).len();
            if n == 0 {
                break;
            }
            total += n;
        }
        assert_eq!(total, 100_000);
    }
}
