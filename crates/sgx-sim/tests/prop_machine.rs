//! Property tests over the machine model's invariants.

use proptest::prelude::*;

use sgx_sim::{AccessKind, Cycles, EnclaveBuildOptions, Machine, SimConfig};

fn machine() -> Machine {
    Machine::new(SimConfig::builder().deterministic().build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Virtual time is monotone under any access sequence, and every
    /// access has positive cost.
    #[test]
    fn clock_monotone_and_costs_positive(
        offsets in proptest::collection::vec((0u64..65_536, 1u64..256, any::<bool>()), 1..200),
    ) {
        let mut m = machine();
        let base = m.alloc_untrusted(1 << 17, 64);
        let mut last = m.now();
        for (off, len, write) in offsets {
            let len = len.min((1 << 17) - off);
            if len == 0 { continue; }
            let cost = if write {
                m.write(base.offset(off), len).unwrap()
            } else {
                m.read(base.offset(off), len).unwrap()
            };
            prop_assert!(cost > Cycles::ZERO);
            prop_assert!(m.now() >= last + cost);
            last = m.now();
        }
    }

    /// Re-reading any just-read line is never more expensive (cache
    /// warmth only helps).
    #[test]
    fn rereads_never_cost_more(addr_offs in proptest::collection::vec(0u64..16_384, 1..100)) {
        let mut m = machine();
        let base = m.alloc_untrusted(1 << 15, 64);
        for off in addr_offs {
            let off = off & !63;
            let first = m.read(base.offset(off), 8).unwrap();
            let second = m.read(base.offset(off), 8).unwrap();
            prop_assert!(second <= first, "warm read {second} > cold-ish read {first}");
        }
    }

    /// Encrypted reads cost at least as much as plaintext reads for the
    /// same (cold) access pattern.
    #[test]
    fn encrypted_never_cheaper(len in 64u64..8_192) {
        let mut m = machine();
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        let enc = m.alloc_enclave_heap(eid, 8_192, 64).unwrap();
        let plain = m.alloc_untrusted(8_192, 64);
        // Warm both (page-in), then flush for a fair cold comparison.
        m.read(enc, len).unwrap();
        m.read(plain, len).unwrap();
        m.flush_all_caches();
        let enc_cost = m.read(enc, len).unwrap();
        m.flush_all_caches();
        let plain_cost = m.read(plain, len).unwrap();
        prop_assert!(
            enc_cost >= plain_cost,
            "encrypted {enc_cost} < plaintext {plain_cost} for len {len}"
        );
    }

    /// Enclave entry/exit pairs always balance: after any sequence of
    /// eenter/eexit attempts, a final exit fails iff we are not inside.
    #[test]
    fn entry_exit_state_machine(ops in proptest::collection::vec(any::<bool>(), 1..60)) {
        let mut m = machine();
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        let mut inside = false;
        for enter in ops {
            if enter {
                let r = m.eenter(eid, 0);
                prop_assert_eq!(r.is_ok(), !inside);
                if r.is_ok() { inside = true; }
            } else {
                let r = m.eexit(eid, 0);
                prop_assert_eq!(r.is_ok(), inside);
                if r.is_ok() { inside = false; }
            }
        }
    }

    /// The deterministic configuration is reproducible: identical access
    /// sequences cost identical cycles.
    #[test]
    fn determinism(seq in proptest::collection::vec((0u64..4_096, any::<bool>()), 1..120)) {
        let run = |seq: &[(u64, bool)]| {
            let mut m = machine();
            let base = m.alloc_untrusted(1 << 13, 64);
            for &(off, w) in seq {
                if w {
                    m.write(base.offset(off & !7), 8).unwrap();
                } else {
                    m.read(base.offset(off & !7), 8).unwrap();
                }
            }
            m.now()
        };
        prop_assert_eq!(run(&seq), run(&seq));
    }
}

#[test]
fn access_kind_is_plain_data() {
    // Keep the public enum honest (Send + Sync + Copy).
    fn assert_traits<T: Send + Sync + Copy>() {}
    assert_traits::<AccessKind>();
}

mod epc_properties {
    use proptest::prelude::*;
    use sgx_sim::epc::Epc;
    use sgx_sim::mem::PAGE_SIZE;
    use sgx_sim::PagingConfig;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Residency never exceeds physical capacity, whatever the touch
        /// sequence; every touch of a committed page succeeds.
        #[test]
        fn residency_bounded_by_capacity(
            capacity in 2u64..32,
            committed in 1u64..64,
            touches in proptest::collection::vec(0u64..64, 1..300),
        ) {
            let mut epc = Epc::new(PagingConfig {
                epc_bytes: capacity * PAGE_SIZE,
                ewb: 7_000,
                eldu: 7_000,
                fault_overhead: 5_000,
            });
            let (base, _) = epc.commit(1, committed).unwrap();
            prop_assert!(epc.resident_pages() <= capacity);
            for t in touches {
                let page = base.offset((t % committed) * PAGE_SIZE).page();
                let touch = epc.touch(page).unwrap();
                prop_assert!(epc.resident_pages() <= capacity);
                // A touch that paged in must charge at least fault+ELDU.
                if touch.paged_in {
                    prop_assert!(touch.cost.get() >= 12_000);
                } else {
                    prop_assert_eq!(touch.cost.get(), 0);
                }
                // Immediately re-touching is free (the page is resident).
                let again = epc.touch(page).unwrap();
                prop_assert!(!again.paged_in);
            }
            // Conservation: every ELDU besides commit-time thrash pairs
            // with a prior EWB of some victim.
            let stats = epc.stats();
            prop_assert!(stats.eldu <= stats.ewb + committed);
        }
    }
}

mod mee_properties {
    use proptest::prelude::*;
    use sgx_sim::mee::{AccessPattern, Mee};
    use sgx_sim::SimConfig;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Load cost is bounded: at least the crypto, at most crypto plus a
        /// full tree walk; and repeating the same line immediately never
        /// costs more than the first access.
        #[test]
        fn walk_cost_bounds(lines in proptest::collection::vec(0u64..100_000, 1..200)) {
            let cfg = SimConfig::default().mee;
            let mut mee = Mee::new(93 * 1024 * 1024, cfg);
            let levels = u64::from(mee.tree().levels());
            for line in lines {
                let first = mee.load_cost(line, AccessPattern::Demand).get();
                prop_assert!(first >= cfg.crypto_load);
                prop_assert!(first <= cfg.crypto_load + levels * cfg.node_fetch);
                let second = mee.load_cost(line, AccessPattern::Demand).get();
                prop_assert!(second <= first, "repeat walk must not lengthen");
            }
        }

        /// Write-backs bump versions by exactly one, monotonically.
        #[test]
        fn versions_monotone(ops in proptest::collection::vec((0u64..4_096, any::<bool>()), 1..300)) {
            let mut mee = Mee::new(16 << 20, SimConfig::default().mee);
            let mut model: std::collections::HashMap<u64, u64> = Default::default();
            for (line, streamed) in ops {
                let pattern = if streamed { AccessPattern::Streamed } else { AccessPattern::Demand };
                mee.writeback_cost(line, pattern);
                *model.entry(line).or_insert(0) += 1;
                prop_assert_eq!(mee.tree().version(line), model[&line]);
            }
        }
    }
}
