//! Property tests of the lock-free ring data plane: exactly-once
//! delivery and untorn payload handoff through the `UnsafeCell` slots,
//! over arbitrary ring shapes, pool sizes, drain batches, and thread
//! interleavings — including shutdown racing in-flight submissions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use hotcalls::rt::{CallTable, RingServer};
use hotcalls::{HotCallConfig, HotCallError};

/// A payload with internal redundancy: `check` must always equal
/// `value ^ MAGIC`. A torn read or write through the slot's payload cells
/// (one half from one call, one from another) breaks the pairing, which
/// the handler verifies on every delivery.
const MAGIC: u64 = 0x9e37_79b9_7f4a_7c15;

fn sealed(value: u64) -> (u64, u64) {
    (value, value ^ MAGIC)
}

proptest! {
    // Every case spawns a thread pool; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary (capacity × responders × requesters × drain batch)
    /// shapes: every submitted payload arrives exactly once, untorn, and
    /// every response returns to the requester that submitted it.
    #[test]
    fn pool_delivers_exactly_once_untorn(
        capacity in 1usize..8,
        n_responders in 1usize..4,
        n_requesters in 1usize..5,
        per_thread in 1usize..60,
        drain_batch in 1u32..16,
    ) {
        let delivered = Arc::new(AtomicU64::new(0));
        let mut table: CallTable<(u64, u64), u64> = CallTable::new();
        let seal_check = {
            let delivered = Arc::clone(&delivered);
            table.register(move |(value, check)| {
                assert_eq!(check, value ^ MAGIC, "torn payload through the slot");
                delivered.fetch_add(1, Ordering::Relaxed);
                value.wrapping_mul(3)
            })
        };
        let config = HotCallConfig { drain_batch, ..HotCallConfig::patient() };
        let server = RingServer::spawn_pool(table, capacity, n_responders, config).unwrap();

        crossbeam::thread::scope(|s| {
            for th in 0..n_requesters as u64 {
                let r = server.requester();
                s.spawn(move |_| {
                    for i in 0..per_thread as u64 {
                        let value = th * 1_000_000 + i;
                        let got = r.call(seal_check, sealed(value)).unwrap();
                        // The response must belong to OUR submission.
                        assert_eq!(got, value.wrapping_mul(3));
                    }
                });
            }
        })
        .unwrap();

        let expected = (n_requesters * per_thread) as u64;
        prop_assert_eq!(delivered.load(Ordering::Relaxed), expected);
        prop_assert_eq!(server.stats().calls, expected);
        server.shutdown();
    }

    /// Shutdown racing in-flight submissions: every call either completes
    /// with its own untorn result or fails cleanly with a shutdown/timeout
    /// error — never a wrong value, a tear, or a hang.
    #[test]
    fn shutdown_races_inflight_submissions_cleanly(
        capacity in 1usize..6,
        n_responders in 1usize..3,
        n_requesters in 1usize..4,
        busy_calls in 1usize..40,
    ) {
        let mut table: CallTable<(u64, u64), u64> = CallTable::new();
        let seal_check = table.register(|(value, check): (u64, u64)| {
            assert_eq!(check, value ^ MAGIC, "torn payload through the slot");
            value.wrapping_mul(3)
        });
        let server = RingServer::spawn_pool(
            table,
            capacity,
            n_responders,
            HotCallConfig::patient(),
        )
        .unwrap();

        crossbeam::thread::scope(|s| {
            let mut handles = Vec::new();
            for th in 0..n_requesters as u64 {
                let r = server.requester();
                handles.push(s.spawn(move |_| {
                    let mut completed = 0u64;
                    // Submit until the server dies under us.
                    for i in 0..10_000u64 {
                        let value = th * 1_000_000 + i;
                        match r.call(seal_check, sealed(value)) {
                            Ok(got) => {
                                assert_eq!(got, value.wrapping_mul(3));
                                completed += 1;
                            }
                            Err(HotCallError::ResponderGone)
                            | Err(HotCallError::ResponderTimeout { .. }) => break,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                    completed
                }));
            }
            // Let the requesters get some traffic in flight, then pull the
            // plug while they are mid-stream.
            let warm = server.requester();
            for i in 0..busy_calls as u64 {
                warm.call(seal_check, sealed(900_000_000 + i)).unwrap();
            }
            server.shutdown();
            let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            // Sanity: the counter is meaningful (not everything failed
            // instantly in every interleaving is fine — zero is legal).
            let _ = total;
        })
        .unwrap();
    }
}
