//! Property tests of the async front end: no lost wakeups, no deadlock,
//! no double-redeem — across pooled, fused, and responder-flip
//! completions, over arbitrary drop/redeem interleavings.
//!
//! The waker protocol has one hazard class: a completion that races
//! waker registration and *loses the wakeup* leaves `block_on` parked
//! forever. These tests therefore run every scenario under a watchdog —
//! a parking executor that fails the case loudly after a deadline rather
//! than hanging the suite — while the usual conservation properties
//! (every submission redeemed exactly once, responses never crossed)
//! ride along.

use std::collections::HashSet;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use hotcalls::rt::{CallTable, HotCallServer, RingServer, ShardedServer};
use hotcalls::{block_on, FusedMode, HotCallConfig, Reactor, ResponderPolicy, ShardPolicy};

/// Runs `f` on a helper thread and panics if it has not finished within
/// `deadline` — the "timeout assert" form of a parking executor: a lost
/// wakeup shows up as a failed case, not a hung suite.
fn with_watchdog<T: Send + 'static>(
    deadline: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(deadline) {
        Ok(value) => {
            worker.join().expect("worker panicked");
            value
        }
        Err(_) => panic!("lost wakeup or deadlock: case still parked after {deadline:?}"),
    }
}

const WATCHDOG: Duration = Duration::from_secs(30);

fn fused_of(tag: u8) -> FusedMode {
    match tag % 3 {
        0 => FusedMode::Off,
        1 => FusedMode::Auto,
        _ => FusedMode::Always,
    }
}

fn spin_config(fused: FusedMode) -> HotCallConfig {
    HotCallConfig {
        idle_polls_before_sleep: None,
        fused_mode: fused,
        ..HotCallConfig::patient()
    }
}

proptest! {
    // Every case spawns threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Ring futures under every fused mode and an arbitrary drop mask:
    /// redeemed futures resolve to their own response, dropped futures
    /// abandon cleanly, and the plane still serves a full sync sweep
    /// afterwards. A lost wakeup anywhere trips the watchdog.
    #[test]
    fn ring_futures_survive_arbitrary_interleavings(
        capacity in 1usize..6,
        responders in 1usize..3,
        fused_tag in 0u8..3,
        drop_mask in proptest::collection::vec(any::<bool>(), 1..48),
    ) {
        with_watchdog(WATCHDOG, move || {
            let mut table: CallTable<u64, u64> = CallTable::new();
            let id = table.register(|x| x.wrapping_mul(3));
            let server = RingServer::spawn_pool(
                table,
                capacity,
                responders,
                spin_config(fused_of(fused_tag)),
            )
            .unwrap();
            let r = server.requester();
            for (i, &drop_it) in drop_mask.iter().enumerate() {
                let x = i as u64;
                let fut = r.call_async(id, x).unwrap();
                if drop_it {
                    drop(fut);
                } else {
                    assert_eq!(block_on(fut).unwrap(), x.wrapping_mul(3));
                }
            }
            for x in 0..(2 * capacity) as u64 {
                assert_eq!(r.call(id, x).unwrap(), x.wrapping_mul(3));
            }
            server.shutdown();
        });
    }

    /// The same interleavings through the sharded plane, where the
    /// abandon board and waker slot live per shard.
    #[test]
    fn shard_futures_survive_arbitrary_interleavings(
        capacity in 1usize..6,
        shards in 1usize..3,
        fused_tag in 0u8..3,
        drop_mask in proptest::collection::vec(any::<bool>(), 1..48),
    ) {
        with_watchdog(WATCHDOG, move || {
            let mut table: CallTable<u64, u64> = CallTable::new();
            let id = table.register(|x| x.wrapping_mul(3));
            let server = ShardedServer::spawn(
                table,
                capacity,
                ShardPolicy::fixed(shards),
                spin_config(fused_of(fused_tag)),
            )
            .unwrap();
            let r = server.requester();
            for (i, &drop_it) in drop_mask.iter().enumerate() {
                let x = i as u64;
                let fut = r.call_async(id, x).unwrap();
                if drop_it {
                    drop(fut);
                } else {
                    assert_eq!(block_on(fut).unwrap(), x.wrapping_mul(3));
                }
            }
            for x in 0..(2 * capacity) as u64 {
                assert_eq!(r.call(id, x).unwrap(), x.wrapping_mul(3));
            }
            server.shutdown();
        });
    }

    /// Mailbox futures: one slot, so every drop/redeem decision lands on
    /// the same cell back to back — the tightest reuse interleaving.
    #[test]
    fn mailbox_futures_survive_arbitrary_interleavings(
        drop_mask in proptest::collection::vec(any::<bool>(), 1..32),
    ) {
        with_watchdog(WATCHDOG, move || {
            let mut table: CallTable<u64, u64> = CallTable::new();
            let id = table.register(|x| x.wrapping_mul(3));
            let server = HotCallServer::spawn(table, spin_config(FusedMode::Off));
            let r = server.requester();
            for (i, &drop_it) in drop_mask.iter().enumerate() {
                let x = i as u64;
                let fut = r.call_async(id, x).unwrap();
                if drop_it {
                    drop(fut);
                } else {
                    assert_eq!(block_on(fut).unwrap(), x.wrapping_mul(3));
                }
            }
            server.shutdown();
        });
    }

    /// The reactor against an adaptive pool whose active-responder count
    /// flips under load (the ctl path): every submission is retired
    /// exactly once — no seq reaped twice, none lost — and responses
    /// never cross wires.
    #[test]
    fn reactor_conserves_across_responder_flips(
        capacity in 2usize..8,
        calls in 1usize..160,
        flip_every in 1usize..24,
    ) {
        with_watchdog(WATCHDOG, move || {
            let mut table: CallTable<u64, u64> = CallTable::new();
            let id = table.register(|x| x.wrapping_mul(3));
            let server = RingServer::spawn_adaptive(
                table,
                capacity,
                ResponderPolicy::elastic(1, 2),
                spin_config(FusedMode::Off),
            )
            .unwrap();
            let r = server.requester();
            let mut reactor = Reactor::new(&r);
            let mut seen: HashSet<u64> = HashSet::new();
            let mut expected: std::collections::HashMap<u64, u64> =
                std::collections::HashMap::new();
            let mut reaped = 0usize;
            for i in 0..calls {
                if i % flip_every == 0 {
                    // Flip the active target both ways over the run.
                    server.set_active_responders(1 + (i / flip_every) % 2);
                }
                while reactor.inflight() > capacity / 2 {
                    reactor
                        .drain_until(Instant::now() + Duration::from_millis(5), |seq, resp| {
                            assert!(seen.insert(seq), "seq {seq} reaped twice");
                            assert_eq!(resp, expected.remove(&seq).unwrap(), "crossed wires");
                            reaped += 1;
                        })
                        .unwrap();
                }
                let x = i as u64;
                let seq = reactor.submit(id, x).unwrap();
                expected.insert(seq, x.wrapping_mul(3));
            }
            reactor
                .drain_all(Duration::from_millis(5), |seq, resp| {
                    assert!(seen.insert(seq), "seq {seq} reaped twice");
                    assert_eq!(resp, expected.remove(&seq).unwrap(), "crossed wires");
                    reaped += 1;
                })
                .unwrap();
            assert_eq!(reaped, calls, "tickets not conserved");
            assert!(expected.is_empty());
            server.shutdown();
        });
    }
}
