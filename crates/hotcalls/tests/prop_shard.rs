//! Property tests of the sharded data plane: concurrent requesters on
//! different home shards, responders stealing across shards, arbitrary
//! submit/reap interleavings.
//!
//! The invariants under test are the ones work stealing could break if a
//! claim or hand-off were wrong:
//!
//! * **No ticket is lost** — every submission reaps exactly one response
//!   (the per-requester pending set drains to empty, and the plane's
//!   serviced totals equal the number of calls issued).
//! * **No ticket is double-completed** — each response carries its own
//!   submission's value stamp; a slot serviced twice, or a response
//!   delivered to the wrong waiter, shows a mismatched stamp.
//! * **No ticket completes on the wrong shard** — a requester is pinned
//!   to its home shard, so a stamp encoding (home, seq) that comes back
//!   through a different shard's slot fails the check even when a sibling
//!   responder *serviced* it (stealing moves the servicing thread, never
//!   the slot).
//!
//! Plus a starvation check: a sibling shard kept saturated by flooders
//! must not indefinitely delay calls on a quiet home shard — the home
//! responder drains its own ring before probing siblings, so home-shard
//! calls complete promptly no matter how deep the neighbor's backlog.

use std::collections::VecDeque;

use proptest::prelude::*;

use hotcalls::rt::{CallTable, ShardedServer};
use hotcalls::{FusedMode, HotCallConfig, ShardPolicy};

const MAGIC: u64 = 0x9e37_79b9_7f4a_7c15;

/// The value a call stamps into its request: which requester sent it,
/// that requester's home shard, and its per-requester sequence number.
fn stamp(requester: usize, home: usize, seq: u64) -> u64 {
    ((requester as u64) << 48) | ((home as u64) << 40) | seq
}

fn shard_table() -> CallTable<u64, u64> {
    let mut table: CallTable<u64, u64> = CallTable::new();
    let id = table.register(|x| x ^ MAGIC);
    assert_eq!(id, 0, "first registration is id 0");
    table
}

proptest! {
    // Every case spawns a responder per shard; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary plane shapes, requester counts, pinnings, and per-thread
    /// submit/reap interleavings: every response matches its own
    /// submission's stamp, every pending set drains, and the plane's
    /// serviced totals account for every call exactly once.
    #[test]
    fn concurrent_stealing_loses_and_duplicates_nothing(
        shards in 1usize..5,
        capacity in 2usize..8,
        n_requesters in 1usize..5,
        // `true` pins every requester to shard 0 (maximum skew, maximum
        // stealing); `false` spreads them round-robin over all shards.
        skew in any::<bool>(),
        ops in prop::collection::vec(any::<bool>(), 8..96),
    ) {
        let config = HotCallConfig {
            // Short doze fuse: stealing paths and the cross-shard wake
            // protocol get exercised instead of pure spinning.
            idle_polls_before_sleep: Some(64),
            // Small claim budget: under full skew the pinned pipeliners
            // genuinely oversubscribe one shard, and a submit that can't
            // win a slot should report it in milliseconds, not spin out
            // the patient default.
            timeout_retries: 5_000,
            ..HotCallConfig::patient()
        };
        let server = ShardedServer::spawn(
            shard_table(),
            capacity,
            ShardPolicy::fixed(shards),
            config,
        )
        .unwrap();

        let requesters: Vec<_> = (0..n_requesters)
            .map(|i| {
                if skew {
                    server.requester_on(0).unwrap()
                } else {
                    server.requester_on(i % shards).unwrap()
                }
            })
            .collect();

        let total: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = requesters
                .iter()
                .enumerate()
                .map(|(ri, r)| {
                    let ops = &ops;
                    s.spawn(move || {
                        // FIFO reaping with depth < capacity keeps the
                        // monotonic head from lapping an unreaped slot,
                        // so the interleaving choice below is always
                        // legal. Out-of-order reaping is prop_pipeline's
                        // subject; here the adversary is the *other*
                        // threads and the stealing responders.
                        let depth = capacity - 1;
                        let mut pending: VecDeque<(hotcalls::rt::Ticket, u64)> =
                            VecDeque::new();
                        let mut seq = 0u64;
                        for &submit in ops {
                            if (submit || pending.is_empty()) && pending.len() < depth {
                                let value = stamp(ri, r.home(), seq);
                                match r.submit(0, value) {
                                    Ok(t) => {
                                        pending.push_back((t, value));
                                        seq += 1;
                                    }
                                    // Everyone pinned to one shard can
                                    // hold every slot as un-redeemed
                                    // DONE; a starved claim is legal
                                    // there. The accounting only counts
                                    // submissions that got a ticket.
                                    Err(hotcalls::HotCallError::ResponderTimeout {
                                        ..
                                    }) => {
                                        if let Some((t, value)) = pending.pop_front() {
                                            assert_eq!(r.wait(t).unwrap(), value ^ MAGIC);
                                        }
                                    }
                                    Err(e) => panic!("submit failed: {e:?}"),
                                }
                            } else {
                                let (t, value) = pending.pop_front().unwrap();
                                assert_eq!(r.wait(t).unwrap(), value ^ MAGIC);
                            }
                        }
                        while let Some((t, value)) = pending.pop_front() {
                            assert_eq!(r.wait(t).unwrap(), value ^ MAGIC);
                        }
                        seq
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });

        let rs = server.ring_stats();
        // Every submission was serviced exactly once, plane-wide.
        prop_assert_eq!(rs.totals.calls, total);
        let serviced: u64 = rs.shards.iter().map(|s| s.serviced).sum();
        prop_assert_eq!(serviced, total);
        // Nothing left between claim and service.
        prop_assert_eq!(rs.shards.iter().map(|s| s.occupancy).sum::<usize>(), 0);
        // Under full skew, only shard 0 ever held work — anything a
        // sibling responder serviced, it got by stealing from shard 0
        // (one winning probe can claim a whole drain batch, so hits
        // bound serviced from below, not equal it).
        if skew {
            for (i, sh) in rs.shards.iter().enumerate().skip(1) {
                prop_assert!(
                    sh.serviced == 0 || sh.steal_hits > 0,
                    "shard {} serviced {} calls without a single steal hit",
                    i, sh.serviced
                );
                prop_assert!(
                    sh.steal_hits <= sh.serviced,
                    "shard {} claims more winning probes ({}) than calls serviced ({})",
                    i, sh.steal_hits, sh.serviced
                );
            }
        }
        server.shutdown();
    }

    /// Fused↔pooled flips mid-stream: requesters alternate synchronous
    /// calls (which fuse under [`FusedMode::Auto`] whenever the home
    /// responders doze) with pipelined submits (which always ride the
    /// pool), while a short doze fuse keeps parking responders between
    /// bursts. The plane therefore flips service path many times per
    /// case, at interleavings chosen by the ops vector. No flip may
    /// lose, duplicate, or mis-deliver a ticket: every response carries
    /// its own submission's stamp, and the fused + pooled service counts
    /// partition the total exactly.
    #[test]
    fn fused_and_pooled_paths_interleave_without_losing_tickets(
        shards in 1usize..4,
        capacity in 2usize..8,
        n_requesters in 1usize..4,
        ops in prop::collection::vec(any::<u8>(), 16..96),
    ) {
        let config = HotCallConfig {
            // Short doze fuse: responders fall quiescent inside the
            // natural gaps of the interleaving, making the Auto gate
            // open and close repeatedly within one case.
            idle_polls_before_sleep: Some(64),
            timeout_retries: 5_000,
            fused_mode: FusedMode::Auto,
            ..HotCallConfig::patient()
        };
        let server = ShardedServer::spawn(
            shard_table(),
            capacity,
            ShardPolicy::fixed(shards),
            config,
        )
        .unwrap();

        let requesters: Vec<_> = (0..n_requesters)
            .map(|i| server.requester_on(i % shards).unwrap())
            .collect();

        let total: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = requesters
                .iter()
                .enumerate()
                .map(|(ri, r)| {
                    let ops = &ops;
                    s.spawn(move || {
                        let depth = capacity - 1;
                        let mut pending: VecDeque<(hotcalls::rt::Ticket, u64)> =
                            VecDeque::new();
                        let mut seq = 0u64;
                        for &op in ops {
                            match op % 3 {
                                // A synchronous call: the one path the
                                // Auto gate may run inline. Needs a free
                                // slot of its own, so keep one in
                                // reserve below the pipeline depth.
                                0 if pending.len() + 1 < depth => {
                                    let value = stamp(ri, r.home(), seq);
                                    match r.call(0, value) {
                                        Ok(resp) => {
                                            assert_eq!(resp, value ^ MAGIC);
                                            seq += 1;
                                        }
                                        Err(hotcalls::HotCallError::ResponderTimeout {
                                            ..
                                        }) => {}
                                        Err(e) => panic!("call failed: {e:?}"),
                                    }
                                }
                                // An async submit: never fuses under
                                // Auto, so this keeps the pooled path
                                // and the ring occupancy alive.
                                1 if pending.len() < depth => {
                                    let value = stamp(ri, r.home(), seq);
                                    match r.submit(0, value) {
                                        Ok(t) => {
                                            pending.push_back((t, value));
                                            seq += 1;
                                        }
                                        Err(hotcalls::HotCallError::ResponderTimeout {
                                            ..
                                        }) => {
                                            if let Some((t, value)) = pending.pop_front() {
                                                assert_eq!(
                                                    r.wait(t).unwrap(),
                                                    value ^ MAGIC
                                                );
                                            }
                                        }
                                        Err(e) => panic!("submit failed: {e:?}"),
                                    }
                                }
                                // Reap the oldest pending ticket.
                                _ => {
                                    if let Some((t, value)) = pending.pop_front() {
                                        assert_eq!(r.wait(t).unwrap(), value ^ MAGIC);
                                    }
                                }
                            }
                        }
                        while let Some((t, value)) = pending.pop_front() {
                            assert_eq!(r.wait(t).unwrap(), value ^ MAGIC);
                        }
                        seq
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });

        let rs = server.ring_stats();
        // The fused and pooled service paths partition the total: calls
        // run inline by requesters plus calls serviced by responder
        // threads account for every stamped submission exactly once.
        prop_assert_eq!(rs.totals.calls, total);
        let serviced: u64 = rs.shards.iter().map(|s| s.serviced).sum();
        prop_assert_eq!(rs.totals.fused_runs + serviced, total);
        // Nothing left in flight after every pending set drained.
        prop_assert_eq!(rs.shards.iter().map(|s| s.occupancy).sum::<usize>(), 0);
        server.shutdown();
    }
}

/// A saturated neighbor shard cannot indefinitely delay a home-shard
/// call: responders drain their own shard before probing siblings, so
/// shard 0's calls complete promptly while shard 1 holds a standing
/// backlog of slow calls.
#[test]
fn busy_neighbor_shard_does_not_starve_home_calls() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let mut table: CallTable<u64, u64> = CallTable::new();
    let fast = table.register(|x| x + 1);
    let slow = table.register(|x| {
        std::thread::sleep(std::time::Duration::from_micros(50));
        x
    });
    let config = HotCallConfig {
        idle_polls_before_sleep: Some(256),
        ..HotCallConfig::patient()
    };
    let server = ShardedServer::spawn(table, 8, ShardPolicy::fixed(2), config).unwrap();

    let home = server.requester_on(0).unwrap();
    let neighbor = server.requester_on(1).unwrap();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Two flooders keep shard 1 saturated with slow calls for the
        // whole test.
        for _ in 0..2 {
            let (neighbor, stop) = (&neighbor, &stop);
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let _ = neighbor.call(slow, i);
                    i += 1;
                }
            });
        }
        // Home-shard calls must all complete despite the neighbor's
        // standing backlog. `call` times out (to `ResponderTimeout`)
        // rather than blocking forever, so an `unwrap` here IS the
        // starvation check.
        let start = std::time::Instant::now();
        for i in 0..200u64 {
            assert_eq!(home.call(fast, i).unwrap(), i + 1);
        }
        let elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        assert!(
            elapsed < std::time::Duration::from_secs(10),
            "home-shard calls took {elapsed:?} behind a busy neighbor"
        );
    });
    let rs = server.ring_stats();
    assert!(rs.totals.calls >= 200);
    server.shutdown();
}
