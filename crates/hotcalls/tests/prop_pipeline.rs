//! Property tests of pipelined byte calls: arbitrary interleavings of
//! `submit` and `wait_any` keep the slab arena's generation tags honest.
//!
//! Each in-flight call owns an arena buffer; reaping out of order recycles
//! buffers in a different order than they were acquired, which is exactly
//! the traffic pattern that would surface a generation-tag bug (a stale
//! handle landing a buffer back on a free list it no longer owns, and a
//! later call reading the previous payload through it). The handler and
//! the reaper both verify every byte of every payload, and the arena's
//! `stale_recycles` counter must stay zero: under single-caller
//! pipelining every redeemed handle is current by construction.

use std::collections::HashMap;

use proptest::prelude::*;

use hotcalls::rt::{ByteCallTable, ByteCaller, ByteRing, Ticket};
use hotcalls::HotCallConfig;

const MAGIC: u64 = 0x9e37_79b9_7f4a_7c15;

/// value → the fill byte its payload tail carries. A recycled slab that
/// leaked a previous payload shows the *old* value's fill, which never
/// matches the new header.
fn fill_byte(value: u64) -> u8 {
    (value as u8) ^ 0x5A
}

fn encode(value: u64, len: usize) -> Vec<u8> {
    let mut data = vec![fill_byte(value); len.max(8)];
    data[..8].copy_from_slice(&value.to_le_bytes());
    data
}

/// Checks a response against the submission it must have come from.
fn verify_response(resp: &[u8], value: u64, len: usize) {
    assert_eq!(resp.len(), len, "response length drifted");
    let mut header = [0u8; 8];
    header.copy_from_slice(&resp[..8]);
    assert_eq!(
        u64::from_le_bytes(header),
        value ^ MAGIC,
        "response header from another call"
    );
    for (i, &b) in resp[8..].iter().enumerate() {
        assert_eq!(b, fill_byte(value), "stale response byte at {}", 8 + i);
    }
}

/// Reaps whichever in-flight call completes first and verifies it.
fn reap_any(
    caller: &mut ByteCaller,
    tickets: &mut Vec<Ticket>,
    pending: &mut HashMap<u64, (u64, usize)>,
) {
    let (seq, ()) = caller
        .wait_any_with(tickets, |seq, resp| {
            let (value, len) = pending[&seq];
            verify_response(resp, value, len);
        })
        .unwrap();
    pending.remove(&seq).expect("reaped an unknown ticket");
}

proptest! {
    // Every case spawns a responder pool; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary ring shapes and submit/reap interleavings, payload sizes
    /// straddling the inline/slab boundary: every reaped response matches
    /// its own submission byte for byte, and no recycle is ever stale.
    #[test]
    fn pipelined_reaps_recycle_without_stale_payloads(
        capacity in 2usize..8,
        n_responders in 1usize..4,
        drain_batch in 1u32..8,
        ops in prop::collection::vec((any::<bool>(), 0usize..120), 1..160),
    ) {
        let mut table = ByteCallTable::new();
        let id = table.register(|n, buf| {
            // Verify the request payload arrived whole, then stamp the
            // response over it: header becomes value ^ MAGIC, the fill
            // tail stays (so the reaper can check it too).
            let mut header = [0u8; 8];
            header.copy_from_slice(&buf[..8]);
            let value = u64::from_le_bytes(header);
            for (i, &b) in buf[8..n].iter().enumerate() {
                assert_eq!(b, fill_byte(value), "stale request byte at {}", 8 + i);
            }
            buf[..8].copy_from_slice(&(value ^ MAGIC).to_le_bytes());
            n
        });
        let config = HotCallConfig { drain_batch, ..HotCallConfig::patient() };
        let ring = ByteRing::spawn_pool(table, capacity, n_responders, config).unwrap();
        let mut caller = ring.caller();

        // Un-redeemed DONE slots keep their ring slots occupied, so the
        // deepest safe pipeline is capacity - 1 in flight.
        let depth = capacity - 1;
        let mut tickets: Vec<Ticket> = Vec::new();
        let mut pending: HashMap<u64, (u64, usize)> = HashMap::new();
        let mut next_value = 0u64;

        for (submit, extra_len) in ops {
            if (submit || tickets.is_empty()) && tickets.len() < depth {
                // Out-of-order reaping can starve one ticket while the
                // monotonic head laps the ring; a submission landing on
                // that still-occupied slot would block until it is
                // redeemed. Redeem any collider first — the reap-before-
                // wrapping discipline pipelined callers must follow.
                let next_slot = next_value as usize % capacity;
                if let Some(pos) = tickets
                    .iter()
                    .position(|t| t.seq() as usize % capacity == next_slot)
                {
                    let t = tickets.swap_remove(pos);
                    let (value, len) = pending.remove(&t.seq()).unwrap();
                    caller
                        .wait_with(t, |resp| verify_response(resp, value, len))
                        .unwrap();
                }
                let len = 8 + extra_len;
                let data = encode(next_value, len);
                let ticket = caller.submit(id, &data, 0).unwrap();
                pending.insert(ticket.seq(), (next_value, len));
                tickets.push(ticket);
                next_value += 1;
            } else {
                reap_any(&mut caller, &mut tickets, &mut pending);
            }
        }
        while !tickets.is_empty() {
            reap_any(&mut caller, &mut tickets, &mut pending);
        }

        prop_assert!(pending.is_empty());
        let stats = caller.arena_stats();
        prop_assert_eq!(stats.stale_recycles, 0);
        // Every call acquired exactly one buffer — inline, recycled slab,
        // or fresh allocation.
        prop_assert_eq!(stats.acquires(), next_value);
        ring.shutdown();
    }
}
