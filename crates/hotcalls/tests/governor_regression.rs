//! Regression guard for the CPU oversubscription cliff.
//!
//! `BENCH_rt.json` once showed the 1-requester × 4-responder CPU cell
//! running 2.6× *slower* than 1 × 1: on a shared-core host every per-call
//! doze wake dragged three useless responders through the scheduler, and
//! they churned the core the one useful responder needed. The adaptive
//! governor exists to close that cliff — surplus responders park on a
//! separate doze that per-call wakes never touch — so a pool with
//! `max = 4` must stay within noise of the best static shape instead of
//! 2.6× behind it.
//!
//! Thresholds are deliberately loose (CI machines are noisy and this runs
//! unoptimized); the regression being guarded against is multiples, not
//! percents.

use std::time::{Duration, Instant};

use hotcalls::rt::{CallTable, RingServer};
use hotcalls::{HotCallConfig, ResponderPolicy};

const RING_CAPACITY: usize = 64;
const WARMUP: Duration = Duration::from_millis(30);
const MEASURE: Duration = Duration::from_millis(200);

fn pool_config() -> HotCallConfig {
    HotCallConfig {
        idle_polls_before_sleep: Some(256),
        ..HotCallConfig::patient()
    }
}

/// Single-requester CPU-workload throughput under the given policy.
fn cpu_calls_per_sec(policy: ResponderPolicy) -> f64 {
    let (cps, stats) = cpu_run(policy);
    eprintln!("policy {policy:?}: {cps:.0} calls/s, governor {stats:?}");
    cps
}

fn cpu_run(policy: ResponderPolicy) -> (f64, hotcalls::GovernorStats) {
    let mut table: CallTable<u64, u64> = CallTable::new();
    let id = table.register(|x| x + 1);
    let server = RingServer::spawn_adaptive(table, RING_CAPACITY, policy, pool_config()).unwrap();
    let r = server.requester();

    let deadline = Instant::now() + WARMUP;
    let mut i = 0u64;
    while Instant::now() < deadline {
        assert_eq!(r.call(id, i).unwrap(), i + 1);
        i += 1;
    }

    let start = Instant::now();
    let deadline = start + MEASURE;
    let mut calls = 0u64;
    while Instant::now() < deadline {
        assert_eq!(r.call(id, calls).unwrap(), calls + 1);
        calls += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = server.governor_stats();
    server.shutdown();
    (calls as f64 / secs, stats)
}

/// An elastic pool with ceiling 4 must stay within noise of the best
/// static shape on a CPU-bound workload — the governor parks the three
/// responders that cannot help, so the old 2.6× oversubscription penalty
/// cannot come back unnoticed.
#[test]
fn adaptive_pool_tracks_best_static_shape_on_cpu_work() {
    let static_best = cpu_calls_per_sec(ResponderPolicy::fixed(1));
    let adaptive = cpu_calls_per_sec(ResponderPolicy::elastic(1, 4));

    // The guarded regression was a 2.6× cliff (ratio ≈ 0.38). Anything
    // above 0.55 is scheduler noise, not oversubscription churn.
    let ratio = adaptive / static_best;
    assert!(
        ratio > 0.55,
        "adaptive(1..4) at {adaptive:.0} calls/s is {ratio:.2}x the best \
         static shape ({static_best:.0} calls/s) — oversubscription is back"
    );
}
