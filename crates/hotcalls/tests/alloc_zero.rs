//! Allocation proof for the byte-payload hot path.
//!
//! The slab arena and inline fast path exist so that steady-state calls
//! touch no heap: inline payloads ride inside the ring slot, slab payloads
//! recycle through the caller's free lists. This test swaps in a counting
//! global allocator and asserts the delta across thousands of calls is
//! exactly zero — any per-call `Box`/`Vec` sneaking back into the
//! requester, ring, dispatch, or arena path fails it.
//!
//! The whole file is a single `#[test]` so no sibling test can allocate
//! concurrently and muddy the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hotcalls::rt::{
    ByteCallTable, ByteRing, CallTable, RingServer, SgCallTable, SgRing, INLINE_CAPACITY,
};
use hotcalls::{block_on, FusedMode, HotCallConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Spin-only config: an idle responder dozing on a condvar is fine in
/// production but would tangle OS wakeup bookkeeping into the counter.
fn spin_config() -> HotCallConfig {
    HotCallConfig {
        idle_polls_before_sleep: None,
        ..HotCallConfig::patient()
    }
}

#[test]
fn hot_path_makes_zero_heap_allocations() {
    let mut table = ByteCallTable::new();
    let id = table.register(|n, buf| {
        buf[..n].reverse();
        n
    });
    let ring = ByteRing::spawn_pool(table, 8, 1, spin_config()).unwrap();
    let mut caller = ring.caller();

    // Inline payloads: after warmup, N calls must allocate nothing at all.
    let data = [0x5Au8; INLINE_CAPACITY];
    for _ in 0..100 {
        caller.call(id, &data, 0).unwrap();
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..5_000 {
        let n = caller.call(id, &data, 0).unwrap();
        assert_eq!(n, data.len());
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(delta, 0, "inline hot path allocated {delta} times");
    assert_eq!(caller.arena_stats().allocs, 0);

    // Slab payloads: the first call allocates the slab, every later call
    // recycles it — steady state is alloc-free too.
    let big = vec![0xC3u8; 2048];
    for _ in 0..100 {
        caller.call(id, &big, 0).unwrap();
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..5_000 {
        let n = caller.call(id, &big, 0).unwrap();
        assert_eq!(n, big.len());
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(delta, 0, "slab steady state allocated {delta} times");
    assert_eq!(caller.arena_stats().allocs, 1);

    ring.shutdown();

    // Fused run-to-completion: the requester executes the handler inline
    // on its own core, so the path is shorter still — and must be just as
    // heap-free. `Always` forces every call through the fused branch.
    let mut table = ByteCallTable::new();
    let id = table.register(|n, buf| {
        buf[..n].reverse();
        n
    });
    let fused_config = HotCallConfig {
        fused_mode: FusedMode::Always,
        ..spin_config()
    };
    let ring = ByteRing::spawn_pool(table, 8, 1, fused_config).unwrap();
    let mut caller = ring.caller();
    let data = [0xA5u8; INLINE_CAPACITY];
    for _ in 0..100 {
        caller.call(id, &data, 0).unwrap();
    }
    // Under `Always` the warmup never needs the responder, so the freshly
    // spawned responder thread may still be mid-startup — and its one-time
    // startup allocations (thread-name bookkeeping) would land inside the
    // measured window. Wait until it is demonstrably inside its poll loop.
    while ring.stats().idle_polls == 0 {
        std::thread::yield_now();
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..5_000 {
        let n = caller.call(id, &data, 0).unwrap();
        assert_eq!(n, data.len());
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(delta, 0, "fused inline path allocated {delta} times");
    assert_eq!(caller.arena_stats().allocs, 0);
    // The inline branch actually ran: the warmup + measured calls were
    // overwhelmingly fused (a lost service race may pool a few).
    let s = ring.stats();
    assert!(s.fused_runs >= 5_000, "fused runs: {}", s.fused_runs);

    ring.shutdown();

    // Async front end: every measured call is submitted eagerly, parks
    // its waker, is woken by the responder, and redeems — all inside one
    // `block_on` (the executor allocates its thread-waker once, at
    // entry). Steady state must be exactly as heap-free as the sync
    // path: waker registration is an `Arc` refcount bump into a
    // pre-existing slot cell, never a fresh allocation.
    let mut table: CallTable<u64, u64> = CallTable::new();
    let id = table.register(|x| x.wrapping_add(1));
    let server = RingServer::spawn_pool(table, 8, 1, spin_config()).unwrap();
    let r = server.requester();
    block_on(async {
        for i in 0..100u64 {
            assert_eq!(r.call_async(id, i).unwrap().await.unwrap(), i + 1);
        }
        let before = ALLOCS.load(Ordering::Relaxed);
        for i in 0..5_000u64 {
            assert_eq!(r.call_async(id, i).unwrap().await.unwrap(), i + 1);
        }
        let delta = ALLOCS.load(Ordering::Relaxed) - before;
        assert_eq!(delta, 0, "async hot path allocated {delta} times");
    });
    server.shutdown();

    // Streaming scatter-gather: after warmup, chunks cycle through the
    // caller's arena (segments AND list shells recycle) and the in-flight
    // window's deque is reused across streams — zero allocations per
    // streamed chunk, with the credit window keeping several in flight.
    let mut table = SgCallTable::new();
    let id = table.register(|sg| sg.len());
    let ring = SgRing::spawn_pool(table, 8, 1, spin_config()).unwrap();
    let mut caller = ring.caller();
    let obj = vec![0x7Eu8; 192 << 10];
    for _ in 0..20 {
        caller.stream(id, &obj, 2, || 32 << 10, |_, _| {}).unwrap();
    }
    let arena_allocs = caller.arena_stats().allocs;
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..200 {
        let report = caller.stream(id, &obj, 2, || 32 << 10, |_, _| {}).unwrap();
        assert_eq!(report.submitted, report.redeemed);
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(delta, 0, "streamed chunks allocated {delta} times");
    assert_eq!(caller.arena_stats().allocs, arena_allocs);
    ring.shutdown();
}
