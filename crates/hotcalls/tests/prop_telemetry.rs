//! Property tests of the telemetry histogram algebra.
//!
//! The snapshot pipeline leans on one identity everywhere: merging the
//! per-lane histograms of a plane must give the same distribution as one
//! histogram fed every sample directly. If that breaks, every aggregated
//! percentile in `Snapshot::to_prometheus` and `BENCH_*.json` silently
//! reports the wrong tail. These tests pin the identity down — merge is
//! exact on bucket counts (not approximate), associative, and preserves
//! the count/max/percentile invariants — over arbitrary sample sets.

use proptest::prelude::*;

use hotcalls::telemetry::CycleHist;

/// Samples spanning the interesting bucket regimes: the exact linear
/// range near zero, mid-range log buckets, and the far tail.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..32, 32u64..100_000, any::<u64>(),]
}

fn hist_of(samples: &[u64]) -> CycleHist {
    let mut h = CycleHist::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    /// Merging the histograms of arbitrary partitions of a sample set
    /// equals the histogram of the concatenated samples, exactly: same
    /// summary (count, mean, every reported percentile, max) and same
    /// serialized form.
    #[test]
    fn merge_equals_concatenation(
        parts in prop::collection::vec(prop::collection::vec(sample(), 0..200), 0..6)
    ) {
        let mut merged = CycleHist::new();
        for part in &parts {
            merged.merge(&hist_of(part));
        }
        let concatenated: Vec<u64> = parts.concat();
        let direct = hist_of(&concatenated);
        prop_assert_eq!(merged.summary(), direct.summary());
        prop_assert_eq!(merged, direct);
    }

    /// Merge is associative and commutative: any grouping and order of
    /// lane merges yields the identical histogram.
    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(sample(), 0..120),
        b in prop::collection::vec(sample(), 0..120),
        c in prop::collection::vec(sample(), 0..120),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // (a ∪ b) ∪ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        // a ∪ (b ∪ c)
        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);

        // c ∪ a ∪ b
        let mut rotated = hc;
        rotated.merge(&ha);
        rotated.merge(&hb);

        prop_assert_eq!(left.clone(), right);
        prop_assert_eq!(left, rotated);
    }

    /// Count/max/percentile invariants on a merged histogram: the count
    /// is the sum of the parts, the max is the max of the parts, and
    /// percentiles are monotone in `q`, bracketed by 0 and the reported
    /// max, and within the bucketing's relative error of the true
    /// quantile sample.
    #[test]
    fn merged_percentiles_respect_invariants(
        a in prop::collection::vec(sample(), 1..200),
        b in prop::collection::vec(sample(), 1..200),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);

        let true_max = a.iter().chain(b.iter()).copied().max().unwrap();
        prop_assert_eq!(merged.max(), true_max);

        let mut all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        let mut prev = 0u64;
        for &q in &[0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let p = merged.percentile(q);
            prop_assert!(p >= prev, "percentile must be monotone in q");
            prop_assert!(p <= merged.max(), "percentile cannot exceed max");
            prev = p;

            // The reported value is an upper bound for the true quantile
            // sample, tight to the bucket's relative error (sub-bucket
            // resolution of 1/8 → ≤ 12.5%, plus one for integer rounding).
            let rank = ((q * all.len() as f64).ceil() as usize)
                .clamp(1, all.len());
            let truth = all[rank - 1];
            prop_assert!(p >= truth, "bucket upper bound must cover the sample");
            prop_assert!(
                (p as f64) <= (truth as f64) * 1.125 + 1.0,
                "p={p} too far above true quantile {truth}"
            );
        }
    }
}
