//! Regression: a dropped, never-redeemed ticket must not wedge its slot.
//!
//! Before the abandonment protocol, dropping a `Ticket` (or `MailTicket`)
//! leaked its ring slot: the responder marked the call `DONE`, nobody ever
//! redeemed it back to `EMPTY`, and the next submission to wrap onto that
//! position spun forever. The drop path now marks the slot's sequence on
//! the plane's abandon board and the next claimer (or the redeeming sweep)
//! reaps it. Each test here drops *more tickets than the plane has slots*
//! — under the old behaviour every one of them deadlocks — and then proves
//! the plane still serves sync traffic at full capacity.

use hotcalls::rt::{CallTable, HotCallServer, RingServer, ShardedServer};
use hotcalls::{HotCallConfig, ShardPolicy};

/// Spin-only config so a test failure is a fast spin, not a parked doze.
fn spin_config() -> HotCallConfig {
    HotCallConfig {
        idle_polls_before_sleep: None,
        ..HotCallConfig::patient()
    }
}

fn table() -> (CallTable<u64, u64>, u32) {
    let mut table: CallTable<u64, u64> = CallTable::new();
    let id = table.register(|x| x.wrapping_add(7));
    (table, id)
}

const CAPACITY: usize = 4;
/// Enough abandoned calls to wrap the ring several times over.
const DROPS: usize = 4 * CAPACITY;

#[test]
fn ring_dropped_ticket_releases_its_slot() {
    let (table, id) = table();
    let server = RingServer::spawn_pool(table, CAPACITY, 1, spin_config()).unwrap();
    let r = server.requester();
    for i in 0..DROPS as u64 {
        let ticket = r.submit(id, i).unwrap();
        drop(ticket); // never redeemed: the old leak, many times over
    }
    // The ring still serves: more sync calls than slots, all correct.
    for i in 0..(2 * CAPACITY) as u64 {
        assert_eq!(r.call(id, i).unwrap(), i.wrapping_add(7));
    }
    server.shutdown();
}

#[test]
fn ring_interleaved_drops_and_waits_stay_correct() {
    let (table, id) = table();
    let server = RingServer::spawn_pool(table, CAPACITY, 1, spin_config()).unwrap();
    let r = server.requester();
    for round in 0..DROPS as u64 {
        let dropped = r.submit(id, 1_000 + round).unwrap();
        let kept = r.submit(id, round).unwrap();
        drop(dropped);
        // The kept ticket redeems its own response, not the orphan's.
        assert_eq!(r.wait(kept).unwrap(), round.wrapping_add(7));
    }
    server.shutdown();
}

#[test]
fn shard_dropped_ticket_releases_its_slot() {
    let (table, id) = table();
    let server =
        ShardedServer::spawn(table, CAPACITY, ShardPolicy::fixed(2), spin_config()).unwrap();
    let r = server.requester();
    for i in 0..DROPS as u64 {
        let ticket = r.submit(id, i).unwrap();
        drop(ticket);
    }
    for i in 0..(2 * CAPACITY) as u64 {
        assert_eq!(r.call(id, i).unwrap(), i.wrapping_add(7));
    }
    server.shutdown();
}

#[test]
fn shard_interleaved_drops_and_waits_stay_correct() {
    let (table, id) = table();
    let server =
        ShardedServer::spawn(table, CAPACITY, ShardPolicy::fixed(2), spin_config()).unwrap();
    let r = server.requester();
    for round in 0..DROPS as u64 {
        let dropped = r.submit(id, 1_000 + round).unwrap();
        let kept = r.submit(id, round).unwrap();
        drop(dropped);
        assert_eq!(r.wait(kept).unwrap(), round.wrapping_add(7));
    }
    server.shutdown();
}

#[test]
fn mailbox_dropped_ticket_releases_the_slot() {
    let (table, id) = table();
    let server = HotCallServer::spawn(table, spin_config());
    let r = server.requester();
    // The mailbox holds exactly one call; every drop would wedge it.
    for i in 0..DROPS as u64 {
        let ticket = r.submit(id, i).unwrap();
        drop(ticket);
        assert_eq!(r.call(id, i).unwrap(), i.wrapping_add(7));
    }
    server.shutdown();
}
