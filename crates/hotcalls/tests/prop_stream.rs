//! Property tests of the streaming scatter-gather path: chunked
//! reassembly equivalence and ticket conservation under arbitrary chunk
//! schedules, window depths, and segment sizes.

use proptest::prelude::*;

use hotcalls::rt::{SgCallTable, SgRing};
use hotcalls::HotCallConfig;

/// A position-dependent byte transform: any chunking or reassembly
/// mistake — a swapped chunk, a stale offset, a segment boundary off by
/// one — changes the output, unlike a plain echo.
fn register_xform(table: &mut SgCallTable) -> u32 {
    table.register(|sg| {
        let n = sg.len();
        let mut pos = sg.meta();
        for seg in sg.segments_mut() {
            let len = seg.len();
            for b in &mut seg.raw_mut()[..len] {
                *b = b.wrapping_add((pos as u8) | 1);
                pos += 1;
            }
        }
        n
    })
}

fn xform_expected(data: &[u8]) -> Vec<u8> {
    data.iter()
        .enumerate()
        .map(|(i, b)| b.wrapping_add((i as u8) | 1))
        .collect()
}

proptest! {
    // Each case spawns a responder thread; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming an object as pipelined chunks — odd lengths, odd
    /// segment sizes, arbitrary chunk schedules, any window depth —
    /// reassembles byte-identically to pushing the whole buffer through
    /// one scatter-gather call.
    #[test]
    fn chunked_stream_reassembles_byte_identical(
        data in proptest::collection::vec(any::<u8>(), 0..8192),
        // Power-of-two, per the `set_segment_bytes` contract: in-place
        // handlers need segment capacity == segment size, and the arena
        // rounds capacities up to its power-of-two size classes.
        segment_bytes in (6u32..13).prop_map(|p| 1usize << p),
        schedule in proptest::collection::vec(1usize..6000, 1..8),
        window in 1usize..5,
    ) {
        let mut table = SgCallTable::new();
        let id = register_xform(&mut table);
        let ring = SgRing::spawn_pool(table, 8, 1, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        caller.set_segment_bytes(segment_bytes);
        let expected = xform_expected(&data);

        // Single-buffer path: the whole object in one call.
        let single = caller
            .call_sg_with(id, &data, |resp| {
                let mut out = Vec::new();
                resp.gather_into(&mut out);
                out
            })
            .unwrap();
        prop_assert_eq!(&single, &expected);

        // Chunked path: same object, pipelined under the credit window,
        // reassembled at the sink by chunk offset.
        let mut reassembled = vec![0u8; data.len()];
        let mut next_offset = 0u64;
        let mut it = schedule.iter().cycle();
        let report = caller
            .stream(id, &data, window, || *it.next().unwrap(), |offset, resp| {
                // Responses arrive in object order.
                assert_eq!(offset, next_offset);
                let mut chunk = Vec::new();
                resp.gather_into(&mut chunk);
                reassembled[offset as usize..offset as usize + chunk.len()]
                    .copy_from_slice(&chunk);
                next_offset = offset + chunk.len() as u64;
            })
            .unwrap();
        prop_assert_eq!(reassembled, expected);
        prop_assert_eq!(report.bytes_in, data.len() as u64);
        prop_assert_eq!(next_offset, data.len() as u64);
        ring.shutdown();
    }

    /// Every submitted ticket is redeemed exactly once, whatever the
    /// chunk schedule does mid-stream — the credit window neither leaks
    /// nor double-counts across resizes, and the resize count matches a
    /// local replay of the schedule.
    #[test]
    fn stream_conserves_tickets_across_resizes(
        len in 0usize..40_000,
        schedule in proptest::collection::vec(1usize..9000, 1..10),
        window in 1usize..5,
    ) {
        let mut table = SgCallTable::new();
        let echo = table.register(|sg| sg.len());
        let ring = SgRing::spawn_pool(table, 8, 1, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        let data = vec![0xD1u8; len];

        let mut it = schedule.iter().cycle();
        let report = caller
            .stream(echo, &data, window, || *it.next().unwrap(), |_, _| {})
            .unwrap();

        // Replay the chunking locally: the stream draws one schedule
        // entry per chunk, in submission order.
        let (mut chunks, mut resizes, mut off, mut last) = (0u64, 0u64, 0usize, 0usize);
        let mut replay = schedule.iter().cycle();
        while off < len {
            let c = (*replay.next().unwrap()).max(1);
            if chunks > 0 && c != last {
                resizes += 1;
            }
            last = c;
            chunks += 1;
            off = (off + c).min(len);
        }

        prop_assert_eq!(report.submitted, report.redeemed);
        prop_assert_eq!(report.submitted, report.chunks);
        prop_assert_eq!(report.chunks, chunks);
        prop_assert_eq!(report.resizes, resizes);
        prop_assert_eq!(report.bytes_in, len as u64);
        prop_assert_eq!(report.bytes_out, len as u64);
        ring.shutdown();
    }
}
