//! Property tests of the threaded HotCalls runtime: exactly-once
//! delivery, result integrity, and fallback accounting under arbitrary
//! schedules.

use proptest::prelude::*;

use hotcalls::rt::{CallTable, HotCallServer};
use hotcalls::HotCallConfig;

proptest! {
    // Thread spawning is expensive; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every request is answered by exactly the registered handler, once,
    /// in order, for an arbitrary sequence of call ids and payloads.
    #[test]
    fn sequential_calls_exactly_once(
        reqs in proptest::collection::vec((0u32..3, any::<u32>()), 1..200),
    ) {
        let mut table: CallTable<u64, u64> = CallTable::new();
        let add = table.register(|x| x + 1);
        let dbl = table.register(|x| x * 2);
        let neg = table.register(|x| !x);
        let ids = [add, dbl, neg];
        let server = HotCallServer::spawn(table, HotCallConfig::patient());
        let r = server.requester();
        let mut expected_calls = 0u64;
        for (which, payload) in reqs {
            let x = u64::from(payload);
            let got = r.call(ids[which as usize], x).unwrap();
            let want = match which { 0 => x + 1, 1 => x * 2, _ => !x };
            prop_assert_eq!(got, want);
            expected_calls += 1;
        }
        prop_assert_eq!(server.stats().calls, expected_calls);
        server.shutdown();
    }

    /// Two concurrent requesters with arbitrary workloads: the sum of all
    /// responses equals the sum computed locally (no lost or duplicated
    /// calls).
    #[test]
    fn concurrent_requesters_conserve_work(
        a in proptest::collection::vec(1u64..1_000, 1..60),
        b in proptest::collection::vec(1u64..1_000, 1..60),
    ) {
        let mut table: CallTable<u64, u64> = CallTable::new();
        let triple = table.register(|x| x * 3);
        let server = HotCallServer::spawn(table, HotCallConfig::patient());
        let (ra, rb) = (server.requester(), server.requester());
        let (va, vb) = (a.clone(), b.clone());
        let ha = std::thread::spawn(move || va.iter().map(|&x| ra.call(triple, x).unwrap()).sum::<u64>());
        let hb = std::thread::spawn(move || vb.iter().map(|&x| rb.call(triple, x).unwrap()).sum::<u64>());
        let total = ha.join().unwrap() + hb.join().unwrap();
        let want: u64 = a.iter().chain(b.iter()).map(|&x| x * 3).sum();
        prop_assert_eq!(total, want);
        prop_assert_eq!(server.stats().calls, (a.len() + b.len()) as u64);
        server.shutdown();
    }

    /// With idle sleep enabled at any threshold, calls still succeed and
    /// wake the responder as needed.
    #[test]
    fn idle_sleep_any_threshold_is_safe(threshold in 1u64..10_000, n in 1usize..50) {
        let mut table: CallTable<u64, u64> = CallTable::new();
        let echo = table.register(|x| x);
        let server = HotCallServer::spawn(
            table,
            HotCallConfig { idle_polls_before_sleep: Some(threshold), ..HotCallConfig::default() },
        );
        let r = server.requester();
        for i in 0..n as u64 {
            prop_assert_eq!(r.call(echo, i).unwrap(), i);
        }
        server.shutdown();
    }
}
