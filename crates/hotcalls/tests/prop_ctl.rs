//! Property tests of the control plane's per-API router.
//!
//! Two invariants, each over arbitrary workload shapes:
//!
//! * **Convergence** — under a *stationary* workload (fixed transport
//!   costs plus bounded noise, fixed inter-arrival), the routing table
//!   settles: the flip count stays bounded by hysteresis, the route
//!   stops moving, and when one transport's break-even score clearly
//!   dominates, the router lands on it. A router that oscillates on
//!   noise, or converges to the wrong side of the paper's break-even,
//!   fails here.
//! * **Conservation across flips** — a call site that re-consults the
//!   router before every call and pipelines its switchless calls loses
//!   nothing when the route flips mid-stream: every submission reaps
//!   exactly one response carrying its own stamp, and the ring's
//!   serviced totals account for exactly the calls that were routed
//!   switchless — no ticket is dropped or double-run at a transport
//!   boundary.
//!
//! Both tests no-op under `telemetry-off` builds, where the router
//! deliberately freezes every API on its registered default.

use std::collections::HashMap;

use proptest::prelude::*;

use hotcalls::ctl::{ApiRouter, CtlPolicy, Transport};
use hotcalls::rt::{CallTable, RingServer, Ticket};
use hotcalls::{HotCallConfig, TELEMETRY_ENABLED};

const MAGIC: u64 = 0x9e37_79b9_7f4a_7c15;

/// Deterministic noise in `[-spread, +spread]` around zero, from a
/// xorshift64* stream — the workload is stationary, not noiseless.
struct Jitter {
    state: u64,
}

impl Jitter {
    fn new(seed: u64) -> Self {
        Jitter { state: seed | 1 }
    }

    fn next(&mut self, spread: u64) -> i64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let r = self.state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        if spread == 0 {
            return 0;
        }
        (r % (2 * spread + 1)) as i64 - spread as i64
    }
}

/// The router's own break-even arithmetic: what each transport's
/// converged score should be under a stationary workload.
fn expected_score(policy: &CtlPolicy, transport: Transport, cost: u64, interarrival: u64) -> f64 {
    let standby = if transport == Transport::Sdk {
        0.0
    } else {
        policy.standby_fraction * interarrival as f64
    };
    cost as f64 + standby
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Stationary workloads converge: bounded flips, a quiet tail, and —
    /// whenever one side clearly wins the break-even — the right route.
    #[test]
    fn stationary_workload_converges_with_bounded_flips(
        sdk_cost in 2_000u64..20_000,
        hot_cost in 150u64..1_800,
        interarrival in 1_000u64..400_000,
        seed in any::<u64>(),
    ) {
        if !TELEMETRY_ENABLED {
            return;
        }
        let policy = CtlPolicy::default();
        let mut router = ApiRouter::new(policy).unwrap();
        let api = router.register("api", Transport::Hot, &[Transport::Sdk, Transport::Hot]);
        let mut jitter = Jitter::new(seed);

        // Enough observations that the SDK arm — sampled only through
        // exploration probes — clears `min_samples` with a long tail to
        // spare, then converges its EWMA.
        const OBSERVATIONS: u64 = 8_192;
        let mut now = 0u64;
        let mut flips_at_three_quarters = 0u64;
        for n in 0..OBSERVATIONS {
            now += interarrival;
            let t = router.route(api);
            let base = if t == Transport::Sdk { sdk_cost } else { hot_cost };
            // ±10% noise: inside the 15% flip margin, so a converged
            // estimate cannot be dislodged by noise alone.
            let cycles = base.saturating_add_signed(jitter.next(base / 10)).max(1);
            router.observe(api, t, cycles, now);
            if n == OBSERVATIONS * 3 / 4 {
                flips_at_three_quarters = router.flips_of(api);
            }
        }

        // Hysteresis bounds churn outright: a stationary workload may flip
        // while estimates warm up, then must stop.
        let flips = router.flips_of(api);
        prop_assert!(
            flips <= 3,
            "router churned: {} flips under a stationary workload",
            flips
        );

        let hot = expected_score(&policy, Transport::Hot, hot_cost, interarrival);
        let sdk = expected_score(&policy, Transport::Sdk, sdk_cost, interarrival);
        let ratio = hot.max(sdk) / hot.min(sdk).max(1.0);
        // Within the hysteresis band either side is a legitimate resting
        // place; outside it the verdict — and the tail — must be settled.
        if ratio >= 1.3 {
            let expected = if hot < sdk { Transport::Hot } else { Transport::Sdk };
            prop_assert_eq!(
                router.current(api), expected,
                "router converged to the wrong side of break-even \
                 (hot score {:.0}, sdk score {:.0})",
                hot, sdk
            );
            prop_assert_eq!(
                flips, flips_at_three_quarters,
                "route still moving in the final quarter of a stationary workload"
            );
        }
    }

    /// Route flips mid-stream lose and duplicate nothing: every call
    /// reaps its own stamp, and the ring serviced exactly the calls that
    /// were routed switchless.
    #[test]
    fn transport_flips_lose_and_duplicate_nothing(
        capacity in 2usize..8,
        depth in 1usize..6,
        // Cost regimes alternate per phase: hot-favored, then sdk-favored,
        // then back — each phase long enough (>= cooldown + decide stride)
        // to actually move the route.
        phases in 2usize..5,
        phase_len in 200u64..400,
        seed in any::<u64>(),
    ) {
        if !TELEMETRY_ENABLED {
            return;
        }
        // An unreaped ticket still owns its ring slot, so a pipeline
        // deeper than the ring deadlocks by construction.
        let depth = depth.min(capacity);
        let mut table: CallTable<u64, u64> = CallTable::new();
        let id = table.register(|x| x ^ MAGIC);
        let server = RingServer::spawn_pool(table, capacity, 1, HotCallConfig::patient()).unwrap();
        let r = server.requester();

        let mut router = ApiRouter::new(CtlPolicy {
            // Tight strides so a few hundred observations per phase can
            // flip the route back and forth.
            min_samples: 4,
            decide_every: 8,
            cooldown: 16,
            explore_every: 8,
            ..CtlPolicy::default()
        })
        .unwrap();
        let api = router.register("api", Transport::Hot, &[Transport::Sdk, Transport::Hot]);
        let mut jitter = Jitter::new(seed);

        let mut tickets: Vec<Ticket> = Vec::new();
        let mut pending: HashMap<u64, u64> = HashMap::new();
        let reap = |tickets: &mut Vec<Ticket>, pending: &mut HashMap<u64, u64>| {
            let (seq, resp) = r.wait_any(tickets).unwrap();
            let stamp = pending.remove(&seq).expect("reaped an unknown ticket");
            prop_assert_eq!(resp, stamp ^ MAGIC, "response from another call");
        };

        let mut now = 0u64;
        let (mut issued, mut hot_issued, mut sdk_issued) = (0u64, 0u64, 0u64);
        for phase in 0..phases {
            // Even phases favor the switchless side, odd phases the SDK —
            // the interesting moments are the boundaries in between.
            let (hot_cost, sdk_cost) = if phase % 2 == 0 {
                (500u64, 9_000u64)
            } else {
                (9_000u64, 500u64)
            };
            for _ in 0..phase_len {
                now += 1_000;
                let t = router.route(api);
                let stamp = MAGIC.wrapping_mul(issued + 1);
                if t == Transport::Sdk {
                    // The non-switchless path: executed at the call site,
                    // never touching the ring.
                    sdk_issued += 1;
                } else {
                    if tickets.len() == depth {
                        reap(&mut tickets, &mut pending);
                    }
                    let ticket = r.submit(id, stamp).unwrap();
                    pending.insert(ticket.seq(), stamp);
                    tickets.push(ticket);
                    hot_issued += 1;
                }
                issued += 1;
                let base = if t == Transport::Sdk { sdk_cost } else { hot_cost };
                let cycles = base.saturating_add_signed(jitter.next(base / 10)).max(1);
                router.observe(api, t, cycles, now);
            }
        }
        while !tickets.is_empty() {
            reap(&mut tickets, &mut pending);
        }

        prop_assert!(pending.is_empty(), "tickets lost across flips: {:?}", pending);
        prop_assert!(
            router.flips_of(api) >= 1,
            "cost regimes alternated but the route never flipped — the \
             boundary this test exists for never happened"
        );
        prop_assert_eq!(issued, hot_issued + sdk_issued);
        let stats = server.stats();
        prop_assert_eq!(
            stats.calls, hot_issued,
            "ring serviced a different number of calls than were routed to it"
        );
        server.shutdown();
    }
}
