//! The sharded data plane: N independent submission rings, a router
//! pinning each requester to a home shard, and work-stealing responders.
//!
//! The paper's Fig. 9 gives every call channel its own shared-memory
//! mailbox; [`super::RingServer`] collapsed that into one ring so several
//! requesters could share responders — at the cost of every requester
//! CASing the *same* head word. At scale that shared CAS becomes the new
//! 620-cycle-class bottleneck. [`ShardedServer`] splits the plane back
//! out: each shard is a full ring (slots, head, tail, doze line — all
//! cache-padded) with exactly one *home* responder, and the
//! [`ShardRouter`] pins each requester to a home shard, so uncontended
//! requesters never share a head CAS with anyone.
//!
//! **Work-stealing.** A responder drains its home shard first; only when
//! the home shard is empty does it probe sibling shards, in an order
//! rotated per pass so the probe load spreads instead of convoying on
//! shard 0. A burst on one shard is therefore absorbed by responders that
//! were already awake on quiet shards — no extra thread wakes for it.
//! `steals` counts sibling probes, `steal_hits` the probes that claimed
//! work.
//!
//! **Shard-aware governor.** The PR-3 [`GovernorState`] is reused with a
//! shard as the unit of elasticity: responders with index at or above the
//! active target park on the shared park doze, and the router stops
//! assigning new requesters to their shards. Residual submissions on a
//! parked shard are reaped by the stealing responders (every responder's
//! probe set covers *all* shards, parked included), and a submission whose
//! home responder is parked redirects its wakeup to an active sibling —
//! counted as `cross_shard_wakes` on the home shard.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::{
    FusedMode, GovernorStats, HotCallConfig, HotCallStats, ResponderPolicy, RingStats, ShardPolicy,
    ShardStats,
};
use crate::error::{HotCallError, Result};
use crate::telemetry::{
    now_cycles, trace, AtomicHist, LaneTelemetry, PlaneProvider, PlaneTelemetry, TELEMETRY_ENABLED,
};
use sgx_sim::{Placement, Topology};

use super::pool::{service_slot, service_slot_inline, WIN_CREDIT_POLLS};
use super::ring::{
    Bundle, BundleTicket, GovernorState, ReqEnvelope, RespEnvelope, RingShared, RingSlot, Ticket,
    DEADLINE_CHECK_POLLS,
};
use super::slot::{
    AbandonBoard, Backoff, CachePadded, CallSlot, Doze, StatCell, DONE, EMPTY, SUBMITTED,
};
use super::CallTable;

/// Grace polls a waiter grants the shutdown sweep before giving up on a
/// slot that will never complete (its payload is freed by the slot Drop).
const SHUTDOWN_GRACE_POLLS: u32 = 100_000;

/// Poll interval at which a waiter treats its in-flight call as "aging"
/// and nudges the governor to raise the active-shard target.
const AGE_POLLS_PER_RAISE: u32 = 4_096;

/// One shard: a full ring with its own head, tail and doze line, owned by
/// exactly one home responder (`shard index == responder index`).
struct Shard<Req, Resp> {
    /// Slots are 64-byte aligned; neighbouring slots never false-share.
    slots: Box<[RingSlot<Req, Resp>]>,
    /// Next slot a requester of *this shard* claims. Only this shard's
    /// requesters touch it — the whole point of sharding.
    head: CachePadded<AtomicUsize>,
    /// Next slot the responders service (home responder or a stealer).
    tail: CachePadded<AtomicUsize>,
    /// This shard's own doze line: per-call wakeups on one shard never
    /// disturb another shard's responder.
    doze: Doze,
    /// Submissions to this shard whose wakeup was redirected to a sibling
    /// responder (home responder parked or saturated).
    cross_shard_wakes: AtomicU64,
    /// Dropped-unredeemed tickets for this shard's slots (see
    /// [`AbandonBoard`]); one board per shard because slot sequences are
    /// per-shard.
    abandon: Arc<AbandonBoard>,
}

impl<Req, Resp> Shard<Req, Resp> {
    fn new(capacity: usize) -> Self {
        Shard {
            slots: (0..capacity).map(|_| CallSlot::new()).collect(),
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            doze: Doze::new(),
            cross_shard_wakes: AtomicU64::new(0),
            abandon: AbandonBoard::new(capacity),
        }
    }

    /// Reaps the slot a claimant at sequence `head` is lapping onto, if
    /// its occupant is a completed call whose ticket was dropped
    /// unredeemed (see [`RingShared::try_reap_abandoned`] — same
    /// exact-sequence discipline, scoped to this shard's board).
    fn try_reap_abandoned(&self, head: usize) {
        let cap = self.slots.len();
        let slot = &self.slots[head % cap];
        if slot.state() != DONE {
            return;
        }
        let seq = head.wrapping_sub(cap);
        if self.abandon.try_take(seq) {
            // SAFETY: winning the exact-sequence CAS transferred the
            // dropping submitter's redeem ownership to this thread, and
            // DONE was observed with Acquire above.
            drop(unsafe { slot.redeem() });
        }
    }

    /// Occupancy from a tail-before-head snapshot (wrap-proof; see
    /// [`RingShared::occupancy`]).
    fn occupancy_snapshot(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        RingShared::<Req, Resp>::occupancy(head, tail)
    }

    /// Is the slot at the ring front submitted (work a responder could
    /// claim right now)?
    fn front_submitted(&self) -> bool {
        let tail = self.tail.load(Ordering::Acquire);
        self.slots[tail % self.slots.len()].state() == SUBMITTED
    }
}

/// Per-responder statistics cell: the shared transport counters plus the
/// stealing counters. Only the owning responder writes any of it.
#[derive(Default)]
struct ShardStatCell {
    base: StatCell,
    home_polls: AtomicU64,
    steals: AtomicU64,
    steal_hits: AtomicU64,
}

/// The responder's private stealing counters, flushed alongside its
/// [`super::slot::LocalStats`].
#[derive(Default)]
struct LocalShardStats {
    home_polls: u64,
    steals: u64,
    steal_hits: u64,
}

impl LocalShardStats {
    fn flush(&self, cell: &ShardStatCell) {
        cell.home_polls.store(self.home_polls, Ordering::Relaxed);
        cell.steals.store(self.steals, Ordering::Relaxed);
        cell.steal_hits.store(self.steal_hits, Ordering::Relaxed);
    }
}

/// Pins requesters to home shards: round-robin over the currently active
/// shards, with an explicit affinity override ([`ShardedServer::requester_on`]).
struct ShardRouter {
    next: AtomicUsize,
}

impl ShardRouter {
    /// Picks a home shard for a new requester. Only shards below the
    /// governor's active target are eligible — the router never assigns
    /// to a parked shard.
    fn assign(&self, active: usize, shards: usize) -> usize {
        let eligible = active.clamp(1, shards);
        self.next.fetch_add(1, Ordering::Relaxed) % eligible
    }

    /// Picks the *active* shard whose responder is cheapest to hand a
    /// cache line to from `from`, under the convention that shard `i`'s
    /// responder runs at `topology.place(i)`. Same-core beats same-node
    /// beats cross-node; cost ties rotate through the round-robin cursor
    /// so co-located requesters still spread over equivalent shards.
    fn assign_near(
        &self,
        from: Placement,
        active: usize,
        shards: usize,
        topology: &Topology,
    ) -> usize {
        let eligible = active.clamp(1, shards);
        let cost = |i: usize| topology.transfer_cost(from, topology.place(i));
        let best = (0..eligible).map(cost).min().expect("at least one shard");
        let ties = (0..eligible).filter(|&i| cost(i) == best).count();
        let mut skip = self.next.fetch_add(1, Ordering::Relaxed) % ties;
        (0..eligible)
            .find(|&i| {
                cost(i) == best && {
                    if skip == 0 {
                        true
                    } else {
                        skip -= 1;
                        false
                    }
                }
            })
            .expect("a tie below `ties` always exists")
    }
}

struct ShardedShared<Req, Resp> {
    shards: Box<[Shard<Req, Resp>]>,
    /// The handler table, shared with every responder thread. Holding it
    /// here as well lets a *requester* dispatch inline on the fused
    /// run-to-completion path.
    table: Arc<CallTable<Req, Resp>>,
    shutdown: AtomicBool,
    /// The shard governor: `active_target` counts active *shards*; the
    /// park doze hosts responders of parked shards.
    governor: GovernorState,
    router: ShardRouter,
    /// Rotates the sibling a redirected wakeup lands on.
    wake_cursor: AtomicUsize,
    /// One padded cell per responder (= per shard); each responder writes
    /// only its own.
    responders: Box<[CachePadded<ShardStatCell>]>,
    /// Completion → redeem latency (reap stage), shared `fetch_add` cell
    /// written by requesters strictly after their call completed.
    reap_hist: CachePadded<AtomicHist>,
    // Requester-side event counters; rare, so shared RMWs are fine.
    fallbacks: AtomicU64,
    wakeups: AtomicU64,
    /// Calls executed inline by requesters (fused run-to-completion).
    /// Shared `fetch_add` cells, as in [`RingShared`]: the fused path only
    /// runs when the home shard is quiet, so contention is structurally
    /// rare.
    fused_runs: AtomicU64,
    fused_fallbacks: AtomicU64,
}

impl<Req, Resp> ShardedShared<Req, Resp> {
    /// Is any shard's ring front claimable right now? The sleep predicate
    /// of every responder: a stealer must not doze past work on a sibling
    /// shard it could reap.
    fn any_front_submitted(&self) -> bool {
        self.shards.iter().any(Shard::front_submitted)
    }

    fn snapshot(&self) -> HotCallStats {
        let fused_runs = self.fused_runs.load(Ordering::Relaxed);
        let mut s = HotCallStats {
            // Fused calls never touch a responder cell; seed `calls` with
            // them so the total is exact on either path.
            calls: fused_runs,
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            idle_polls: 0,
            busy_polls: 0,
            fused_runs,
            fused_fallbacks: self.fused_fallbacks.load(Ordering::Relaxed),
        };
        for cell in self.responders.iter() {
            s.calls += cell.base.calls.load(Ordering::Relaxed);
            s.idle_polls += cell.base.idle_polls.load(Ordering::Relaxed);
            s.busy_polls += cell.base.busy_polls.load(Ordering::Relaxed);
        }
        s
    }

    fn governor_snapshot(&self) -> GovernorStats {
        GovernorStats {
            active: self.governor.active_target.load(Ordering::Relaxed),
            parked: self.governor.parked_now.load(Ordering::Relaxed),
            parks: self.governor.parks.load(Ordering::Relaxed),
            wakes: self.governor.wakes.load(Ordering::Relaxed),
            min: self.governor.policy.min,
            max: self.governor.policy.max,
        }
    }

    fn ring_snapshot(&self) -> RingStats {
        let active = self.governor.active_target.load(Ordering::Relaxed);
        let shards = self
            .shards
            .iter()
            .zip(self.responders.iter())
            .enumerate()
            .map(|(i, (shard, cell))| ShardStats {
                shard: i,
                serviced: cell.base.calls.load(Ordering::Relaxed),
                home_polls: cell.home_polls.load(Ordering::Relaxed),
                steals: cell.steals.load(Ordering::Relaxed),
                steal_hits: cell.steal_hits.load(Ordering::Relaxed),
                cross_shard_wakes: shard.cross_shard_wakes.load(Ordering::Relaxed),
                parked: i >= active,
                occupancy: shard.occupancy_snapshot(),
            })
            .collect();
        RingStats {
            totals: self.snapshot(),
            governor: self.governor_snapshot(),
            shards,
        }
    }

    /// Records the reap-stage latency for a call whose completion stamp
    /// was read before redeeming its slot.
    #[inline]
    fn record_reap(&self, completed_at: u64) {
        if TELEMETRY_ENABLED {
            self.reap_hist
                .record_shared(now_cycles().saturating_sub(completed_at));
        }
    }

    /// The plane's full telemetry view. Lane index == responder index ==
    /// shard index (one home responder per shard); work a responder stole
    /// from a sibling shard is attributed to the *stealing* responder's
    /// lane, keeping each histogram cell single-writer.
    fn plane_telemetry(&self, name: &str) -> PlaneTelemetry {
        PlaneTelemetry {
            name: name.to_string(),
            kind: "sharded",
            stats: self.ring_snapshot(),
            lanes: self
                .responders
                .iter()
                .enumerate()
                .map(|(lane, cell)| LaneTelemetry {
                    lane,
                    queue: cell.base.stages.queue.snapshot(),
                    service: cell.base.stages.service.snapshot(),
                })
                .collect(),
            reap: self.reap_hist.snapshot(),
        }
    }

    /// Wakes a responder for a submission just published on `home`.
    ///
    /// Order of preference: the home responder's own doze (the common,
    /// contention-free case); failing that — the home responder is awake,
    /// busy, or parked — a sibling's doze, but only when the home shard
    /// actually needs help (it is parked, or backlog is building behind
    /// its busy responder). Redirected wakes are counted as
    /// `cross_shard_wakes` on the home shard.
    fn wake_for(&self, home: usize) {
        // One coherent snapshot per submission, taken *before* the home
        // wake attempt. `active` is loaded SeqCst so it is ordered with
        // the governor's demote/raise CASes; the park decision and the
        // backlog reading both come from this single snapshot. The old
        // code re-read `active` only after a failed home wake, racing
        // `try_demote`: the home responder could park between the wake
        // attempt and the re-read, and the redirect then concluded
        // "active, no backlog" for a shard that had just lost its
        // responder — stranding the submission until the next steal probe.
        let active = self.governor.active_target.load(Ordering::SeqCst);
        let parked_home = home >= active;
        // Tail before head (see RingShared::occupancy). The caller has
        // already published its own submission, so `> 1` means work
        // *beyond* this call is queued behind a busy responder.
        let backlog = self.shards[home].occupancy_snapshot() > 1;
        if self.shards[home].doze.wake() {
            self.wakeups.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let n = self.shards.len();
        if n == 1 {
            return;
        }
        if !parked_home && !backlog {
            return;
        }
        let start = self.wake_cursor.fetch_add(1, Ordering::Relaxed);
        for i in 0..n {
            let sibling = (start + i) % n;
            if sibling == home {
                continue;
            }
            if self.shards[sibling].doze.wake() {
                self.shards[home]
                    .cross_shard_wakes
                    .fetch_add(1, Ordering::Relaxed);
                self.wakeups.fetch_add(1, Ordering::Relaxed);
                trace("wake_redirect", home as u64, sibling as u64);
                return;
            }
        }
    }
}

impl<Req, Resp> core::fmt::Debug for ShardedShared<Req, Resp> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedShared")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.shards[0].slots.len())
            .field(
                "active",
                &self.governor.active_target.load(Ordering::Relaxed),
            )
            .finish()
    }
}

/// A running sharded data plane: N independent rings, one home responder
/// per shard, requesters pinned by the router, responders stealing across
/// shards, all governed by a [`ShardPolicy`].
///
/// # Examples
///
/// ```
/// use hotcalls::rt::{CallTable, ShardedServer};
/// use hotcalls::{HotCallConfig, ShardPolicy};
///
/// let mut table: CallTable<u64, u64> = CallTable::new();
/// let inc = table.register(|x| x + 1);
/// let server =
///     ShardedServer::spawn(table, 8, ShardPolicy::fixed(2), HotCallConfig::patient()).unwrap();
/// let r = server.requester();
/// assert_eq!(r.call(inc, 41).unwrap(), 42);
/// assert_eq!(server.shards(), 2);
/// ```
#[derive(Debug)]
pub struct ShardedServer<Req, Resp> {
    shared: Arc<ShardedShared<Req, Resp>>,
    config: HotCallConfig,
    joins: Vec<JoinHandle<()>>,
}

impl<Req, Resp> ShardedServer<Req, Resp>
where
    Req: Send + 'static,
    Resp: Send + 'static,
{
    /// Spawns the plane: `policy.resolved_shards()` shards of
    /// `capacity_per_shard` slots each, one responder thread per shard.
    ///
    /// # Errors
    ///
    /// [`HotCallError::InvalidConfig`] if `capacity_per_shard` is zero or
    /// the policy or config fail their [`ShardPolicy::validate`] /
    /// [`HotCallConfig::validate`] checks.
    pub fn spawn(
        table: CallTable<Req, Resp>,
        capacity_per_shard: usize,
        policy: ShardPolicy,
        config: HotCallConfig,
    ) -> Result<Self> {
        if capacity_per_shard == 0 {
            return Err(HotCallError::InvalidConfig(
                "shard capacity must be positive",
            ));
        }
        policy.validate()?;
        config.validate()?;
        let n_shards = policy.resolved_shards();
        // The PR-3 governor, reused with a shard as the unit: active
        // responders are exactly the responders of active shards.
        let governor = GovernorState::new(ResponderPolicy {
            min: policy.min_active,
            max: n_shards,
            target_occupancy: policy.target_occupancy,
            park_after_idle_polls: policy.park_after_idle_polls,
        });
        let table = Arc::new(table);
        let shared = Arc::new(ShardedShared {
            shards: (0..n_shards)
                .map(|_| Shard::new(capacity_per_shard))
                .collect(),
            table: Arc::clone(&table),
            shutdown: AtomicBool::new(false),
            governor,
            router: ShardRouter {
                next: AtomicUsize::new(0),
            },
            wake_cursor: AtomicUsize::new(0),
            responders: (0..n_shards)
                .map(|_| CachePadded::new(ShardStatCell::default()))
                .collect(),
            reap_hist: CachePadded::new(AtomicHist::new()),
            fallbacks: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            fused_runs: AtomicU64::new(0),
            fused_fallbacks: AtomicU64::new(0),
        });
        let joins = (0..n_shards)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let table = Arc::clone(&table);
                std::thread::Builder::new()
                    .name(format!("hotcalls-shard-responder-{index}"))
                    .spawn(move || shard_responder_loop(shared, table, index, config))
                    .expect("spawn shard responder")
            })
            .collect();
        Ok(ShardedServer {
            shared,
            config,
            joins,
        })
    }

    /// Creates a requester pinned to a router-chosen home shard
    /// (round-robin over the currently active shards).
    pub fn requester(&self) -> ShardedRequester<Req, Resp> {
        let active = self.shared.governor.active_target.load(Ordering::Relaxed);
        let home = self.shared.router.assign(active, self.shared.shards.len());
        ShardedRequester {
            shared: Arc::clone(&self.shared),
            config: self.config,
            home,
        }
    }

    /// Creates a requester placed on logical core `core`: the home shard
    /// is the currently *active* shard whose responder costs the least to
    /// hand a cache line to under `topology`, with shard `i`'s responder
    /// modeled at `topology.place(i)` (responders are spawned in shard
    /// order, so pinning them to consecutive cores matches this
    /// convention). A requester sharing its responder's core gets the
    /// free same-core handoff — the placement the fused run-to-completion
    /// path turns into skipped handoffs outright; a requester on another
    /// socket at least stays on the near side of the interconnect when an
    /// on-node shard is active.
    pub fn requester_near(&self, core: usize, topology: &Topology) -> ShardedRequester<Req, Resp> {
        let active = self.shared.governor.active_target.load(Ordering::Relaxed);
        let home = self.shared.router.assign_near(
            topology.place(core),
            active,
            self.shared.shards.len(),
            topology,
        );
        ShardedRequester {
            shared: Arc::clone(&self.shared),
            config: self.config,
            home,
        }
    }

    /// Creates a requester pinned to an explicit home shard — the
    /// affinity override for callers that partition work themselves.
    ///
    /// # Errors
    ///
    /// [`HotCallError::InvalidConfig`] if `shard` is out of range.
    pub fn requester_on(&self, shard: usize) -> Result<ShardedRequester<Req, Resp>> {
        if shard >= self.shared.shards.len() {
            return Err(HotCallError::InvalidConfig(
                "shard affinity index out of range",
            ));
        }
        Ok(ShardedRequester {
            shared: Arc::clone(&self.shared),
            config: self.config,
            home: shard,
        })
    }

    /// Number of shards (= responder threads) in the plane.
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Pool-wide transport totals.
    pub fn stats(&self) -> HotCallStats {
        self.shared.snapshot()
    }

    /// The shard governor's current shape and decision counters.
    pub fn governor_stats(&self) -> GovernorStats {
        self.shared.governor_snapshot()
    }

    /// Sets the active-shard target directly (the `ctl` sizer's control
    /// surface), clamped into `[min_active, shards]`, and returns the
    /// value installed. Shard responders converge on their next poll —
    /// surplus shards park (their residual submissions drain via
    /// stealing), and a raise wakes the parked set. The requester-side
    /// backlog governor keeps running on top.
    pub fn set_active_shards(&self, n: usize) -> usize {
        self.shared.governor.set_target(n)
    }

    /// The full per-shard snapshot: totals, governor, and one
    /// [`ShardStats`] row per shard (steals, steal hits, home polls,
    /// cross-shard wakes, occupancy).
    pub fn ring_stats(&self) -> RingStats {
        self.shared.ring_snapshot()
    }

    /// This plane's full telemetry view right now (kind `"sharded"`):
    /// per-shard counters plus per-lane queue/service histograms and the
    /// plane-wide reap histogram.
    pub fn telemetry(&self, name: &str) -> PlaneTelemetry {
        self.shared.plane_telemetry(name)
    }

    /// A [`PlaneProvider`] for [`crate::telemetry::TelemetryRegistry`];
    /// polled at snapshot time, holds the plane's shared state alive.
    pub fn telemetry_provider(&self, name: impl Into<String>) -> PlaneProvider {
        let shared = Arc::clone(&self.shared);
        let name = name.into();
        Box::new(move || shared.plane_telemetry(&name))
    }

    /// Stops the responders and joins them.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }
}

impl<Req, Resp> ShardedServer<Req, Resp> {
    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for shard in self.shared.shards.iter() {
            shard.doze.wake_all();
        }
        self.shared.governor.park_doze.wake_all();
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

impl<Req, Resp> Drop for ShardedServer<Req, Resp> {
    fn drop(&mut self) {
        if !self.joins.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// The sharded responder loop for responder `index` (home shard `index`):
/// drain the home shard first; when it is empty, probe sibling shards in
/// an order rotated per pass; park when the governor shrinks the active
/// set below this shard.
fn shard_responder_loop<Req, Resp>(
    shared: Arc<ShardedShared<Req, Resp>>,
    table: Arc<CallTable<Req, Resp>>,
    index: usize,
    config: HotCallConfig,
) {
    let n = shared.shards.len();
    let cell = &shared.responders[index];
    let gov = &shared.governor;
    let mut local = super::slot::LocalStats::default();
    let mut steal_stats = LocalShardStats::default();
    let mut backoff = Backoff::new();
    let mut idle_streak: u64 = 0;
    // Useful-work deficit: +1 per empty full pass, -WIN_CREDIT_POLLS per
    // slot won. Never reset by doze wakeups or wins (see super::pool).
    let mut polls_since_work: u64 = 0;
    let mut parked = false;
    // Rotates the sibling probe order so stealers don't convoy on the
    // same victim shard.
    let mut rotation: usize = 0;
    loop {
        if gov.adaptive() && index >= gov.active_target.load(Ordering::Acquire) {
            // Close the demote-after-publish window before going dark: a
            // submission can land on this shard between the demote CAS and
            // this park (its `wake_for` redirect may have fired while the
            // lowered target was not yet visible to it). Pull the active
            // set back up so a stealer reaps it, rather than strand the
            // call behind everyone's probe cadence.
            if shared.shards[index].front_submitted() {
                gov.try_raise();
            }
            if !parked {
                parked = true;
                gov.parks.fetch_add(1, Ordering::Relaxed);
                gov.parked_now.fetch_add(1, Ordering::Relaxed);
                local.flush(&cell.base);
                steal_stats.flush(cell);
            }
            gov.park_doze.sleep_unless(|| {
                shared.shutdown.load(Ordering::Acquire)
                    || index < gov.active_target.load(Ordering::Acquire)
            });
            if shared.shutdown.load(Ordering::Acquire) {
                gov.parked_now.fetch_sub(1, Ordering::Relaxed);
                local.flush(&cell.base);
                steal_stats.flush(cell);
                return;
            }
            if index >= gov.active_target.load(Ordering::Acquire) {
                // A raise woke everyone; we were not the one admitted.
                continue;
            }
            parked = false;
            gov.parked_now.fetch_sub(1, Ordering::Relaxed);
            idle_streak = 0;
            polls_since_work = 0;
            backoff.reset();
        }
        // Home shard first: a busy neighbour can never starve home calls,
        // because stealing only happens when the home shard is empty.
        steal_stats.home_polls += 1;
        let mut won = drain_shard(&shared, &table, index, &mut local, cell, config);
        if won == 0 {
            // Home empty: probe the siblings, rotated per pass.
            rotation = rotation.wrapping_add(1);
            for i in 0..n.saturating_sub(1) {
                let victim = (index + rotation + i) % n;
                if victim == index {
                    continue;
                }
                steal_stats.steals += 1;
                let stolen = drain_shard(&shared, &table, victim, &mut local, cell, config);
                if stolen > 0 {
                    steal_stats.steal_hits += 1;
                    trace("steal_hit", index as u64, victim as u64);
                    won += stolen;
                    break;
                }
            }
        }
        if won > 0 {
            idle_streak = 0;
            polls_since_work = polls_since_work.saturating_sub(won as u64 * WIN_CREDIT_POLLS);
            backoff.reset();
            // Keep the stealing counters as fresh as the base counters:
            // `service_slot` flushed those before the DONE hand-off, so a
            // reader who saw the completion must also see the probe that
            // produced it.
            steal_stats.flush(cell);
            continue;
        }
        // A full pass (home + every sibling) found nothing.
        if shared.shutdown.load(Ordering::Acquire) {
            // Drain-then-exit: the empty full pass doubles as the final
            // sweep — residual work on any shard, parked or not, was
            // reaped above before we got here.
            local.flush(&cell.base);
            steal_stats.flush(cell);
            return;
        }
        idle_streak += 1;
        polls_since_work += 1;
        local.idle_polls += 1;
        if local.idle_polls % 1024 == 0 {
            local.flush(&cell.base);
            steal_stats.flush(cell);
        }
        // Useful-work drought: the top active shard bows out. The park
        // branch above catches the lowered target next iteration.
        if gov.adaptive()
            && polls_since_work >= gov.policy.park_after_idle_polls
            && gov.try_demote(index)
        {
            continue;
        }
        if let Some(limit) = config.idle_polls_before_sleep {
            if idle_streak >= limit {
                local.flush(&cell.base);
                steal_stats.flush(cell);
                // Sleep on the *home* doze, but wake for work anywhere:
                // the predicate covers every shard so a stealable
                // submission published before we registered as a sleeper
                // is never slept past.
                shared.shards[index].doze.sleep_unless(|| {
                    shared.shutdown.load(Ordering::Acquire) || shared.any_front_submitted()
                });
                idle_streak = 0;
                backoff.reset();
                continue;
            }
        }
        backoff.snooze();
    }
}

/// Claims and services one batched run from `shard`'s ring front. Returns
/// the number of slots serviced (0 if the shard was empty or the tail CAS
/// was lost).
fn drain_shard<Req, Resp>(
    shared: &ShardedShared<Req, Resp>,
    table: &CallTable<Req, Resp>,
    shard_idx: usize,
    local: &mut super::slot::LocalStats,
    cell: &ShardStatCell,
    config: HotCallConfig,
) -> usize {
    let shard = &shared.shards[shard_idx];
    let cap = shard.slots.len();
    let batch = config.drain_batch_clamped().min(cap);
    let tail = shard.tail.load(Ordering::Acquire);
    let mut run = 0usize;
    while run < batch && shard.slots[tail.wrapping_add(run) % cap].state() == SUBMITTED {
        run += 1;
    }
    if run == 0 {
        return 0;
    }
    if shard
        .tail
        .compare_exchange(
            tail,
            tail.wrapping_add(run),
            Ordering::AcqRel,
            Ordering::Relaxed,
        )
        .is_err()
    {
        // Another responder (home or stealer) claimed the run.
        core::hint::spin_loop();
        return 0;
    }
    for i in 0..run {
        let slot = &shard.slots[tail.wrapping_add(i) % cap];
        // SAFETY: the tail CAS above transferred exclusive service
        // ownership of slots [tail, tail+run) on this shard to this
        // thread (tail is monotonic, so CAS success rules out any
        // concurrent claim — home responder or stealer alike), and no
        // requester can recycle these slots before they are serviced and
        // redeemed. SUBMITTED was observed with Acquire.
        unsafe { service_slot(slot, table, local, &cell.base) };
    }
    run
}

/// A requester pinned to one home shard of a [`ShardedServer`]. Every
/// submission goes to the home shard's ring, so two requesters on
/// different shards never contend on a head CAS; completions may still be
/// produced by *any* responder (home or stealer).
#[derive(Debug)]
pub struct ShardedRequester<Req, Resp> {
    shared: Arc<ShardedShared<Req, Resp>>,
    config: HotCallConfig,
    home: usize,
}

impl<Req, Resp> Clone for ShardedRequester<Req, Resp> {
    fn clone(&self) -> Self {
        ShardedRequester {
            shared: Arc::clone(&self.shared),
            config: self.config,
            home: self.home,
        }
    }
}

impl<Req, Resp> ShardedRequester<Req, Resp> {
    /// The home shard this requester submits to.
    pub fn home(&self) -> usize {
        self.home
    }

    /// Is the fused run-to-completion path worth attempting right now?
    /// Mirrors [`super::RingRequester`]'s gate with the home shard as the
    /// unit: under `Auto`, the shard's backlog must be below the
    /// break-even threshold and the shard must look unattended. The check
    /// is a heuristic — the tail CAS in `try_self_service` is the
    /// correctness edge.
    fn fused_eligible(&self, occupancy: usize) -> bool {
        match self.config.fused_mode {
            FusedMode::Off => false,
            FusedMode::Always => true,
            FusedMode::Auto => {
                occupancy < self.config.fused_below_occupancy && self.home_quiescent()
            }
        }
    }

    /// Does the home shard look unattended? A parked shard has no home
    /// responder at all; an active shard counts once its responder dozes.
    /// Stealers may still visit either way — the tail CAS arbitrates.
    fn home_quiescent(&self) -> bool {
        let active = self.shared.governor.active_target.load(Ordering::Relaxed);
        self.home >= active
            || self.shared.shards[self.home]
                .doze
                .sleepers
                .load(Ordering::Relaxed)
                > 0
    }

    /// Counts (and traces) a call that was fused-eligible in principle but
    /// rode the pooled path — the break-even gate said no, or the service
    /// race was lost to a responder.
    fn note_fused_fallback(&self, seq: u64) {
        if self.config.fused_mode != FusedMode::Off {
            self.shared.fused_fallbacks.fetch_add(1, Ordering::Relaxed);
            trace("fused_fallback", seq, self.home as u64);
        }
    }

    /// Tries to claim the just-published slot at `index` back from the
    /// responder set and service it on this thread. Returns `true` if the
    /// call ran inline (the slot is `DONE`, redeemable through the normal
    /// wait path, and no wakeup is needed).
    fn try_self_service(&self, index: usize) -> bool {
        let shard = &self.shared.shards[self.home];
        if shard
            .tail
            .compare_exchange(
                index,
                index.wrapping_add(1),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return false;
        }
        let slot = &shard.slots[index % shard.slots.len()];
        // SAFETY: the tail CAS granted exclusive service ownership of
        // exactly this slot (tail is monotonic, so success rules out any
        // concurrent home or stealing claim), and this requester published
        // it SUBMITTED with Release just above, so the payload is its own.
        let n = unsafe { service_slot_inline(slot, &self.shared.table) };
        self.shared.fused_runs.fetch_add(n, Ordering::Relaxed);
        trace("fused_run", index as u64, n);
        true
    }

    /// Claims a slot on the home shard and publishes `env` into it. On
    /// failure the envelope is handed back so the caller can recover the
    /// request payloads (the fallback path). With `allow_fuse` (and
    /// [`FusedMode::Always`]), the submission is serviced inline by this
    /// thread right after publishing — no handoff, no wake. With `arm`,
    /// the slot's waker cell is armed before publish so the completing
    /// side fires the future's waker (the async submit paths).
    fn submit_envelope(
        &self,
        id: u32,
        env: ReqEnvelope<Req>,
        allow_fuse: bool,
        arm: bool,
    ) -> core::result::Result<usize, (HotCallError, ReqEnvelope<Req>)> {
        let shard = &self.shared.shards[self.home];
        let cap = shard.slots.len();
        let gov = &self.shared.governor;
        let mut backoff = Backoff::new();
        for _retry in 0..self.config.timeout_retries {
            for _ in 0..self.config.spins_per_retry {
                if self.shared.shutdown.load(Ordering::Acquire) {
                    return Err((HotCallError::ResponderGone, env));
                }
                // Tail before head, as everywhere (occupancy cannot
                // underflow; see RingShared::occupancy).
                let tail = shard.tail.load(Ordering::Acquire);
                let head = shard.head.load(Ordering::Acquire);
                let occupancy = RingShared::<Req, Resp>::occupancy(head, tail);
                // Backlog deeper than the policy threshold means the
                // active shards are outpaced: un-park another whole shard
                // (its responder doubles as one more stealer).
                if gov.adaptive() && occupancy > gov.policy.target_occupancy_clamped() {
                    gov.try_raise();
                }
                if occupancy >= cap {
                    core::hint::spin_loop();
                    continue;
                }
                // The target slot may still hold an un-redeemed DONE
                // response from the previous lap; never claim a non-empty
                // slot — but if its occupant was *abandoned* (ticket
                // dropped unredeemed), reap it here so the lap can
                // proceed instead of wedging.
                if shard.slots[head % cap].state() != EMPTY {
                    shard.try_reap_abandoned(head);
                    core::hint::spin_loop();
                    continue;
                }
                if shard
                    .head
                    .compare_exchange(head, head + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                // Winning the head CAS makes the (empty) slot ours, as in
                // the single-ring plane.
                let slot = &shard.slots[head % cap];
                slot.mark_claimed();
                if arm {
                    // Before publish: the SUBMITTED Release store carries
                    // the armed flag to whichever thread completes the
                    // call, so its wake cannot be missed.
                    slot.arm_async();
                }
                // Async submissions fuse only under an explicit `Always`.
                // The caller chose the pipelined API to overlap work, and
                // under `Auto` an inline completion would collapse
                // occupancy back to zero before the next submission's gate
                // reads it — the plane would run whole bursts inline,
                // never wake a responder, and never hand the backlog to
                // the pool. `Auto`'s break-even gate lives on the
                // synchronous `call` path, where the requester would have
                // blocked anyway.
                let fuse = allow_fuse && self.config.fused_mode == FusedMode::Always;
                // SAFETY: the head CAS above granted exclusive claim
                // ownership of this slot; publish once.
                unsafe { slot.publish(id, env) };
                if fuse {
                    if self.try_self_service(head) {
                        // Ran inline: the slot is DONE and redeems through
                        // the normal wait path; nobody needs waking.
                        return Ok(head);
                    }
                    // Lost the service race — a responder or stealer beat
                    // us to the tail, or older work sits ahead. The call
                    // rides the pooled path, which still needs its wakeup:
                    // skipping it can strand this submission if every
                    // responder dozes after draining past the front.
                    self.note_fused_fallback(head as u64);
                }
                self.shared.wake_for(self.home);
                return Ok(head);
            }
            backoff.snooze();
        }
        self.shared.fallbacks.fetch_add(1, Ordering::Relaxed);
        Err((
            HotCallError::ResponderTimeout {
                retries: self.config.timeout_retries,
            },
            env,
        ))
    }

    /// Claims a home-shard slot and submits without waiting. The returned
    /// [`Ticket`] is redeemed against this same requester (the shard is
    /// implicit in the pinning). The in-flight discipline of
    /// [`super::RingRequester::submit`] applies per shard.
    ///
    /// # Errors
    ///
    /// [`HotCallError::ResponderTimeout`] if no slot frees up within the
    /// retry budget; [`HotCallError::ResponderGone`] after shutdown.
    pub fn submit(&self, id: u32, req: Req) -> Result<Ticket> {
        match self.submit_envelope(id, ReqEnvelope::One(req), true, false) {
            Ok(index) => Ok(Ticket {
                index,
                board: Some(Arc::clone(&self.shared.shards[self.home].abandon)),
            }),
            Err((e, _)) => Err(e),
        }
    }

    /// [`ShardedRequester::submit`] with the slot's waker cell armed: the
    /// completing side (home responder, stealer, fused-inline service or
    /// the shutdown sweep) fires a waker registered against the returned
    /// ticket — the `hotcalls::aio` completion hook on the sharded plane.
    pub(crate) fn submit_async(&self, id: u32, req: Req) -> Result<Ticket> {
        match self.submit_envelope(id, ReqEnvelope::One(req), true, true) {
            Ok(index) => Ok(Ticket {
                index,
                board: Some(Arc::clone(&self.shared.shards[self.home].abandon)),
            }),
            Err((e, _)) => Err(e),
        }
    }

    /// The future-side poll: redeem if complete, otherwise register
    /// `cx`'s waker with the home-shard slot and stay pending. Takes the
    /// ticket out of `ticket` exactly when it returns `Ready`.
    pub(crate) fn poll_ticket(
        &self,
        ticket: &mut Option<Ticket>,
        cx: &mut Context<'_>,
    ) -> Poll<Result<Resp>> {
        let index = ticket
            .as_ref()
            .expect("future polled after completion")
            .index;
        let shard = &self.shared.shards[self.home];
        let slot = &shard.slots[index % shard.slots.len()];
        if slot.state() == DONE || slot.register_waker(cx.waker()) {
            ticket.take().expect("present above").defuse();
            return Poll::Ready(self.redeem_one(index));
        }
        if self.shared.shutdown.load(Ordering::Acquire) {
            // The drain sweep may have completed the call between the
            // registration above and the flag load; deliver if so.
            if slot.state() == DONE {
                ticket.take().expect("present above").defuse();
                return Poll::Ready(self.redeem_one(index));
            }
            // A submission that raced the flag may never be serviced;
            // abandon the call (the drop marks the slot reapable) and
            // surface the shutdown.
            drop(ticket.take());
            return Poll::Ready(Err(HotCallError::ResponderGone));
        }
        Poll::Pending
    }

    /// Packs `bundle` into one home-shard submission (one claim, one
    /// dispatch, at most one wakeup).
    ///
    /// # Errors
    ///
    /// [`HotCallError::InvalidConfig`] for an empty bundle, otherwise as
    /// [`ShardedRequester::submit`].
    pub fn submit_bundle(&self, bundle: Bundle<Req>) -> Result<BundleTicket> {
        if bundle.is_empty() {
            return Err(HotCallError::InvalidConfig(
                "a bundle must pack at least one call",
            ));
        }
        let len = bundle.len();
        trace("bundle_submit", len as u64, self.home as u64);
        match self.submit_envelope(0, ReqEnvelope::Bundle(bundle.calls), true, false) {
            Ok(index) => Ok(BundleTicket {
                index,
                len,
                board: Some(Arc::clone(&self.shared.shards[self.home].abandon)),
            }),
            Err((e, _)) => Err(e),
        }
    }

    /// Spins until the home-shard slot behind `index` is DONE.
    fn wait_done(&self, index: usize) -> Result<()> {
        let shard = &self.shared.shards[self.home];
        let cap = shard.slots.len();
        let slot = &shard.slots[index % cap];
        let gov = &self.shared.governor;
        let mut backoff = Backoff::new();
        let mut grace: u32 = 0;
        let mut age_polls: u32 = 0;
        loop {
            if slot.state() == DONE {
                return Ok(());
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                grace += 1;
                if grace > SHUTDOWN_GRACE_POLLS {
                    return Err(HotCallError::ResponderGone);
                }
            }
            // In-flight age: stuck behind busy responders — ask the
            // governor to un-park another shard's responder (one more
            // stealer that can reach this shard).
            age_polls += 1;
            if gov.adaptive() && age_polls.is_multiple_of(AGE_POLLS_PER_RAISE) {
                gov.try_raise();
            }
            backoff.snooze();
        }
    }

    /// Redeems the single-call response sitting DONE at `index` on the
    /// home shard. The caller must be (or act for) the submitter and must
    /// have observed `DONE` with Acquire.
    fn redeem_one(&self, index: usize) -> Result<Resp> {
        let shard = &self.shared.shards[self.home];
        let slot = &shard.slots[index % shard.slots.len()];
        // Read the completion stamp before redeeming frees the slot.
        let completed_at = slot.completed_at();
        // SAFETY: this requester submitted the call at `index` on its
        // home shard and observed DONE with Acquire; only the submitter
        // redeems a slot.
        let result = match unsafe { slot.redeem() } {
            Ok(RespEnvelope::One(resp)) => Ok(resp),
            Ok(RespEnvelope::Bundle(_)) => {
                unreachable!("a Ticket is only minted for single-call submissions")
            }
            Err(e) => Err(e),
        };
        self.shared.record_reap(completed_at);
        result
    }

    /// Wait + redeem by raw slot sequence: the synchronous call paths use
    /// this directly so they never mint a ticket (and never touch the
    /// abandonment board) at all.
    fn wait_index(&self, index: usize) -> Result<Resp> {
        self.wait_done(index)?;
        self.redeem_one(index)
    }

    /// Waits for a submitted call and returns its response.
    ///
    /// # Errors
    ///
    /// [`HotCallError::ResponderGone`] if the server shut down first, or
    /// the handler's own error.
    pub fn wait(&self, mut ticket: Ticket) -> Result<Resp> {
        self.wait_index(ticket.defuse())
    }

    /// Redeems the response if the call already completed, or hands the
    /// ticket back untouched.
    pub fn try_wait(&self, ticket: Ticket) -> core::result::Result<Result<Resp>, Ticket> {
        let shard = &self.shared.shards[self.home];
        let slot = &shard.slots[ticket.index % shard.slots.len()];
        if slot.state() != DONE {
            return Err(ticket);
        }
        let mut ticket = ticket;
        Ok(self.redeem_one(ticket.defuse()))
    }

    /// Waits until *any* of `tickets` (all from this requester) completes,
    /// removes it, and returns its sequence number with the response.
    ///
    /// # Errors
    ///
    /// As [`super::RingRequester::wait_any`].
    pub fn wait_any(&self, tickets: &mut Vec<Ticket>) -> Result<(u64, Resp)> {
        if tickets.is_empty() {
            return Err(HotCallError::InvalidConfig(
                "wait_any needs at least one ticket",
            ));
        }
        let reaped = self.wait_any_inner(tickets, None)?;
        Ok(reaped.expect("a deadline-free wait_any only returns on a completion"))
    }

    /// [`ShardedRequester::wait_any`] bounded by a deadline: returns
    /// `Ok(None)` — with every ticket left in the set — if nothing
    /// completes by `deadline` (or the set is empty).
    ///
    /// # Errors
    ///
    /// As [`ShardedRequester::wait_any`], except that an empty set is
    /// `Ok(None)` instead of an error.
    pub fn wait_any_until(
        &self,
        tickets: &mut Vec<Ticket>,
        deadline: Instant,
    ) -> Result<Option<(u64, Resp)>> {
        if tickets.is_empty() {
            return Ok(None);
        }
        self.wait_any_inner(tickets, Some(deadline))
    }

    /// [`ShardedRequester::wait_any_until`] with a relative timeout.
    ///
    /// # Errors
    ///
    /// As [`ShardedRequester::wait_any_until`].
    pub fn wait_any_timeout(
        &self,
        tickets: &mut Vec<Ticket>,
        timeout: Duration,
    ) -> Result<Option<(u64, Resp)>> {
        if tickets.is_empty() {
            return Ok(None);
        }
        self.wait_any_inner(tickets, Some(Instant::now() + timeout))
    }

    fn wait_any_inner(
        &self,
        tickets: &mut Vec<Ticket>,
        deadline: Option<Instant>,
    ) -> Result<Option<(u64, Resp)>> {
        let shard = &self.shared.shards[self.home];
        let cap = shard.slots.len();
        let gov = &self.shared.governor;
        let mut backoff = Backoff::new();
        let mut grace: u32 = 0;
        let mut polls: u32 = 0;
        loop {
            // Redeem the *oldest* completed ticket (ring indices are
            // monotonic), never just the first one found. With
            // instantly-completing submissions (the fused path), a
            // first-found scan keeps redeeming whichever ticket
            // `swap_remove` rotated to the front — always the youngest —
            // while older DONE slots sit un-redeemed until the head laps
            // onto one; `submit` then spins on a slot only this very
            // caller could free. Oldest-first bounds an un-redeemed
            // completion's age by the caller's in-flight window.
            let mut oldest: Option<usize> = None;
            for i in 0..tickets.len() {
                if shard.slots[tickets[i].index % cap].state() == DONE
                    && oldest.is_none_or(|o| tickets[i].index < tickets[o].index)
                {
                    oldest = Some(i);
                }
            }
            if let Some(i) = oldest {
                let mut ticket = tickets.swap_remove(i);
                let seq = ticket.seq();
                let index = ticket.defuse();
                return self.redeem_one(index).map(|resp| Some((seq, resp)));
            }
            // Deadline check on a stride: `Instant::now` per spin would
            // dominate the wait loop. The first iteration checks too, so
            // an already-expired deadline still gets exactly one scan.
            // Once the backoff has escalated to yielding, every poll
            // already costs a scheduler quantum, so the stride no longer
            // buys anything — check every poll instead. On a quiescent
            // plane the old stride let up to 64 yields (milliseconds of
            // quanta) pass between deadline reads, overshooting small
            // timeouts and delaying streaming credit refills.
            if polls.is_multiple_of(DEADLINE_CHECK_POLLS) || backoff.yields() {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Ok(None);
                    }
                }
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                grace += 1;
                if grace > SHUTDOWN_GRACE_POLLS {
                    return Err(HotCallError::ResponderGone);
                }
            }
            polls = polls.wrapping_add(1);
            if gov.adaptive() && polls.is_multiple_of(AGE_POLLS_PER_RAISE) {
                gov.try_raise();
            }
            backoff.snooze();
        }
    }

    /// Waits for a bundle and returns one result per call, in submission
    /// order.
    ///
    /// # Errors
    ///
    /// As [`super::RingRequester::wait_bundle`].
    pub fn wait_bundle(&self, mut ticket: BundleTicket) -> Result<Vec<Result<Resp>>> {
        let index = ticket.defuse();
        self.wait_done(index)?;
        let shard = &self.shared.shards[self.home];
        let slot = &shard.slots[index % shard.slots.len()];
        let completed_at = slot.completed_at();
        // SAFETY: as in `wait` — DONE observed with Acquire by the
        // submitting requester.
        let result = match unsafe { slot.redeem() } {
            Ok(RespEnvelope::Bundle(results)) => Ok(results),
            Ok(RespEnvelope::One(_)) => {
                unreachable!("a BundleTicket is only minted for bundle submissions")
            }
            Err(e) => Err(e),
        };
        self.shared.record_reap(completed_at);
        result
    }

    /// Submit + wait in one step.
    ///
    /// With fusing enabled and the home shard quiescent, the handler runs
    /// directly on this thread — no slot, no handoff, no wake. There is no
    /// pipeline here and no ticket to mint, so the fused path is a plain
    /// table dispatch, exactly the run-to-completion shape.
    ///
    /// # Errors
    ///
    /// As [`ShardedRequester::submit`] and [`ShardedRequester::wait`].
    pub fn call(&self, id: u32, req: Req) -> Result<Resp> {
        if self.config.fused_mode != FusedMode::Off && !self.shared.shutdown.load(Ordering::Acquire)
        {
            let occupancy = self.shared.shards[self.home].occupancy_snapshot();
            if self.fused_eligible(occupancy) {
                let result = self
                    .shared
                    .table
                    .dispatch(id, req)
                    .ok_or(HotCallError::UnknownCallId(id));
                self.shared.fused_runs.fetch_add(1, Ordering::Relaxed);
                trace("fused_run", id as u64, 1);
                return result;
            }
            self.note_fused_fallback(id as u64);
        }
        // Fusing was declined here; don't re-attempt it inside submit.
        match self.submit_envelope(id, ReqEnvelope::One(req), false, false) {
            Ok(index) => self.wait_index(index),
            Err((e, _)) => Err(e),
        }
    }

    /// Submits a bundle and waits for all of its results.
    ///
    /// # Errors
    ///
    /// As [`ShardedRequester::submit_bundle`] and
    /// [`ShardedRequester::wait_bundle`].
    pub fn call_bundle(&self, bundle: Bundle<Req>) -> Result<Vec<Result<Resp>>> {
        let t = self.submit_bundle(bundle)?;
        self.wait_bundle(t)
    }

    /// Issues a call, running `fallback` locally if the fast path times
    /// out — the paper's SDK-call fallback on the sharded plane.
    pub fn call_with_fallback<F>(&self, id: u32, req: Req, fallback: F) -> Result<Resp>
    where
        F: FnOnce(Req) -> Resp,
    {
        match self.submit_envelope(id, ReqEnvelope::One(req), true, false) {
            Ok(index) => self.wait_index(index),
            Err((HotCallError::ResponderTimeout { .. }, ReqEnvelope::One(req))) => {
                Ok(fallback(req))
            }
            Err((e, _)) => Err(e),
        }
    }

    /// Pool-wide transport totals.
    pub fn stats(&self) -> HotCallStats {
        self.shared.snapshot()
    }

    /// The shard governor's current shape and decision counters.
    pub fn governor_stats(&self) -> GovernorStats {
        self.shared.governor_snapshot()
    }

    /// The full per-shard snapshot (see [`ShardedServer::ring_stats`]).
    pub fn ring_stats(&self) -> RingStats {
        self.shared.ring_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (CallTable<u64, u64>, u32) {
        let mut t = CallTable::new();
        let sq = t.register(|x| x * x);
        (t, sq)
    }

    fn generous() -> HotCallConfig {
        HotCallConfig::patient()
    }

    #[test]
    fn sharded_call_roundtrip() {
        let (t, sq) = table();
        let server = ShardedServer::spawn(t, 4, ShardPolicy::fixed(2), generous()).unwrap();
        let r = server.requester();
        assert_eq!(r.call(sq, 7).unwrap(), 49);
        assert_eq!(server.stats().calls, 1);
        assert_eq!(server.shards(), 2);
    }

    #[test]
    fn router_round_robins_over_active_shards() {
        let (t, _) = table();
        let server = ShardedServer::spawn(t, 4, ShardPolicy::fixed(3), generous()).unwrap();
        let homes: Vec<usize> = (0..6).map(|_| server.requester().home()).collect();
        assert_eq!(homes, [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn affinity_override_pins_and_validates() {
        let (t, sq) = table();
        let server = ShardedServer::spawn(t, 4, ShardPolicy::fixed(2), generous()).unwrap();
        let r1 = server.requester_on(1).unwrap();
        assert_eq!(r1.home(), 1);
        assert_eq!(r1.call(sq, 6).unwrap(), 36);
        assert!(matches!(
            server.requester_on(2),
            Err(HotCallError::InvalidConfig(_))
        ));
        // The call landed on shard 1's ring.
        let rs = server.ring_stats();
        assert_eq!(rs.shards.len(), 2);
        let serviced: u64 = rs.shards.iter().map(|s| s.serviced).sum();
        assert_eq!(serviced, 1);
    }

    #[test]
    fn requesters_on_distinct_shards_never_share_a_ring() {
        let (t, sq) = table();
        let server = ShardedServer::spawn(t, 8, ShardPolicy::fixed(2), generous()).unwrap();
        let mut handles = Vec::new();
        for shard in 0..2usize {
            let r = server.requester_on(shard).unwrap();
            handles.push(std::thread::spawn(move || {
                (0..500u64)
                    .map(|i| r.call(sq, shard as u64 * 1_000 + i).unwrap())
                    .sum::<u64>()
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let want: u64 = (0..2u64)
            .flat_map(|s| (0..500u64).map(move |i| (s * 1_000 + i) * (s * 1_000 + i)))
            .sum();
        assert_eq!(total, want);
        assert_eq!(server.stats().calls, 1_000);
    }

    #[test]
    fn requester_near_prefers_the_same_core_shard() {
        let (t, sq) = table();
        let server = ShardedServer::spawn(t, 8, ShardPolicy::fixed(4), generous()).unwrap();
        let topo = Topology::default();
        // A requester sharing its core with shard 2's responder homes
        // there: the handoff is free.
        let r = server.requester_near(2, &topo);
        assert_eq!(r.home, 2);
        assert_eq!(r.call(sq, 6).unwrap(), 36);
        // Repeated placement on the same core is deterministic — no tie
        // to rotate through.
        assert_eq!(server.requester_near(2, &topo).home, 2);
    }

    #[test]
    fn requester_near_rotates_equidistant_shards() {
        let (t, _sq) = table();
        let server = ShardedServer::spawn(t, 8, ShardPolicy::fixed(4), generous()).unwrap();
        // Core 6 is on node 1; shards 0..4 all live on node 0, so every
        // active shard ties at the cross-node cost and the router spreads
        // the requesters round-robin instead of convoying on shard 0.
        let topo = Topology::default();
        let homes: std::collections::HashSet<usize> = (0..4)
            .map(|_| server.requester_near(6, &topo).home)
            .collect();
        assert_eq!(homes.len(), 4, "ties rotate over all equidistant shards");
    }

    #[test]
    fn requester_near_never_picks_a_parked_shard() {
        let (t, sq) = table();
        let server = ShardedServer::spawn(t, 8, ShardPolicy::elastic(1, 4), generous()).unwrap();
        let topo = Topology::default();
        // Force the governor down to one active shard: shard 3 may be the
        // requester's same-core neighbour, but it is parked, so the
        // router settles for the cheapest *active* shard.
        server
            .shared
            .governor
            .active_target
            .store(1, Ordering::SeqCst);
        let r = server.requester_near(3, &topo);
        assert_eq!(r.home, 0);
        assert_eq!(r.call(sq, 5).unwrap(), 25);
    }

    #[test]
    fn pipelined_sharded_submissions_reap_out_of_order() {
        let (t, sq) = table();
        let server = ShardedServer::spawn(t, 16, ShardPolicy::fixed(2), generous()).unwrap();
        let r = server.requester();
        let mut tickets: Vec<Ticket> = (0..10u64).map(|i| r.submit(sq, i).unwrap()).collect();
        let mut got = Vec::new();
        while !tickets.is_empty() {
            let (_, resp) = r.wait_any(&mut tickets).unwrap();
            got.push(resp);
        }
        got.sort_unstable();
        let mut want: Vec<u64> = (0..10u64).map(|i| i * i).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn sharded_bundle_roundtrips() {
        let mut t: CallTable<u64, u64> = CallTable::new();
        let inc = t.register(|x| x + 1);
        let server = ShardedServer::spawn(t, 8, ShardPolicy::fixed(2), generous()).unwrap();
        let r = server.requester();
        let mut bundle = Bundle::with_capacity(3);
        bundle.push(inc, 1).push(inc, 10).push(inc, 41);
        let results = r.call_bundle(bundle).unwrap();
        let values: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, [2, 11, 42]);
        assert_eq!(server.stats().calls, 3);
    }

    #[test]
    fn stealers_reap_a_skewed_shard() {
        // Every submission lands on shard 0 while shard 1's responder has
        // nothing of its own: the completions must still arrive, and the
        // plane must record sibling probes.
        let (t, sq) = table();
        let server = ShardedServer::spawn(t, 16, ShardPolicy::fixed(2), generous()).unwrap();
        let r = server.requester_on(0).unwrap();
        for round in 0..50u64 {
            let tickets: Vec<Ticket> = (0..8u64)
                .map(|i| r.submit(sq, round * 10 + i).unwrap())
                .collect();
            for (i, ticket) in tickets.into_iter().enumerate() {
                let x = round * 10 + i as u64;
                assert_eq!(r.wait(ticket).unwrap(), x * x);
            }
        }
        assert_eq!(server.stats().calls, 400);
        let rs = server.ring_stats();
        // Shard 1's responder had an empty home shard the whole run: its
        // probes of shard 0 are the steals.
        assert!(rs.shards[1].steals > 0, "{rs:?}");
        assert_eq!(rs.shards[0].shard, 0);
        assert_eq!(
            rs.shards.iter().map(|s| s.serviced).sum::<u64>(),
            400,
            "{rs:?}"
        );
    }

    #[test]
    fn parked_shard_residue_is_reaped_by_stealers() {
        let (t, sq) = table();
        let policy = ShardPolicy {
            park_after_idle_polls: 64,
            ..ShardPolicy::elastic(1, 3)
        };
        let config = HotCallConfig {
            idle_polls_before_sleep: Some(1_000_000),
            ..generous()
        };
        let server = ShardedServer::spawn(t, 8, policy, config).unwrap();
        // Pin to the top shard, then let the governor park it down to one
        // active shard.
        let r = server.requester_on(2).unwrap();
        assert_eq!(r.call(sq, 3).unwrap(), 9);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let g = server.governor_stats();
            if g.active == 1 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never parked: {g:?}");
            std::thread::yield_now();
        }
        // Shard 2 is parked; its home responder sleeps on the park doze.
        // A call submitted there must still complete — reaped by an
        // active stealer, woken through the cross-shard redirect.
        for i in 0..50u64 {
            assert_eq!(r.call(sq, i).unwrap(), i * i);
        }
        let rs = server.ring_stats();
        assert!(rs.shards[2].parked, "{rs:?}");
        assert!(
            rs.steal_hits() > 0 || rs.shards[2].serviced > 0,
            "residue never reaped: {rs:?}"
        );
    }

    #[test]
    fn governor_parks_surplus_shards_when_idle() {
        let (t, sq) = table();
        let policy = ShardPolicy {
            park_after_idle_polls: 64,
            ..ShardPolicy::elastic(1, 4)
        };
        let config = HotCallConfig {
            idle_polls_before_sleep: Some(1_000_000),
            ..generous()
        };
        let server = ShardedServer::spawn(t, 8, policy, config).unwrap();
        let r = server.requester();
        assert_eq!(r.call(sq, 5).unwrap(), 25);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let g = server.governor_stats();
            if g.active == 1 && g.parked == 3 {
                assert!(g.parks >= 3, "{g:?}");
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never parked: {g:?}");
            std::thread::yield_now();
        }
        // The router only assigns to the surviving active shard now.
        assert_eq!(server.requester().home(), 0);
        assert_eq!(r.call(sq, 6).unwrap(), 36);
    }

    #[test]
    fn auto_policy_resolves_and_serves() {
        let (t, sq) = table();
        let server = ShardedServer::spawn(t, 4, ShardPolicy::auto(), generous()).unwrap();
        assert!(server.shards() >= 1);
        let r = server.requester();
        for i in 0..100u64 {
            assert_eq!(r.call(sq, i).unwrap(), i * i);
        }
    }

    #[test]
    fn degenerate_shapes_are_rejected() {
        let (t, _) = table();
        assert!(matches!(
            ShardedServer::spawn(t, 0, ShardPolicy::fixed(2), generous()),
            Err(HotCallError::InvalidConfig(_))
        ));
        let (t, _) = table();
        assert!(matches!(
            ShardedServer::spawn(t, 8, ShardPolicy::elastic(0, 2), generous()),
            Err(HotCallError::InvalidConfig(_))
        ));
        let (t, _) = table();
        assert!(matches!(
            ShardedServer::spawn(t, 8, ShardPolicy::elastic(3, 2), generous()),
            Err(HotCallError::InvalidConfig(_))
        ));
    }

    #[test]
    fn shutdown_fails_future_calls_and_reports() {
        let (t, sq) = table();
        let server = ShardedServer::spawn(t, 4, ShardPolicy::fixed(2), generous()).unwrap();
        let r = server.requester();
        assert_eq!(r.call(sq, 3).unwrap(), 9);
        server.shutdown();
        assert!(matches!(r.submit(sq, 1), Err(HotCallError::ResponderGone)));
    }

    #[test]
    fn sharded_wraps_many_times() {
        let (t, sq) = table();
        let server = ShardedServer::spawn(t, 2, ShardPolicy::fixed(2), generous()).unwrap();
        let r = server.requester();
        for i in 0..5_000u64 {
            assert_eq!(r.call(sq, i).unwrap(), i * i);
        }
        assert_eq!(server.stats().calls, 5_000);
    }

    #[test]
    fn fused_always_runs_calls_inline() {
        let (t, sq) = table();
        let server = ShardedServer::spawn(
            t,
            4,
            ShardPolicy::fixed(2),
            HotCallConfig::fused(FusedMode::Always),
        )
        .unwrap();
        let r = server.requester();
        for i in 0..100u64 {
            assert_eq!(r.call(sq, i).unwrap(), i * i);
        }
        let s = server.stats();
        assert_eq!(s.calls, 100);
        // `call` with Always never touches the ring at all.
        assert_eq!(s.fused_runs, 100, "{s:?}");
    }

    #[test]
    fn fused_submit_self_services_and_redeems() {
        let (t, sq) = table();
        let server = ShardedServer::spawn(
            t,
            8,
            ShardPolicy::fixed(2),
            HotCallConfig::fused(FusedMode::Always),
        )
        .unwrap();
        let r = server.requester();
        let ticket = r.submit(sq, 6).unwrap();
        assert_eq!(r.wait(ticket).unwrap(), 36);
        let s = server.stats();
        // The submission either self-serviced or lost the race to a
        // responder (counted as a fallback) — never both, never neither.
        assert_eq!(s.fused_runs + s.fused_fallbacks, 1, "{s:?}");
        assert_eq!(s.calls, 1);
    }

    #[test]
    fn fused_auto_uses_the_pool_when_responders_are_hot() {
        // Auto fusing on a plane whose responders never doze: occupancy is
        // low but the home shard is attended, so the call must ride the
        // pool and count as a fused fallback.
        let (t, sq) = table();
        let config = HotCallConfig {
            fused_mode: FusedMode::Auto,
            idle_polls_before_sleep: None,
            ..HotCallConfig::patient()
        };
        let server = ShardedServer::spawn(t, 4, ShardPolicy::fixed(2), config).unwrap();
        let r = server.requester();
        assert_eq!(r.call(sq, 9).unwrap(), 81);
        let s = server.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.fused_runs, 0, "{s:?}");
        assert_eq!(s.fused_fallbacks, 1, "{s:?}");
    }

    #[test]
    fn fused_auto_fuses_once_the_home_responder_dozes() {
        let (t, sq) = table();
        let config = HotCallConfig {
            fused_mode: FusedMode::Auto,
            idle_polls_before_sleep: Some(64),
            ..HotCallConfig::patient()
        };
        let server = ShardedServer::spawn(t, 4, ShardPolicy::fixed(2), config).unwrap();
        let r = server.requester_on(0).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while server.shared.shards[0].doze.sleepers.load(Ordering::SeqCst) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "responder never dozed"
            );
            std::thread::yield_now();
        }
        // Quiet plane, dozing home responder: the call runs inline and
        // nobody is woken for it.
        assert_eq!(r.call(sq, 12).unwrap(), 144);
        let s = server.stats();
        assert_eq!(s.fused_runs, 1, "{s:?}");
    }

    #[test]
    fn fused_and_pooled_paths_interleave_without_loss() {
        let (t, sq) = table();
        let config = HotCallConfig {
            fused_mode: FusedMode::Auto,
            idle_polls_before_sleep: Some(64),
            ..HotCallConfig::patient()
        };
        let server = ShardedServer::spawn(t, 8, ShardPolicy::fixed(2), config).unwrap();
        let r = server.requester();
        // Alternate quiet single calls (fuse once responders doze) with
        // pipelined bursts (occupancy pushes past break-even → pooled).
        // Exact conservation across the mixed paths is the invariant.
        for round in 0..50u64 {
            assert_eq!(r.call(sq, round).unwrap(), round * round);
            let mut tickets: Vec<Ticket> = (0..4u64)
                .map(|i| r.submit(sq, round * 10 + i).unwrap())
                .collect();
            while !tickets.is_empty() {
                r.wait_any(&mut tickets).unwrap();
            }
        }
        assert_eq!(server.stats().calls, 250);
    }

    #[test]
    fn fused_auto_submissions_ride_the_pool() {
        // Pipelined submissions never fuse under `Auto`, even with the
        // break-even gate wide open (dozing responder, empty ring): the
        // async caller asked for overlap, and an inline completion would
        // keep occupancy at zero so the plane never hands a burst to the
        // pool at all.
        let (t, sq) = table();
        let config = HotCallConfig {
            fused_mode: FusedMode::Auto,
            idle_polls_before_sleep: Some(64),
            ..HotCallConfig::patient()
        };
        let server = ShardedServer::spawn(t, 8, ShardPolicy::fixed(2), config).unwrap();
        let r = server.requester_on(0).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while server.shared.shards[0].doze.sleepers.load(Ordering::SeqCst) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "responder never dozed"
            );
            std::thread::yield_now();
        }
        let mut tickets: Vec<Ticket> = (0..4u64).map(|i| r.submit(sq, i).unwrap()).collect();
        while !tickets.is_empty() {
            r.wait_any(&mut tickets).unwrap();
        }
        let s = server.stats();
        assert_eq!(s.calls, 4);
        assert_eq!(s.fused_runs, 0, "{s:?}");
    }

    #[test]
    fn fused_pipelining_redeems_oldest_and_never_wedges_on_wrap() {
        // Regression: with instantly-completing fused submissions every
        // outstanding ticket is DONE at scan time, and a first-found
        // `wait_any` kept redeeming whichever ticket `swap_remove` had
        // rotated to the front — always the youngest — while older DONE
        // slots sat un-redeemed until the head lapped onto one and
        // `submit` spun forever on a slot only this very thread could
        // free. Oldest-first redemption keeps the lap ahead of the
        // in-flight window; this loop wraps the 8-slot shard dozens of
        // times.
        let (t, sq) = table();
        let server = ShardedServer::spawn(
            t,
            8,
            ShardPolicy::fixed(1),
            HotCallConfig::fused(FusedMode::Always),
        )
        .unwrap();
        let r = server.requester_on(0).unwrap();
        let mut tickets: Vec<Ticket> = Vec::new();
        let mut submitted = 0u64;
        let mut redeemed = 0u64;
        while redeemed < 500 {
            while tickets.len() < 4 {
                tickets.push(r.submit(sq, submitted).unwrap());
                submitted += 1;
            }
            let (_, resp) = r.wait_any(&mut tickets).unwrap();
            assert!(resp <= (submitted - 1) * (submitted - 1));
            redeemed += 1;
        }
        while !tickets.is_empty() {
            r.wait_any(&mut tickets).unwrap();
            redeemed += 1;
        }
        assert_eq!(redeemed, submitted);
        assert_eq!(server.stats().calls, submitted);
    }

    #[test]
    fn park_unpark_race_never_strands_a_submission() {
        // Regression for the wake_for park/unpark race: the redirect
        // decision must come from one coherent snapshot taken before the
        // home wake attempt, and a demoting responder must re-check its
        // shard front before going dark. Race a requester pinned to the
        // top shard against an aggressive governor; every call must
        // complete well inside the deadline.
        let (t, sq) = table();
        let policy = ShardPolicy {
            park_after_idle_polls: 16,
            ..ShardPolicy::elastic(1, 3)
        };
        let config = HotCallConfig {
            idle_polls_before_sleep: Some(32),
            ..generous()
        };
        let server = ShardedServer::spawn(t, 4, policy, config).unwrap();
        let r = server.requester_on(2).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        for i in 0..3_000u64 {
            assert_eq!(r.call(sq, i).unwrap(), i * i);
            assert!(
                std::time::Instant::now() < deadline,
                "stranded after {i} calls: {:?}",
                server.ring_stats()
            );
            if i % 64 == 0 {
                // Let demotions ripen between bursts so the parked window
                // is actually exercised.
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        assert_eq!(server.stats().calls, 3_000);
    }

    #[test]
    fn fallback_runs_locally_on_timeout() {
        let mut t: CallTable<u64, u64> = CallTable::new();
        let slow = t.register(|x| {
            std::thread::sleep(std::time::Duration::from_millis(200));
            x
        });
        // Capacity-1 shard: while the slow call is in flight the shard is
        // full, so a second call on the same shard times out and falls
        // back.
        let config = HotCallConfig {
            timeout_retries: 2,
            spins_per_retry: 4,
            ..HotCallConfig::default()
        };
        let server = ShardedServer::spawn(t, 1, ShardPolicy::fixed(1), config).unwrap();
        let r1 = server.requester_on(0).unwrap();
        let r2 = server.requester_on(0).unwrap();
        let blocker = std::thread::spawn(move || r1.call(slow, 7).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(50));
        let v = r2.call_with_fallback(slow, 5, |x| x + 100).unwrap();
        assert_eq!(v, 105);
        assert!(r2.stats().fallbacks >= 1);
        assert_eq!(blocker.join().unwrap(), 7);
    }
}
