//! The streaming scatter-gather data path: bandwidth over the ring.
//!
//! [`ByteRing`](super::ByteRing) optimizes for call *latency* — one
//! arena buffer per call, in-place transformation. This module optimizes
//! for *bandwidth*: a logical transfer of any size rides the ring as an
//! [`SgList`] of uniform arena segments (no coalescing copy anywhere on
//! the path), and [`StreamCaller::stream`] pipelines a large object
//! through the plane as a sequence of chunks under a credit window, so
//! the responder processes chunk *k* while the caller marshals chunk
//! *k + 1*.
//!
//! The chunk size is re-read from a caller-supplied closure between
//! chunks — wire it to [`crate::ctl::ChunkSizer`] (via
//! [`crate::Controller::chunk_bytes`]) and the stream resizes itself
//! mid-flight as EPC paging pressure shifts.
//!
//! Handlers see the whole chunk as an `&mut SgList` — request bytes in
//! the segments, the chunk's absolute object offset in
//! [`SgList::meta`] — transform it segment-wise in place, and return the
//! response length. Same NRZ discipline as the byte path: capacity past
//! the response is unspecified garbage and nobody pays to zero it.

use std::collections::VecDeque;

use crate::config::{
    GovernorStats, HotCallConfig, HotCallStats, ResponderPolicy, RingStats, ShardPolicy,
};
use crate::error::Result;
use crate::telemetry::{PlaneProvider, PlaneTelemetry};

use super::arena::{ArenaStats, SgList, SlabArena};
use super::ring::{RingRequester, RingServer, Ticket};
use super::shard::{ShardedRequester, ShardedServer};
use super::CallTable;

/// Default arena segment size for scatter-gather transfers: big enough
/// to amortize per-segment bookkeeping, small enough that a handful of
/// size classes cover every stream.
pub const DEFAULT_SEGMENT_BYTES: usize = 16 << 10;

/// Default credit window: double-buffered — the responder works on one
/// chunk while the caller marshals the next.
pub const DEFAULT_STREAM_WINDOW: usize = 2;

/// A call table whose handlers transform scatter-gather chunks in place.
#[derive(Debug, Default)]
pub struct SgCallTable {
    inner: CallTable<SgList, SgList>,
}

impl SgCallTable {
    /// An empty table.
    pub fn new() -> Self {
        SgCallTable::default()
    }

    /// Registers a handler and returns its call id.
    ///
    /// The handler receives the chunk as a mutable [`SgList`]: request
    /// bytes in the segments (`sg.len()` total), the chunk's absolute
    /// offset within the streamed object in [`SgList::meta`], and the
    /// full segment capacities available for the response. It writes the
    /// response in place from offset 0 and returns the response length,
    /// which is clamped to the list's capacity and distributed across
    /// the segments in order.
    pub fn register<F>(&mut self, handler: F) -> u32
    where
        F: Fn(&mut SgList) -> usize + Send + Sync + 'static,
    {
        self.inner.register(move |mut sg: SgList| {
            let cap = sg.capacity();
            let resp_len = handler(&mut sg).min(cap);
            sg.set_len(resp_len);
            sg
        })
    }
}

/// A running scatter-gather ring: responder pool + chunk handlers.
///
/// # Examples
///
/// ```
/// use hotcalls::rt::{SgCallTable, SgRing};
/// use hotcalls::HotCallConfig;
///
/// let mut table = SgCallTable::new();
/// let upper = table.register(|sg| {
///     let n = sg.len();
///     for seg in sg.segments_mut() {
///         let len = seg.len();
///         seg.raw_mut()[..len].make_ascii_uppercase();
///     }
///     n
/// });
/// let ring = SgRing::spawn_pool(table, 8, 1, HotCallConfig::patient()).unwrap();
/// let mut caller = ring.caller();
/// let gathered = caller
///     .call_sg_with(upper, b"hotcalls", |resp| {
///         let mut out = Vec::new();
///         resp.gather_into(&mut out);
///         out
///     })
///     .unwrap();
/// assert_eq!(gathered, b"HOTCALLS");
/// ```
#[derive(Debug)]
pub struct SgRing {
    plane: SgPlane,
}

/// The transport behind an [`SgRing`]: one shared ring, or the sharded
/// multi-ring plane.
#[derive(Debug)]
enum SgPlane {
    Single(RingServer<SgList, SgList>),
    Sharded(ShardedServer<SgList, SgList>),
}

impl SgRing {
    /// Spawns `n_responders` threads draining a ring of `capacity` slots.
    ///
    /// # Errors
    ///
    /// As [`RingServer::spawn_pool`].
    pub fn spawn_pool(
        table: SgCallTable,
        capacity: usize,
        n_responders: usize,
        config: HotCallConfig,
    ) -> Result<Self> {
        Ok(SgRing {
            plane: SgPlane::Single(RingServer::spawn_pool(
                table.inner,
                capacity,
                n_responders,
                config,
            )?),
        })
    }

    /// Spawns an adaptive pool governed by `policy` (see
    /// [`RingServer::spawn_adaptive`]).
    ///
    /// # Errors
    ///
    /// As [`RingServer::spawn_adaptive`].
    pub fn spawn_adaptive(
        table: SgCallTable,
        capacity: usize,
        policy: ResponderPolicy,
        config: HotCallConfig,
    ) -> Result<Self> {
        Ok(SgRing {
            plane: SgPlane::Single(RingServer::spawn_adaptive(
                table.inner,
                capacity,
                policy,
                config,
            )?),
        })
    }

    /// Spawns the sharded plane (see [`ShardedServer::spawn`]).
    ///
    /// # Errors
    ///
    /// As [`ShardedServer::spawn`].
    pub fn spawn_sharded(
        table: SgCallTable,
        capacity_per_shard: usize,
        policy: ShardPolicy,
        config: HotCallConfig,
    ) -> Result<Self> {
        Ok(SgRing {
            plane: SgPlane::Sharded(ShardedServer::spawn(
                table.inner,
                capacity_per_shard,
                policy,
                config,
            )?),
        })
    }

    /// A caller handle with its own private arena and reusable stream
    /// state. On a sharded plane the caller is pinned to a router-chosen
    /// home shard.
    pub fn caller(&self) -> StreamCaller {
        let requester = match &self.plane {
            SgPlane::Single(server) => SgRequester::Single(server.requester()),
            SgPlane::Sharded(server) => SgRequester::Sharded(server.requester()),
        };
        StreamCaller::new(requester)
    }

    /// A caller placed on logical core `core` (see
    /// [`ShardedServer::requester_near`]); on a single-ring plane there
    /// is nothing to choose.
    pub fn caller_near(&self, core: usize, topology: &sgx_sim::Topology) -> StreamCaller {
        let requester = match &self.plane {
            SgPlane::Single(server) => SgRequester::Single(server.requester()),
            SgPlane::Sharded(server) => SgRequester::Sharded(server.requester_near(core, topology)),
        };
        StreamCaller::new(requester)
    }

    /// A caller pinned to an explicit home shard. On a single-ring plane
    /// only shard 0 exists.
    ///
    /// # Errors
    ///
    /// [`crate::HotCallError::InvalidConfig`] if `shard` is out of range.
    pub fn caller_on(&self, shard: usize) -> Result<StreamCaller> {
        let requester = match &self.plane {
            SgPlane::Single(server) => {
                if shard != 0 {
                    return Err(crate::error::HotCallError::InvalidConfig(
                        "shard affinity index out of range",
                    ));
                }
                SgRequester::Single(server.requester())
            }
            SgPlane::Sharded(server) => SgRequester::Sharded(server.requester_on(shard)?),
        };
        Ok(StreamCaller::new(requester))
    }

    /// Number of responder threads in the pool (active and parked).
    pub fn responders(&self) -> usize {
        match &self.plane {
            SgPlane::Single(server) => server.responders(),
            SgPlane::Sharded(server) => server.shards(),
        }
    }

    /// Number of ring shards (1 for the single-ring plane).
    pub fn shards(&self) -> usize {
        match &self.plane {
            SgPlane::Single(_) => 1,
            SgPlane::Sharded(server) => server.shards(),
        }
    }

    /// Transport statistics, aggregated over the responder pool.
    pub fn stats(&self) -> HotCallStats {
        match &self.plane {
            SgPlane::Single(server) => server.stats(),
            SgPlane::Sharded(server) => server.stats(),
        }
    }

    /// The governor's current shape and decision counters.
    pub fn governor_stats(&self) -> GovernorStats {
        match &self.plane {
            SgPlane::Single(server) => server.governor_stats(),
            SgPlane::Sharded(server) => server.governor_stats(),
        }
    }

    /// Sets the plane's active responder/shard target (the `ctl` sizer's
    /// control surface), clamped into the policy's bounds.
    pub fn set_active(&self, n: usize) -> usize {
        match &self.plane {
            SgPlane::Single(server) => server.set_active_responders(n),
            SgPlane::Sharded(server) => server.set_active_shards(n),
        }
    }

    /// The full per-shard snapshot. A single-ring plane reports itself as
    /// one degenerate shard.
    pub fn ring_stats(&self) -> RingStats {
        match &self.plane {
            SgPlane::Single(server) => {
                RingStats::from_single(server.stats(), server.governor_stats())
            }
            SgPlane::Sharded(server) => server.ring_stats(),
        }
    }

    /// A full telemetry view of the plane, tagged with the sg-plane kind
    /// so dashboards can tell bandwidth lanes from byte and typed rings.
    pub fn telemetry(&self, name: &str) -> PlaneTelemetry {
        let mut t = match &self.plane {
            SgPlane::Single(server) => server.telemetry(name),
            SgPlane::Sharded(server) => server.telemetry(name),
        };
        t.kind = self.plane_kind();
        t
    }

    /// A boxed provider for [`crate::TelemetryRegistry::register_plane`],
    /// capturing the plane's shared state so snapshots stay live after
    /// this handle is dropped.
    pub fn telemetry_provider(&self, name: impl Into<String>) -> PlaneProvider {
        let kind = self.plane_kind();
        let inner = match &self.plane {
            SgPlane::Single(server) => server.telemetry_provider(name),
            SgPlane::Sharded(server) => server.telemetry_provider(name),
        };
        Box::new(move || {
            let mut t = inner();
            t.kind = kind;
            t
        })
    }

    fn plane_kind(&self) -> &'static str {
        match &self.plane {
            SgPlane::Single(_) => "sg-single",
            SgPlane::Sharded(_) => "sg-sharded",
        }
    }

    /// Stops the responders and joins them.
    pub fn shutdown(self) {
        match self.plane {
            SgPlane::Single(server) => server.shutdown(),
            SgPlane::Sharded(server) => server.shutdown(),
        }
    }
}

/// The requester half matching [`SgPlane`].
#[derive(Debug)]
enum SgRequester {
    Single(RingRequester<SgList, SgList>),
    Sharded(ShardedRequester<SgList, SgList>),
}

impl SgRequester {
    fn call(&self, id: u32, sg: SgList) -> Result<SgList> {
        match self {
            SgRequester::Single(r) => r.call(id, sg),
            SgRequester::Sharded(r) => r.call(id, sg),
        }
    }

    fn submit(&self, id: u32, sg: SgList) -> Result<Ticket> {
        match self {
            SgRequester::Single(r) => r.submit(id, sg),
            SgRequester::Sharded(r) => r.submit(id, sg),
        }
    }

    fn wait(&self, ticket: Ticket) -> Result<SgList> {
        match self {
            SgRequester::Single(r) => r.wait(ticket),
            SgRequester::Sharded(r) => r.wait(ticket),
        }
    }

    fn stats(&self) -> HotCallStats {
        match self {
            SgRequester::Single(r) => r.stats(),
            SgRequester::Sharded(r) => r.stats(),
        }
    }

    fn governor_stats(&self) -> GovernorStats {
        match self {
            SgRequester::Single(r) => r.governor_stats(),
            SgRequester::Sharded(r) => r.governor_stats(),
        }
    }

    fn home(&self) -> usize {
        match self {
            SgRequester::Single(_) => 0,
            SgRequester::Sharded(r) => r.home(),
        }
    }
}

/// What one [`StreamCaller::stream`] run did: chunk accounting for the
/// caller, conservation invariants for the tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StreamReport {
    /// Chunks the object was split into.
    pub chunks: u64,
    /// Tickets submitted to the ring (equals `chunks`).
    pub submitted: u64,
    /// Tickets redeemed (equals `submitted` on success — conservation).
    pub redeemed: u64,
    /// Request bytes marshalled (the object's length).
    pub bytes_in: u64,
    /// Response bytes handed to the chunk sink.
    pub bytes_out: u64,
    /// Times the chunk size changed mid-stream.
    pub resizes: u64,
}

/// A streaming handle owning the arena its chunks cycle through plus the
/// reusable in-flight window, so steady-state streaming allocates
/// nothing per chunk.
#[derive(Debug)]
pub struct StreamCaller {
    requester: SgRequester,
    arena: SlabArena,
    segment_bytes: usize,
    /// In-flight chunks in submission order; redeemed FIFO so responses
    /// reach the sink in object order while the window keeps the plane
    /// busy. Reused across streams.
    inflight: VecDeque<(u64, Ticket)>,
}

impl StreamCaller {
    fn new(requester: SgRequester) -> Self {
        StreamCaller {
            requester,
            arena: SlabArena::new(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            inflight: VecDeque::new(),
        }
    }

    /// The arena segment size scatter-gather lists are built from.
    pub fn segment_bytes(&self) -> usize {
        self.segment_bytes
    }

    /// Overrides the arena segment size (power of two recommended — the
    /// arena rounds capacities up to its size classes anyway).
    pub fn set_segment_bytes(&mut self, bytes: usize) {
        assert!(bytes > 0, "segment size must be positive");
        self.segment_bytes = bytes;
    }

    /// Issues one scatter-gather call carrying `data` (split into arena
    /// segments, no coalescing copy) and returns the response length.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::call`]. On error the in-flight list is lost
    /// to the slot (freed on shutdown), not recycled.
    pub fn call_sg(&mut self, id: u32, data: &[u8]) -> Result<usize> {
        self.call_sg_with(id, data, SgList::len)
    }

    /// Issues one scatter-gather call and hands the response list to
    /// `read` before its segments are recycled — the zero-copy way to
    /// consume a response ([`SgList::gather_into`] is available when a
    /// contiguous copy is genuinely wanted).
    ///
    /// # Errors
    ///
    /// As [`RingRequester::call`].
    pub fn call_sg_with<R>(
        &mut self,
        id: u32,
        data: &[u8],
        read: impl FnOnce(&SgList) -> R,
    ) -> Result<R> {
        let sg = self.arena.acquire_sg(data, self.segment_bytes);
        let resp = self.requester.call(id, sg)?;
        let r = read(&resp);
        self.arena.recycle_sg(resp);
        Ok(r)
    }

    /// Streams `data` through handler `id` as pipelined chunks under a
    /// credit window of `window` in-flight chunks (clamped to ≥ 1;
    /// [`DEFAULT_STREAM_WINDOW`] double-buffers).
    ///
    /// `chunk_bytes` is re-read before each chunk is marshalled — return
    /// a constant for static chunking, or wire it to
    /// [`crate::Controller::chunk_bytes`] so EPC paging pressure resizes
    /// the stream mid-flight. `on_chunk` receives each response in
    /// object order: the chunk's absolute offset and the response list
    /// (also carrying that offset in [`SgList::meta`]).
    ///
    /// # Errors
    ///
    /// As [`RingRequester::submit`] / [`RingRequester::wait`]. In-flight
    /// chunks at the failure point are lost to their slots (freed on
    /// shutdown), not recycled.
    pub fn stream(
        &mut self,
        id: u32,
        data: &[u8],
        window: usize,
        mut chunk_bytes: impl FnMut() -> usize,
        mut on_chunk: impl FnMut(u64, &SgList),
    ) -> Result<StreamReport> {
        let window = window.max(1);
        let mut report = StreamReport {
            bytes_in: data.len() as u64,
            ..StreamReport::default()
        };
        let mut offset = 0usize;
        let mut last_chunk = 0usize;
        debug_assert!(self.inflight.is_empty());
        while offset < data.len() || !self.inflight.is_empty() {
            // Marshal up to the credit limit, then redeem the oldest
            // chunk: submission order is completion order at the sink,
            // and while we wait the responders chew on the rest of the
            // window.
            if offset < data.len() && self.inflight.len() < window {
                let chunk = chunk_bytes().max(1);
                if report.chunks > 0 && chunk != last_chunk {
                    report.resizes += 1;
                }
                last_chunk = chunk;
                let end = offset.saturating_add(chunk).min(data.len());
                let mut sg = self
                    .arena
                    .acquire_sg(&data[offset..end], self.segment_bytes);
                sg.set_meta(offset as u64);
                let ticket = match self.requester.submit(id, sg) {
                    Ok(t) => t,
                    Err(e) => {
                        self.abandon_inflight();
                        return Err(e);
                    }
                };
                self.inflight.push_back((offset as u64, ticket));
                report.chunks += 1;
                report.submitted += 1;
                offset = end;
                continue;
            }
            let (chunk_offset, ticket) = self.inflight.pop_front().expect("window is non-empty");
            let resp = match self.requester.wait(ticket) {
                Ok(r) => r,
                Err(e) => {
                    self.abandon_inflight();
                    return Err(e);
                }
            };
            report.redeemed += 1;
            report.bytes_out += resp.len() as u64;
            on_chunk(chunk_offset, &resp);
            self.arena.recycle_sg(resp);
        }
        Ok(report)
    }

    /// Drains the window after a mid-stream error: redeem what completes
    /// so the arena gets its segments back, drop what doesn't.
    fn abandon_inflight(&mut self) {
        while let Some((_, ticket)) = self.inflight.pop_front() {
            if let Ok(resp) = self.requester.wait(ticket) {
                self.arena.recycle_sg(resp);
            }
        }
    }

    /// Counters of this caller's private arena.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Transport statistics, aggregated over the responder pool.
    pub fn stats(&self) -> HotCallStats {
        self.requester.stats()
    }

    /// The governor's current shape and decision counters.
    pub fn governor_stats(&self) -> GovernorStats {
        self.requester.governor_stats()
    }

    /// The home shard this caller's submissions land on (always 0 on a
    /// single-ring plane).
    pub fn home_shard(&self) -> usize {
        self.requester.home()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Handlers for the tests: xor every request byte with 0x5A in place
    /// (an involution — applying it twice restores the input), and a
    /// meta-echo that writes the chunk's absolute offset into its first
    /// bytes.
    fn xor_table() -> (SgCallTable, u32, u32) {
        let mut t = SgCallTable::new();
        let xor = t.register(|sg| {
            let n = sg.len();
            for seg in sg.segments_mut() {
                let len = seg.len();
                for b in &mut seg.raw_mut()[..len] {
                    *b ^= 0x5A;
                }
            }
            n
        });
        let meta_echo = t.register(|sg| {
            let off = sg.meta().to_le_bytes();
            let n = sg.len().min(8);
            let seg = &mut sg.segments_mut()[0];
            seg.raw_mut()[..n].copy_from_slice(&off[..n]);
            n
        });
        (t, xor, meta_echo)
    }

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn call_sg_splits_without_coalescing_and_roundtrips() {
        let (t, xor, _) = xor_table();
        let ring = SgRing::spawn_pool(t, 4, 1, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        caller.set_segment_bytes(4 << 10);
        let data = pattern(100_000);
        let gathered = caller
            .call_sg_with(xor, &data, |resp| {
                assert_eq!(resp.segment_count(), 100_000_usize.div_ceil(4 << 10));
                let mut out = Vec::new();
                resp.gather_into(&mut out);
                out
            })
            .unwrap();
        let expect: Vec<u8> = data.iter().map(|b| b ^ 0x5A).collect();
        assert_eq!(gathered, expect);
        assert_eq!(ring.stats().calls, 1);
    }

    #[test]
    fn stream_reassembles_in_order_and_conserves_tickets() {
        let (t, xor, _) = xor_table();
        let ring = SgRing::spawn_pool(t, 16, 2, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        caller.set_segment_bytes(8 << 10);
        let data = pattern(1 << 20);
        let mut out = vec![0u8; data.len()];
        let report = caller
            .stream(
                xor,
                &data,
                DEFAULT_STREAM_WINDOW,
                || 64 << 10,
                |off, sg| {
                    let mut piece = Vec::new();
                    sg.gather_into(&mut piece);
                    out[off as usize..off as usize + piece.len()].copy_from_slice(&piece);
                },
            )
            .unwrap();
        let expect: Vec<u8> = data.iter().map(|b| b ^ 0x5A).collect();
        assert_eq!(out, expect);
        assert_eq!(report.chunks, 16);
        assert_eq!(report.submitted, report.redeemed);
        assert_eq!(report.bytes_in, 1 << 20);
        assert_eq!(report.bytes_out, 1 << 20);
        assert_eq!(report.resizes, 0);
        assert_eq!(ring.stats().calls, 16);
    }

    #[test]
    fn steady_state_streaming_reuses_segments() {
        let (t, xor, _) = xor_table();
        let ring = SgRing::spawn_pool(t, 16, 1, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        caller.set_segment_bytes(16 << 10);
        let data = pattern(512 << 10);
        let mut sink = |_off: u64, _sg: &SgList| {};
        caller
            .stream(xor, &data, 2, || 64 << 10, &mut sink)
            .unwrap();
        let warm = caller.arena_stats().allocs;
        for _ in 0..5 {
            caller
                .stream(xor, &data, 2, || 64 << 10, &mut sink)
                .unwrap();
        }
        let stats = caller.arena_stats();
        assert_eq!(
            stats.allocs, warm,
            "steady-state streams must not allocate: {stats:?}"
        );
        assert!(stats.recycles > 0);
    }

    #[test]
    fn mid_stream_resize_is_counted_and_lossless() {
        let (t, xor, _) = xor_table();
        let ring = SgRing::spawn_pool(t, 16, 2, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        caller.set_segment_bytes(4 << 10);
        let data = pattern(300_000);
        // Shrink the chunk every submission: 64 KiB, 32 KiB, 16 KiB, ...
        // floored at 4 KiB — the shape an EPC-pressure chunker produces
        // crossing the paging cliff.
        let mut next = 64 << 10;
        let chunker = move || {
            let c = next;
            next = (next / 2).max(4 << 10);
            c
        };
        let mut out = vec![0u8; data.len()];
        let report = caller
            .stream(xor, &data, 3, chunker, |off, sg| {
                let mut piece = Vec::new();
                sg.gather_into(&mut piece);
                out[off as usize..off as usize + piece.len()].copy_from_slice(&piece);
            })
            .unwrap();
        let expect: Vec<u8> = data.iter().map(|b| b ^ 0x5A).collect();
        assert_eq!(out, expect);
        assert!(report.resizes >= 4, "{report:?}");
        assert_eq!(report.submitted, report.redeemed);
        assert_eq!(report.bytes_out, 300_000);
    }

    #[test]
    fn handlers_see_absolute_chunk_offsets() {
        let (t, _, meta_echo) = xor_table();
        let ring = SgRing::spawn_pool(t, 8, 1, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        let data = pattern(64 << 10);
        let mut seen = Vec::new();
        caller
            .stream(
                meta_echo,
                &data,
                2,
                || 16 << 10,
                |off, sg| {
                    let mut bytes = Vec::new();
                    sg.gather_into(&mut bytes);
                    let echoed = u64::from_le_bytes(bytes[..8].try_into().unwrap());
                    seen.push((off, echoed));
                },
            )
            .unwrap();
        assert_eq!(seen.len(), 4);
        for (off, echoed) in seen {
            assert_eq!(off, echoed, "handler must see the absolute offset");
        }
    }

    #[test]
    fn empty_object_streams_as_zero_chunks() {
        let (t, xor, _) = xor_table();
        let ring = SgRing::spawn_pool(t, 4, 1, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        let report = caller
            .stream(
                xor,
                &[],
                2,
                || 64 << 10,
                |_, _| panic!("no chunks expected"),
            )
            .unwrap();
        assert_eq!(report, StreamReport::default());
    }

    #[test]
    fn sharded_sg_plane_streams_and_reports() {
        let (t, xor, _) = xor_table();
        let ring =
            SgRing::spawn_sharded(t, 8, ShardPolicy::fixed(2), HotCallConfig::patient()).unwrap();
        assert_eq!(ring.shards(), 2);
        let mut caller = ring.caller();
        let data = pattern(256 << 10);
        let mut out = vec![0u8; data.len()];
        let report = caller
            .stream(
                xor,
                &data,
                2,
                || 32 << 10,
                |off, sg| {
                    let mut piece = Vec::new();
                    sg.gather_into(&mut piece);
                    out[off as usize..off as usize + piece.len()].copy_from_slice(&piece);
                },
            )
            .unwrap();
        let expect: Vec<u8> = data.iter().map(|b| b ^ 0x5A).collect();
        assert_eq!(out, expect);
        assert_eq!(report.chunks, 8);
        let rs = ring.ring_stats();
        assert_eq!(rs.shards.len(), 2);
        assert_eq!(rs.shards.iter().map(|s| s.serviced).sum::<u64>(), 8);
    }

    #[test]
    fn sg_plane_kind_tags_telemetry() {
        let (t, _, _) = xor_table();
        let ring = SgRing::spawn_pool(t, 4, 1, HotCallConfig::patient()).unwrap();
        assert_eq!(ring.telemetry("bw").kind, "sg-single");
        let provider = ring.telemetry_provider("bw");
        assert_eq!(provider().kind, "sg-single");
        assert!(ring.caller_on(1).is_err());
        assert_eq!(ring.caller_on(0).unwrap().home_shard(), 0);
    }
}
