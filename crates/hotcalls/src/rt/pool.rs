//! The ring's responder pool: batched drain with one tail CAS per batch.
//!
//! Every responder runs [`responder_loop`]: scan up to `drain_batch`
//! contiguous `SUBMITTED` slots starting at `tail`, claim the whole run
//! with a single CAS on `tail`, then service the claimed slots privately.
//! The CAS is the ownership transfer — winning it while `tail` is
//! unchanged proves no other responder touched those slots (`tail` is
//! monotonic, so there is no ABA), and requesters cannot recycle a slot
//! until it is serviced *and* redeemed, which itself requires `tail` to
//! advance. Batching amortizes both the CAS and the wake/schedule cost of
//! the drain, which is where switchless designs win under IO-heavy load.

use std::sync::Arc;

use crate::config::HotCallConfig;
use crate::error::HotCallError;

use super::ring::RingShared;
use super::slot::{Backoff, LocalStats, SUBMITTED};
use super::CallTable;

use std::sync::atomic::Ordering;

pub(super) fn responder_loop<Req, Resp>(
    shared: Arc<RingShared<Req, Resp>>,
    table: Arc<CallTable<Req, Resp>>,
    index: usize,
    config: HotCallConfig,
) {
    let cap = shared.slots.len();
    // A batch longer than the ring would scan the same slot twice.
    let batch = config.drain_batch_clamped().min(cap);
    let cell = &shared.responders[index];
    let mut local = LocalStats::default();
    let mut backoff = Backoff::new();
    let mut idle_streak: u64 = 0;
    loop {
        let tail = shared.tail.load(Ordering::Acquire);
        // Scan a contiguous run of submitted slots (bounded by `batch`).
        let mut run = 0usize;
        while run < batch && shared.slots[tail.wrapping_add(run) % cap].state() == SUBMITTED {
            run += 1;
        }
        if run == 0 {
            // Drain-then-exit: responders keep servicing submitted work
            // after the shutdown flag rises and leave only once the ring
            // front is quiet (stragglers stuck mid-publish are failed by
            // the waiter's shutdown grace instead).
            if shared.shutdown.load(Ordering::Acquire) {
                local.flush(cell);
                return;
            }
            idle_streak += 1;
            local.idle_polls += 1;
            if local.idle_polls % 1024 == 0 {
                local.flush(cell);
            }
            if let Some(limit) = config.idle_polls_before_sleep {
                if idle_streak >= limit {
                    local.flush(cell);
                    shared.doze.sleep_unless(|| {
                        shared.shutdown.load(Ordering::Acquire)
                            || shared.slots[shared.tail.load(Ordering::Acquire) % cap].state()
                                == SUBMITTED
                    });
                    idle_streak = 0;
                    backoff.reset();
                    continue;
                }
            }
            backoff.snooze();
            continue;
        }
        if shared
            .tail
            .compare_exchange(
                tail,
                tail.wrapping_add(run),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_err()
        {
            // Another responder claimed the run; retry with a fresh tail.
            core::hint::spin_loop();
            continue;
        }
        idle_streak = 0;
        backoff.reset();
        for i in 0..run {
            let slot = &shared.slots[tail.wrapping_add(i) % cap];
            // SAFETY: the tail CAS above transferred exclusive service
            // ownership of slots [tail, tail+run) to this thread: tail was
            // unchanged between the SUBMITTED scan and the CAS (tail is
            // monotonic, so CAS success rules out any concurrent claim),
            // and no requester can recycle these slots before they are
            // serviced here and then redeemed. SUBMITTED was observed with
            // Acquire, so the payload is visible.
            let (id, req) = unsafe { slot.take_request() };
            let result = table
                .dispatch(id, req)
                .ok_or(HotCallError::UnknownCallId(id));
            local.calls += 1;
            local.busy_polls += 1;
            // Flush before DONE so `stats().calls` is exact the moment the
            // waiting requester's Acquire sees the completion.
            local.flush(cell);
            // SAFETY: this thread took the request for this slot above.
            unsafe { slot.finish(result) };
        }
    }
}
