//! The ring's responder pool: batched drain with one tail CAS per batch,
//! governed by a [`crate::config::ResponderPolicy`].
//!
//! Every responder runs [`responder_loop`]: scan up to `drain_batch`
//! contiguous `SUBMITTED` slots starting at `tail`, claim the whole run
//! with a single CAS on `tail`, then service the claimed slots privately.
//! The CAS is the ownership transfer — winning it while `tail` is
//! unchanged proves no other responder touched those slots (`tail` is
//! monotonic, so there is no ABA), and requesters cannot recycle a slot
//! until it is serviced *and* redeemed, which itself requires `tail` to
//! advance. Batching amortizes both the CAS and the wake/schedule cost of
//! the drain, which is where switchless designs win under IO-heavy load.
//!
//! With an adaptive policy the loop grows two extra branches:
//!
//! * **Park** — a responder whose index is at or above the governor's
//!   active target sleeps on the *park* doze, which per-call wakeups never
//!   touch. This is what fixes the oversubscription regression: a parked
//!   responder costs nothing, whereas an idle-dozing one is woken on every
//!   submission, loses the tail race, spins a full idle streak, and
//!   re-dozes — stealing the requester's core the whole time.
//! * **Demote** — `polls_since_work` tracks this responder's useful-work
//!   ratio: every empty poll adds one, every slot won subtracts a bounded
//!   credit ([`WIN_CREDIT_POLLS`]). Unlike the doze `idle_streak`, it is
//!   NOT reset by waking from the doze, and deliberately NOT zeroed by a
//!   win either: in a saturated one-requester stream every churning
//!   responder wins scraps every few calls, and a plain drought counter
//!   never ripens — which is exactly how the 1×4 oversubscription
//!   regression survived idleness detection. Once the deficit passes
//!   `policy.park_after_idle_polls`, the top active responder lowers the
//!   target by one and parks itself on the next iteration. Lower indices
//!   inherit "top" status with their counters already ripe, so an
//!   overprovisioned pool cascades down to its demand point quickly (the
//!   occupancy- and age-triggered raises pull it back up).

use std::sync::Arc;

use crate::config::HotCallConfig;
use crate::error::HotCallError;
use crate::telemetry::{now_cycles, TELEMETRY_ENABLED};

use super::ring::{ReqEnvelope, RespEnvelope, RingShared, RingSlot};
use super::slot::{Backoff, LocalStats, StatCell, SUBMITTED};
use super::CallTable;

use std::sync::atomic::Ordering;

/// Poll credit earned per slot won: a responder that wins at least one
/// slot per this many polls is earning its keep; one that mostly loses
/// the tail race ripens toward demotion even though it never goes fully
/// dry.
pub(super) const WIN_CREDIT_POLLS: u64 = 64;

/// Services one claimed slot: take the request envelope, dispatch it (a
/// bundle dispatches every packed call), publish the response. Shared by
/// the single-ring pool and the sharded plane's stealing responders.
///
/// Stats are flushed to `cell` *before* the `DONE` hand-off so
/// `stats().calls` is exact the moment the waiting requester's Acquire
/// sees the completion.
///
/// # Safety
///
/// The caller must own servicing of `slot`: it observed `SUBMITTED` with
/// `Acquire` and won the tail CAS (or equivalent exclusive claim) covering
/// this slot, and calls this at most once per claim.
pub(super) unsafe fn service_slot<Req, Resp>(
    slot: &RingSlot<Req, Resp>,
    table: &CallTable<Req, Resp>,
    local: &mut LocalStats,
    cell: &StatCell,
) {
    // Dispatch-stage edge: the time between the requester's submit stamp
    // and this pickup is the call's queueing delay. Recorded into this
    // responder's single-writer cell — stolen slots are attributed to the
    // stealing responder, keeping the cell single-writer.
    let t_dispatch = if TELEMETRY_ENABLED {
        let t = now_cycles();
        cell.stages
            .queue
            .record(t.saturating_sub(slot.submitted_at()));
        t
    } else {
        0
    };
    // SAFETY: forwarded from the caller's contract — exclusive service
    // ownership of this slot, SUBMITTED observed with Acquire.
    let (id, env) = unsafe { slot.take_request() };
    let result = match env {
        ReqEnvelope::One(req) => {
            local.calls += 1;
            table
                .dispatch(id, req)
                .ok_or(HotCallError::UnknownCallId(id))
                .map(RespEnvelope::One)
        }
        ReqEnvelope::Bundle(calls) => {
            // One slot, one dispatch, N calls: each counts toward
            // `stats().calls`, and a bad id fails only its own entry.
            let mut results = Vec::with_capacity(calls.len());
            for (call_id, req) in calls {
                local.calls += 1;
                results.push(
                    table
                        .dispatch(call_id, req)
                        .ok_or(HotCallError::UnknownCallId(call_id)),
                );
            }
            Ok(RespEnvelope::Bundle(results))
        }
    };
    local.busy_polls += 1;
    if TELEMETRY_ENABLED {
        // Complete-stage edge: dispatch → now is the service time.
        cell.stages
            .service
            .record(now_cycles().saturating_sub(t_dispatch));
    }
    local.flush(cell);
    // SAFETY: this thread took the request for this slot above.
    unsafe { slot.finish(result) };
}

/// Services one claimed slot on a *requester* thread — the fused
/// run-to-completion path. Mirrors [`service_slot`] minus the responder
/// bookkeeping: requesters own no single-writer stat cell or stage
/// histograms, so the caller accounts the returned call count into the
/// plane's shared `fused_runs` counter instead. Returns how many calls
/// the envelope carried (1, or the bundle length).
///
/// # Safety
///
/// As [`service_slot`]: the caller must hold exclusive service ownership
/// of `slot` (it won the tail CAS covering it after observing/having
/// published `SUBMITTED`), and calls this at most once per claim.
pub(super) unsafe fn service_slot_inline<Req, Resp>(
    slot: &RingSlot<Req, Resp>,
    table: &CallTable<Req, Resp>,
) -> u64 {
    // SAFETY: forwarded from the caller's contract — exclusive service
    // ownership of this slot.
    let (id, env) = unsafe { slot.take_request() };
    let (result, n) = match env {
        ReqEnvelope::One(req) => (
            table
                .dispatch(id, req)
                .ok_or(HotCallError::UnknownCallId(id))
                .map(RespEnvelope::One),
            1u64,
        ),
        ReqEnvelope::Bundle(calls) => {
            let n = calls.len() as u64;
            let mut results = Vec::with_capacity(calls.len());
            for (call_id, req) in calls {
                results.push(
                    table
                        .dispatch(call_id, req)
                        .ok_or(HotCallError::UnknownCallId(call_id)),
                );
            }
            (Ok(RespEnvelope::Bundle(results)), n)
        }
    };
    // SAFETY: this thread took the request for this slot above.
    unsafe { slot.finish(result) };
    n
}

pub(super) fn responder_loop<Req, Resp>(
    shared: Arc<RingShared<Req, Resp>>,
    table: Arc<CallTable<Req, Resp>>,
    index: usize,
    config: HotCallConfig,
) {
    let cap = shared.slots.len();
    // A batch longer than the ring would scan the same slot twice.
    let batch = config.drain_batch_clamped().min(cap);
    let cell = &shared.responders[index];
    let gov = &shared.governor;
    let mut local = LocalStats::default();
    let mut backoff = Backoff::new();
    let mut idle_streak: u64 = 0;
    // Useful-work deficit: +1 per empty poll, -WIN_CREDIT_POLLS per slot
    // won. Never reset by doze wakeups or wins — see the module docs.
    let mut polls_since_work: u64 = 0;
    let mut parked = false;
    loop {
        if gov.adaptive() && index >= gov.active_target.load(Ordering::Acquire) {
            if !parked {
                parked = true;
                gov.parks.fetch_add(1, Ordering::Relaxed);
                gov.parked_now.fetch_add(1, Ordering::Relaxed);
                local.flush(cell);
            }
            gov.park_doze.sleep_unless(|| {
                shared.shutdown.load(Ordering::Acquire)
                    || index < gov.active_target.load(Ordering::Acquire)
            });
            if shared.shutdown.load(Ordering::Acquire) {
                // Parked responders exit directly; the active set performs
                // the drain-then-exit sweep below.
                gov.parked_now.fetch_sub(1, Ordering::Relaxed);
                local.flush(cell);
                return;
            }
            if index >= gov.active_target.load(Ordering::Acquire) {
                // Raise woke everyone; we were not the one admitted.
                continue;
            }
            parked = false;
            gov.parked_now.fetch_sub(1, Ordering::Relaxed);
            idle_streak = 0;
            polls_since_work = 0;
            backoff.reset();
        }
        let tail = shared.tail.load(Ordering::Acquire);
        // Scan a contiguous run of submitted slots (bounded by `batch`).
        let mut run = 0usize;
        while run < batch && shared.slots[tail.wrapping_add(run) % cap].state() == SUBMITTED {
            run += 1;
        }
        if run == 0 {
            // Drain-then-exit: responders keep servicing submitted work
            // after the shutdown flag rises and leave only once the ring
            // front is quiet (stragglers stuck mid-publish are failed by
            // the waiter's shutdown grace instead).
            if shared.shutdown.load(Ordering::Acquire) {
                local.flush(cell);
                return;
            }
            idle_streak += 1;
            polls_since_work += 1;
            local.idle_polls += 1;
            if local.idle_polls % 1024 == 0 {
                local.flush(cell);
            }
            // Useful-work drought: the top active responder bows out. The
            // park branch above catches the lowered target next iteration.
            if gov.adaptive()
                && polls_since_work >= gov.policy.park_after_idle_polls
                && gov.try_demote(index)
            {
                continue;
            }
            if let Some(limit) = config.idle_polls_before_sleep {
                if idle_streak >= limit {
                    local.flush(cell);
                    shared.doze.sleep_unless(|| {
                        shared.shutdown.load(Ordering::Acquire)
                            || shared.slots[shared.tail.load(Ordering::Acquire) % cap].state()
                                == SUBMITTED
                    });
                    // `idle_streak` restarts (we just slept; spin a full
                    // streak before sleeping again) but `polls_since_work`
                    // deliberately does not: a responder that keeps being
                    // woken without ever winning work must still ripen
                    // toward demotion.
                    idle_streak = 0;
                    backoff.reset();
                    continue;
                }
            }
            backoff.snooze();
            continue;
        }
        if shared
            .tail
            .compare_exchange(
                tail,
                tail.wrapping_add(run),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_err()
        {
            // Another responder claimed the run; retry with a fresh tail.
            core::hint::spin_loop();
            continue;
        }
        idle_streak = 0;
        polls_since_work = polls_since_work.saturating_sub(run as u64 * WIN_CREDIT_POLLS);
        backoff.reset();
        for i in 0..run {
            let slot = &shared.slots[tail.wrapping_add(i) % cap];
            // SAFETY: the tail CAS above transferred exclusive service
            // ownership of slots [tail, tail+run) to this thread: tail was
            // unchanged between the SUBMITTED scan and the CAS (tail is
            // monotonic, so CAS success rules out any concurrent claim),
            // and no requester can recycle these slots before they are
            // serviced here and then redeemed. SUBMITTED was observed with
            // Acquire, so the payload is visible.
            unsafe { service_slot(slot, &table, &mut local, cell) };
        }
    }
}
