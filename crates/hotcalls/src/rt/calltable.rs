//! The responder's call table: `call_ID` → handler, mirroring the SDK's
//! ocall-table indexing the paper reuses for HotCalls.

/// A table of request handlers indexed by call id.
pub struct CallTable<Req, Resp> {
    handlers: Vec<Box<dyn Fn(Req) -> Resp + Send + Sync>>,
}

impl<Req, Resp> core::fmt::Debug for CallTable<Req, Resp> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CallTable")
            .field("handlers", &self.handlers.len())
            .finish()
    }
}

impl<Req, Resp> Default for CallTable<Req, Resp> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Req, Resp> CallTable<Req, Resp> {
    /// Creates an empty table.
    pub fn new() -> Self {
        CallTable {
            handlers: Vec::new(),
        }
    }

    /// Registers a handler and returns its call id.
    pub fn register<F>(&mut self, handler: F) -> u32
    where
        F: Fn(Req) -> Resp + Send + Sync + 'static,
    {
        self.handlers.push(Box::new(handler));
        (self.handlers.len() - 1) as u32
    }

    /// Number of registered handlers.
    pub fn len(&self) -> usize {
        self.handlers.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.handlers.is_empty()
    }

    /// Dispatches a request; `None` for unknown ids.
    pub fn dispatch(&self, id: u32, req: Req) -> Option<Resp> {
        self.handlers.get(id as usize).map(|h| h(req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_assigns_sequential_ids() {
        let mut t: CallTable<u64, u64> = CallTable::new();
        let a = t.register(|x| x + 1);
        let b = t.register(|x| x * 2);
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.dispatch(a, 5), Some(6));
        assert_eq!(t.dispatch(b, 5), Some(10));
        assert_eq!(t.dispatch(9, 5), None);
        assert_eq!(t.len(), 2);
    }
}
