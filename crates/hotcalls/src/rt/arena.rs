//! Reusable payload buffers for the byte-carrying hot path.
//!
//! PR 1 made the transport lock-free, but every byte-carrying call still
//! boxed a fresh payload — the allocator, not the mailbox, became the hot
//! path. This module is the runtime's analog of the paper's
//! No-Redundant-Zeroing marshalling: buffer *management* work that is
//! security-irrelevant gets taken off the per-call path.
//!
//! * **Inline fast path** — payloads at or below [`INLINE_CAPACITY`] (one
//!   cache line, matching the slot layout in [`super::slot`]) are stored
//!   directly in the message and move through the ring with **zero heap
//!   traffic**.
//! * **Slab recycling** — larger payloads draw from per-size-class free
//!   lists of previously used boxes. Recycled slabs are deliberately *not*
//!   zeroed: like an NRZ `out` staging buffer, a slab is only handed to a
//!   handler that overwrites the bytes it reports back, so scrubbing it
//!   would be redundant work.
//! * **Generation-tagged handles** — every slab box carries a
//!   [`SlabHandle`] minted by its arena; recycling validates the tag, so a
//!   buffer from a different (or dead) arena is dropped and counted
//!   instead of poisoning a free list.
//!
//! The arena is deliberately single-owner (one per requester): buffers
//! travel *by value* through the ring and come back with the response, so
//! no lock or atomic is needed on the alloc/recycle path.

use crate::telemetry::trace;

// The counter schema lives in the telemetry module so arena traffic merges
// into [`crate::Snapshot`]s next to the ring planes; re-exported here so
// `rt::ArenaStats` stays a valid path for existing callers.
pub use crate::telemetry::ArenaStats;

/// Payloads at or below this many bytes ride inline in the message — one
/// cache line, the same granularity the slot state machine pads to.
pub const INLINE_CAPACITY: usize = 64;

/// Smallest slab size class (bytes). Anything below rides inline, so
/// classes start just above the cache line.
const MIN_SLAB_BYTES: usize = 128;

/// Proof that a slab box was minted by a particular arena: its slot in the
/// arena's generation table plus the generation it was issued under. The
/// tag is validated (and the generation bumped) on recycle, so a stale or
/// foreign handle can never land a buffer in a free list it doesn't belong
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabHandle {
    index: u32,
    generation: u32,
}

#[derive(Debug)]
enum Repr {
    Inline {
        len: u8,
        bytes: [u8; INLINE_CAPACITY],
    },
    Slab {
        handle: SlabHandle,
        len: usize,
        bytes: Box<[u8]>,
    },
}

/// A payload buffer on the hot path: either a cache line of inline bytes
/// or an arena-managed slab. Constructed only by [`SlabArena::acquire`],
/// transformed in place by the responder, and returned to
/// [`SlabArena::recycle`] when redeemed.
#[derive(Debug)]
pub struct HotBuf {
    repr: Repr,
}

impl HotBuf {
    /// Logical length of the valid bytes.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Slab { len, .. } => *len,
        }
    }

    /// No valid bytes?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total writable capacity (inline line or slab class size).
    pub fn capacity(&self) -> usize {
        match &self.repr {
            Repr::Inline { .. } => INLINE_CAPACITY,
            Repr::Slab { bytes, .. } => bytes.len(),
        }
    }

    /// Did this payload take the zero-heap inline path?
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// The valid bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Inline { len, bytes } => &bytes[..*len as usize],
            Repr::Slab { len, bytes, .. } => &bytes[..*len],
        }
    }

    /// The whole capacity, for a handler to write its response into.
    /// Bytes beyond [`HotBuf::len`] are unspecified garbage — recycled
    /// slabs are not zeroed (the NRZ discipline), so read only what you
    /// wrote.
    pub fn raw_mut(&mut self) -> &mut [u8] {
        match &mut self.repr {
            Repr::Inline { bytes, .. } => &mut bytes[..],
            Repr::Slab { bytes, .. } => &mut bytes[..],
        }
    }

    /// Declares the first `len` bytes valid (a handler's response length).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`HotBuf::capacity`].
    pub fn set_len(&mut self, len: usize) {
        assert!(
            len <= self.capacity(),
            "len {len} exceeds capacity {}",
            self.capacity()
        );
        match &mut self.repr {
            Repr::Inline { len: l, .. } => *l = len as u8,
            Repr::Slab { len: l, .. } => *l = len,
        }
    }
}

/// A scatter-gather descriptor: one *logical* transfer carried as an
/// ordered list of arena segments, so a payload of any size marshals
/// through a ring slot without ever being coalesced into one contiguous
/// copy. The descriptor also carries a `meta` word — streaming callers
/// put the chunk's absolute object offset there so a handler processing
/// chunk *k* can key position-dependent work (keystreams, block tags)
/// off the object, not the chunk.
///
/// Segments may be zero-length (a degenerate but legal descriptor), and
/// the logical length may be re-declared up to the *capacity* sum with
/// [`SgList::set_len`] — a response can grow into a segment's size-class
/// slack exactly like a [`HotBuf`] response can.
#[derive(Debug, Default)]
pub struct SgList {
    segments: Vec<HotBuf>,
    meta: u64,
}

impl SgList {
    /// A descriptor over already-acquired segments (test and adapter
    /// surface; the zero-copy production path is
    /// [`SlabArena::acquire_sg`]).
    pub fn from_segments(segments: Vec<HotBuf>) -> Self {
        SgList { segments, meta: 0 }
    }

    /// Logical length: the sum of the segments' valid bytes.
    pub fn len(&self) -> usize {
        self.segments.iter().map(HotBuf::len).sum()
    }

    /// No valid bytes in any segment?
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(HotBuf::is_empty)
    }

    /// Total writable capacity across segments.
    pub fn capacity(&self) -> usize {
        self.segments.iter().map(HotBuf::capacity).sum()
    }

    /// Number of segments (including zero-length ones).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segments, in logical order.
    pub fn segments(&self) -> &[HotBuf] {
        &self.segments
    }

    /// The segments, mutably — the handler-side surface for in-place
    /// transforms. Length bookkeeping stays with [`SgList::set_len`].
    pub fn segments_mut(&mut self) -> &mut [HotBuf] {
        &mut self.segments
    }

    /// The caller-assigned metadata word (streaming callers: the chunk's
    /// absolute offset in its object).
    pub fn meta(&self) -> u64 {
        self.meta
    }

    /// Sets the metadata word.
    pub fn set_meta(&mut self, meta: u64) {
        self.meta = meta;
    }

    /// Appends the logical bytes, in order, to `out` — the gather half,
    /// used at the stream edge and by equivalence checks. This is the
    /// *only* place bytes are ever coalesced, and it is the caller's
    /// choice to pay for it.
    pub fn gather_into(&self, out: &mut Vec<u8>) {
        for seg in &self.segments {
            out.extend_from_slice(seg.as_slice());
        }
    }

    /// Re-declares the logical length (a handler's response length),
    /// distributing it across segments in order: each segment takes up to
    /// its capacity, the remainder flows into the next. Zero-capacity
    /// tails end up zero-length.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`SgList::capacity`].
    pub fn set_len(&mut self, len: usize) {
        assert!(
            len <= self.capacity(),
            "len {len} exceeds sg capacity {}",
            self.capacity()
        );
        let mut remaining = len;
        for seg in &mut self.segments {
            let take = remaining.min(seg.capacity());
            seg.set_len(take);
            remaining -= take;
        }
    }
}

/// A single-owner pool of reusable payload buffers with per-size-class
/// free lists.
///
/// # Examples
///
/// ```
/// use hotcalls::rt::SlabArena;
///
/// let mut arena = SlabArena::new();
/// let small = arena.acquire(b"ping", 4);
/// assert!(small.is_inline());
/// let big = arena.acquire(&[7u8; 500], 500);
/// assert!(!big.is_inline());
/// arena.recycle(small);
/// arena.recycle(big);
/// // The next 500-byte acquire reuses the recycled slab: no new heap box.
/// let again = arena.acquire(&[8u8; 500], 500);
/// assert_eq!(arena.stats().allocs, 1);
/// assert_eq!(arena.stats().recycles, 1);
/// # drop(again);
/// ```
#[derive(Debug, Default)]
pub struct SlabArena {
    /// Free lists indexed by size-class (log2 of the class byte size).
    free: Vec<Vec<Box<[u8]>>>,
    /// Current generation per handle slot; bumped on every recycle so old
    /// tags die.
    generations: Vec<u32>,
    /// Handle slots free for reuse.
    free_handles: Vec<u32>,
    /// Emptied segment vectors from recycled [`SgList`]s, reused by the
    /// next `acquire_sg` so steady-state streaming allocates nothing.
    sg_pool: Vec<Vec<HotBuf>>,
    stats: ArenaStats,
}

impl SlabArena {
    /// An empty arena.
    pub fn new() -> Self {
        SlabArena::default()
    }

    /// Size class for a requested capacity: power-of-two bytes, floored at
    /// [`MIN_SLAB_BYTES`].
    fn class_bytes(capacity: usize) -> usize {
        capacity.next_power_of_two().max(MIN_SLAB_BYTES)
    }

    fn class_index(class_bytes: usize) -> usize {
        class_bytes.trailing_zeros() as usize
    }

    /// Hands out a buffer holding a copy of `data`, with room for at least
    /// `capacity` bytes (the larger of the two wins — an `out`-style call
    /// sends a small request but needs space for a big response).
    ///
    /// Payloads that fit [`INLINE_CAPACITY`] take the inline path: no heap
    /// interaction at all. Larger ones reuse a recycled slab of the right
    /// size class when available, allocating only on a cold free list.
    pub fn acquire(&mut self, data: &[u8], capacity: usize) -> HotBuf {
        let need = data.len().max(capacity);
        if need <= INLINE_CAPACITY {
            self.stats.inline_hits += 1;
            let mut bytes = [0u8; INLINE_CAPACITY];
            bytes[..data.len()].copy_from_slice(data);
            return HotBuf {
                repr: Repr::Inline {
                    len: data.len() as u8,
                    bytes,
                },
            };
        }
        let class = Self::class_bytes(need);
        let ci = Self::class_index(class);
        let recycled = if ci < self.free.len() {
            self.free[ci].pop()
        } else {
            None
        };
        let mut bytes = match recycled {
            Some(b) => {
                self.stats.recycles += 1;
                b
            }
            None => {
                self.stats.allocs += 1;
                trace("arena_grow", class as u64, self.stats.allocs);
                vec![0u8; class].into_boxed_slice()
            }
        };
        bytes[..data.len()].copy_from_slice(data);
        let index = match self.free_handles.pop() {
            Some(i) => i,
            None => {
                self.generations.push(0);
                (self.generations.len() - 1) as u32
            }
        };
        HotBuf {
            repr: Repr::Slab {
                handle: SlabHandle {
                    index,
                    generation: self.generations[index as usize],
                },
                len: data.len(),
                bytes,
            },
        }
    }

    /// Returns a buffer to the arena. Inline buffers cost nothing; a slab
    /// whose generation tag matches goes back on its free list (without
    /// being zeroed), and a stale or foreign slab is dropped and counted
    /// in [`ArenaStats::stale_recycles`].
    pub fn recycle(&mut self, buf: HotBuf) {
        let (handle, bytes) = match buf.repr {
            Repr::Inline { .. } => return,
            Repr::Slab { handle, bytes, .. } => (handle, bytes),
        };
        let valid = self
            .generations
            .get(handle.index as usize)
            .is_some_and(|&g| g == handle.generation);
        if !valid {
            self.stats.stale_recycles += 1;
            trace(
                "arena_stale_recycle",
                handle.index as u64,
                handle.generation as u64,
            );
            return;
        }
        self.generations[handle.index as usize] = handle.generation.wrapping_add(1);
        self.free_handles.push(handle.index);
        let ci = Self::class_index(bytes.len());
        if self.free.len() <= ci {
            self.free.resize_with(ci + 1, Vec::new);
        }
        self.free[ci].push(bytes);
    }

    /// Counters so far.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Hands out a scatter-gather descriptor over a copy of `data`, split
    /// into segments of at most `segment_bytes` — one bounded
    /// arena-segment copy per piece, never a coalescing copy of the
    /// whole. Empty `data` yields a descriptor with one empty segment (a
    /// stream's zero-length tail chunk is still a chunk). The segment
    /// vector itself is drawn from the pool [`SlabArena::recycle_sg`]
    /// refills, so a warm stream's per-chunk heap traffic is exactly its
    /// segments' recycled slabs: zero allocations.
    ///
    /// # Panics
    ///
    /// Panics if `segment_bytes` is zero.
    pub fn acquire_sg(&mut self, data: &[u8], segment_bytes: usize) -> SgList {
        assert!(segment_bytes > 0, "segment size must be positive");
        let mut segments = self.sg_pool.pop().unwrap_or_default();
        if data.is_empty() {
            segments.push(self.acquire(&[], 0));
        } else {
            // Every segment gets the full `segment_bytes` capacity — the
            // tail piece included — so all of a stream's segments share
            // one size class and recycle into each other.
            for piece in data.chunks(segment_bytes) {
                segments.push(self.acquire(piece, segment_bytes));
            }
        }
        SgList { segments, meta: 0 }
    }

    /// Returns a descriptor's segments to their free lists (see
    /// [`SlabArena::recycle`]) and pools the emptied segment vector for
    /// the next [`SlabArena::acquire_sg`].
    pub fn recycle_sg(&mut self, mut sg: SgList) {
        for seg in sg.segments.drain(..) {
            self.recycle(seg);
        }
        self.sg_pool.push(sg.segments);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_threshold_is_one_cache_line() {
        let mut arena = SlabArena::new();
        assert!(arena.acquire(&[1u8; INLINE_CAPACITY], 0).is_inline());
        assert!(!arena.acquire(&[1u8; INLINE_CAPACITY + 1], 0).is_inline());
        assert_eq!(arena.stats().inline_hits, 1);
        assert_eq!(arena.stats().allocs, 1);
    }

    #[test]
    fn capacity_request_forces_slab_even_for_small_data() {
        let mut arena = SlabArena::new();
        let buf = arena.acquire(b"rd", 2048);
        assert!(!buf.is_inline());
        assert!(buf.capacity() >= 2048);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.as_slice(), b"rd");
    }

    #[test]
    fn recycled_slab_is_reused_and_not_zeroed() {
        let mut arena = SlabArena::new();
        let mut a = arena.acquire(&[0xEE; 300], 300);
        a.raw_mut().fill(0xEE);
        a.set_len(300);
        arena.recycle(a);
        let b = arena.acquire(b"xy", 300);
        assert_eq!(arena.stats().allocs, 1);
        assert_eq!(arena.stats().recycles, 1);
        // The NRZ discipline: beyond the copied-in request, the slab still
        // holds the previous call's bytes.
        assert_eq!(b.as_slice(), b"xy");
        let mut b = b;
        assert_eq!(b.raw_mut()[2], 0xEE);
    }

    #[test]
    fn foreign_handles_are_rejected_not_pooled() {
        let mut a = SlabArena::new();
        let mut b = SlabArena::new();
        let buf = a.acquire(&[1u8; 200], 200);
        b.recycle(buf);
        assert_eq!(b.stats().stale_recycles, 1);
        // b's free lists stay empty: the foreign slab was dropped.
        let fresh = b.acquire(&[2u8; 200], 200);
        assert_eq!(b.stats().allocs, 1);
        assert_eq!(b.stats().recycles, 0);
        drop(fresh);
    }

    #[test]
    fn generations_invalidate_resurrected_handles() {
        let mut arena = SlabArena::new();
        let buf = arena.acquire(&[1u8; 200], 200);
        let Repr::Slab { handle, .. } = buf.repr else {
            panic!("expected slab");
        };
        arena.recycle(HotBuf {
            repr: Repr::Slab {
                handle,
                len: 0,
                bytes: vec![0u8; 256].into_boxed_slice(),
            },
        });
        // First recycle is legitimate (tag matches) ...
        assert_eq!(arena.stats().stale_recycles, 0);
        // ... but replaying the same generation is stale.
        arena.recycle(HotBuf {
            repr: Repr::Slab {
                handle,
                len: 0,
                bytes: vec![0u8; 256].into_boxed_slice(),
            },
        });
        assert_eq!(arena.stats().stale_recycles, 1);
    }

    #[test]
    fn size_classes_keep_big_and_small_apart() {
        let mut arena = SlabArena::new();
        let small = arena.acquire(&[1u8; 200], 200); // 256-class
        let big = arena.acquire(&[1u8; 5000], 5000); // 8192-class
        arena.recycle(small);
        arena.recycle(big);
        let again_big = arena.acquire(&[2u8; 4097], 4097);
        assert!(again_big.capacity() >= 8192);
        assert_eq!(arena.stats().recycles, 1, "big class reused");
        let again_small = arena.acquire(&[2u8; 129], 129);
        assert!(again_small.capacity() >= 256);
        assert_eq!(arena.stats().recycles, 2, "small class reused");
    }

    #[test]
    fn sg_splits_without_coalescing_and_gathers_back() {
        let mut arena = SlabArena::new();
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let sg = arena.acquire_sg(&data, 256);
        assert_eq!(sg.segment_count(), 4, "1000 bytes / 256 = 4 segments");
        assert_eq!(sg.len(), 1000);
        // Uniform size class: the 232-byte tail still gets 256 capacity.
        assert!(sg.segments().iter().all(|s| s.capacity() >= 256));
        let mut back = Vec::new();
        sg.gather_into(&mut back);
        assert_eq!(back, data);
        arena.recycle_sg(sg);
    }

    #[test]
    fn sg_steady_state_recycles_everything() {
        let mut arena = SlabArena::new();
        let data = [0x42u8; 4096];
        let warm = arena.acquire_sg(&data, 1024);
        arena.recycle_sg(warm);
        let (allocs, _) = (arena.stats().allocs, ());
        for _ in 0..16 {
            let sg = arena.acquire_sg(&data, 1024);
            arena.recycle_sg(sg);
        }
        assert_eq!(
            arena.stats().allocs,
            allocs,
            "warm streams allocate no slabs"
        );
        assert!(arena.stats().recycles >= 16 * 4);
    }

    #[test]
    fn sg_empty_data_is_one_empty_segment() {
        let mut arena = SlabArena::new();
        let sg = arena.acquire_sg(&[], 4096);
        assert_eq!(sg.segment_count(), 1);
        assert_eq!(sg.len(), 0);
        assert!(sg.is_empty());
        arena.recycle_sg(sg);
    }

    #[test]
    fn sg_set_len_spills_across_segments() {
        let mut arena = SlabArena::new();
        let mut sg = arena.acquire_sg(&[7u8; 600], 256);
        assert_eq!(sg.segment_count(), 3);
        // Grow into the capacity slack (3 × 256 = 768).
        sg.set_len(700);
        assert_eq!(sg.len(), 700);
        assert_eq!(sg.segments()[0].len(), 256);
        assert_eq!(sg.segments()[2].len(), 700 - 512);
        // Shrink below one segment.
        sg.set_len(100);
        assert_eq!(sg.len(), 100);
        assert_eq!(sg.segments()[1].len(), 0);
        arena.recycle_sg(sg);
    }

    #[test]
    #[should_panic(expected = "exceeds sg capacity")]
    fn sg_set_len_beyond_capacity_panics() {
        let mut arena = SlabArena::new();
        let mut sg = arena.acquire_sg(&[1u8; 100], 128);
        sg.set_len(100_000);
    }

    #[test]
    fn sg_meta_rides_the_descriptor() {
        let mut arena = SlabArena::new();
        let mut sg = arena.acquire_sg(&[1u8; 10], 128);
        assert_eq!(sg.meta(), 0);
        sg.set_meta(1 << 40);
        assert_eq!(sg.meta(), 1 << 40);
        arena.recycle_sg(sg);
    }

    #[test]
    fn stats_rates_are_sane() {
        let mut arena = SlabArena::new();
        for _ in 0..8 {
            let b = arena.acquire(&[0u8; 16], 16);
            arena.recycle(b);
        }
        let big = arena.acquire(&[0u8; 1000], 1000);
        arena.recycle(big);
        let big = arena.acquire(&[0u8; 1000], 1000);
        arena.recycle(big);
        let s = arena.stats();
        assert_eq!(s.acquires(), 10);
        assert!((s.inline_hit_rate() - 0.8).abs() < 1e-12);
        assert!((s.recycle_rate() - 0.5).abs() < 1e-12);
        assert!((s.allocs_per_op() - 0.1).abs() < 1e-12);
    }
}
