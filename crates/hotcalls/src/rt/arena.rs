//! Reusable payload buffers for the byte-carrying hot path.
//!
//! PR 1 made the transport lock-free, but every byte-carrying call still
//! boxed a fresh payload — the allocator, not the mailbox, became the hot
//! path. This module is the runtime's analog of the paper's
//! No-Redundant-Zeroing marshalling: buffer *management* work that is
//! security-irrelevant gets taken off the per-call path.
//!
//! * **Inline fast path** — payloads at or below [`INLINE_CAPACITY`] (one
//!   cache line, matching the slot layout in [`super::slot`]) are stored
//!   directly in the message and move through the ring with **zero heap
//!   traffic**.
//! * **Slab recycling** — larger payloads draw from per-size-class free
//!   lists of previously used boxes. Recycled slabs are deliberately *not*
//!   zeroed: like an NRZ `out` staging buffer, a slab is only handed to a
//!   handler that overwrites the bytes it reports back, so scrubbing it
//!   would be redundant work.
//! * **Generation-tagged handles** — every slab box carries a
//!   [`SlabHandle`] minted by its arena; recycling validates the tag, so a
//!   buffer from a different (or dead) arena is dropped and counted
//!   instead of poisoning a free list.
//!
//! The arena is deliberately single-owner (one per requester): buffers
//! travel *by value* through the ring and come back with the response, so
//! no lock or atomic is needed on the alloc/recycle path.

use crate::telemetry::trace;

// The counter schema lives in the telemetry module so arena traffic merges
// into [`crate::Snapshot`]s next to the ring planes; re-exported here so
// `rt::ArenaStats` stays a valid path for existing callers.
pub use crate::telemetry::ArenaStats;

/// Payloads at or below this many bytes ride inline in the message — one
/// cache line, the same granularity the slot state machine pads to.
pub const INLINE_CAPACITY: usize = 64;

/// Smallest slab size class (bytes). Anything below rides inline, so
/// classes start just above the cache line.
const MIN_SLAB_BYTES: usize = 128;

/// Proof that a slab box was minted by a particular arena: its slot in the
/// arena's generation table plus the generation it was issued under. The
/// tag is validated (and the generation bumped) on recycle, so a stale or
/// foreign handle can never land a buffer in a free list it doesn't belong
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabHandle {
    index: u32,
    generation: u32,
}

#[derive(Debug)]
enum Repr {
    Inline {
        len: u8,
        bytes: [u8; INLINE_CAPACITY],
    },
    Slab {
        handle: SlabHandle,
        len: usize,
        bytes: Box<[u8]>,
    },
}

/// A payload buffer on the hot path: either a cache line of inline bytes
/// or an arena-managed slab. Constructed only by [`SlabArena::acquire`],
/// transformed in place by the responder, and returned to
/// [`SlabArena::recycle`] when redeemed.
#[derive(Debug)]
pub struct HotBuf {
    repr: Repr,
}

impl HotBuf {
    /// Logical length of the valid bytes.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Slab { len, .. } => *len,
        }
    }

    /// No valid bytes?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total writable capacity (inline line or slab class size).
    pub fn capacity(&self) -> usize {
        match &self.repr {
            Repr::Inline { .. } => INLINE_CAPACITY,
            Repr::Slab { bytes, .. } => bytes.len(),
        }
    }

    /// Did this payload take the zero-heap inline path?
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// The valid bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Inline { len, bytes } => &bytes[..*len as usize],
            Repr::Slab { len, bytes, .. } => &bytes[..*len],
        }
    }

    /// The whole capacity, for a handler to write its response into.
    /// Bytes beyond [`HotBuf::len`] are unspecified garbage — recycled
    /// slabs are not zeroed (the NRZ discipline), so read only what you
    /// wrote.
    pub fn raw_mut(&mut self) -> &mut [u8] {
        match &mut self.repr {
            Repr::Inline { bytes, .. } => &mut bytes[..],
            Repr::Slab { bytes, .. } => &mut bytes[..],
        }
    }

    /// Declares the first `len` bytes valid (a handler's response length).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`HotBuf::capacity`].
    pub fn set_len(&mut self, len: usize) {
        assert!(
            len <= self.capacity(),
            "len {len} exceeds capacity {}",
            self.capacity()
        );
        match &mut self.repr {
            Repr::Inline { len: l, .. } => *l = len as u8,
            Repr::Slab { len: l, .. } => *l = len,
        }
    }
}

/// A single-owner pool of reusable payload buffers with per-size-class
/// free lists.
///
/// # Examples
///
/// ```
/// use hotcalls::rt::SlabArena;
///
/// let mut arena = SlabArena::new();
/// let small = arena.acquire(b"ping", 4);
/// assert!(small.is_inline());
/// let big = arena.acquire(&[7u8; 500], 500);
/// assert!(!big.is_inline());
/// arena.recycle(small);
/// arena.recycle(big);
/// // The next 500-byte acquire reuses the recycled slab: no new heap box.
/// let again = arena.acquire(&[8u8; 500], 500);
/// assert_eq!(arena.stats().allocs, 1);
/// assert_eq!(arena.stats().recycles, 1);
/// # drop(again);
/// ```
#[derive(Debug, Default)]
pub struct SlabArena {
    /// Free lists indexed by size-class (log2 of the class byte size).
    free: Vec<Vec<Box<[u8]>>>,
    /// Current generation per handle slot; bumped on every recycle so old
    /// tags die.
    generations: Vec<u32>,
    /// Handle slots free for reuse.
    free_handles: Vec<u32>,
    stats: ArenaStats,
}

impl SlabArena {
    /// An empty arena.
    pub fn new() -> Self {
        SlabArena::default()
    }

    /// Size class for a requested capacity: power-of-two bytes, floored at
    /// [`MIN_SLAB_BYTES`].
    fn class_bytes(capacity: usize) -> usize {
        capacity.next_power_of_two().max(MIN_SLAB_BYTES)
    }

    fn class_index(class_bytes: usize) -> usize {
        class_bytes.trailing_zeros() as usize
    }

    /// Hands out a buffer holding a copy of `data`, with room for at least
    /// `capacity` bytes (the larger of the two wins — an `out`-style call
    /// sends a small request but needs space for a big response).
    ///
    /// Payloads that fit [`INLINE_CAPACITY`] take the inline path: no heap
    /// interaction at all. Larger ones reuse a recycled slab of the right
    /// size class when available, allocating only on a cold free list.
    pub fn acquire(&mut self, data: &[u8], capacity: usize) -> HotBuf {
        let need = data.len().max(capacity);
        if need <= INLINE_CAPACITY {
            self.stats.inline_hits += 1;
            let mut bytes = [0u8; INLINE_CAPACITY];
            bytes[..data.len()].copy_from_slice(data);
            return HotBuf {
                repr: Repr::Inline {
                    len: data.len() as u8,
                    bytes,
                },
            };
        }
        let class = Self::class_bytes(need);
        let ci = Self::class_index(class);
        let recycled = if ci < self.free.len() {
            self.free[ci].pop()
        } else {
            None
        };
        let mut bytes = match recycled {
            Some(b) => {
                self.stats.recycles += 1;
                b
            }
            None => {
                self.stats.allocs += 1;
                trace("arena_grow", class as u64, self.stats.allocs);
                vec![0u8; class].into_boxed_slice()
            }
        };
        bytes[..data.len()].copy_from_slice(data);
        let index = match self.free_handles.pop() {
            Some(i) => i,
            None => {
                self.generations.push(0);
                (self.generations.len() - 1) as u32
            }
        };
        HotBuf {
            repr: Repr::Slab {
                handle: SlabHandle {
                    index,
                    generation: self.generations[index as usize],
                },
                len: data.len(),
                bytes,
            },
        }
    }

    /// Returns a buffer to the arena. Inline buffers cost nothing; a slab
    /// whose generation tag matches goes back on its free list (without
    /// being zeroed), and a stale or foreign slab is dropped and counted
    /// in [`ArenaStats::stale_recycles`].
    pub fn recycle(&mut self, buf: HotBuf) {
        let (handle, bytes) = match buf.repr {
            Repr::Inline { .. } => return,
            Repr::Slab { handle, bytes, .. } => (handle, bytes),
        };
        let valid = self
            .generations
            .get(handle.index as usize)
            .is_some_and(|&g| g == handle.generation);
        if !valid {
            self.stats.stale_recycles += 1;
            trace(
                "arena_stale_recycle",
                handle.index as u64,
                handle.generation as u64,
            );
            return;
        }
        self.generations[handle.index as usize] = handle.generation.wrapping_add(1);
        self.free_handles.push(handle.index);
        let ci = Self::class_index(bytes.len());
        if self.free.len() <= ci {
            self.free.resize_with(ci + 1, Vec::new);
        }
        self.free[ci].push(bytes);
    }

    /// Counters so far.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_threshold_is_one_cache_line() {
        let mut arena = SlabArena::new();
        assert!(arena.acquire(&[1u8; INLINE_CAPACITY], 0).is_inline());
        assert!(!arena.acquire(&[1u8; INLINE_CAPACITY + 1], 0).is_inline());
        assert_eq!(arena.stats().inline_hits, 1);
        assert_eq!(arena.stats().allocs, 1);
    }

    #[test]
    fn capacity_request_forces_slab_even_for_small_data() {
        let mut arena = SlabArena::new();
        let buf = arena.acquire(b"rd", 2048);
        assert!(!buf.is_inline());
        assert!(buf.capacity() >= 2048);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.as_slice(), b"rd");
    }

    #[test]
    fn recycled_slab_is_reused_and_not_zeroed() {
        let mut arena = SlabArena::new();
        let mut a = arena.acquire(&[0xEE; 300], 300);
        a.raw_mut().fill(0xEE);
        a.set_len(300);
        arena.recycle(a);
        let b = arena.acquire(b"xy", 300);
        assert_eq!(arena.stats().allocs, 1);
        assert_eq!(arena.stats().recycles, 1);
        // The NRZ discipline: beyond the copied-in request, the slab still
        // holds the previous call's bytes.
        assert_eq!(b.as_slice(), b"xy");
        let mut b = b;
        assert_eq!(b.raw_mut()[2], 0xEE);
    }

    #[test]
    fn foreign_handles_are_rejected_not_pooled() {
        let mut a = SlabArena::new();
        let mut b = SlabArena::new();
        let buf = a.acquire(&[1u8; 200], 200);
        b.recycle(buf);
        assert_eq!(b.stats().stale_recycles, 1);
        // b's free lists stay empty: the foreign slab was dropped.
        let fresh = b.acquire(&[2u8; 200], 200);
        assert_eq!(b.stats().allocs, 1);
        assert_eq!(b.stats().recycles, 0);
        drop(fresh);
    }

    #[test]
    fn generations_invalidate_resurrected_handles() {
        let mut arena = SlabArena::new();
        let buf = arena.acquire(&[1u8; 200], 200);
        let Repr::Slab { handle, .. } = buf.repr else {
            panic!("expected slab");
        };
        arena.recycle(HotBuf {
            repr: Repr::Slab {
                handle,
                len: 0,
                bytes: vec![0u8; 256].into_boxed_slice(),
            },
        });
        // First recycle is legitimate (tag matches) ...
        assert_eq!(arena.stats().stale_recycles, 0);
        // ... but replaying the same generation is stale.
        arena.recycle(HotBuf {
            repr: Repr::Slab {
                handle,
                len: 0,
                bytes: vec![0u8; 256].into_boxed_slice(),
            },
        });
        assert_eq!(arena.stats().stale_recycles, 1);
    }

    #[test]
    fn size_classes_keep_big_and_small_apart() {
        let mut arena = SlabArena::new();
        let small = arena.acquire(&[1u8; 200], 200); // 256-class
        let big = arena.acquire(&[1u8; 5000], 5000); // 8192-class
        arena.recycle(small);
        arena.recycle(big);
        let again_big = arena.acquire(&[2u8; 4097], 4097);
        assert!(again_big.capacity() >= 8192);
        assert_eq!(arena.stats().recycles, 1, "big class reused");
        let again_small = arena.acquire(&[2u8; 129], 129);
        assert!(again_small.capacity() >= 256);
        assert_eq!(arena.stats().recycles, 2, "small class reused");
    }

    #[test]
    fn stats_rates_are_sane() {
        let mut arena = SlabArena::new();
        for _ in 0..8 {
            let b = arena.acquire(&[0u8; 16], 16);
            arena.recycle(b);
        }
        let big = arena.acquire(&[0u8; 1000], 1000);
        arena.recycle(big);
        let big = arena.acquire(&[0u8; 1000], 1000);
        arena.recycle(big);
        let s = arena.stats();
        assert_eq!(s.acquires(), 10);
        assert!((s.inline_hit_rate() - 0.8).abs() < 1e-12);
        assert!((s.recycle_rate() - 0.5).abs() < 1e-12);
        assert!((s.allocs_per_op() - 0.1).abs() < 1e-12);
    }
}
