//! Lock-free building blocks shared by the mailbox and ring runtimes.
//!
//! The paper's protocol already serializes every payload handoff through an
//! atomic state machine; the mutexes the first implementation wrapped
//! around the request/response slots were pure overhead. This module keeps
//! the payloads in [`UnsafeCell`]s and makes the state machine the *only*
//! synchronization: each state transition's acquire/release edge publishes
//! the payload written before it.
//!
//! It also provides the layout and pacing primitives the data plane needs:
//! [`CachePadded`] (kill false sharing between slots and counters),
//! [`Backoff`] (adaptive spin → pause ladder → yield), [`Doze`]
//! (sleep/wake for idle responders) and [`StatCell`]/[`LocalStats`]
//! (responder-local statistics flushed with plain stores instead of
//! `fetch_add` on shared lines every poll).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::Waker;

use parking_lot::{Condvar, Mutex};

use crate::error::Result;
use crate::telemetry::{now_cycles, AtomicHist, TELEMETRY_ENABLED};

/// Pads and aligns a value to a cache line so neighbouring values never
/// share one (the classic crossbeam `CachePadded`). 64 bytes covers x86-64
/// and pre-Apple-silicon ARM; on 128-byte-line parts two values per line is
/// still far better than the unpadded worst case.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    pub(crate) const fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> core::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> core::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Slot has no call in it and may be claimed by a requester.
pub(crate) const EMPTY: u8 = 0;
/// A requester won the claim and is writing the request payload.
pub(crate) const CLAIMED: u8 = 1;
/// Request payload is published; a responder may take the slot.
pub(crate) const SUBMITTED: u8 = 2;
/// A responder took the request and is executing the handler.
pub(crate) const SERVICING: u8 = 3;
/// Response payload is published; the submitting requester may redeem it.
pub(crate) const DONE: u8 = 4;

/// Waker-cell states for the async completion protocol (`wake_state`).
/// Sync calls never leave `W_IDLE`, so the only cost they pay is one
/// relaxed-ish load in [`CallSlot::finish`] and one in
/// [`CallSlot::redeem`].
///
/// Transitions (all RMWs on one atomic, hence totally ordered):
///
/// ```text
///   submit_async:            IDLE  -> ARMED          (plain store, pre-publish)
///   future poll (register):  ARMED -> BUSY -> SET    (CAS, write waker, store)
///   re-register:             SET   -> BUSY -> SET
///   completer (no waker):    ARMED -> FIRED          (CAS)
///   completer (waker set):   SET   -> BUSY -> FIRED  (CAS, take+wake, store)
///   redeem (clear):          FIRED -> IDLE           (after spinning for FIRED)
/// ```
///
/// `FIRED` is terminal for a call: the redeemer spins until the completer
/// reaches it before releasing the slot, so a descheduled completer can
/// never touch the *next* call's arming through a recycled slot.
const W_IDLE: u8 = 0;
/// An async submitter armed the slot; no waker stored yet.
const W_ARMED: u8 = 1;
/// One side holds exclusive access to the waker cell (short critical
/// section: a clone-store or a take).
const W_BUSY: u8 = 2;
/// A waker is stored and will be fired on completion.
const W_SET: u8 = 3;
/// Completion ran its half of the protocol; terminal until redeem.
const W_FIRED: u8 = 4;

/// One call slot: the state word on its own cache line, then the request
/// and response payload cells.
///
/// The payload cells carry no synchronization of their own. Exclusive
/// access is granted by state-machine transitions:
///
/// * `EMPTY → CLAIMED` (requester CAS, or the ring's head-counter CAS)
///   grants the winning requester exclusive write access to `req`.
/// * `SUBMITTED` observed with `Acquire` *plus* service ownership (single
///   responder, or winning the ring's tail CAS) grants a responder
///   exclusive access to take `req` and write `resp`.
/// * `DONE` observed with `Acquire` by the submitting requester grants it
///   exclusive access to take `resp` and release the slot.
///
/// Each `unsafe fn` below names the edge that makes it sound.
pub(crate) struct CallSlot<Req, Resp> {
    /// Isolated on its own line: requesters and responders spin on this
    /// word, and sharing it with payload bytes would ping-pong the line on
    /// every payload write.
    state: CachePadded<AtomicU8>,
    /// Cycle stamp taken in [`Self::publish`], read by the servicing
    /// responder to separate queueing delay from service time. Written
    /// under the claim's exclusivity, read under service ownership — the
    /// state machine orders both, so plain `Relaxed` accesses suffice.
    /// Always 0 under `telemetry-off`.
    t_submit: AtomicU64,
    /// Cycle stamp taken in [`Self::finish`], read by the redeeming
    /// requester to measure reap latency. Same ownership argument as
    /// `t_submit`.
    t_complete: AtomicU64,
    /// Async completion protocol state (`W_*` constants). Guards `waker`.
    wake_state: AtomicU8,
    /// The waker a pending future registered, fired exactly once by the
    /// completing side. Access is granted by holding `W_BUSY` (or by the
    /// terminal `W_FIRED`/`Drop` exclusivity).
    waker: UnsafeCell<Option<Waker>>,
    req: UnsafeCell<MaybeUninit<(u32, Req)>>,
    resp: UnsafeCell<MaybeUninit<Result<Resp>>>,
}

// SAFETY: the payload cells are only ever accessed by the single thread
// the state machine designates (see the struct docs); sending the payloads
// across threads is what the slot is for, hence `Req: Send`/`Resp: Send`.
unsafe impl<Req: Send, Resp: Send> Sync for CallSlot<Req, Resp> {}
unsafe impl<Req: Send, Resp: Send> Send for CallSlot<Req, Resp> {}

impl<Req, Resp> CallSlot<Req, Resp> {
    pub(crate) fn new() -> Self {
        CallSlot {
            state: CachePadded::new(AtomicU8::new(EMPTY)),
            t_submit: AtomicU64::new(0),
            t_complete: AtomicU64::new(0),
            wake_state: AtomicU8::new(W_IDLE),
            waker: UnsafeCell::new(None),
            req: UnsafeCell::new(MaybeUninit::uninit()),
            resp: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// The submit-time cycle stamp of the call currently in the slot
    /// (0 under `telemetry-off`).
    #[inline]
    pub(crate) fn submitted_at(&self) -> u64 {
        self.t_submit.load(Ordering::Relaxed)
    }

    /// The completion-time cycle stamp of the call currently in the slot
    /// (0 under `telemetry-off`).
    #[inline]
    pub(crate) fn completed_at(&self) -> u64 {
        self.t_complete.load(Ordering::Relaxed)
    }

    /// Current state (`Acquire`: pairs with the release transition that
    /// published it, so payload written before that transition is visible).
    #[inline]
    pub(crate) fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    /// Tries the `EMPTY → CLAIMED` edge (mailbox claim).
    #[inline]
    pub(crate) fn try_claim(&self) -> bool {
        self.state
            .compare_exchange(EMPTY, CLAIMED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Marks the slot claimed when ownership was won elsewhere (the ring's
    /// head-counter CAS). Relaxed is enough: claimability of this physical
    /// slot by any later requester is ordered through the head/tail
    /// counters, not through this word.
    #[inline]
    pub(crate) fn mark_claimed(&self) {
        self.state.store(CLAIMED, Ordering::Relaxed);
    }

    /// Publishes the request: `CLAIMED → SUBMITTED`.
    ///
    /// # Safety
    ///
    /// Caller must hold the claim (won [`Self::try_claim`] or the ring's
    /// head CAS followed by [`Self::mark_claimed`]) and call this at most
    /// once per claim. That claim is exclusive, so no other thread reads
    /// or writes `req` until the Release store below hands the slot over.
    #[inline]
    pub(crate) unsafe fn publish(&self, id: u32, req: Req) {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), CLAIMED);
        (*self.req.get()).write((id, req));
        if TELEMETRY_ENABLED {
            // Stamp before the Release store so the responder's Acquire of
            // SUBMITTED makes the stamp visible along with the payload.
            self.t_submit.store(now_cycles(), Ordering::Relaxed);
        }
        self.state.store(SUBMITTED, Ordering::Release);
    }

    /// Takes the request out: `SUBMITTED → SERVICING`.
    ///
    /// # Safety
    ///
    /// Caller must own servicing of this slot: it observed `SUBMITTED`
    /// with `Acquire` (so the payload written by [`Self::publish`] is
    /// visible) *and* is the designated responder (the only responder, or
    /// the winner of the ring's tail CAS covering this slot). Ownership
    /// makes the payload read exclusive and unrepeatable.
    #[inline]
    pub(crate) unsafe fn take_request(&self) -> (u32, Req) {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), SUBMITTED);
        let payload = (*self.req.get()).assume_init_read();
        // Relaxed: only this thread advances the slot until `finish`, and
        // `Drop` (which keys payload cleanup on this word) holds `&mut`.
        self.state.store(SERVICING, Ordering::Relaxed);
        payload
    }

    /// Publishes the response: `SERVICING → DONE`.
    ///
    /// # Safety
    ///
    /// Caller must be the servicing responder (took [`Self::take_request`]
    /// for this call) and call this at most once per call; until the
    /// Release store below, no other thread touches `resp`.
    #[inline]
    pub(crate) unsafe fn finish(&self, resp: Result<Resp>) {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), SERVICING);
        (*self.resp.get()).write(resp);
        if TELEMETRY_ENABLED {
            // Stamp before the Release store: the requester's Acquire of
            // DONE makes it visible for the reap-latency record.
            self.t_complete.store(now_cycles(), Ordering::Relaxed);
        }
        self.state.store(DONE, Ordering::Release);
        // Fire any waker an async submitter armed. This single hook covers
        // every completion path — pooled responder, fused inline service,
        // mailbox responder, and the shutdown sweep — because they all
        // publish through `finish`.
        self.wake_async();
    }

    /// Takes the response out and frees the slot: `DONE → EMPTY`.
    ///
    /// # Safety
    ///
    /// Caller must be the requester that submitted this call and must have
    /// observed `DONE` with `Acquire` (making the response visible). Being
    /// the submitter makes the read exclusive: nobody else redeems a slot
    /// they did not submit to.
    #[inline]
    pub(crate) unsafe fn redeem(&self) -> Result<Resp> {
        let payload = (*self.resp.get()).assume_init_read();
        // Quiesce the async protocol *before* releasing the slot: a
        // completer descheduled between its DONE store and its wake-state
        // transition must not be left able to fire the next call's arming.
        self.clear_async();
        // Release: the next claimant's Acquire (CAS or counter chain) must
        // see the payload as consumed before it rewrites the cells.
        self.state.store(EMPTY, Ordering::Release);
        payload
    }

    // ------------------------------------------------ async completion --

    /// Arms the waker cell for an async submission. Must be called while
    /// holding the claim, *before* [`Self::publish`]: the `SUBMITTED`
    /// Release store then carries the armed state to whichever thread
    /// completes the call, so its [`Self::wake_async`] cannot miss it.
    #[inline]
    pub(crate) fn arm_async(&self) {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), CLAIMED);
        self.wake_state.store(W_ARMED, Ordering::Relaxed);
    }

    /// Whether this slot's call was submitted with [`Self::arm_async`].
    #[inline]
    pub(crate) fn is_armed(&self) -> bool {
        self.wake_state.load(Ordering::Relaxed) != W_IDLE
    }

    /// Stores (or replaces) the waker a pending future should be woken
    /// with. Returns `true` when the completion already fired — the caller
    /// must not wait for a wake and should poll the slot state directly
    /// (the `Acquire` load of `W_FIRED` makes the `DONE` store visible).
    ///
    /// Only the submitting future's task calls this (one registrant); the
    /// only contender for `W_BUSY` is the completer taking `SET -> FIRED`.
    pub(crate) fn register_waker(&self, waker: &Waker) -> bool {
        debug_assert!(self.is_armed(), "register_waker on an unarmed slot");
        loop {
            match self.wake_state.load(Ordering::Acquire) {
                W_FIRED => return true,
                cur @ (W_ARMED | W_SET) => {
                    if self
                        .wake_state
                        .compare_exchange(cur, W_BUSY, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        continue;
                    }
                    // SAFETY: winning the CAS to W_BUSY grants exclusive
                    // access to the waker cell.
                    unsafe { *self.waker.get() = Some(waker.clone()) };
                    self.wake_state.store(W_SET, Ordering::Release);
                    return false;
                }
                // W_BUSY: the completer is mid-take; it finishes in a few
                // instructions and lands on W_FIRED.
                _ => core::hint::spin_loop(),
            }
        }
    }

    /// The completer's half of the protocol, run by [`Self::finish`] after
    /// the `DONE` Release store: fire the registered waker (if any) and
    /// land on the terminal `W_FIRED` so the redeemer can quiesce.
    #[inline]
    fn wake_async(&self) {
        // Sync fast path: one load, nothing armed.
        if self.wake_state.load(Ordering::Acquire) == W_IDLE {
            return;
        }
        let mut backoff = Backoff::new();
        loop {
            match self.wake_state.load(Ordering::Acquire) {
                W_ARMED => {
                    if self
                        .wake_state
                        .compare_exchange(W_ARMED, W_FIRED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                W_SET => {
                    if self
                        .wake_state
                        .compare_exchange(W_SET, W_BUSY, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        // SAFETY: winning the CAS to W_BUSY grants
                        // exclusive access to the waker cell.
                        let w = unsafe { (*self.waker.get()).take() };
                        // FIRED before waking: the woken poll must observe
                        // the terminal state (and, through it, DONE).
                        self.wake_state.store(W_FIRED, Ordering::Release);
                        if let Some(w) = w {
                            w.wake();
                        }
                        return;
                    }
                }
                // W_BUSY: a registrant is mid-store; it reaches W_SET in a
                // few instructions.
                _ => backoff.snooze(),
            }
        }
    }

    /// The redeemer's half: wait for the completer to reach `W_FIRED`,
    /// then reset to `W_IDLE`. Called by [`Self::redeem`] before the
    /// `EMPTY` release so a recycled slot always starts quiesced.
    #[inline]
    fn clear_async(&self) {
        // Sync fast path: one load, nothing armed.
        if self.wake_state.load(Ordering::Acquire) == W_IDLE {
            return;
        }
        let mut backoff = Backoff::new();
        while self.wake_state.load(Ordering::Acquire) != W_FIRED {
            // The completer is between its DONE store and its wake-state
            // transition (or a registrant holds W_BUSY); both are bounded.
            backoff.snooze();
        }
        // SAFETY: W_FIRED is terminal — no other thread touches the cell
        // again this call, and `redeem`'s submitter-exclusivity covers us.
        unsafe { (*self.waker.get()).take() };
        self.wake_state.store(W_IDLE, Ordering::Release);
    }
}

impl<Req, Resp> Drop for CallSlot<Req, Resp> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent access. Which payload (if any) is
        // live is exactly what the state word records: a request that was
        // published but never serviced, or a response that was published
        // but never redeemed (both happen when shutdown strands a call).
        match *self.state.get_mut() {
            // SAFETY: SUBMITTED means `publish` ran and `take_request`
            // did not; the request payload is initialized and unowned.
            SUBMITTED => unsafe {
                drop(self.req.get_mut().assume_init_read());
            },
            // SAFETY: DONE means `finish` ran and `redeem` did not; the
            // response payload is initialized and unowned.
            DONE => unsafe {
                drop(self.resp.get_mut().assume_init_read());
            },
            // EMPTY/CLAIMED: no payload written. SERVICING: the request
            // was already moved out and the response not yet written.
            _ => {}
        }
        // A waker registered for a call that never completed (shutdown
        // stranding an armed submission) must be released too.
        drop(self.waker.get_mut().take());
    }
}

impl<Req, Resp> core::fmt::Debug for CallSlot<Req, Resp> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CallSlot")
            .field("state", &self.state.load(Ordering::Relaxed))
            .finish()
    }
}

/// Dropped-unredeemed ticket registry, one cell per physical ring slot.
///
/// A ticket dropped without being waited used to wedge its slot forever:
/// the call completes to `DONE`, nobody redeems it, and every claimant
/// that laps onto the slot spins on the `EMPTY` check until shutdown. The
/// board makes abandonment explicit: [`Ticket::drop`] marks the cell with
/// the call's sequence number, and the claimant that next laps onto the
/// slot reaps the stale response itself.
///
/// The cell stores `seq + 1` (`0` = no abandonment). Reaping is an
/// exact-sequence CAS: the occupant of slot `head % cap` at claim
/// sequence `head` is exactly `head - cap`, so a mark from any *earlier*
/// lap can never falsely match, and at most one racing claimant wins the
/// CAS — the redeem ownership the dropper relinquished transfers to
/// exactly one thread.
#[derive(Debug)]
pub(crate) struct AbandonBoard {
    cells: Box<[AtomicUsize]>,
}

impl AbandonBoard {
    pub(crate) fn new(capacity: usize) -> Arc<Self> {
        Arc::new(AbandonBoard {
            cells: (0..capacity).map(|_| AtomicUsize::new(0)).collect(),
        })
    }

    /// Records that the ticket for call `seq` was dropped unredeemed.
    #[inline]
    pub(crate) fn mark(&self, seq: usize) {
        self.cells[seq % self.cells.len()].store(seq.wrapping_add(1), Ordering::Release);
    }

    /// Claims the reap of abandoned call `seq`; `true` transfers the
    /// dropper's redeem ownership to the caller (exactly once).
    #[inline]
    pub(crate) fn try_take(&self, seq: usize) -> bool {
        self.cells[seq % self.cells.len()]
            .compare_exchange(seq.wrapping_add(1), 0, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }
}

/// Upper bound of the pause ladder: 2^6 = 64 `PAUSE`s before escalating.
const SPIN_LIMIT: u32 = 6;

/// `true` when the host exposes a single hardware thread. Computed once:
/// `available_parallelism` is a syscall, far too slow for a wait loop.
fn single_core() -> bool {
    static CORES: AtomicUsize = AtomicUsize::new(0);
    let mut n = CORES.load(Ordering::Relaxed);
    if n == 0 {
        n = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1);
        CORES.store(n, Ordering::Relaxed);
    }
    n == 1
}

/// Adaptive waiting: a geometric `PAUSE` ladder that escalates to
/// `yield_now` once spinning has demonstrably not helped (the fix for the
/// old fixed `spins % 64 == 0` yield, which both yielded too late under a
/// descheduled peer and too eagerly under a fast one).
#[derive(Debug, Default)]
pub(crate) struct Backoff {
    step: u32,
}

impl Backoff {
    #[inline]
    pub(crate) fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Progress was made; start the ladder over.
    #[inline]
    pub(crate) fn reset(&mut self) {
        self.step = 0;
    }

    /// Waits a little longer than last time: 1, 2, 4, … 64 `PAUSE`s, then
    /// a scheduler yield per call.
    ///
    /// On a single-core host the ladder is skipped entirely: the peer we
    /// are waiting on cannot run until we give up the core, so every
    /// `PAUSE` before the yield is pure added latency (measured ~2.5x on
    /// the round-trip benchmark).
    #[inline]
    pub(crate) fn snooze(&mut self) {
        if single_core() {
            std::thread::yield_now();
        } else if self.step <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                core::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }

    /// `true` once [`Backoff::snooze`] has escalated past the `PAUSE`
    /// ladder and each call costs a scheduler yield. Wait loops that
    /// amortize an expensive check (e.g. a deadline read) over a poll
    /// stride use this to drop the stride once polls stop being cheap —
    /// 64 yields between deadline reads overshoots a small timeout by
    /// scheduler quanta, not nanoseconds.
    #[inline]
    pub(crate) fn yields(&self) -> bool {
        single_core() || self.step > SPIN_LIMIT
    }
}

/// Sleep/wake rendezvous for idle responders (paper §4.2, "Conserving
/// resources at idle times"), shared by the mailbox and the ring pool.
#[derive(Debug)]
pub(crate) struct Doze {
    /// How many responders are in (or entering) the sleep protocol.
    /// Requesters read it to skip the mutex on the hot path.
    pub(crate) sleepers: AtomicUsize,
    /// The wake flag; `true` means "a wake was posted, re-check for work".
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Doze {
    pub(crate) fn new() -> Self {
        Doze {
            sleepers: AtomicUsize::new(0),
            flag: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Parks the calling responder until a wake is posted or `work`
    /// reports something to do.
    ///
    /// Lost-wakeup freedom is the flag-flag (Dekker) argument: the
    /// responder registers in `sleepers` with a SeqCst RMW *before*
    /// re-checking `work`, and [`Doze::wake`] publishes its work with a
    /// SeqCst fence *before* reading `sleepers` — in any interleaving at
    /// least one side sees the other.
    pub(crate) fn sleep_unless(&self, work: impl Fn() -> bool) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if work() {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let mut flag = self.flag.lock();
        while !*flag && !work() {
            self.cv.wait(&mut flag);
        }
        *flag = false;
        drop(flag);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Posts a wake if any responder sleeps. Returns whether one was
    /// posted (the caller counts it as a `wakeups` statistic).
    ///
    /// Must be called *after* the Release store that published the work
    /// being signalled (see [`Doze::sleep_unless`] for the pairing).
    pub(crate) fn wake(&self) -> bool {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let mut flag = self.flag.lock();
        *flag = true;
        self.cv.notify_one();
        true
    }

    /// Posts a wake to every sleeping responder (shutdown path).
    pub(crate) fn wake_all(&self) {
        let mut flag = self.flag.lock();
        *flag = true;
        self.cv.notify_all();
    }
}

/// The stage histogram cells one responder records into: queueing delay
/// (submit stamp → responder pickup) and service time (pickup →
/// completion). Same single-writer discipline as the counters — stolen
/// work is attributed to the *stealing* responder's cell. Bucket-free
/// under `telemetry-off`.
#[derive(Debug, Default)]
pub(crate) struct StageCells {
    pub(crate) queue: AtomicHist,
    pub(crate) service: AtomicHist,
}

/// A responder-owned statistics cell. Only its responder writes it (plain
/// stores of running totals), anyone may read it; padded wherever it is
/// embedded so readers never dirty the responder's line.
#[derive(Debug, Default)]
pub(crate) struct StatCell {
    pub(crate) calls: AtomicU64,
    pub(crate) busy_polls: AtomicU64,
    pub(crate) idle_polls: AtomicU64,
    /// Per-responder queue/service histograms (telemetry plane).
    pub(crate) stages: StageCells,
}

/// The responder's private (non-atomic) counters, flushed to its
/// [`StatCell`]: before every `DONE` hand-off (so `stats().calls` is exact
/// the moment a call returns), every 1024 idle polls, before sleeping, and
/// at exit.
#[derive(Debug, Default)]
pub(crate) struct LocalStats {
    pub(crate) calls: u64,
    pub(crate) busy_polls: u64,
    pub(crate) idle_polls: u64,
}

impl LocalStats {
    /// Publishes the running totals. Plain Relaxed stores: the cell is
    /// this responder's alone, and exactness-on-return is ordered by the
    /// `DONE` Release store that follows the flush.
    #[inline]
    pub(crate) fn flush(&self, cell: &StatCell) {
        cell.calls.store(self.calls, Ordering::Relaxed);
        cell.busy_polls.store(self.busy_polls, Ordering::Relaxed);
        cell.idle_polls.store(self.idle_polls, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padding_isolates_lines() {
        assert_eq!(core::mem::align_of::<CachePadded<AtomicU64>>(), 64);
        assert!(core::mem::size_of::<CachePadded<AtomicU64>>() >= 64);
        // The slot's state word starts a line; payloads follow it.
        assert_eq!(core::mem::align_of::<CallSlot<u64, u64>>(), 64);
    }

    #[test]
    fn slot_roundtrip_moves_payloads() {
        let slot: CallSlot<String, String> = CallSlot::new();
        assert!(slot.try_claim());
        assert!(!slot.try_claim(), "claim is exclusive");
        // SAFETY: we hold the claim won above.
        unsafe { slot.publish(7, "ping".to_string()) };
        assert_eq!(slot.state(), SUBMITTED);
        // SAFETY: single thread; SUBMITTED observed; sole responder.
        let (id, req) = unsafe { slot.take_request() };
        assert_eq!((id, req.as_str()), (7, "ping"));
        // SAFETY: we took the request above.
        unsafe { slot.finish(Ok("pong".to_string())) };
        assert_eq!(slot.state(), DONE);
        // SAFETY: we are the submitter and observed DONE.
        let resp = unsafe { slot.redeem() };
        assert_eq!(resp.unwrap(), "pong");
        assert_eq!(slot.state(), EMPTY);
    }

    #[test]
    fn drop_frees_stranded_payloads() {
        use std::sync::Arc;
        // A submitted-but-never-serviced request must be dropped.
        let marker = Arc::new(());
        {
            let slot: CallSlot<Arc<()>, Arc<()>> = CallSlot::new();
            assert!(slot.try_claim());
            // SAFETY: claim held.
            unsafe { slot.publish(0, Arc::clone(&marker)) };
        }
        assert_eq!(Arc::strong_count(&marker), 1, "request payload leaked");
        // A finished-but-never-redeemed response must be dropped.
        {
            let slot: CallSlot<Arc<()>, Arc<()>> = CallSlot::new();
            assert!(slot.try_claim());
            // SAFETY: claim held.
            unsafe { slot.publish(0, Arc::clone(&marker)) };
            // SAFETY: single thread, SUBMITTED observed.
            let _ = unsafe { slot.take_request() };
            // SAFETY: request taken above.
            unsafe { slot.finish(Ok(Arc::clone(&marker))) };
        }
        assert_eq!(Arc::strong_count(&marker), 1, "response payload leaked");
    }

    #[test]
    fn armed_slot_fires_registered_waker() {
        use std::sync::atomic::AtomicUsize;
        use std::task::Wake;
        struct Counter(AtomicUsize);
        impl Wake for Counter {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let counter = Arc::new(Counter(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&counter));

        // Waker registered before completion: fired exactly once.
        let slot: CallSlot<u64, u64> = CallSlot::new();
        assert!(slot.try_claim());
        slot.arm_async();
        // SAFETY: claim held.
        unsafe { slot.publish(0, 1) };
        assert!(!slot.register_waker(&waker), "not complete yet");
        // SAFETY: single thread; SUBMITTED observed; sole responder.
        let (_, req) = unsafe { slot.take_request() };
        // SAFETY: request taken above.
        unsafe { slot.finish(Ok(req + 1)) };
        assert_eq!(counter.0.load(Ordering::SeqCst), 1, "waker fired once");
        // Registration after the fire reports completion.
        assert!(slot.register_waker(&waker));
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        // SAFETY: submitter observed DONE.
        assert_eq!(unsafe { slot.redeem() }.unwrap(), 2);
        assert!(!slot.is_armed(), "redeem quiesces the waker cell");

        // Completion before any registration: no wake, FIRED reported.
        assert!(slot.try_claim());
        slot.arm_async();
        // SAFETY: claim held.
        unsafe { slot.publish(0, 5) };
        // SAFETY: as above — single thread walks the whole state machine.
        let (_, req) = unsafe { slot.take_request() };
        unsafe { slot.finish(Ok(req + 1)) };
        assert!(slot.register_waker(&waker), "already fired");
        assert_eq!(counter.0.load(Ordering::SeqCst), 1, "no spurious wake");
        // SAFETY: submitter observed DONE.
        assert_eq!(unsafe { slot.redeem() }.unwrap(), 6);
    }

    #[test]
    fn abandon_board_matches_exact_sequence_only() {
        let board = AbandonBoard::new(4);
        board.mark(6); // occupies cell 6 % 4 == 2
        assert!(!board.try_take(2), "two-laps-stale seq must not match");
        assert!(board.try_take(6), "exact seq reaps");
        assert!(!board.try_take(6), "reap is exactly-once");
    }

    #[test]
    fn backoff_escalates_without_panicking() {
        let mut b = Backoff::new();
        for _ in 0..SPIN_LIMIT + 10 {
            b.snooze();
        }
        b.reset();
        assert_eq!(b.step, 0);
    }

    #[test]
    fn backoff_reports_yield_phase() {
        let mut b = Backoff::new();
        if single_core() {
            assert!(b.yields(), "single-core yields from the first snooze");
            return;
        }
        // The full PAUSE ladder (steps 0..=SPIN_LIMIT) is still cheap.
        for _ in 0..=SPIN_LIMIT {
            assert!(!b.yields(), "ladder step {} must not report yield", b.step);
            b.snooze();
        }
        assert!(b.yields(), "past the ladder every snooze is a yield");
        b.reset();
        assert!(!b.yields(), "reset re-arms the ladder");
    }

    #[test]
    fn doze_wakes_a_sleeper() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let doze = Arc::new(Doze::new());
        let go = Arc::new(AtomicBool::new(false));
        let (d, g) = (Arc::clone(&doze), Arc::clone(&go));
        let t = std::thread::spawn(move || d.sleep_unless(|| g.load(Ordering::SeqCst)));
        while doze.sleepers.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        go.store(true, Ordering::SeqCst);
        doze.wake();
        t.join().unwrap();
        assert_eq!(doze.sleepers.load(Ordering::SeqCst), 0);
    }
}
