//! The byte-payload hot path: arena-backed buffers over the submission
//! ring.
//!
//! [`ByteRing`] specializes [`super::RingServer`] to `HotBuf` payloads and
//! pairs every caller with its own [`SlabArena`]: a request buffer is
//! acquired from the arena (inline for cache-line-sized payloads, a
//! recycled slab otherwise), travels through the ring *by value*, is
//! transformed **in place** by the handler — the same buffer carries the
//! response back — and returns to the arena when redeemed. Steady state
//! does zero per-call heap work: small payloads never touch the heap,
//! large ones cycle through the per-size-class free lists.
//!
//! Handlers see `(request_len, &mut [u8])` over the buffer's full capacity
//! and return the response length. Capacity beyond the request holds
//! whatever the previous call left there — the NRZ discipline: write your
//! response, report its length, and nobody pays for zeroing in between.

use crate::config::{GovernorStats, HotCallConfig, HotCallStats, ResponderPolicy};
use crate::error::Result;

use super::arena::{ArenaStats, HotBuf, SlabArena};
use super::ring::{Bundle, RingRequester, RingServer, Ticket};
use super::CallTable;

/// A call table whose handlers transform byte payloads in place.
#[derive(Debug, Default)]
pub struct ByteCallTable {
    inner: CallTable<HotBuf, HotBuf>,
}

impl ByteCallTable {
    /// An empty table.
    pub fn new() -> Self {
        ByteCallTable::default()
    }

    /// Registers a handler and returns its call id.
    ///
    /// The handler receives the request length and the buffer's **full
    /// capacity** as a mutable slice (bytes past the request length are
    /// unspecified garbage — recycled memory is not zeroed), writes its
    /// response from offset 0, and returns the response length, which is
    /// clamped to the capacity.
    pub fn register<F>(&mut self, handler: F) -> u32
    where
        F: Fn(usize, &mut [u8]) -> usize + Send + Sync + 'static,
    {
        self.inner.register(move |mut buf: HotBuf| {
            let req_len = buf.len();
            let cap = buf.capacity();
            let resp_len = handler(req_len, buf.raw_mut()).min(cap);
            buf.set_len(resp_len);
            buf
        })
    }
}

/// A running byte-payload ring: responder pool + in-place handlers.
///
/// # Examples
///
/// ```
/// use hotcalls::rt::{ByteCallTable, ByteRing};
/// use hotcalls::HotCallConfig;
///
/// let mut table = ByteCallTable::new();
/// let upper = table.register(|n, buf| {
///     buf[..n].make_ascii_uppercase();
///     n
/// });
/// let ring = ByteRing::spawn_pool(table, 8, 1, HotCallConfig::patient()).unwrap();
/// let mut caller = ring.caller();
/// let n = caller
///     .call_with(upper, b"hotcalls", 0, |resp| {
///         assert_eq!(resp, b"HOTCALLS");
///         resp.len()
///     })
///     .unwrap();
/// assert_eq!(n, 8);
/// assert_eq!(caller.arena_stats().inline_hits, 1);
/// ```
#[derive(Debug)]
pub struct ByteRing {
    server: RingServer<HotBuf, HotBuf>,
}

impl ByteRing {
    /// Spawns `n_responders` threads draining a ring of `capacity` slots.
    ///
    /// # Errors
    ///
    /// As [`RingServer::spawn_pool`].
    pub fn spawn_pool(
        table: ByteCallTable,
        capacity: usize,
        n_responders: usize,
        config: HotCallConfig,
    ) -> Result<Self> {
        Ok(ByteRing {
            server: RingServer::spawn_pool(table.inner, capacity, n_responders, config)?,
        })
    }

    /// Spawns an adaptive pool governed by `policy` (see
    /// [`RingServer::spawn_adaptive`]): between `policy.min` and
    /// `policy.max` responders active, surplus parked when idle, woken on
    /// backlog.
    ///
    /// # Errors
    ///
    /// As [`RingServer::spawn_adaptive`].
    pub fn spawn_adaptive(
        table: ByteCallTable,
        capacity: usize,
        policy: ResponderPolicy,
        config: HotCallConfig,
    ) -> Result<Self> {
        Ok(ByteRing {
            server: RingServer::spawn_adaptive(table.inner, capacity, policy, config)?,
        })
    }

    /// A caller handle with its own private arena (no cross-thread
    /// coordination on the buffer path).
    pub fn caller(&self) -> ByteCaller {
        ByteCaller {
            requester: self.server.requester(),
            arena: SlabArena::new(),
        }
    }

    /// Number of responder threads in the pool (active and parked).
    pub fn responders(&self) -> usize {
        self.server.responders()
    }

    /// Transport statistics, aggregated over the responder pool.
    pub fn stats(&self) -> HotCallStats {
        self.server.stats()
    }

    /// The governor's current shape and decision counters.
    pub fn governor_stats(&self) -> GovernorStats {
        self.server.governor_stats()
    }

    /// Stops the responders and joins them.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

/// A byte-call handle owning the arena its payloads cycle through.
#[derive(Debug)]
pub struct ByteCaller {
    requester: RingRequester<HotBuf, HotBuf>,
    arena: SlabArena,
}

impl ByteCaller {
    /// Issues a call carrying `data`, with room for a response of up to
    /// `out_capacity` bytes, and returns the response length. The payload
    /// buffer is recycled into the arena on return.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::call`]. On error the in-flight buffer is lost
    /// to the slot (freed on shutdown), not recycled.
    pub fn call(&mut self, id: u32, data: &[u8], out_capacity: usize) -> Result<usize> {
        self.call_with(id, data, out_capacity, <[u8]>::len)
    }

    /// Issues a call and hands the response bytes to `read` before the
    /// buffer is recycled — the zero-copy way to consume a response.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::call`].
    pub fn call_with<R>(
        &mut self,
        id: u32,
        data: &[u8],
        out_capacity: usize,
        read: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let buf = self.arena.acquire(data, out_capacity);
        let resp = self.requester.call(id, buf)?;
        let r = read(resp.as_slice());
        self.arena.recycle(resp);
        Ok(r)
    }

    /// Submits a call without waiting: the pipelined byte path. The
    /// request is staged into an arena buffer (inline for small payloads)
    /// and travels through the ring while the caller keeps working; redeem
    /// with [`ByteCaller::wait_with`] or [`ByteCaller::wait_any_with`].
    ///
    /// # Errors
    ///
    /// As [`RingRequester::submit`]. On error the staged buffer is lost to
    /// the slot (freed on shutdown), not recycled.
    pub fn submit(&mut self, id: u32, data: &[u8], out_capacity: usize) -> Result<Ticket> {
        let buf = self.arena.acquire(data, out_capacity);
        self.requester.submit(id, buf)
    }

    /// Waits for a submitted call, hands the response bytes to `read`,
    /// and recycles the buffer into the arena.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::wait`].
    pub fn wait_with<R>(&mut self, ticket: Ticket, read: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let resp = self.requester.wait(ticket)?;
        let r = read(resp.as_slice());
        self.arena.recycle(resp);
        Ok(r)
    }

    /// Waits until *any* of `tickets` completes (removing it from the
    /// set), hands its response bytes to `read`, and recycles the buffer.
    /// Returns the completed submission's sequence number (see
    /// [`Ticket::seq`]) alongside `read`'s result.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::wait_any`].
    pub fn wait_any_with<R>(
        &mut self,
        tickets: &mut Vec<Ticket>,
        read: impl FnOnce(u64, &[u8]) -> R,
    ) -> Result<(u64, R)> {
        let (seq, resp) = self.requester.wait_any(tickets)?;
        let r = read(seq, resp.as_slice());
        self.arena.recycle(resp);
        Ok((seq, r))
    }

    /// Submits `bundle` as one ring slot and hands each response to
    /// `read` (called with the bundle position and the response bytes) in
    /// submission order, recycling every buffer into the arena. Per-call
    /// failures surface as `Err` entries in the returned vector.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::call_bundle`].
    pub fn call_bundle_with<R>(
        &mut self,
        bundle: ByteBundle,
        mut read: impl FnMut(usize, &[u8]) -> R,
    ) -> Result<Vec<Result<R>>> {
        let results = self.requester.call_bundle(bundle.inner)?;
        let mut out = Vec::with_capacity(results.len());
        for (i, res) in results.into_iter().enumerate() {
            out.push(match res {
                Ok(buf) => {
                    let r = read(i, buf.as_slice());
                    self.arena.recycle(buf);
                    Ok(r)
                }
                Err(e) => Err(e),
            });
        }
        Ok(out)
    }

    /// Submits `bundle` as one ring slot and returns each call's response
    /// length (the buffers are recycled without being read).
    ///
    /// # Errors
    ///
    /// As [`ByteCaller::call_bundle_with`].
    pub fn call_bundle(&mut self, bundle: ByteBundle) -> Result<Vec<Result<usize>>> {
        self.call_bundle_with(bundle, |_, resp| resp.len())
    }

    /// Counters of this caller's private arena.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Transport statistics, aggregated over the responder pool.
    pub fn stats(&self) -> HotCallStats {
        self.requester.stats()
    }

    /// The governor's current shape and decision counters.
    pub fn governor_stats(&self) -> GovernorStats {
        self.requester.governor_stats()
    }
}

/// A bundle of byte calls staged in a caller's arena: N small calls, one
/// ring submission, one responder dispatch, at most one wakeup.
///
/// Build with [`ByteBundle::push`] (which stages each request through the
/// owning caller's arena — inline for cache-line-sized payloads), then
/// issue with [`ByteCaller::call_bundle`] /
/// [`ByteCaller::call_bundle_with`].
///
/// # Examples
///
/// ```
/// use hotcalls::rt::{ByteBundle, ByteCallTable, ByteRing};
/// use hotcalls::HotCallConfig;
///
/// let mut table = ByteCallTable::new();
/// let upper = table.register(|n, buf| {
///     buf[..n].make_ascii_uppercase();
///     n
/// });
/// let ring = ByteRing::spawn_pool(table, 8, 1, HotCallConfig::patient()).unwrap();
/// let mut caller = ring.caller();
/// let mut bundle = ByteBundle::new();
/// bundle
///     .push(&mut caller, upper, b"hot", 0)
///     .push(&mut caller, upper, b"calls", 0);
/// let lens = caller.call_bundle(bundle).unwrap();
/// let lens: Vec<usize> = lens.into_iter().map(|r| r.unwrap()).collect();
/// assert_eq!(lens, [3, 5]);
/// ```
#[derive(Debug, Default)]
pub struct ByteBundle {
    inner: Bundle<HotBuf>,
}

impl ByteBundle {
    /// An empty bundle.
    pub fn new() -> Self {
        ByteBundle::default()
    }

    /// An empty bundle with room for `n` calls.
    pub fn with_capacity(n: usize) -> Self {
        ByteBundle {
            inner: Bundle::with_capacity(n),
        }
    }

    /// Stages one call: `data` is copied into a buffer from `caller`'s
    /// arena (inline when it fits a cache line) with room for a response
    /// of up to `out_capacity` bytes.
    pub fn push(
        &mut self,
        caller: &mut ByteCaller,
        id: u32,
        data: &[u8],
        out_capacity: usize,
    ) -> &mut Self {
        let buf = caller.arena.acquire(data, out_capacity);
        self.inner.push(id, buf);
        self
    }

    /// Calls staged so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Nothing staged yet?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_table() -> (ByteCallTable, u32, u32) {
        let mut t = ByteCallTable::new();
        let rev = t.register(|n, buf| {
            buf[..n].reverse();
            n
        });
        // An `out`-style handler: ignores the request body, reads the
        // requested response size from an 8-byte header, fills that many
        // bytes.
        let produce = t.register(|n, buf| {
            assert!(n >= 8);
            let want = u64::from_le_bytes(buf[..8].try_into().unwrap()) as usize;
            let want = want.min(buf.len());
            buf[..want].fill(0xAB);
            want
        });
        (t, rev, produce)
    }

    #[test]
    fn inline_payloads_roundtrip_in_place() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 4, 1, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        for _ in 0..100 {
            caller
                .call_with(rev, b"abcdef", 0, |resp| assert_eq!(resp, b"fedcba"))
                .unwrap();
        }
        let stats = caller.arena_stats();
        assert_eq!(stats.inline_hits, 100);
        assert_eq!(stats.allocs, 0, "inline path must never touch the heap");
        assert_eq!(ring.stats().calls, 100);
    }

    #[test]
    fn slab_payloads_recycle_in_steady_state() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 4, 2, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        let data = vec![7u8; 2000];
        for _ in 0..50 {
            let n = caller.call(rev, &data, 0).unwrap();
            assert_eq!(n, 2000);
        }
        let stats = caller.arena_stats();
        assert_eq!(stats.allocs, 1, "one cold alloc, then reuse");
        assert_eq!(stats.recycles, 49);
    }

    #[test]
    fn out_style_call_grows_into_its_capacity() {
        let (t, _, produce) = echo_table();
        let ring = ByteRing::spawn_pool(t, 4, 1, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        let want = 1500u64.to_le_bytes();
        let n = caller
            .call_with(produce, &want, 1500, |resp| {
                assert!(resp.iter().all(|&b| b == 0xAB));
                resp.len()
            })
            .unwrap();
        assert_eq!(n, 1500);
        // 8-byte request, 1500-byte response: the capacity hint routed it
        // to a slab big enough for the reply.
        assert_eq!(caller.arena_stats().allocs, 1);
    }

    #[test]
    fn pipelined_byte_calls_recycle_buffers() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 16, 2, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        let payload = vec![9u8; 700];
        for _ in 0..20 {
            let mut tickets: Vec<Ticket> = (0..8)
                .map(|_| caller.submit(rev, &payload, 0).unwrap())
                .collect();
            while !tickets.is_empty() {
                let (_, n) = caller
                    .wait_any_with(&mut tickets, |_, resp| resp.len())
                    .unwrap();
                assert_eq!(n, 700);
            }
        }
        // 8 buffers in flight at once: at most 8 cold allocs ever, the
        // rest recycled.
        let s = caller.arena_stats();
        assert!(s.allocs <= 8, "pipelined arena leaked allocs: {s:?}");
        assert_eq!(ring.stats().calls, 160);
    }

    #[test]
    fn byte_bundle_roundtrips_inline_payloads() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 4, 1, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        let mut bundle = ByteBundle::with_capacity(3);
        bundle
            .push(&mut caller, rev, b"ab", 0)
            .push(&mut caller, rev, b"xyz", 0)
            .push(&mut caller, rev, b"hotcalls", 0);
        assert_eq!(bundle.len(), 3);
        let mut seen = Vec::new();
        let results = caller
            .call_bundle_with(bundle, |i, resp| {
                seen.push((i, resp.to_vec()));
                resp.len()
            })
            .unwrap();
        assert!(results.into_iter().all(|r| r.is_ok()));
        assert_eq!(
            seen,
            [
                (0, b"ba".to_vec()),
                (1, b"zyx".to_vec()),
                (2, b"sllactoh".to_vec())
            ]
        );
        // All three payloads fit a cache line: the bundle stays heap-free
        // on the buffer side.
        assert_eq!(caller.arena_stats().inline_hits, 3);
        assert_eq!(ring.stats().calls, 3);
    }

    #[test]
    fn adaptive_byte_ring_serves_and_reports_governor() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_adaptive(
            t,
            8,
            ResponderPolicy::elastic(1, 3),
            HotCallConfig::patient(),
        )
        .unwrap();
        assert_eq!(ring.responders(), 3);
        let mut caller = ring.caller();
        for _ in 0..100 {
            caller
                .call_with(rev, b"abcd", 0, |resp| assert_eq!(resp, b"dcba"))
                .unwrap();
        }
        let g = ring.governor_stats();
        assert_eq!((g.min, g.max), (1, 3));
        assert!(g.active >= 1 && g.active <= 3, "{g:?}");
        assert_eq!(ring.stats().calls, 100);
    }

    #[test]
    fn concurrent_callers_have_independent_arenas() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 8, 2, HotCallConfig::patient()).unwrap();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let mut caller = ring.caller();
            handles.push(std::thread::spawn(move || {
                let data = vec![3u8; 300];
                for _ in 0..200 {
                    caller.call(rev, &data, 0).unwrap();
                }
                caller.arena_stats()
            }));
        }
        for h in handles {
            let s = h.join().unwrap();
            assert_eq!(s.allocs, 1);
            assert_eq!(s.recycles, 199);
        }
        assert_eq!(ring.stats().calls, 600);
    }
}
