//! The byte-payload hot path: arena-backed buffers over the submission
//! ring.
//!
//! [`ByteRing`] specializes [`super::RingServer`] to `HotBuf` payloads and
//! pairs every caller with its own [`SlabArena`]: a request buffer is
//! acquired from the arena (inline for cache-line-sized payloads, a
//! recycled slab otherwise), travels through the ring *by value*, is
//! transformed **in place** by the handler — the same buffer carries the
//! response back — and returns to the arena when redeemed. Steady state
//! does zero per-call heap work: small payloads never touch the heap,
//! large ones cycle through the per-size-class free lists.
//!
//! Handlers see `(request_len, &mut [u8])` over the buffer's full capacity
//! and return the response length. Capacity beyond the request holds
//! whatever the previous call left there — the NRZ discipline: write your
//! response, report its length, and nobody pays for zeroing in between.

use crate::config::{HotCallConfig, HotCallStats};
use crate::error::Result;

use super::arena::{ArenaStats, HotBuf, SlabArena};
use super::ring::{RingRequester, RingServer};
use super::CallTable;

/// A call table whose handlers transform byte payloads in place.
#[derive(Debug, Default)]
pub struct ByteCallTable {
    inner: CallTable<HotBuf, HotBuf>,
}

impl ByteCallTable {
    /// An empty table.
    pub fn new() -> Self {
        ByteCallTable::default()
    }

    /// Registers a handler and returns its call id.
    ///
    /// The handler receives the request length and the buffer's **full
    /// capacity** as a mutable slice (bytes past the request length are
    /// unspecified garbage — recycled memory is not zeroed), writes its
    /// response from offset 0, and returns the response length, which is
    /// clamped to the capacity.
    pub fn register<F>(&mut self, handler: F) -> u32
    where
        F: Fn(usize, &mut [u8]) -> usize + Send + Sync + 'static,
    {
        self.inner.register(move |mut buf: HotBuf| {
            let req_len = buf.len();
            let cap = buf.capacity();
            let resp_len = handler(req_len, buf.raw_mut()).min(cap);
            buf.set_len(resp_len);
            buf
        })
    }
}

/// A running byte-payload ring: responder pool + in-place handlers.
///
/// # Examples
///
/// ```
/// use hotcalls::rt::{ByteCallTable, ByteRing};
/// use hotcalls::HotCallConfig;
///
/// let mut table = ByteCallTable::new();
/// let upper = table.register(|n, buf| {
///     buf[..n].make_ascii_uppercase();
///     n
/// });
/// let ring = ByteRing::spawn_pool(table, 8, 1, HotCallConfig::patient()).unwrap();
/// let mut caller = ring.caller();
/// let n = caller
///     .call_with(upper, b"hotcalls", 0, |resp| {
///         assert_eq!(resp, b"HOTCALLS");
///         resp.len()
///     })
///     .unwrap();
/// assert_eq!(n, 8);
/// assert_eq!(caller.arena_stats().inline_hits, 1);
/// ```
#[derive(Debug)]
pub struct ByteRing {
    server: RingServer<HotBuf, HotBuf>,
}

impl ByteRing {
    /// Spawns `n_responders` threads draining a ring of `capacity` slots.
    ///
    /// # Errors
    ///
    /// As [`RingServer::spawn_pool`].
    pub fn spawn_pool(
        table: ByteCallTable,
        capacity: usize,
        n_responders: usize,
        config: HotCallConfig,
    ) -> Result<Self> {
        Ok(ByteRing {
            server: RingServer::spawn_pool(table.inner, capacity, n_responders, config)?,
        })
    }

    /// A caller handle with its own private arena (no cross-thread
    /// coordination on the buffer path).
    pub fn caller(&self) -> ByteCaller {
        ByteCaller {
            requester: self.server.requester(),
            arena: SlabArena::new(),
        }
    }

    /// Transport statistics, aggregated over the responder pool.
    pub fn stats(&self) -> HotCallStats {
        self.server.stats()
    }

    /// Stops the responders and joins them.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

/// A byte-call handle owning the arena its payloads cycle through.
#[derive(Debug)]
pub struct ByteCaller {
    requester: RingRequester<HotBuf, HotBuf>,
    arena: SlabArena,
}

impl ByteCaller {
    /// Issues a call carrying `data`, with room for a response of up to
    /// `out_capacity` bytes, and returns the response length. The payload
    /// buffer is recycled into the arena on return.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::call`]. On error the in-flight buffer is lost
    /// to the slot (freed on shutdown), not recycled.
    pub fn call(&mut self, id: u32, data: &[u8], out_capacity: usize) -> Result<usize> {
        self.call_with(id, data, out_capacity, <[u8]>::len)
    }

    /// Issues a call and hands the response bytes to `read` before the
    /// buffer is recycled — the zero-copy way to consume a response.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::call`].
    pub fn call_with<R>(
        &mut self,
        id: u32,
        data: &[u8],
        out_capacity: usize,
        read: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let buf = self.arena.acquire(data, out_capacity);
        let resp = self.requester.call(id, buf)?;
        let r = read(resp.as_slice());
        self.arena.recycle(resp);
        Ok(r)
    }

    /// Counters of this caller's private arena.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Transport statistics, aggregated over the responder pool.
    pub fn stats(&self) -> HotCallStats {
        self.requester.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_table() -> (ByteCallTable, u32, u32) {
        let mut t = ByteCallTable::new();
        let rev = t.register(|n, buf| {
            buf[..n].reverse();
            n
        });
        // An `out`-style handler: ignores the request body, reads the
        // requested response size from an 8-byte header, fills that many
        // bytes.
        let produce = t.register(|n, buf| {
            assert!(n >= 8);
            let want = u64::from_le_bytes(buf[..8].try_into().unwrap()) as usize;
            let want = want.min(buf.len());
            buf[..want].fill(0xAB);
            want
        });
        (t, rev, produce)
    }

    #[test]
    fn inline_payloads_roundtrip_in_place() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 4, 1, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        for _ in 0..100 {
            caller
                .call_with(rev, b"abcdef", 0, |resp| assert_eq!(resp, b"fedcba"))
                .unwrap();
        }
        let stats = caller.arena_stats();
        assert_eq!(stats.inline_hits, 100);
        assert_eq!(stats.allocs, 0, "inline path must never touch the heap");
        assert_eq!(ring.stats().calls, 100);
    }

    #[test]
    fn slab_payloads_recycle_in_steady_state() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 4, 2, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        let data = vec![7u8; 2000];
        for _ in 0..50 {
            let n = caller.call(rev, &data, 0).unwrap();
            assert_eq!(n, 2000);
        }
        let stats = caller.arena_stats();
        assert_eq!(stats.allocs, 1, "one cold alloc, then reuse");
        assert_eq!(stats.recycles, 49);
    }

    #[test]
    fn out_style_call_grows_into_its_capacity() {
        let (t, _, produce) = echo_table();
        let ring = ByteRing::spawn_pool(t, 4, 1, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        let want = 1500u64.to_le_bytes();
        let n = caller
            .call_with(produce, &want, 1500, |resp| {
                assert!(resp.iter().all(|&b| b == 0xAB));
                resp.len()
            })
            .unwrap();
        assert_eq!(n, 1500);
        // 8-byte request, 1500-byte response: the capacity hint routed it
        // to a slab big enough for the reply.
        assert_eq!(caller.arena_stats().allocs, 1);
    }

    #[test]
    fn concurrent_callers_have_independent_arenas() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 8, 2, HotCallConfig::patient()).unwrap();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let mut caller = ring.caller();
            handles.push(std::thread::spawn(move || {
                let data = vec![3u8; 300];
                for _ in 0..200 {
                    caller.call(rev, &data, 0).unwrap();
                }
                caller.arena_stats()
            }));
        }
        for h in handles {
            let s = h.join().unwrap();
            assert_eq!(s.allocs, 1);
            assert_eq!(s.recycles, 199);
        }
        assert_eq!(ring.stats().calls, 600);
    }
}
