//! The byte-payload hot path: arena-backed buffers over the submission
//! ring.
//!
//! [`ByteRing`] specializes [`super::RingServer`] to `HotBuf` payloads and
//! pairs every caller with its own [`SlabArena`]: a request buffer is
//! acquired from the arena (inline for cache-line-sized payloads, a
//! recycled slab otherwise), travels through the ring *by value*, is
//! transformed **in place** by the handler — the same buffer carries the
//! response back — and returns to the arena when redeemed. Steady state
//! does zero per-call heap work: small payloads never touch the heap,
//! large ones cycle through the per-size-class free lists.
//!
//! Handlers see `(request_len, &mut [u8])` over the buffer's full capacity
//! and return the response length. Capacity beyond the request holds
//! whatever the previous call left there — the NRZ discipline: write your
//! response, report its length, and nobody pays for zeroing in between.

use crate::config::{
    GovernorStats, HotCallConfig, HotCallStats, ResponderPolicy, RingStats, ShardPolicy,
};
use crate::error::Result;
use crate::telemetry::{PlaneProvider, PlaneTelemetry};

use super::arena::{ArenaStats, HotBuf, SlabArena};
use super::ring::{Bundle, RingRequester, RingServer, Ticket};
use super::shard::{ShardedRequester, ShardedServer};
use super::CallTable;

/// A call table whose handlers transform byte payloads in place.
#[derive(Debug, Default)]
pub struct ByteCallTable {
    inner: CallTable<HotBuf, HotBuf>,
}

impl ByteCallTable {
    /// An empty table.
    pub fn new() -> Self {
        ByteCallTable::default()
    }

    /// Registers a handler and returns its call id.
    ///
    /// The handler receives the request length and the buffer's **full
    /// capacity** as a mutable slice (bytes past the request length are
    /// unspecified garbage — recycled memory is not zeroed), writes its
    /// response from offset 0, and returns the response length, which is
    /// clamped to the capacity.
    pub fn register<F>(&mut self, handler: F) -> u32
    where
        F: Fn(usize, &mut [u8]) -> usize + Send + Sync + 'static,
    {
        self.inner.register(move |mut buf: HotBuf| {
            let req_len = buf.len();
            let cap = buf.capacity();
            let resp_len = handler(req_len, buf.raw_mut()).min(cap);
            buf.set_len(resp_len);
            buf
        })
    }
}

/// A running byte-payload ring: responder pool + in-place handlers.
///
/// # Examples
///
/// ```
/// use hotcalls::rt::{ByteCallTable, ByteRing};
/// use hotcalls::HotCallConfig;
///
/// let mut table = ByteCallTable::new();
/// let upper = table.register(|n, buf| {
///     buf[..n].make_ascii_uppercase();
///     n
/// });
/// let ring = ByteRing::spawn_pool(table, 8, 1, HotCallConfig::patient()).unwrap();
/// let mut caller = ring.caller();
/// let n = caller
///     .call_with(upper, b"hotcalls", 0, |resp| {
///         assert_eq!(resp, b"HOTCALLS");
///         resp.len()
///     })
///     .unwrap();
/// assert_eq!(n, 8);
/// assert_eq!(caller.arena_stats().inline_hits, 1);
/// ```
#[derive(Debug)]
pub struct ByteRing {
    plane: BytePlane,
}

/// The transport behind a [`ByteRing`]: one shared ring, or the sharded
/// multi-ring plane.
#[derive(Debug)]
enum BytePlane {
    Single(RingServer<HotBuf, HotBuf>),
    Sharded(ShardedServer<HotBuf, HotBuf>),
}

impl ByteRing {
    /// Spawns `n_responders` threads draining a ring of `capacity` slots.
    ///
    /// # Errors
    ///
    /// As [`RingServer::spawn_pool`].
    pub fn spawn_pool(
        table: ByteCallTable,
        capacity: usize,
        n_responders: usize,
        config: HotCallConfig,
    ) -> Result<Self> {
        Ok(ByteRing {
            plane: BytePlane::Single(RingServer::spawn_pool(
                table.inner,
                capacity,
                n_responders,
                config,
            )?),
        })
    }

    /// Spawns an adaptive pool governed by `policy` (see
    /// [`RingServer::spawn_adaptive`]): between `policy.min` and
    /// `policy.max` responders active, surplus parked when idle, woken on
    /// backlog.
    ///
    /// # Errors
    ///
    /// As [`RingServer::spawn_adaptive`].
    pub fn spawn_adaptive(
        table: ByteCallTable,
        capacity: usize,
        policy: ResponderPolicy,
        config: HotCallConfig,
    ) -> Result<Self> {
        Ok(ByteRing {
            plane: BytePlane::Single(RingServer::spawn_adaptive(
                table.inner,
                capacity,
                policy,
                config,
            )?),
        })
    }

    /// Spawns the sharded plane (see [`ShardedServer::spawn`]):
    /// `policy.resolved_shards()` independent rings of
    /// `capacity_per_shard` slots each, one work-stealing responder per
    /// shard, callers pinned to home shards by the router.
    ///
    /// # Errors
    ///
    /// As [`ShardedServer::spawn`].
    pub fn spawn_sharded(
        table: ByteCallTable,
        capacity_per_shard: usize,
        policy: ShardPolicy,
        config: HotCallConfig,
    ) -> Result<Self> {
        Ok(ByteRing {
            plane: BytePlane::Sharded(ShardedServer::spawn(
                table.inner,
                capacity_per_shard,
                policy,
                config,
            )?),
        })
    }

    /// A caller handle with its own private arena (no cross-thread
    /// coordination on the buffer path). On a sharded plane the caller is
    /// pinned to a router-chosen home shard.
    pub fn caller(&self) -> ByteCaller {
        let requester = match &self.plane {
            BytePlane::Single(server) => ByteRequester::Single(server.requester()),
            BytePlane::Sharded(server) => ByteRequester::Sharded(server.requester()),
        };
        ByteCaller {
            requester,
            arena: SlabArena::new(),
        }
    }

    /// A caller placed on logical core `core`: on a sharded plane the
    /// home shard is chosen placement-aware (see
    /// [`ShardedServer::requester_near`]) so the handoff stays same-core
    /// or at least same-node when an on-node shard is active; on a
    /// single-ring plane there is nothing to choose.
    pub fn caller_near(&self, core: usize, topology: &sgx_sim::Topology) -> ByteCaller {
        let requester = match &self.plane {
            BytePlane::Single(server) => ByteRequester::Single(server.requester()),
            BytePlane::Sharded(server) => {
                ByteRequester::Sharded(server.requester_near(core, topology))
            }
        };
        ByteCaller {
            requester,
            arena: SlabArena::new(),
        }
    }

    /// A caller pinned to an explicit home shard — the affinity override
    /// for workloads that partition connections themselves. On a
    /// single-ring plane only shard 0 exists.
    ///
    /// # Errors
    ///
    /// [`crate::HotCallError::InvalidConfig`] if `shard` is out of range.
    pub fn caller_on(&self, shard: usize) -> Result<ByteCaller> {
        let requester = match &self.plane {
            BytePlane::Single(server) => {
                if shard != 0 {
                    return Err(crate::error::HotCallError::InvalidConfig(
                        "shard affinity index out of range",
                    ));
                }
                ByteRequester::Single(server.requester())
            }
            BytePlane::Sharded(server) => ByteRequester::Sharded(server.requester_on(shard)?),
        };
        Ok(ByteCaller {
            requester,
            arena: SlabArena::new(),
        })
    }

    /// Number of responder threads in the pool (active and parked).
    pub fn responders(&self) -> usize {
        match &self.plane {
            BytePlane::Single(server) => server.responders(),
            BytePlane::Sharded(server) => server.shards(),
        }
    }

    /// Number of ring shards (1 for the single-ring plane).
    pub fn shards(&self) -> usize {
        match &self.plane {
            BytePlane::Single(_) => 1,
            BytePlane::Sharded(server) => server.shards(),
        }
    }

    /// Transport statistics, aggregated over the responder pool.
    pub fn stats(&self) -> HotCallStats {
        match &self.plane {
            BytePlane::Single(server) => server.stats(),
            BytePlane::Sharded(server) => server.stats(),
        }
    }

    /// The governor's current shape and decision counters.
    pub fn governor_stats(&self) -> GovernorStats {
        match &self.plane {
            BytePlane::Single(server) => server.governor_stats(),
            BytePlane::Sharded(server) => server.governor_stats(),
        }
    }

    /// Sets the plane's active responder/shard target (the `ctl` sizer's
    /// control surface), clamped into the policy's bounds, and returns
    /// the value installed. See [`RingServer::set_active_responders`] and
    /// [`ShardedServer::set_active_shards`].
    pub fn set_active(&self, n: usize) -> usize {
        match &self.plane {
            BytePlane::Single(server) => server.set_active_responders(n),
            BytePlane::Sharded(server) => server.set_active_shards(n),
        }
    }

    /// The full per-shard snapshot. A single-ring plane reports itself as
    /// one degenerate shard (no probes, no steals).
    pub fn ring_stats(&self) -> RingStats {
        match &self.plane {
            BytePlane::Single(server) => {
                RingStats::from_single(server.stats(), server.governor_stats())
            }
            BytePlane::Sharded(server) => server.ring_stats(),
        }
    }

    /// A full telemetry view of the byte plane: per-lane stage histograms,
    /// reap latency, and the shard-schema stats, tagged with a byte-plane
    /// kind so dashboards can tell payload lanes from typed rings.
    pub fn telemetry(&self, name: &str) -> PlaneTelemetry {
        let mut t = match &self.plane {
            BytePlane::Single(server) => server.telemetry(name),
            BytePlane::Sharded(server) => server.telemetry(name),
        };
        t.kind = self.plane_kind();
        t
    }

    /// A boxed provider for [`crate::TelemetryRegistry::register_plane`],
    /// capturing the plane's shared state so snapshots stay live after
    /// this handle is dropped.
    pub fn telemetry_provider(&self, name: impl Into<String>) -> PlaneProvider {
        let kind = self.plane_kind();
        let inner = match &self.plane {
            BytePlane::Single(server) => server.telemetry_provider(name),
            BytePlane::Sharded(server) => server.telemetry_provider(name),
        };
        Box::new(move || {
            let mut t = inner();
            t.kind = kind;
            t
        })
    }

    fn plane_kind(&self) -> &'static str {
        match &self.plane {
            BytePlane::Single(_) => "byte-single",
            BytePlane::Sharded(_) => "byte-sharded",
        }
    }

    /// Stops the responders and joins them.
    pub fn shutdown(self) {
        match self.plane {
            BytePlane::Single(server) => server.shutdown(),
            BytePlane::Sharded(server) => server.shutdown(),
        }
    }
}

/// A byte-call handle owning the arena its payloads cycle through.
#[derive(Debug)]
pub struct ByteCaller {
    requester: ByteRequester,
    arena: SlabArena,
}

/// The requester half matching [`BytePlane`]: shared-ring or pinned to a
/// home shard of the sharded plane.
#[derive(Debug)]
enum ByteRequester {
    Single(RingRequester<HotBuf, HotBuf>),
    Sharded(ShardedRequester<HotBuf, HotBuf>),
}

impl ByteRequester {
    fn call(&self, id: u32, buf: HotBuf) -> Result<HotBuf> {
        match self {
            ByteRequester::Single(r) => r.call(id, buf),
            ByteRequester::Sharded(r) => r.call(id, buf),
        }
    }

    fn submit(&self, id: u32, buf: HotBuf) -> Result<Ticket> {
        match self {
            ByteRequester::Single(r) => r.submit(id, buf),
            ByteRequester::Sharded(r) => r.submit(id, buf),
        }
    }

    fn wait(&self, ticket: Ticket) -> Result<HotBuf> {
        match self {
            ByteRequester::Single(r) => r.wait(ticket),
            ByteRequester::Sharded(r) => r.wait(ticket),
        }
    }

    fn wait_any(&self, tickets: &mut Vec<Ticket>) -> Result<(u64, HotBuf)> {
        match self {
            ByteRequester::Single(r) => r.wait_any(tickets),
            ByteRequester::Sharded(r) => r.wait_any(tickets),
        }
    }

    fn call_bundle(&self, bundle: Bundle<HotBuf>) -> Result<Vec<Result<HotBuf>>> {
        match self {
            ByteRequester::Single(r) => r.call_bundle(bundle),
            ByteRequester::Sharded(r) => r.call_bundle(bundle),
        }
    }

    fn stats(&self) -> HotCallStats {
        match self {
            ByteRequester::Single(r) => r.stats(),
            ByteRequester::Sharded(r) => r.stats(),
        }
    }

    fn governor_stats(&self) -> GovernorStats {
        match self {
            ByteRequester::Single(r) => r.governor_stats(),
            ByteRequester::Sharded(r) => r.governor_stats(),
        }
    }

    fn home(&self) -> usize {
        match self {
            ByteRequester::Single(_) => 0,
            ByteRequester::Sharded(r) => r.home(),
        }
    }
}

impl ByteCaller {
    /// Issues a call carrying `data`, with room for a response of up to
    /// `out_capacity` bytes, and returns the response length. The payload
    /// buffer is recycled into the arena on return.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::call`]. On error the in-flight buffer is lost
    /// to the slot (freed on shutdown), not recycled.
    pub fn call(&mut self, id: u32, data: &[u8], out_capacity: usize) -> Result<usize> {
        self.call_with(id, data, out_capacity, <[u8]>::len)
    }

    /// Issues a call and hands the response bytes to `read` before the
    /// buffer is recycled — the zero-copy way to consume a response.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::call`].
    pub fn call_with<R>(
        &mut self,
        id: u32,
        data: &[u8],
        out_capacity: usize,
        read: impl FnOnce(&[u8]) -> R,
    ) -> Result<R> {
        let buf = self.arena.acquire(data, out_capacity);
        let resp = self.requester.call(id, buf)?;
        let r = read(resp.as_slice());
        self.arena.recycle(resp);
        Ok(r)
    }

    /// Submits a call without waiting: the pipelined byte path. The
    /// request is staged into an arena buffer (inline for small payloads)
    /// and travels through the ring while the caller keeps working; redeem
    /// with [`ByteCaller::wait_with`] or [`ByteCaller::wait_any_with`].
    ///
    /// # Errors
    ///
    /// As [`RingRequester::submit`]. On error the staged buffer is lost to
    /// the slot (freed on shutdown), not recycled.
    pub fn submit(&mut self, id: u32, data: &[u8], out_capacity: usize) -> Result<Ticket> {
        let buf = self.arena.acquire(data, out_capacity);
        self.requester.submit(id, buf)
    }

    /// Waits for a submitted call, hands the response bytes to `read`,
    /// and recycles the buffer into the arena.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::wait`].
    pub fn wait_with<R>(&mut self, ticket: Ticket, read: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let resp = self.requester.wait(ticket)?;
        let r = read(resp.as_slice());
        self.arena.recycle(resp);
        Ok(r)
    }

    /// Waits until *any* of `tickets` completes (removing it from the
    /// set), hands its response bytes to `read`, and recycles the buffer.
    /// Returns the completed submission's sequence number (see
    /// [`Ticket::seq`]) alongside `read`'s result.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::wait_any`].
    pub fn wait_any_with<R>(
        &mut self,
        tickets: &mut Vec<Ticket>,
        read: impl FnOnce(u64, &[u8]) -> R,
    ) -> Result<(u64, R)> {
        let (seq, resp) = self.requester.wait_any(tickets)?;
        let r = read(seq, resp.as_slice());
        self.arena.recycle(resp);
        Ok((seq, r))
    }

    /// Submits `bundle` as one ring slot and hands each response to
    /// `read` (called with the bundle position and the response bytes) in
    /// submission order, recycling every buffer into the arena. Per-call
    /// failures surface as `Err` entries in the returned vector.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::call_bundle`].
    pub fn call_bundle_with<R>(
        &mut self,
        bundle: ByteBundle,
        mut read: impl FnMut(usize, &[u8]) -> R,
    ) -> Result<Vec<Result<R>>> {
        let results = self.requester.call_bundle(bundle.inner)?;
        let mut out = Vec::with_capacity(results.len());
        for (i, res) in results.into_iter().enumerate() {
            out.push(match res {
                Ok(buf) => {
                    let r = read(i, buf.as_slice());
                    self.arena.recycle(buf);
                    Ok(r)
                }
                Err(e) => Err(e),
            });
        }
        Ok(out)
    }

    /// Submits `bundle` as one ring slot and returns each call's response
    /// length (the buffers are recycled without being read).
    ///
    /// # Errors
    ///
    /// As [`ByteCaller::call_bundle_with`].
    pub fn call_bundle(&mut self, bundle: ByteBundle) -> Result<Vec<Result<usize>>> {
        self.call_bundle_with(bundle, |_, resp| resp.len())
    }

    /// Counters of this caller's private arena.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Transport statistics, aggregated over the responder pool.
    pub fn stats(&self) -> HotCallStats {
        self.requester.stats()
    }

    /// The governor's current shape and decision counters.
    pub fn governor_stats(&self) -> GovernorStats {
        self.requester.governor_stats()
    }

    /// The home shard this caller's submissions land on (always 0 on a
    /// single-ring plane).
    pub fn home_shard(&self) -> usize {
        self.requester.home()
    }
}

/// A bundle of byte calls staged in a caller's arena: N small calls, one
/// ring submission, one responder dispatch, at most one wakeup.
///
/// Build with [`ByteBundle::push`] (which stages each request through the
/// owning caller's arena — inline for cache-line-sized payloads), then
/// issue with [`ByteCaller::call_bundle`] /
/// [`ByteCaller::call_bundle_with`].
///
/// # Examples
///
/// ```
/// use hotcalls::rt::{ByteBundle, ByteCallTable, ByteRing};
/// use hotcalls::HotCallConfig;
///
/// let mut table = ByteCallTable::new();
/// let upper = table.register(|n, buf| {
///     buf[..n].make_ascii_uppercase();
///     n
/// });
/// let ring = ByteRing::spawn_pool(table, 8, 1, HotCallConfig::patient()).unwrap();
/// let mut caller = ring.caller();
/// let mut bundle = ByteBundle::new();
/// bundle
///     .push(&mut caller, upper, b"hot", 0)
///     .push(&mut caller, upper, b"calls", 0);
/// let lens = caller.call_bundle(bundle).unwrap();
/// let lens: Vec<usize> = lens.into_iter().map(|r| r.unwrap()).collect();
/// assert_eq!(lens, [3, 5]);
/// ```
#[derive(Debug, Default)]
pub struct ByteBundle {
    inner: Bundle<HotBuf>,
}

impl ByteBundle {
    /// An empty bundle.
    pub fn new() -> Self {
        ByteBundle::default()
    }

    /// An empty bundle with room for `n` calls.
    pub fn with_capacity(n: usize) -> Self {
        ByteBundle {
            inner: Bundle::with_capacity(n),
        }
    }

    /// Stages one call: `data` is copied into a buffer from `caller`'s
    /// arena (inline when it fits a cache line) with room for a response
    /// of up to `out_capacity` bytes.
    pub fn push(
        &mut self,
        caller: &mut ByteCaller,
        id: u32,
        data: &[u8],
        out_capacity: usize,
    ) -> &mut Self {
        let buf = caller.arena.acquire(data, out_capacity);
        self.inner.push(id, buf);
        self
    }

    /// Calls staged so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Nothing staged yet?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_table() -> (ByteCallTable, u32, u32) {
        let mut t = ByteCallTable::new();
        let rev = t.register(|n, buf| {
            buf[..n].reverse();
            n
        });
        // An `out`-style handler: ignores the request body, reads the
        // requested response size from an 8-byte header, fills that many
        // bytes.
        let produce = t.register(|n, buf| {
            assert!(n >= 8);
            let want = u64::from_le_bytes(buf[..8].try_into().unwrap()) as usize;
            let want = want.min(buf.len());
            buf[..want].fill(0xAB);
            want
        });
        (t, rev, produce)
    }

    #[test]
    fn inline_payloads_roundtrip_in_place() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 4, 1, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        for _ in 0..100 {
            caller
                .call_with(rev, b"abcdef", 0, |resp| assert_eq!(resp, b"fedcba"))
                .unwrap();
        }
        let stats = caller.arena_stats();
        assert_eq!(stats.inline_hits, 100);
        assert_eq!(stats.allocs, 0, "inline path must never touch the heap");
        assert_eq!(ring.stats().calls, 100);
    }

    #[test]
    fn slab_payloads_recycle_in_steady_state() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 4, 2, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        let data = vec![7u8; 2000];
        for _ in 0..50 {
            let n = caller.call(rev, &data, 0).unwrap();
            assert_eq!(n, 2000);
        }
        let stats = caller.arena_stats();
        assert_eq!(stats.allocs, 1, "one cold alloc, then reuse");
        assert_eq!(stats.recycles, 49);
    }

    #[test]
    fn out_style_call_grows_into_its_capacity() {
        let (t, _, produce) = echo_table();
        let ring = ByteRing::spawn_pool(t, 4, 1, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        let want = 1500u64.to_le_bytes();
        let n = caller
            .call_with(produce, &want, 1500, |resp| {
                assert!(resp.iter().all(|&b| b == 0xAB));
                resp.len()
            })
            .unwrap();
        assert_eq!(n, 1500);
        // 8-byte request, 1500-byte response: the capacity hint routed it
        // to a slab big enough for the reply.
        assert_eq!(caller.arena_stats().allocs, 1);
    }

    #[test]
    fn pipelined_byte_calls_recycle_buffers() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 16, 2, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        let payload = vec![9u8; 700];
        for _ in 0..20 {
            let mut tickets: Vec<Ticket> = (0..8)
                .map(|_| caller.submit(rev, &payload, 0).unwrap())
                .collect();
            while !tickets.is_empty() {
                let (_, n) = caller
                    .wait_any_with(&mut tickets, |_, resp| resp.len())
                    .unwrap();
                assert_eq!(n, 700);
            }
        }
        // 8 buffers in flight at once: at most 8 cold allocs ever, the
        // rest recycled.
        let s = caller.arena_stats();
        assert!(s.allocs <= 8, "pipelined arena leaked allocs: {s:?}");
        assert_eq!(ring.stats().calls, 160);
    }

    #[test]
    fn byte_bundle_roundtrips_inline_payloads() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 4, 1, HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller();
        let mut bundle = ByteBundle::with_capacity(3);
        bundle
            .push(&mut caller, rev, b"ab", 0)
            .push(&mut caller, rev, b"xyz", 0)
            .push(&mut caller, rev, b"hotcalls", 0);
        assert_eq!(bundle.len(), 3);
        let mut seen = Vec::new();
        let results = caller
            .call_bundle_with(bundle, |i, resp| {
                seen.push((i, resp.to_vec()));
                resp.len()
            })
            .unwrap();
        assert!(results.into_iter().all(|r| r.is_ok()));
        assert_eq!(
            seen,
            [
                (0, b"ba".to_vec()),
                (1, b"zyx".to_vec()),
                (2, b"sllactoh".to_vec())
            ]
        );
        // All three payloads fit a cache line: the bundle stays heap-free
        // on the buffer side.
        assert_eq!(caller.arena_stats().inline_hits, 3);
        assert_eq!(ring.stats().calls, 3);
    }

    #[test]
    fn adaptive_byte_ring_serves_and_reports_governor() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_adaptive(
            t,
            8,
            ResponderPolicy::elastic(1, 3),
            HotCallConfig::patient(),
        )
        .unwrap();
        assert_eq!(ring.responders(), 3);
        let mut caller = ring.caller();
        for _ in 0..100 {
            caller
                .call_with(rev, b"abcd", 0, |resp| assert_eq!(resp, b"dcba"))
                .unwrap();
        }
        let g = ring.governor_stats();
        assert_eq!((g.min, g.max), (1, 3));
        assert!(g.active >= 1 && g.active <= 3, "{g:?}");
        assert_eq!(ring.stats().calls, 100);
    }

    #[test]
    fn sharded_byte_ring_roundtrips_and_reports_shards() {
        let (t, rev, _) = echo_table();
        let ring =
            ByteRing::spawn_sharded(t, 8, ShardPolicy::fixed(2), HotCallConfig::patient()).unwrap();
        assert_eq!(ring.shards(), 2);
        assert_eq!(ring.responders(), 2);
        let mut a = ring.caller();
        let mut b = ring.caller();
        assert_ne!(a.home_shard(), b.home_shard(), "router must spread homes");
        for _ in 0..50 {
            a.call_with(rev, b"abc", 0, |resp| assert_eq!(resp, b"cba"))
                .unwrap();
            b.call_with(rev, b"wxyz", 0, |resp| assert_eq!(resp, b"zyxw"))
                .unwrap();
        }
        assert_eq!(ring.stats().calls, 100);
        let rs = ring.ring_stats();
        assert_eq!(rs.shards.len(), 2);
        assert_eq!(rs.shards.iter().map(|s| s.serviced).sum::<u64>(), 100);
    }

    #[test]
    fn sharded_byte_bundle_and_affinity_override() {
        let (t, rev, _) = echo_table();
        let ring =
            ByteRing::spawn_sharded(t, 8, ShardPolicy::fixed(2), HotCallConfig::patient()).unwrap();
        let mut caller = ring.caller_on(1).unwrap();
        assert_eq!(caller.home_shard(), 1);
        assert!(ring.caller_on(2).is_err());
        let mut bundle = ByteBundle::with_capacity(2);
        bundle
            .push(&mut caller, rev, b"hot", 0)
            .push(&mut caller, rev, b"calls", 0);
        let lens: Vec<usize> = caller
            .call_bundle(bundle)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(lens, [3, 5]);
        assert_eq!(ring.stats().calls, 2);
    }

    #[test]
    fn single_ring_reports_one_degenerate_shard() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 4, 1, HotCallConfig::patient()).unwrap();
        assert_eq!(ring.shards(), 1);
        let mut caller = ring.caller();
        caller.call(rev, b"ab", 0).unwrap();
        assert!(ring.caller_on(1).is_err());
        let rs = ring.ring_stats();
        assert_eq!(rs.shards.len(), 1);
        assert_eq!(rs.shards[0].serviced, 1);
        assert_eq!(rs.steals(), 0);
    }

    #[test]
    fn fused_byte_calls_run_inline_and_recycle() {
        use crate::config::FusedMode;
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 4, 1, HotCallConfig::fused(FusedMode::Always)).unwrap();
        let mut caller = ring.caller();
        for _ in 0..100 {
            caller
                .call_with(rev, b"abcdef", 0, |resp| assert_eq!(resp, b"fedcba"))
                .unwrap();
        }
        let stats = caller.arena_stats();
        assert_eq!(stats.inline_hits, 100);
        assert_eq!(stats.allocs, 0, "fused path must stay heap-free too");
        let s = ring.stats();
        assert_eq!(s.calls, 100);
        assert_eq!(s.fused_runs, 100, "{s:?}");
    }

    #[test]
    fn fused_sharded_byte_calls_count_and_conserve() {
        use crate::config::FusedMode;
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_sharded(
            t,
            8,
            ShardPolicy::fixed(2),
            HotCallConfig::fused(FusedMode::Always),
        )
        .unwrap();
        let mut a = ring.caller();
        let mut b = ring.caller();
        for _ in 0..50 {
            a.call_with(rev, b"abc", 0, |resp| assert_eq!(resp, b"cba"))
                .unwrap();
            b.call_with(rev, b"wxyz", 0, |resp| assert_eq!(resp, b"zyxw"))
                .unwrap();
        }
        let s = ring.stats();
        assert_eq!(s.calls, 100);
        assert_eq!(s.fused_runs, 100, "{s:?}");
    }

    #[test]
    fn concurrent_callers_have_independent_arenas() {
        let (t, rev, _) = echo_table();
        let ring = ByteRing::spawn_pool(t, 8, 2, HotCallConfig::patient()).unwrap();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let mut caller = ring.caller();
            handles.push(std::thread::spawn(move || {
                let data = vec![3u8; 300];
                for _ in 0..200 {
                    caller.call(rev, &data, 0).unwrap();
                }
                caller.arena_stats()
            }));
        }
        for h in handles {
            let s = h.join().unwrap();
            assert_eq!(s.allocs, 1);
            assert_eq!(s.recycles, 199);
        }
        assert_eq!(ring.stats().calls, 600);
    }
}
