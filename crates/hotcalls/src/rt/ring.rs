//! A queued HotCalls variant: a multi-slot submission ring.
//!
//! The paper's single mailbox serializes requesters; §4.2 observes that
//! responder utilization "can potentially be improved by sharing the
//! responder thread with several requesters". [`RingServer`] realizes
//! that: a fixed ring of request slots lets several requesters have calls
//! in flight simultaneously while one responder drains them in order.
//! Each slot is its own little mailbox (CLAIM → SUBMIT → DONE), so
//! requesters never contend on a single word the way the plain channel
//! does.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::config::{HotCallConfig, HotCallStats};
use crate::error::{HotCallError, Result};

use super::CallTable;

const SLOT_EMPTY: u8 = 0;
const SLOT_CLAIMED: u8 = 1;
const SLOT_SUBMITTED: u8 = 2;
const SLOT_DONE: u8 = 3;

struct Slot<Req, Resp> {
    state: AtomicU8,
    req: Mutex<Option<(u32, Req)>>,
    resp: Mutex<Option<Result<Resp>>>,
}

struct RingShared<Req, Resp> {
    slots: Vec<Slot<Req, Resp>>,
    /// Next slot a requester claims.
    head: AtomicUsize,
    /// Next slot the responder services (slots complete in claim order).
    tail: AtomicUsize,
    shutdown: AtomicU8,
    calls: AtomicU64,
    busy_polls: AtomicU64,
    idle_polls: AtomicU64,
    fallbacks: AtomicU64,
}

impl<Req, Resp> core::fmt::Debug for RingShared<Req, Resp> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RingShared")
            .field("capacity", &self.slots.len())
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("tail", &self.tail.load(Ordering::Relaxed))
            .finish()
    }
}

/// A running ring server: one responder thread draining a multi-slot
/// submission ring.
///
/// # Examples
///
/// ```
/// use hotcalls::rt::{CallTable, RingServer};
/// use hotcalls::HotCallConfig;
///
/// let mut table: CallTable<u64, u64> = CallTable::new();
/// let inc = table.register(|x| x + 1);
/// let server = RingServer::spawn(table, 8, HotCallConfig::default());
/// let requester = server.requester();
/// assert_eq!(requester.call(inc, 9).unwrap(), 10);
/// ```
#[derive(Debug)]
pub struct RingServer<Req, Resp> {
    shared: Arc<RingShared<Req, Resp>>,
    config: HotCallConfig,
    join: Option<JoinHandle<()>>,
}

impl<Req, Resp> RingServer<Req, Resp>
where
    Req: Send + 'static,
    Resp: Send + 'static,
{
    /// Spawns the responder over `table` with a ring of `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn spawn(table: CallTable<Req, Resp>, capacity: usize, config: HotCallConfig) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        let shared = Arc::new(RingShared {
            slots: (0..capacity)
                .map(|_| Slot {
                    state: AtomicU8::new(SLOT_EMPTY),
                    req: Mutex::new(None),
                    resp: Mutex::new(None),
                })
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            shutdown: AtomicU8::new(0),
            calls: AtomicU64::new(0),
            busy_polls: AtomicU64::new(0),
            idle_polls: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        });
        let responder = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name("hotcalls-ring-responder".into())
            .spawn(move || ring_responder(responder, table))
            .expect("spawn ring responder");
        RingServer {
            shared,
            config,
            join: Some(join),
        }
    }

    /// Creates a requester handle.
    pub fn requester(&self) -> RingRequester<Req, Resp> {
        RingRequester {
            shared: Arc::clone(&self.shared),
            config: self.config,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> HotCallStats {
        HotCallStats {
            calls: self.shared.calls.load(Ordering::Relaxed),
            fallbacks: self.shared.fallbacks.load(Ordering::Relaxed),
            wakeups: 0,
            idle_polls: self.shared.idle_polls.load(Ordering::Relaxed),
            busy_polls: self.shared.busy_polls.load(Ordering::Relaxed),
        }
    }

    /// Stops the responder and joins it.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }
}

impl<Req, Resp> RingServer<Req, Resp> {
    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(1, Ordering::Release);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl<Req, Resp> Drop for RingServer<Req, Resp> {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.shutdown_inner();
        }
    }
}

fn ring_responder<Req, Resp>(shared: Arc<RingShared<Req, Resp>>, table: CallTable<Req, Resp>) {
    let cap = shared.slots.len();
    let mut idle: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::Acquire) == 1 {
            // Fail any in-flight submissions so requesters unblock.
            for slot in &shared.slots {
                if slot.state.load(Ordering::Acquire) == SLOT_SUBMITTED {
                    *slot.resp.lock() = Some(Err(HotCallError::ResponderGone));
                    slot.state.store(SLOT_DONE, Ordering::Release);
                }
            }
            return;
        }
        let tail = shared.tail.load(Ordering::Acquire);
        let slot = &shared.slots[tail % cap];
        if slot.state.load(Ordering::Acquire) == SLOT_SUBMITTED {
            idle = 0;
            shared.busy_polls.fetch_add(1, Ordering::Relaxed);
            let (id, req) = slot.req.lock().take().expect("submitted slot has request");
            let result = table.dispatch(id, req).ok_or(HotCallError::UnknownCallId(id));
            *slot.resp.lock() = Some(result);
            slot.state.store(SLOT_DONE, Ordering::Release);
            shared.calls.fetch_add(1, Ordering::Relaxed);
            shared.tail.store(tail + 1, Ordering::Release);
        } else {
            idle += 1;
            shared.idle_polls.fetch_add(1, Ordering::Relaxed);
            core::hint::spin_loop();
            if idle % 64 == 0 {
                std::thread::yield_now();
            }
        }
    }
}

/// A handle submitting calls into the ring.
#[derive(Debug)]
pub struct RingRequester<Req, Resp> {
    shared: Arc<RingShared<Req, Resp>>,
    config: HotCallConfig,
}

impl<Req, Resp> Clone for RingRequester<Req, Resp> {
    fn clone(&self) -> Self {
        RingRequester {
            shared: Arc::clone(&self.shared),
            config: self.config,
        }
    }
}

/// An in-flight call: redeem with [`RingRequester::wait`].
#[derive(Debug)]
#[must_use = "a ticket must be waited on, or its slot stays occupied"]
pub struct Ticket {
    index: usize,
}

impl<Req, Resp> RingRequester<Req, Resp> {
    /// Claims a slot and submits a request without waiting. Returns a
    /// [`Ticket`] to redeem the response.
    ///
    /// # Errors
    ///
    /// [`HotCallError::ResponderTimeout`] if no slot frees up within the
    /// retry budget; [`HotCallError::ResponderGone`] after shutdown.
    pub fn submit(&self, id: u32, req: Req) -> Result<Ticket> {
        let cap = self.shared.slots.len();
        for _retry in 0..self.config.timeout_retries {
            for _ in 0..self.config.spins_per_retry {
                if self.shared.shutdown.load(Ordering::Acquire) == 1 {
                    return Err(HotCallError::ResponderGone);
                }
                let head = self.shared.head.load(Ordering::Acquire);
                let tail = self.shared.tail.load(Ordering::Acquire);
                // Full ring: wait for the responder to drain.
                if head - tail >= cap {
                    core::hint::spin_loop();
                    continue;
                }
                // The target slot may still hold an un-redeemed DONE
                // response from the previous lap (the responder advanced
                // `tail` before that requester called `wait`); it only
                // becomes EMPTY when redeemed. Never claim a non-empty
                // slot.
                if self.shared.slots[head % cap].state.load(Ordering::Acquire) != SLOT_EMPTY {
                    core::hint::spin_loop();
                    continue;
                }
                if self
                    .shared
                    .head
                    .compare_exchange(head, head + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                // Winning the CAS on `head` makes the (empty) slot ours:
                // the only writer that could repopulate it is a submitter
                // holding this same head value.
                let slot = &self.shared.slots[head % cap];
                slot.state.store(SLOT_CLAIMED, Ordering::Release);
                *slot.req.lock() = Some((id, req));
                slot.state.store(SLOT_SUBMITTED, Ordering::Release);
                return Ok(Ticket { index: head });
            }
            std::thread::yield_now();
        }
        self.shared.fallbacks.fetch_add(1, Ordering::Relaxed);
        Err(HotCallError::ResponderTimeout {
            retries: self.config.timeout_retries,
        })
    }

    /// Waits for a submitted call to complete and returns its response.
    ///
    /// # Errors
    ///
    /// [`HotCallError::ResponderGone`] if the server shut down first, or
    /// the handler's own error.
    pub fn wait(&self, ticket: Ticket) -> Result<Resp> {
        let cap = self.shared.slots.len();
        let slot = &self.shared.slots[ticket.index % cap];
        let mut spins: u32 = 0;
        loop {
            match slot.state.load(Ordering::Acquire) {
                SLOT_DONE => break,
                _ => {
                    // After shutdown the responder's sweep marks submitted
                    // slots DONE with an error; if our submission raced the
                    // sweep (still CLAIMED), give up after a grace period.
                    if self.shared.shutdown.load(Ordering::Acquire) == 1 {
                        if spins > 100_000 {
                            return Err(HotCallError::ResponderGone);
                        }
                        std::thread::yield_now();
                    }
                    core::hint::spin_loop();
                    spins = spins.wrapping_add(1);
                    if spins % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            }
        }
        let result = slot.resp.lock().take().expect("done slot has response");
        slot.state.store(SLOT_EMPTY, Ordering::Release);
        result
    }

    /// Submit + wait in one step.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::submit`] and [`RingRequester::wait`].
    pub fn call(&self, id: u32, req: Req) -> Result<Resp> {
        let t = self.submit(id, req)?;
        self.wait(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (CallTable<u64, u64>, u32) {
        let mut t = CallTable::new();
        let sq = t.register(|x| x * x);
        (t, sq)
    }

    fn generous() -> HotCallConfig {
        HotCallConfig {
            timeout_retries: 1_000_000,
            spins_per_retry: 64,
            idle_polls_before_sleep: None,
        }
    }

    #[test]
    fn call_roundtrip() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 4, generous());
        let r = server.requester();
        assert_eq!(r.call(sq, 7).unwrap(), 49);
        assert_eq!(server.stats().calls, 1);
    }

    #[test]
    fn pipelined_submissions_complete_in_order() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 8, generous());
        let r = server.requester();
        let tickets: Vec<Ticket> = (0..8u64).map(|i| r.submit(sq, i).unwrap()).collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(r.wait(t).unwrap(), (i * i) as u64);
        }
    }

    #[test]
    fn ring_wraps_many_times() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 2, generous());
        let r = server.requester();
        for i in 0..5_000u64 {
            assert_eq!(r.call(sq, i).unwrap(), i * i);
        }
        assert_eq!(server.stats().calls, 5_000);
    }

    #[test]
    fn concurrent_requesters_share_the_ring() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 4, generous());
        let mut handles = Vec::new();
        for th in 0..3u64 {
            let r = server.requester();
            handles.push(std::thread::spawn(move || {
                (0..500u64)
                    .map(|i| r.call(sq, th * 1_000 + i).unwrap())
                    .sum::<u64>()
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let want: u64 = (0..3u64)
            .flat_map(|th| (0..500u64).map(move |i| (th * 1_000 + i) * (th * 1_000 + i)))
            .sum();
        assert_eq!(total, want);
        assert_eq!(server.stats().calls, 1_500);
    }

    #[test]
    fn unknown_id_propagates() {
        let (t, _) = table();
        let server = RingServer::spawn(t, 2, generous());
        let r = server.requester();
        assert!(matches!(r.call(42, 1), Err(HotCallError::UnknownCallId(42))));
    }

    #[test]
    fn shutdown_fails_inflight_and_future_calls() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 2, generous());
        let r = server.requester();
        assert_eq!(r.call(sq, 3).unwrap(), 9);
        server.shutdown();
        assert!(matches!(r.submit(sq, 1), Err(HotCallError::ResponderGone)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let (t, _) = table();
        let _ = RingServer::spawn(t, 0, generous());
    }
}
