//! A queued HotCalls variant: a multi-slot submission ring with an
//! adaptive responder pool, pipelined completions, and call bundling.
//!
//! The paper's single mailbox serializes requesters; §4.2 observes that
//! responder utilization "can potentially be improved by sharing the
//! responder thread with several requesters". [`RingServer`] realizes
//! that: a fixed ring of request slots lets several requesters have calls
//! in flight simultaneously while one *or more* responders drain them in
//! order. Each slot is its own little mailbox (CLAIM → SUBMIT → DONE) on
//! its own cache lines, so requesters never contend on a single word the
//! way the plain channel does, and payloads move through lock-free
//! `UnsafeCell`s guarded by the slot state machine (see [`super::slot`]).
//!
//! Three mechanisms pipeline the plane beyond the paper's synchronous
//! protocol:
//!
//! * **Async completions** — [`RingRequester::submit`] returns a
//!   [`Ticket`] immediately; [`RingRequester::wait`],
//!   [`RingRequester::try_wait`] and [`RingRequester::wait_any`] reap
//!   completions in any order, so one requester keeps many slots in
//!   flight and a blocked handler no longer serializes the ring.
//! * **Call bundles** — a [`Bundle`] packs N small calls into *one* ring
//!   submission serviced by *one* responder dispatch: one slot claim, one
//!   head CAS, at most one doze wakeup for the whole bundle.
//! * **Adaptive governor** — [`RingServer::spawn_adaptive`] replaces the
//!   static pool size with a [`ResponderPolicy`]`{min, max,
//!   target_occupancy}`: requesters raise the active-responder target
//!   when the ring backs up (or their in-flight calls age), and the top
//!   active responder demotes itself and *parks* after a useful-work
//!   drought. Parked responders sleep on a doze that per-call wakeups
//!   never touch, so surplus pollers stop burning the cores the
//!   requesters need.
//!
//! Responders claim work in batches: each scans up to
//! [`HotCallConfig::drain_batch`] contiguous submitted slots from `tail`
//! and takes ownership of the whole run with one CAS on `tail` (see
//! [`super::pool`]), amortizing coordination the way batched switchless
//! draining does in IO-heavy enclave workloads.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::config::{FusedMode, GovernorStats, HotCallConfig, HotCallStats, ResponderPolicy};
use crate::error::{HotCallError, Result};
use crate::telemetry::{
    now_cycles, trace, AtomicHist, LaneTelemetry, PlaneProvider, PlaneTelemetry, RingStats,
    TELEMETRY_ENABLED,
};

use super::pool;
use super::slot::{AbandonBoard, Backoff, CachePadded, CallSlot, Doze, StatCell, DONE, EMPTY};
use super::CallTable;

/// Grace polls a waiter grants the shutdown sweep before giving up on a
/// slot that will never complete (its payload is freed by the slot Drop).
const SHUTDOWN_GRACE_POLLS: u32 = 100_000;

/// Poll interval at which a waiter treats its in-flight call as "aging"
/// and nudges the governor to raise the active-responder target.
const AGE_POLLS_PER_RAISE: u32 = 4_096;

/// Poll interval at which a deadline-bounded wait re-reads the clock.
/// `Instant::now` is a vDSO call — cheap, but not spin-loop cheap.
pub(super) const DEADLINE_CHECK_POLLS: u32 = 64;

/// What one ring slot carries callee-bound: a single call's request (the
/// call id rides in the slot's id word) or a bundle of `(id, request)`
/// pairs submitted as one unit.
pub(super) enum ReqEnvelope<Req> {
    One(Req),
    Bundle(Vec<(u32, Req)>),
}

/// What comes back: the lone response, or one result per bundled call in
/// submission order. Per-call failures (unknown id) stay inside the
/// bundle; a slot-level `Err` means the transport itself failed.
pub(super) enum RespEnvelope<Resp> {
    One(Resp),
    Bundle(Vec<Result<Resp>>),
}

pub(super) type RingSlot<Req, Resp> = CallSlot<ReqEnvelope<Req>, RespEnvelope<Resp>>;

/// The adaptive pool's control block. For static pools (`min == max`) the
/// governor is inert: no requester or responder ever branches into it.
pub(super) struct GovernorState {
    pub(super) policy: ResponderPolicy,
    /// Responders with index below this are active; the rest park. Only
    /// moves inside `[min, max]`.
    pub(super) active_target: CachePadded<AtomicUsize>,
    /// Where parked responders sleep. Separate from the work doze on
    /// purpose: per-call wakeups must never reach a parked responder —
    /// that churn is exactly the oversubscription regression the governor
    /// exists to fix.
    pub(super) park_doze: Doze,
    /// Responders currently parked (gauge).
    pub(super) parked_now: AtomicUsize,
    /// Park decisions taken (a responder left the active set).
    pub(super) parks: AtomicU64,
    /// Wake decisions taken (the target was raised on backlog).
    pub(super) wakes: AtomicU64,
}

impl GovernorState {
    pub(super) fn new(policy: ResponderPolicy) -> Self {
        // Start wide: all `max` responders active, and let idleness park
        // the surplus. Cold-start backlog never waits on a governor
        // decision this way; quiet periods converge to `min` within one
        // park threshold per surplus responder.
        GovernorState {
            policy,
            active_target: CachePadded::new(AtomicUsize::new(policy.max)),
            park_doze: Doze::new(),
            parked_now: AtomicUsize::new(0),
            parks: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
        }
    }

    /// Is there anything to govern?
    #[inline]
    pub(super) fn adaptive(&self) -> bool {
        self.policy.is_adaptive()
    }

    /// Raises the active target by one (up to `max`) and wakes the parked
    /// responders so the newly admitted one starts draining. Called by
    /// requesters when they observe backlog or in-flight age.
    pub(super) fn try_raise(&self) -> bool {
        let t = self.active_target.load(Ordering::Relaxed);
        if t >= self.policy.max {
            return false;
        }
        if self
            .active_target
            .compare_exchange(t, t + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        self.wakes.fetch_add(1, Ordering::Relaxed);
        trace("governor_raise", (t + 1) as u64, self.policy.max as u64);
        // Wake *all* parked responders: each re-checks its index against
        // the new target and the surplus re-parks. notify_one could hand
        // the wake to a responder that stays parked, stranding the one
        // the raise admitted.
        self.park_doze.wake_all();
        true
    }

    /// Lowers the active target by one. Only the *top* active responder
    /// (`index == target - 1`) may demote, so the active set stays the
    /// contiguous prefix `0..target` and parking is deterministic.
    pub(super) fn try_demote(&self, index: usize) -> bool {
        if index < self.policy.min {
            return false;
        }
        let t = self.active_target.load(Ordering::Relaxed);
        if t <= self.policy.min || index != t - 1 {
            return false;
        }
        let demoted = self
            .active_target
            .compare_exchange(t, t - 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        if demoted {
            trace("governor_park", index as u64, (t - 1) as u64);
        }
        demoted
    }

    /// Sets the active target directly, clamped into `[min, max]`, and
    /// returns the value installed. The external control surface for the
    /// `ctl` sizer: responders notice the new target on their next poll —
    /// surplus ones park themselves, and a raise wakes the parked set so
    /// newly admitted responders start draining.
    pub(super) fn set_target(&self, n: usize) -> usize {
        let n = n.clamp(self.policy.min, self.policy.max);
        let prev = self.active_target.swap(n, Ordering::AcqRel);
        if n > prev {
            self.wakes.fetch_add(1, Ordering::Relaxed);
            trace("governor_raise", n as u64, self.policy.max as u64);
            self.park_doze.wake_all();
        } else if n < prev {
            trace("governor_park", prev as u64, n as u64);
        }
        n
    }
}

impl core::fmt::Debug for GovernorState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("GovernorState")
            .field("policy", &self.policy)
            .field("active", &self.active_target.load(Ordering::Relaxed))
            .field("parked", &self.parked_now.load(Ordering::Relaxed))
            .finish()
    }
}

pub(super) struct RingShared<Req, Resp> {
    /// Each slot is 64-byte aligned with its state word on its own line,
    /// so neighbouring slots never false-share.
    pub(super) slots: Box<[RingSlot<Req, Resp>]>,
    /// The handler table. Responders clone the `Arc` at spawn; keeping it
    /// here as well lets a *requester* dispatch inline on the fused
    /// run-to-completion path without any handoff.
    pub(super) table: Arc<CallTable<Req, Resp>>,
    /// Next slot index a requester claims. Padded: requesters hammer this
    /// line; responders must not.
    pub(super) head: CachePadded<AtomicUsize>,
    /// Next slot index the responders service. Padded likewise.
    pub(super) tail: CachePadded<AtomicUsize>,
    pub(super) shutdown: AtomicBool,
    pub(super) doze: Doze,
    pub(super) governor: GovernorState,
    /// One padded statistics cell per responder; each responder writes
    /// only its own (plain stores, no shared RMW on the hot path).
    pub(super) responders: Box<[CachePadded<StatCell>]>,
    /// Completion → redeem latency (reap stage), recorded by whichever
    /// requester reaps — shared `fetch_add` cell, but strictly *after*
    /// the call completed, so it never touches the service critical path.
    pub(super) reap_hist: CachePadded<AtomicHist>,
    /// Dropped-unredeemed ticket registry (see [`AbandonBoard`]): tickets
    /// hold a clone, claimants lapping onto a marked slot reap it.
    pub(super) abandon: Arc<AbandonBoard>,
    // Requester-side event counters; rare, so shared RMWs are fine.
    fallbacks: AtomicU64,
    wakeups: AtomicU64,
    /// Calls executed inline by requesters (fused run-to-completion).
    /// Shared `fetch_add` cells: requesters have no single-writer stat
    /// cell of their own, and the fused path only runs when the plane is
    /// quiet, so contention on these lines is structurally rare.
    pub(super) fused_runs: AtomicU64,
    pub(super) fused_fallbacks: AtomicU64,
}

impl<Req, Resp> RingShared<Req, Resp> {
    /// Slots currently between claim and service. `head` and `tail` are
    /// monotonic with `head >= tail` at every instant, but two separate
    /// loads can still see them "out of order" — the caller must load
    /// `tail` *before* `head` (then the head snapshot can only be newer,
    /// never older, than the tail snapshot) and this subtraction wraps
    /// instead of panicking as a second line of defense.
    pub(super) fn occupancy(head: usize, tail: usize) -> usize {
        head.wrapping_sub(tail)
    }

    fn snapshot(&self) -> HotCallStats {
        let fused_runs = self.fused_runs.load(Ordering::Relaxed);
        let mut s = HotCallStats {
            // Fused calls never pass through a responder cell, so the
            // plane-wide call count starts from them.
            calls: fused_runs,
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            idle_polls: 0,
            busy_polls: 0,
            fused_runs,
            fused_fallbacks: self.fused_fallbacks.load(Ordering::Relaxed),
        };
        for cell in self.responders.iter() {
            s.calls += cell.calls.load(Ordering::Relaxed);
            s.idle_polls += cell.idle_polls.load(Ordering::Relaxed);
            s.busy_polls += cell.busy_polls.load(Ordering::Relaxed);
        }
        s
    }

    /// Is the whole responder set out of the way (parked by the governor
    /// or dozing on the work doze)? While this holds, no responder core is
    /// spinning on the ring, so a requester executing inline steals
    /// nothing and saves the wake + cross-core transfer. The check is a
    /// heuristic — the service-ownership CAS is what keeps the fused path
    /// correct when a responder wakes mid-decision.
    pub(super) fn responders_quiescent(&self) -> bool {
        let parked = self.governor.parked_now.load(Ordering::Relaxed);
        let dozing = self.doze.sleepers.load(Ordering::Relaxed);
        parked + dozing >= self.responders.len()
    }

    fn governor_snapshot(&self) -> GovernorStats {
        GovernorStats {
            active: self.governor.active_target.load(Ordering::Relaxed),
            parked: self.governor.parked_now.load(Ordering::Relaxed),
            parks: self.governor.parks.load(Ordering::Relaxed),
            wakes: self.governor.wakes.load(Ordering::Relaxed),
            min: self.governor.policy.min,
            max: self.governor.policy.max,
        }
    }

    /// Reaps the slot a claimant at sequence `head` is lapping onto, if
    /// (and only if) its occupant is a completed call whose ticket was
    /// dropped unredeemed. The occupant of slot `head % cap` at claim
    /// sequence `head` is exactly `head - cap`, so the board's
    /// exact-sequence CAS can neither match a live call nor hand the
    /// reap to two racing claimants.
    pub(super) fn try_reap_abandoned(&self, head: usize) {
        let cap = self.slots.len();
        let slot = &self.slots[head % cap];
        if slot.state() != DONE {
            // Not completed yet (or still live mid-service): the mark, if
            // any, stays on the board for a later lap.
            return;
        }
        let seq = head.wrapping_sub(cap);
        if self.abandon.try_take(seq) {
            // SAFETY: winning the exact-sequence CAS transferred the
            // dropping submitter's redeem ownership to this thread, and
            // DONE was observed with Acquire above.
            drop(unsafe { slot.redeem() });
        }
    }

    /// Records the reap-stage latency for a call whose completion stamp
    /// was read before redeeming its slot.
    #[inline]
    pub(super) fn record_reap(&self, completed_at: u64) {
        if TELEMETRY_ENABLED {
            self.reap_hist
                .record_shared(now_cycles().saturating_sub(completed_at));
        }
    }

    /// One [`LaneTelemetry`] row per responder cell.
    pub(super) fn lane_telemetry(&self) -> Vec<LaneTelemetry> {
        self.responders
            .iter()
            .enumerate()
            .map(|(lane, cell)| LaneTelemetry {
                lane,
                queue: cell.stages.queue.snapshot(),
                service: cell.stages.service.snapshot(),
            })
            .collect()
    }

    /// The plane's full telemetry view: counters plus per-lane stage
    /// histograms and the plane-wide reap histogram.
    pub(super) fn plane_telemetry(&self, name: &str, kind: &'static str) -> PlaneTelemetry {
        PlaneTelemetry {
            name: name.to_string(),
            kind,
            stats: RingStats::from_single(self.snapshot(), self.governor_snapshot()),
            lanes: self.lane_telemetry(),
            reap: self.reap_hist.snapshot(),
        }
    }
}

impl<Req, Resp> core::fmt::Debug for RingShared<Req, Resp> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RingShared")
            .field("capacity", &self.slots.len())
            .field("responders", &self.responders.len())
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("tail", &self.tail.load(Ordering::Relaxed))
            .field("governor", &self.governor)
            .finish()
    }
}

/// A running ring server: a pool of responder threads draining a
/// multi-slot submission ring in batches, optionally governed by a
/// [`ResponderPolicy`].
///
/// # Examples
///
/// ```
/// use hotcalls::rt::{CallTable, RingServer};
/// use hotcalls::HotCallConfig;
///
/// let mut table: CallTable<u64, u64> = CallTable::new();
/// let inc = table.register(|x| x + 1);
/// let server = RingServer::spawn(table, 8, HotCallConfig::default());
/// let requester = server.requester();
/// assert_eq!(requester.call(inc, 9).unwrap(), 10);
/// ```
#[derive(Debug)]
pub struct RingServer<Req, Resp> {
    shared: Arc<RingShared<Req, Resp>>,
    config: HotCallConfig,
    joins: Vec<JoinHandle<()>>,
}

impl<Req, Resp> RingServer<Req, Resp>
where
    Req: Send + 'static,
    Resp: Send + 'static,
{
    /// Spawns a single responder over `table` with a ring of `capacity`
    /// slots (the original single-responder configuration).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn spawn(table: CallTable<Req, Resp>, capacity: usize, config: HotCallConfig) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self::spawn_pool(table, capacity, 1, config).expect("capacity and pool size validated")
    }

    /// Spawns a static pool of `n_responders` always-active threads
    /// draining one shared ring of `capacity` slots. Each responder
    /// claims up to [`HotCallConfig::drain_batch`] contiguous submissions
    /// per tail advance.
    ///
    /// # Errors
    ///
    /// [`HotCallError::InvalidConfig`] if `capacity` or `n_responders` is
    /// zero.
    pub fn spawn_pool(
        table: CallTable<Req, Resp>,
        capacity: usize,
        n_responders: usize,
        config: HotCallConfig,
    ) -> Result<Self> {
        Self::spawn_adaptive(
            table,
            capacity,
            ResponderPolicy::fixed(n_responders),
            config,
        )
    }

    /// Spawns an adaptive pool: `policy.max` responder threads of which
    /// between `policy.min` and `policy.max` are active at any moment.
    /// Requesters raise the active target when ring occupancy exceeds
    /// `policy.target_occupancy` (or their in-flight calls age without
    /// completing); the top active responder demotes itself and parks
    /// after `policy.park_after_idle_polls` polls without useful work.
    ///
    /// # Errors
    ///
    /// [`HotCallError::InvalidConfig`] if `capacity` is zero or the policy
    /// or config fail their [`ResponderPolicy::validate`] /
    /// [`HotCallConfig::validate`] checks.
    pub fn spawn_adaptive(
        table: CallTable<Req, Resp>,
        capacity: usize,
        policy: ResponderPolicy,
        config: HotCallConfig,
    ) -> Result<Self> {
        if capacity == 0 {
            return Err(HotCallError::InvalidConfig(
                "ring capacity must be positive",
            ));
        }
        policy.validate()?;
        config.validate()?;
        let n_responders = policy.max;
        let table = Arc::new(table);
        let shared = Arc::new(RingShared {
            slots: (0..capacity).map(|_| RingSlot::new()).collect(),
            table: Arc::clone(&table),
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            shutdown: AtomicBool::new(false),
            doze: Doze::new(),
            governor: GovernorState::new(policy),
            responders: (0..n_responders)
                .map(|_| CachePadded::new(StatCell::default()))
                .collect(),
            reap_hist: CachePadded::new(AtomicHist::new()),
            abandon: AbandonBoard::new(capacity),
            fallbacks: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            fused_runs: AtomicU64::new(0),
            fused_fallbacks: AtomicU64::new(0),
        });
        let joins = (0..n_responders)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let table = Arc::clone(&table);
                std::thread::Builder::new()
                    .name(format!("hotcalls-ring-responder-{index}"))
                    .spawn(move || pool::responder_loop(shared, table, index, config))
                    .expect("spawn ring responder")
            })
            .collect();
        Ok(RingServer {
            shared,
            config,
            joins,
        })
    }

    /// Creates a requester handle.
    pub fn requester(&self) -> RingRequester<Req, Resp> {
        RingRequester {
            shared: Arc::clone(&self.shared),
            config: self.config,
        }
    }

    /// Number of responder threads in the pool (active and parked).
    pub fn responders(&self) -> usize {
        self.shared.responders.len()
    }

    /// Statistics so far, aggregated over the responder pool.
    pub fn stats(&self) -> HotCallStats {
        self.shared.snapshot()
    }

    /// The governor's current shape and decision counters. For static
    /// pools `active == min == max` and the counters stay zero.
    pub fn governor_stats(&self) -> GovernorStats {
        self.shared.governor_snapshot()
    }

    /// Sets the active responder target directly (the `ctl` sizer's
    /// control surface), clamped into the policy's `[min, max]`, and
    /// returns the value installed. Responders converge on their next
    /// poll: surplus ones park, and a raise wakes the parked set. The
    /// requester-side backlog governor keeps running — it can still raise
    /// the target above what the sizer set if the ring backs up.
    pub fn set_active_responders(&self, n: usize) -> usize {
        self.shared.governor.set_target(n)
    }

    /// This plane's full telemetry view right now: counters plus per-lane
    /// queue/service histograms and the plane-wide reap histogram. The
    /// plane kind is `"single"` for a one-responder ring, `"pool"`
    /// otherwise.
    pub fn telemetry(&self, name: &str) -> crate::telemetry::PlaneTelemetry {
        self.shared.plane_telemetry(name, self.plane_kind())
    }

    /// A [`PlaneProvider`] for [`crate::telemetry::TelemetryRegistry`]:
    /// the registry polls it at snapshot time, so the snapshot is always
    /// current. The provider holds the plane's shared state alive.
    pub fn telemetry_provider(&self, name: impl Into<String>) -> PlaneProvider {
        let shared = Arc::clone(&self.shared);
        let name = name.into();
        let kind = self.plane_kind();
        Box::new(move || shared.plane_telemetry(&name, kind))
    }

    fn plane_kind(&self) -> &'static str {
        if self.shared.responders.len() == 1 {
            "single"
        } else {
            "pool"
        }
    }

    /// Stops the responders and joins them.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }
}

impl<Req, Resp> RingServer<Req, Resp> {
    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.doze.wake_all();
        self.shared.governor.park_doze.wake_all();
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

impl<Req, Resp> Drop for RingServer<Req, Resp> {
    fn drop(&mut self) {
        if !self.joins.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// A handle submitting calls into the ring.
#[derive(Debug)]
pub struct RingRequester<Req, Resp> {
    shared: Arc<RingShared<Req, Resp>>,
    config: HotCallConfig,
}

impl<Req, Resp> Clone for RingRequester<Req, Resp> {
    fn clone(&self) -> Self {
        RingRequester {
            shared: Arc::clone(&self.shared),
            config: self.config,
        }
    }
}

/// An in-flight call: redeem with [`RingRequester::wait`],
/// [`RingRequester::try_wait`] or [`RingRequester::wait_any`], or await
/// the future minted by the async submit paths (`hotcalls::aio`).
///
/// Dropping a ticket unredeemed *abandons* the call: the drop marks the
/// slot on the plane's [`AbandonBoard`], and the next claimant that laps
/// onto the completed slot reaps the stale response. The response value
/// is discarded, but the slot is released — a dropped ticket no longer
/// wedges the ring.
#[derive(Debug)]
#[must_use = "redeem the response by waiting, or drop to abandon the call"]
pub struct Ticket {
    pub(super) index: usize,
    /// The plane's abandonment registry; `None` once the ticket has been
    /// defused (redeemed through a wait path, so drop must not mark).
    pub(super) board: Option<Arc<AbandonBoard>>,
}

impl Ticket {
    /// The submission sequence number (monotonic per ring): correlate a
    /// completion from [`RingRequester::wait_any`] back to its
    /// submission.
    pub fn seq(&self) -> u64 {
        self.index as u64
    }

    /// Takes over the redeem obligation from the drop guard: after this,
    /// dropping the ticket is inert. Every redeeming path calls it right
    /// before (or instead of) consuming the slot.
    pub(super) fn defuse(&mut self) -> usize {
        self.board = None;
        self.index
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if let Some(board) = self.board.take() {
            board.mark(self.index);
        }
    }
}

/// An in-flight bundle: redeem with [`RingRequester::wait_bundle`].
/// Dropping it unredeemed abandons the bundle the same way dropping a
/// [`Ticket`] abandons a single call.
#[derive(Debug)]
#[must_use = "redeem the results by waiting, or drop to abandon the bundle"]
pub struct BundleTicket {
    pub(super) index: usize,
    pub(super) len: usize,
    /// See [`Ticket::board`].
    pub(super) board: Option<Arc<AbandonBoard>>,
}

impl BundleTicket {
    /// Number of calls packed in the bundle.
    pub fn len(&self) -> usize {
        self.len
    }

    /// A bundle ticket never covers zero calls, but clippy likes the
    /// pair.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// See [`Ticket::defuse`].
    pub(super) fn defuse(&mut self) -> usize {
        self.board = None;
        self.index
    }
}

impl Drop for BundleTicket {
    fn drop(&mut self) {
        if let Some(board) = self.board.take() {
            board.mark(self.index);
        }
    }
}

/// Builder packing many small calls into one ring submission.
///
/// The whole bundle costs one slot claim, one head CAS and at most one
/// responder wakeup, and is serviced by a single responder dispatch —
/// amortizing the per-call ring traffic the way HotCall bundling does for
/// IO-intensive enclave applications.
///
/// # Examples
///
/// ```
/// use hotcalls::rt::{Bundle, CallTable, RingServer};
/// use hotcalls::HotCallConfig;
///
/// let mut table: CallTable<u64, u64> = CallTable::new();
/// let inc = table.register(|x| x + 1);
/// let dbl = table.register(|x| x * 2);
/// let server = RingServer::spawn(table, 8, HotCallConfig::patient());
/// let r = server.requester();
///
/// let mut bundle = Bundle::new();
/// bundle.push(inc, 1).push(dbl, 21).push(inc, 99);
/// let results = r.call_bundle(bundle).unwrap();
/// let values: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
/// assert_eq!(values, [2, 42, 100]);
/// ```
#[derive(Debug)]
pub struct Bundle<Req> {
    pub(super) calls: Vec<(u32, Req)>,
}

impl<Req> Default for Bundle<Req> {
    fn default() -> Self {
        Bundle::new()
    }
}

impl<Req> Bundle<Req> {
    /// An empty bundle.
    pub fn new() -> Self {
        Bundle { calls: Vec::new() }
    }

    /// An empty bundle with room for `n` calls.
    pub fn with_capacity(n: usize) -> Self {
        Bundle {
            calls: Vec::with_capacity(n),
        }
    }

    /// Appends a call to the bundle.
    pub fn push(&mut self, id: u32, req: Req) -> &mut Self {
        self.calls.push((id, req));
        self
    }

    /// Calls packed so far.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Nothing packed yet?
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }
}

impl<Req, Resp> RingRequester<Req, Resp> {
    /// Is the fused run-to-completion path worth attempting right now?
    /// `occupancy` is the requester's latest coherent tail-before-head
    /// snapshot. Never true after shutdown, so fused configs keep the
    /// pooled `ResponderGone` semantics.
    fn fused_eligible(&self, occupancy: usize) -> bool {
        match self.config.fused_mode {
            FusedMode::Off => false,
            FusedMode::Always => true,
            FusedMode::Auto => {
                occupancy < self.config.fused_below_occupancy && self.shared.responders_quiescent()
            }
        }
    }

    /// Counts (and traces) a call that was fused-eligible in principle but
    /// rode the pooled path.
    #[inline]
    fn note_fused_fallback(&self, seq: u64) {
        if self.config.fused_mode != FusedMode::Off {
            self.shared.fused_fallbacks.fetch_add(1, Ordering::Relaxed);
            trace("fused_fallback", seq, 0);
        }
    }

    /// Tries to service the just-published slot at `index` on *this*
    /// thread. Winning the tail CAS for exactly `[index, index + 1)` is
    /// the same service-ownership edge the responder drain uses, so the
    /// requester and any awake responder can race for the slot and
    /// exactly one of them executes it. Returns `true` if the slot was
    /// serviced inline (it is DONE and awaits its normal redeem).
    fn try_self_service(&self, index: usize) -> bool {
        if self
            .shared
            .tail
            .compare_exchange(index, index + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            // Older submissions sit ahead of ours (or a responder already
            // claimed a run covering this slot): pipelining wins, hand
            // off.
            return false;
        }
        let slot = &self.shared.slots[index % self.shared.slots.len()];
        // SAFETY: the tail CAS granted service ownership of exactly this
        // slot, and this requester published it SUBMITTED (with Release)
        // just above, so the Acquire side of the CAS sees the payload.
        let n = unsafe { pool::service_slot_inline(slot, &self.shared.table) };
        self.shared.fused_runs.fetch_add(n, Ordering::Relaxed);
        trace("fused_run", index as u64, n);
        true
    }

    /// Claims a slot and publishes `env` into it, returning the absolute
    /// slot sequence. On failure the envelope is handed back so the
    /// caller can recover the request payloads (the fallback path). With
    /// `allow_fuse` (and [`FusedMode::Always`]), the requester services
    /// its own submission inline instead of waking a responder. With
    /// `arm`, the slot's waker cell is armed before publish so the
    /// completing side fires the future's waker (the async submit paths).
    fn submit_envelope(
        &self,
        id: u32,
        env: ReqEnvelope<Req>,
        allow_fuse: bool,
        arm: bool,
    ) -> core::result::Result<usize, (HotCallError, ReqEnvelope<Req>)> {
        let cap = self.shared.slots.len();
        let gov = &self.shared.governor;
        let mut backoff = Backoff::new();
        for _retry in 0..self.config.timeout_retries {
            for _ in 0..self.config.spins_per_retry {
                if self.shared.shutdown.load(Ordering::Acquire) {
                    return Err((HotCallError::ResponderGone, env));
                }
                // Load `tail` before `head`: both only grow, so the head
                // snapshot cannot lag the tail snapshot and the occupancy
                // subtraction cannot go negative. (The old head-then-tail
                // order let a responder advance `tail` past the stale head
                // snapshot in between, underflowing `head - tail`.)
                let tail = self.shared.tail.load(Ordering::Acquire);
                let head = self.shared.head.load(Ordering::Acquire);
                let occupancy = RingShared::<Req, Resp>::occupancy(head, tail);
                // Backlog deeper than the policy threshold (or a full
                // ring) means the active responders are outpaced: admit
                // another before spinning on.
                if gov.adaptive() && occupancy > gov.policy.target_occupancy_clamped() {
                    gov.try_raise();
                }
                // Full ring: wait for the responders to drain.
                if occupancy >= cap {
                    core::hint::spin_loop();
                    continue;
                }
                // The target slot may still hold an un-redeemed DONE
                // response from the previous lap (a responder advanced
                // `tail` before that requester called `wait`); it only
                // becomes EMPTY when redeemed. Never claim a non-empty
                // slot — but if its occupant was *abandoned* (ticket
                // dropped unredeemed), reap it here so the lap can
                // proceed instead of wedging.
                if self.shared.slots[head % cap].state() != EMPTY {
                    self.shared.try_reap_abandoned(head);
                    core::hint::spin_loop();
                    continue;
                }
                if self
                    .shared
                    .head
                    .compare_exchange(head, head + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                // Winning the CAS on `head` makes the (empty) slot ours:
                // any other claimant of this physical slot would need
                // `head` to advance a full lap first, which requires this
                // very submission to be serviced and redeemed.
                let slot = &self.shared.slots[head % cap];
                slot.mark_claimed();
                if arm {
                    // Before publish: the SUBMITTED Release store carries
                    // the armed flag to whichever thread completes the
                    // call, so its wake cannot be missed.
                    slot.arm_async();
                }
                // Async submissions fuse only under an explicit `Always`.
                // The caller chose the pipelined API to overlap work, and
                // under `Auto` an inline completion would collapse
                // occupancy back to zero before the next submission's gate
                // reads it — the plane would run whole bursts inline,
                // never wake a responder, and never hand the backlog to
                // the pool. `Auto`'s break-even gate lives on the
                // synchronous `call` path, where the requester would have
                // blocked anyway.
                let fuse = allow_fuse && self.config.fused_mode == FusedMode::Always;
                // SAFETY: the head CAS above granted exclusive claim
                // ownership of this slot (see comment); publish once.
                unsafe { slot.publish(id, env) };
                if fuse {
                    if self.try_self_service(head) {
                        // Serviced on this core: no handoff, no wake. The
                        // slot is DONE and redeems through the normal
                        // wait path.
                        return Ok(head);
                    }
                    // Lost the service race (a responder is active after
                    // all, or older submissions are queued ahead): fall
                    // through to the pooled wake so the submission cannot
                    // strand behind an unwoken doze.
                    self.note_fused_fallback(head as u64);
                }
                // Wake a sleeping responder (after the SUBMITTED store).
                // One wake per submission — a bundle of N calls pays this
                // at most once.
                if self.shared.doze.wake() {
                    self.shared.wakeups.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(head);
            }
            backoff.snooze();
        }
        self.shared.fallbacks.fetch_add(1, Ordering::Relaxed);
        Err((
            HotCallError::ResponderTimeout {
                retries: self.config.timeout_retries,
            },
            env,
        ))
    }

    /// Claims a slot and submits a request without waiting. Returns a
    /// [`Ticket`] to redeem the response.
    ///
    /// An un-redeemed ticket keeps its ring slot occupied, so a
    /// submission that laps the ring onto such a slot blocks until the
    /// ticket is redeemed (or, if the ticket was dropped, reaps the
    /// abandoned response itself). Pipelined callers should keep fewer
    /// than `capacity` calls in flight and redeem a ticket whose sequence
    /// number is one full lap behind the submission count before
    /// submitting past it.
    ///
    /// # Errors
    ///
    /// [`HotCallError::ResponderTimeout`] if no slot frees up within the
    /// retry budget; [`HotCallError::ResponderGone`] after shutdown.
    pub fn submit(&self, id: u32, req: Req) -> Result<Ticket> {
        match self.submit_envelope(id, ReqEnvelope::One(req), true, false) {
            Ok(index) => Ok(Ticket {
                index,
                board: Some(Arc::clone(&self.shared.abandon)),
            }),
            Err((e, _)) => Err(e),
        }
    }

    /// [`RingRequester::submit`] with the slot's waker cell armed: the
    /// completing side (responder, fused-inline service, or the shutdown
    /// sweep) fires a waker registered against the returned ticket, which
    /// is what gives the `hotcalls::aio` futures completion wakes without
    /// any busy polling.
    pub(crate) fn submit_async(&self, id: u32, req: Req) -> Result<Ticket> {
        match self.submit_envelope(id, ReqEnvelope::One(req), true, true) {
            Ok(index) => Ok(Ticket {
                index,
                board: Some(Arc::clone(&self.shared.abandon)),
            }),
            Err((e, _)) => Err(e),
        }
    }

    /// The future-side poll: redeem if complete, otherwise register
    /// `cx`'s waker with the slot and stay pending. Takes the ticket out
    /// of `ticket` exactly when it returns `Ready`.
    pub(crate) fn poll_ticket(
        &self,
        ticket: &mut Option<Ticket>,
        cx: &mut Context<'_>,
    ) -> Poll<Result<Resp>> {
        let index = ticket
            .as_ref()
            .expect("future polled after completion")
            .index;
        let cap = self.shared.slots.len();
        let slot = &self.shared.slots[index % cap];
        if slot.state() == DONE || slot.register_waker(cx.waker()) {
            ticket.take().expect("present above").defuse();
            return Poll::Ready(self.redeem_one(index));
        }
        if self.shared.shutdown.load(Ordering::Acquire) {
            // The drain sweep may have completed the call between the
            // registration above and the flag load; deliver if so.
            if slot.state() == DONE {
                ticket.take().expect("present above").defuse();
                return Poll::Ready(self.redeem_one(index));
            }
            // A submission that raced the flag may never be serviced; a
            // future cannot grace-spin the way the sync waiters do, so
            // abandon the call (the drop marks the slot reapable) and
            // surface the shutdown.
            drop(ticket.take());
            return Poll::Ready(Err(HotCallError::ResponderGone));
        }
        Poll::Pending
    }

    /// Packs `bundle` into one ring submission: one slot claim, one
    /// responder dispatch, at most one wakeup for all of its calls.
    /// Returns a [`BundleTicket`] to redeem the per-call results.
    ///
    /// # Errors
    ///
    /// [`HotCallError::InvalidConfig`] for an empty bundle, otherwise as
    /// [`RingRequester::submit`].
    pub fn submit_bundle(&self, bundle: Bundle<Req>) -> Result<BundleTicket> {
        if bundle.is_empty() {
            return Err(HotCallError::InvalidConfig(
                "a bundle must pack at least one call",
            ));
        }
        let len = bundle.len();
        trace("bundle_submit", len as u64, 0);
        match self.submit_envelope(0, ReqEnvelope::Bundle(bundle.calls), true, false) {
            Ok(index) => Ok(BundleTicket {
                index,
                len,
                board: Some(Arc::clone(&self.shared.abandon)),
            }),
            Err((e, _)) => Err(e),
        }
    }

    /// Spins until the slot behind `index` is DONE. Returns `Err` only on
    /// shutdown-with-grace-expired.
    fn wait_done(&self, index: usize) -> Result<()> {
        let cap = self.shared.slots.len();
        let slot = &self.shared.slots[index % cap];
        let gov = &self.shared.governor;
        let mut backoff = Backoff::new();
        let mut grace: u32 = 0;
        let mut age_polls: u32 = 0;
        loop {
            match slot.state() {
                DONE => return Ok(()),
                _ => {
                    // The pool drains submitted work before exiting, but a
                    // submission that raced the shutdown flag (or sits
                    // behind a neighbour stuck mid-publish) may never be
                    // serviced; give up after a bounded grace. The slot
                    // stays occupied and its payload is freed by Drop.
                    if self.shared.shutdown.load(Ordering::Acquire) {
                        grace += 1;
                        if grace > SHUTDOWN_GRACE_POLLS {
                            return Err(HotCallError::ResponderGone);
                        }
                    }
                    // In-flight age: a call that spins this long without
                    // completing is stuck behind busy responders — ask the
                    // governor for another.
                    age_polls += 1;
                    if gov.adaptive() && age_polls.is_multiple_of(AGE_POLLS_PER_RAISE) {
                        gov.try_raise();
                    }
                    backoff.snooze();
                }
            }
        }
    }

    /// Redeems the single-call response sitting DONE at `index`. The
    /// caller must be (or act for) the submitter and must have observed
    /// `DONE` with Acquire.
    fn redeem_one(&self, index: usize) -> Result<Resp> {
        let cap = self.shared.slots.len();
        let slot = &self.shared.slots[index % cap];
        // Read the completion stamp before redeeming: redeem frees the
        // slot for re-claim, after which the stamp belongs to a new call.
        let completed_at = slot.completed_at();
        // SAFETY: this requester submitted the call at `index` and
        // observed DONE with Acquire; only the submitter redeems a slot,
        // and the previous lap's DONE was redeemed before this slot could
        // be claimed again, so this DONE is ours.
        let result = match unsafe { slot.redeem() } {
            Ok(RespEnvelope::One(resp)) => Ok(resp),
            Ok(RespEnvelope::Bundle(_)) => {
                unreachable!("a Ticket is only minted for single-call submissions")
            }
            Err(e) => Err(e),
        };
        self.shared.record_reap(completed_at);
        result
    }

    /// Wait + redeem by raw slot sequence: the synchronous call paths use
    /// this directly so they never mint a ticket (and never touch the
    /// abandonment board) at all.
    fn wait_index(&self, index: usize) -> Result<Resp> {
        self.wait_done(index)?;
        self.redeem_one(index)
    }

    /// Waits for a submitted call to complete and returns its response.
    ///
    /// # Errors
    ///
    /// [`HotCallError::ResponderGone`] if the server shut down first, or
    /// the handler's own error.
    pub fn wait(&self, mut ticket: Ticket) -> Result<Resp> {
        self.wait_index(ticket.defuse())
    }

    /// Redeems the response if the call already completed, or hands the
    /// ticket back untouched — the non-blocking reap primitive for
    /// poll-style event loops.
    pub fn try_wait(&self, ticket: Ticket) -> core::result::Result<Result<Resp>, Ticket> {
        let cap = self.shared.slots.len();
        let slot = &self.shared.slots[ticket.index % cap];
        if slot.state() != DONE {
            return Err(ticket);
        }
        let mut ticket = ticket;
        Ok(self.redeem_one(ticket.defuse()))
    }

    /// Waits until *any* of `tickets` completes, removes it from the set,
    /// and returns its sequence number (see [`Ticket::seq`]) with the
    /// response. Completion order is whatever the responder pool produces
    /// — this is the batched-reap primitive that keeps a deep pipeline
    /// full.
    ///
    /// # Errors
    ///
    /// [`HotCallError::InvalidConfig`] on an empty set;
    /// [`HotCallError::ResponderGone`] if the server shut down; a per-call
    /// failure (e.g. unknown id) is returned as-is (the offending ticket
    /// is consumed).
    pub fn wait_any(&self, tickets: &mut Vec<Ticket>) -> Result<(u64, Resp)> {
        if tickets.is_empty() {
            return Err(HotCallError::InvalidConfig(
                "wait_any needs at least one ticket",
            ));
        }
        let reaped = self.wait_any_inner(tickets, None)?;
        Ok(reaped.expect("a deadline-free wait_any only returns on a completion"))
    }

    /// [`RingRequester::wait_any`] bounded by a deadline: returns
    /// `Ok(None)` — with every ticket left in the set — if nothing
    /// completes by `deadline` (or the set is empty). The primitive that
    /// lets async reapers and graceful shutdown stop parking forever on
    /// an idle plane.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::wait_any`], except that an empty set is
    /// `Ok(None)` instead of an error.
    pub fn wait_any_until(
        &self,
        tickets: &mut Vec<Ticket>,
        deadline: Instant,
    ) -> Result<Option<(u64, Resp)>> {
        if tickets.is_empty() {
            return Ok(None);
        }
        self.wait_any_inner(tickets, Some(deadline))
    }

    /// [`RingRequester::wait_any_until`] with a relative timeout.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::wait_any_until`].
    pub fn wait_any_timeout(
        &self,
        tickets: &mut Vec<Ticket>,
        timeout: Duration,
    ) -> Result<Option<(u64, Resp)>> {
        if tickets.is_empty() {
            return Ok(None);
        }
        self.wait_any_inner(tickets, Some(Instant::now() + timeout))
    }

    fn wait_any_inner(
        &self,
        tickets: &mut Vec<Ticket>,
        deadline: Option<Instant>,
    ) -> Result<Option<(u64, Resp)>> {
        let cap = self.shared.slots.len();
        let gov = &self.shared.governor;
        let mut backoff = Backoff::new();
        let mut grace: u32 = 0;
        let mut polls: u32 = 0;
        loop {
            // Redeem the *oldest* completed ticket (ring indices are
            // monotonic), never just the first one found. With
            // instantly-completing submissions (the fused path), a
            // first-found scan keeps redeeming whichever ticket
            // `swap_remove` rotated to the front — always the youngest —
            // while older DONE slots sit un-redeemed until the head laps
            // onto one; `submit` then spins on a slot only this very
            // caller could free. Oldest-first bounds an un-redeemed
            // completion's age by the caller's in-flight window.
            let mut oldest: Option<usize> = None;
            for i in 0..tickets.len() {
                if self.shared.slots[tickets[i].index % cap].state() == DONE
                    && oldest.is_none_or(|o| tickets[i].index < tickets[o].index)
                {
                    oldest = Some(i);
                }
            }
            if let Some(i) = oldest {
                let mut ticket = tickets.swap_remove(i);
                let seq = ticket.seq();
                let index = ticket.defuse();
                return self.redeem_one(index).map(|resp| Some((seq, resp)));
            }
            // Deadline check on a stride: `Instant::now` per spin would
            // dominate the wait loop. The first iteration checks too, so
            // an already-expired deadline still gets exactly one scan.
            // Once the backoff has escalated to yielding, every poll
            // already costs a scheduler quantum, so the stride no longer
            // buys anything — check every poll instead. On a quiescent
            // plane the old stride let up to 64 yields (milliseconds of
            // quanta) pass between deadline reads, overshooting small
            // timeouts and delaying streaming credit refills.
            if polls.is_multiple_of(DEADLINE_CHECK_POLLS) || backoff.yields() {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Ok(None);
                    }
                }
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                grace += 1;
                if grace > SHUTDOWN_GRACE_POLLS {
                    return Err(HotCallError::ResponderGone);
                }
            }
            polls = polls.wrapping_add(1);
            if gov.adaptive() && polls.is_multiple_of(AGE_POLLS_PER_RAISE) {
                gov.try_raise();
            }
            backoff.snooze();
        }
    }

    /// Waits for a bundle and returns one result per call, in submission
    /// order.
    ///
    /// # Errors
    ///
    /// [`HotCallError::ResponderGone`] if the server shut down before the
    /// bundle was serviced. Per-call failures stay *inside* the returned
    /// vector.
    pub fn wait_bundle(&self, mut ticket: BundleTicket) -> Result<Vec<Result<Resp>>> {
        let index = ticket.defuse();
        self.wait_done(index)?;
        let cap = self.shared.slots.len();
        let slot = &self.shared.slots[index % cap];
        let completed_at = slot.completed_at();
        // SAFETY: as in `wait` — DONE observed with Acquire by the
        // submitting requester.
        let result = match unsafe { slot.redeem() } {
            Ok(RespEnvelope::Bundle(results)) => Ok(results),
            Ok(RespEnvelope::One(_)) => {
                unreachable!("a BundleTicket is only minted for bundle submissions")
            }
            Err(e) => Err(e),
        };
        self.shared.record_reap(completed_at);
        result
    }

    /// Submit + wait in one step.
    ///
    /// On a quiet plane with fusing enabled (see
    /// [`FusedMode`](crate::FusedMode)) the handler runs *inline on this
    /// thread* — no slot publish, no doze wake, no cross-core cache-line
    /// transfer — and falls back to the pooled submit/wait the moment
    /// responders are active.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::submit`] and [`RingRequester::wait`].
    pub fn call(&self, id: u32, req: Req) -> Result<Resp> {
        // Synchronous calls can skip the ring entirely: nothing to
        // pipeline, no ticket to mint, so the fused path is a plain
        // dispatch on the requester's core.
        if self.config.fused_mode != FusedMode::Off && !self.shared.shutdown.load(Ordering::Acquire)
        {
            let tail = self.shared.tail.load(Ordering::Acquire);
            let head = self.shared.head.load(Ordering::Acquire);
            let occupancy = RingShared::<Req, Resp>::occupancy(head, tail);
            if self.fused_eligible(occupancy) {
                let result = self
                    .shared
                    .table
                    .dispatch(id, req)
                    .ok_or(HotCallError::UnknownCallId(id));
                self.shared.fused_runs.fetch_add(1, Ordering::Relaxed);
                trace("fused_run", id as u64, 1);
                return result;
            }
            self.note_fused_fallback(id as u64);
        }
        // Fusing was declined here; don't re-attempt it inside submit.
        match self.submit_envelope(id, ReqEnvelope::One(req), false, false) {
            Ok(index) => self.wait_index(index),
            Err((e, _)) => Err(e),
        }
    }

    /// Submits a bundle and waits for all of its results.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::submit_bundle`] and
    /// [`RingRequester::wait_bundle`].
    pub fn call_bundle(&self, bundle: Bundle<Req>) -> Result<Vec<Result<Resp>>> {
        let t = self.submit_bundle(bundle)?;
        self.wait_bundle(t)
    }

    /// Issues a call, running `fallback` locally if the fast path times
    /// out — the paper's SDK-call fallback, generalized to the ring.
    ///
    /// The request is moved into the ring only after the claim succeeds,
    /// so the hot path never clones: on timeout the original request
    /// comes back out of the envelope and goes to `fallback` as-is.
    pub fn call_with_fallback<F>(&self, id: u32, req: Req, fallback: F) -> Result<Resp>
    where
        F: FnOnce(Req) -> Resp,
    {
        match self.submit_envelope(id, ReqEnvelope::One(req), true, false) {
            Ok(index) => self.wait_index(index),
            Err((HotCallError::ResponderTimeout { .. }, ReqEnvelope::One(req))) => {
                Ok(fallback(req))
            }
            Err((e, _)) => Err(e),
        }
    }

    /// Statistics so far, aggregated over the responder pool.
    pub fn stats(&self) -> HotCallStats {
        self.shared.snapshot()
    }

    /// The governor's current shape and decision counters.
    pub fn governor_stats(&self) -> GovernorStats {
        self.shared.governor_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (CallTable<u64, u64>, u32) {
        let mut t = CallTable::new();
        let sq = t.register(|x| x * x);
        (t, sq)
    }

    fn generous() -> HotCallConfig {
        HotCallConfig::patient()
    }

    #[test]
    fn call_roundtrip() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 4, generous());
        let r = server.requester();
        assert_eq!(r.call(sq, 7).unwrap(), 49);
        assert_eq!(server.stats().calls, 1);
    }

    #[test]
    fn pipelined_submissions_complete_in_order() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 8, generous());
        let r = server.requester();
        let tickets: Vec<Ticket> = (0..8u64).map(|i| r.submit(sq, i).unwrap()).collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(r.wait(t).unwrap(), (i * i) as u64);
        }
    }

    #[test]
    fn wait_any_reaps_out_of_order() {
        let (t, sq) = table();
        let server = RingServer::spawn_pool(t, 16, 2, generous()).unwrap();
        let r = server.requester();
        let mut tickets: Vec<Ticket> = (0..10u64).map(|i| r.submit(sq, i).unwrap()).collect();
        let mut seen = std::collections::BTreeMap::new();
        while !tickets.is_empty() {
            let (seq, resp) = r.wait_any(&mut tickets).unwrap();
            assert!(seen.insert(seq, resp).is_none(), "seq {seq} reaped twice");
        }
        // Sequence numbers are the ring indices 0..10 for a fresh server,
        // and each response is the square of its submission payload.
        let values: Vec<u64> = seen.into_values().collect();
        let mut want: Vec<u64> = (0..10u64).map(|i| i * i).collect();
        want.sort_unstable();
        let mut got = values;
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn try_wait_returns_ticket_until_done() {
        let mut t: CallTable<u64, u64> = CallTable::new();
        let slow = t.register(|x| {
            std::thread::sleep(std::time::Duration::from_millis(30));
            x + 1
        });
        let server = RingServer::spawn(t, 4, generous());
        let r = server.requester();
        let mut ticket = r.submit(slow, 1).unwrap();
        let mut polls = 0u32;
        let resp = loop {
            match r.try_wait(ticket) {
                Ok(resp) => break resp.unwrap(),
                Err(t) => {
                    ticket = t;
                    polls += 1;
                    std::thread::yield_now();
                }
            }
        };
        assert_eq!(resp, 2);
        assert!(polls > 0, "a 30ms handler cannot complete instantly");
    }

    #[test]
    fn wait_any_timeout_returns_promptly_on_quiescent_plane() {
        let mut t: CallTable<u64, u64> = CallTable::new();
        let slow = t.register(|x| {
            std::thread::sleep(std::time::Duration::from_millis(400));
            x
        });
        let server = RingServer::spawn(t, 4, generous());
        let r = server.requester();
        let mut tickets = vec![r.submit(slow, 7).unwrap()];
        let start = Instant::now();
        let timeout = Duration::from_millis(5);
        // The ticket cannot complete within the timeout, so this must
        // come back `Ok(None)` near the deadline — not after the old
        // 64-yield deadline stride let scheduler quanta pile up.
        let reaped = r.wait_any_timeout(&mut tickets, timeout).unwrap();
        let elapsed = start.elapsed();
        assert!(reaped.is_none(), "a 400ms handler beat a 5ms timeout");
        assert_eq!(tickets.len(), 1, "timeout must leave the ticket in place");
        assert!(
            elapsed < Duration::from_millis(200),
            "timeout overshot: {elapsed:?}"
        );
        // Drain the ticket so shutdown doesn't race the in-flight call.
        let (_, resp) = r.wait_any(&mut tickets).unwrap();
        assert_eq!(resp, 7);
    }

    #[test]
    fn bundle_roundtrip_preserves_order_and_ids() {
        let mut t: CallTable<u64, u64> = CallTable::new();
        let inc = t.register(|x| x + 1);
        let dbl = t.register(|x| x * 2);
        let server = RingServer::spawn(t, 4, generous());
        let r = server.requester();
        let mut bundle = Bundle::with_capacity(5);
        bundle
            .push(inc, 10)
            .push(dbl, 10)
            .push(inc, 0)
            .push(dbl, 0)
            .push(inc, 41);
        assert_eq!(bundle.len(), 5);
        let results = r.call_bundle(bundle).unwrap();
        let values: Vec<u64> = results.into_iter().map(|x| x.unwrap()).collect();
        assert_eq!(values, [11, 20, 1, 0, 42]);
        // Each bundled call counts as a call; the bundle is one ring slot.
        assert_eq!(server.stats().calls, 5);
    }

    #[test]
    fn bundle_unknown_id_fails_only_that_call() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 4, generous());
        let r = server.requester();
        let mut bundle = Bundle::new();
        bundle.push(sq, 3).push(999, 1).push(sq, 4);
        let results = r.call_bundle(bundle).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(*results[0].as_ref().unwrap(), 9);
        assert!(matches!(results[1], Err(HotCallError::UnknownCallId(999))));
        assert_eq!(*results[2].as_ref().unwrap(), 16);
    }

    #[test]
    fn empty_bundle_is_rejected() {
        let (t, _) = table();
        let server = RingServer::spawn(t, 4, generous());
        let r = server.requester();
        assert!(matches!(
            r.submit_bundle(Bundle::new()),
            Err(HotCallError::InvalidConfig(_))
        ));
    }

    #[test]
    fn bundles_interleave_with_single_calls() {
        let (t, sq) = table();
        let server = RingServer::spawn_pool(t, 8, 2, generous()).unwrap();
        let r = server.requester();
        for round in 0..50u64 {
            let single = r.submit(sq, round).unwrap();
            let mut bundle = Bundle::new();
            for i in 0..4u64 {
                bundle.push(sq, round * 10 + i);
            }
            let bt = r.submit_bundle(bundle).unwrap();
            let results = r.wait_bundle(bt).unwrap();
            for (i, got) in results.into_iter().enumerate() {
                let x = round * 10 + i as u64;
                assert_eq!(got.unwrap(), x * x);
            }
            assert_eq!(r.wait(single).unwrap(), round * round);
        }
        assert_eq!(server.stats().calls, 250);
    }

    #[test]
    fn ring_wraps_many_times() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 2, generous());
        let r = server.requester();
        for i in 0..5_000u64 {
            assert_eq!(r.call(sq, i).unwrap(), i * i);
        }
        assert_eq!(server.stats().calls, 5_000);
    }

    #[test]
    fn concurrent_requesters_share_the_ring() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 4, generous());
        let mut handles = Vec::new();
        for th in 0..3u64 {
            let r = server.requester();
            handles.push(std::thread::spawn(move || {
                (0..500u64)
                    .map(|i| r.call(sq, th * 1_000 + i).unwrap())
                    .sum::<u64>()
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let want: u64 = (0..3u64)
            .flat_map(|th| (0..500u64).map(move |i| (th * 1_000 + i) * (th * 1_000 + i)))
            .sum();
        assert_eq!(total, want);
        assert_eq!(server.stats().calls, 1_500);
    }

    #[test]
    fn unknown_id_propagates() {
        let (t, _) = table();
        let server = RingServer::spawn(t, 2, generous());
        let r = server.requester();
        assert!(matches!(
            r.call(42, 1),
            Err(HotCallError::UnknownCallId(42))
        ));
    }

    #[test]
    fn ring_fallback_runs_locally_on_timeout() {
        let mut t: CallTable<u64, u64> = CallTable::new();
        let slow = t.register(|x| {
            std::thread::sleep(std::time::Duration::from_millis(200));
            x
        });
        // Capacity-1 ring: while the slow call is in flight the ring is
        // full, so a second requester times out and falls back.
        let server = RingServer::spawn(
            t,
            1,
            HotCallConfig {
                timeout_retries: 2,
                spins_per_retry: 4,
                ..HotCallConfig::default()
            },
        );
        let r1 = server.requester();
        let r2 = server.requester();
        let blocker = std::thread::spawn(move || r1.call(slow, 7).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(50));
        let v = r2.call_with_fallback(slow, 5, |x| x + 100).unwrap();
        assert_eq!(v, 105);
        assert!(r2.stats().fallbacks >= 1);
        assert_eq!(blocker.join().unwrap(), 7);
    }

    #[test]
    fn shutdown_fails_inflight_and_future_calls() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 2, generous());
        let r = server.requester();
        assert_eq!(r.call(sq, 3).unwrap(), 9);
        server.shutdown();
        assert!(matches!(r.submit(sq, 1), Err(HotCallError::ResponderGone)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let (t, _) = table();
        let _ = RingServer::spawn(t, 0, generous());
    }

    #[test]
    fn pool_rejects_degenerate_shapes() {
        let (t, _) = table();
        assert!(matches!(
            RingServer::spawn_pool(t, 0, 2, generous()),
            Err(HotCallError::InvalidConfig(_))
        ));
        let (t, _) = table();
        assert!(matches!(
            RingServer::spawn_pool(t, 8, 0, generous()),
            Err(HotCallError::InvalidConfig(_))
        ));
        let (t, _) = table();
        assert!(matches!(
            RingServer::spawn_adaptive(t, 8, ResponderPolicy::elastic(2, 1), generous()),
            Err(HotCallError::InvalidConfig(_))
        ));
    }

    #[test]
    fn pool_services_concurrent_requesters() {
        let (t, sq) = table();
        let server = RingServer::spawn_pool(t, 16, 3, generous()).unwrap();
        assert_eq!(server.responders(), 3);
        let mut handles = Vec::new();
        for th in 0..4u64 {
            let r = server.requester();
            handles.push(std::thread::spawn(move || {
                (0..400u64)
                    .map(|i| r.call(sq, th * 1_000 + i).unwrap())
                    .sum::<u64>()
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let want: u64 = (0..4u64)
            .flat_map(|th| (0..400u64).map(move |i| (th * 1_000 + i) * (th * 1_000 + i)))
            .sum();
        assert_eq!(total, want);
        assert_eq!(server.stats().calls, 1_600);
    }

    #[test]
    fn pool_batched_drain_handles_bursts() {
        // A tiny drain batch and a large one must both preserve
        // exactly-once results over pipelined bursts.
        for batch in [1u32, 4, 64] {
            let (t, sq) = table();
            let config = HotCallConfig {
                drain_batch: batch,
                ..generous()
            };
            let server = RingServer::spawn_pool(t, 8, 2, config).unwrap();
            let r = server.requester();
            for _ in 0..50 {
                let tickets: Vec<Ticket> = (0..8u64).map(|i| r.submit(sq, i).unwrap()).collect();
                for (i, t) in tickets.into_iter().enumerate() {
                    assert_eq!(r.wait(t).unwrap(), (i * i) as u64, "batch={batch}");
                }
            }
            assert_eq!(server.stats().calls, 400);
        }
    }

    #[test]
    fn pool_idle_sleep_wakes_on_submit() {
        let (t, sq) = table();
        let config = HotCallConfig {
            idle_polls_before_sleep: Some(200),
            ..generous()
        };
        let server = RingServer::spawn_pool(t, 8, 2, config).unwrap();
        let r = server.requester();
        assert_eq!(r.call(sq, 5).unwrap(), 25);
        // Let both responders doze off, then prove a call still lands.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.shared.doze.sleepers.load(Ordering::SeqCst) < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "responders never slept"
            );
            std::thread::yield_now();
        }
        assert_eq!(r.call(sq, 6).unwrap(), 36);
        let stats = server.stats();
        assert!(stats.wakeups >= 1, "wakeups not accounted: {stats:?}");
    }

    #[test]
    fn bundle_submission_performs_at_most_one_wake() {
        let (t, sq) = table();
        let config = HotCallConfig {
            idle_polls_before_sleep: Some(100),
            ..generous()
        };
        let server = RingServer::spawn_pool(t, 32, 2, config).unwrap();
        let r = server.requester();
        assert_eq!(r.call(sq, 2).unwrap(), 4);
        // Let every responder doze so the next submission must wake.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.shared.doze.sleepers.load(Ordering::SeqCst) < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "responders never slept"
            );
            std::thread::yield_now();
        }
        let before = server.stats().wakeups;
        let mut bundle = Bundle::new();
        for i in 0..16u64 {
            bundle.push(sq, i);
        }
        let results = r.call_bundle(bundle).unwrap();
        assert!(results.into_iter().all(|x| x.is_ok()));
        let woke = server.stats().wakeups - before;
        assert!(woke <= 1, "a 16-call bundle paid {woke} wakes");
    }

    #[test]
    fn occupancy_is_underflow_proof() {
        // The regression this fixes: a stale head snapshot paired with a
        // fresher tail snapshot made `head - tail` underflow. The helper
        // must stay a plain difference for in-order snapshots and must not
        // panic for out-of-order ones.
        type R = RingShared<u64, u64>;
        assert_eq!(R::occupancy(5, 3), 2);
        assert_eq!(R::occupancy(7, 7), 0);
        // Out-of-order snapshot (tail "ahead" of head): wraps instead of
        // panicking, and the huge value safely reads as "full" upstream.
        assert!(R::occupancy(3, 5) >= usize::MAX - 1);
    }

    #[test]
    fn stale_head_stress_on_tiny_ring() {
        // Maximize head/tail snapshot races: capacity-1 ring, several
        // requesters, responders constantly advancing tail. With the old
        // head-then-tail load order this underflowed in debug builds.
        let (t, sq) = table();
        let server = RingServer::spawn_pool(t, 1, 2, generous()).unwrap();
        let mut handles = Vec::new();
        for th in 0..4u64 {
            let r = server.requester();
            handles.push(std::thread::spawn(move || {
                for i in 0..300u64 {
                    let x = th * 100 + i % 50;
                    assert_eq!(r.call(sq, x).unwrap(), x * x);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.stats().calls, 1_200);
    }

    #[test]
    fn static_pool_governor_is_inert() {
        let (t, sq) = table();
        let server = RingServer::spawn_pool(t, 8, 3, generous()).unwrap();
        let r = server.requester();
        for i in 0..500u64 {
            assert_eq!(r.call(sq, i).unwrap(), i * i);
        }
        let g = server.governor_stats();
        assert_eq!((g.active, g.parked), (3, 0));
        assert_eq!((g.parks, g.wakes), (0, 0));
        assert_eq!((g.min, g.max), (3, 3));
    }

    #[test]
    fn governor_parks_surplus_responders_when_idle() {
        let (t, sq) = table();
        let policy = ResponderPolicy {
            park_after_idle_polls: 64,
            ..ResponderPolicy::elastic(1, 4)
        };
        let config = HotCallConfig {
            idle_polls_before_sleep: Some(1_000_000),
            ..generous()
        };
        let server = RingServer::spawn_adaptive(t, 16, policy, config).unwrap();
        assert_eq!(server.responders(), 4);
        let r = server.requester();
        assert_eq!(r.call(sq, 3).unwrap(), 9);
        // With no work, the three governable responders demote themselves
        // top-down and park.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let g = server.governor_stats();
            if g.active == 1 && g.parked == 3 {
                assert!(g.parks >= 3, "{g:?}");
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never parked: {g:?}");
            std::thread::yield_now();
        }
        // The remaining responder still serves calls.
        assert_eq!(r.call(sq, 5).unwrap(), 25);
    }

    #[test]
    fn governor_wakes_parked_responders_on_backlog() {
        let mut t: CallTable<u64, u64> = CallTable::new();
        let slow = t.register(|x| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            x + 1
        });
        let policy = ResponderPolicy {
            park_after_idle_polls: 64,
            target_occupancy: 1,
            ..ResponderPolicy::elastic(1, 4)
        };
        let server = RingServer::spawn_adaptive(t, 32, policy, generous()).unwrap();
        let r = server.requester();
        // Let the pool park down to the minimum first.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while server.governor_stats().active > 1 {
            assert!(std::time::Instant::now() < deadline, "never parked");
            std::thread::yield_now();
        }
        // Pipeline a burst of blocking calls: occupancy builds behind the
        // single active responder, requesters raise the target, parked
        // responders wake and help.
        let tickets: Vec<Ticket> = (0..24u64).map(|i| r.submit(slow, i).unwrap()).collect();
        let mut tickets = tickets;
        while !tickets.is_empty() {
            let (_, resp) = r.wait_any(&mut tickets).unwrap();
            assert!(resp >= 1);
        }
        let g = server.governor_stats();
        assert!(g.wakes >= 1, "backlog never raised the target: {g:?}");
        assert_eq!(server.stats().calls, 24);
    }

    #[test]
    fn fused_always_runs_calls_inline() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 4, HotCallConfig::fused(FusedMode::Always));
        let r = server.requester();
        for i in 0..100u64 {
            assert_eq!(r.call(sq, i).unwrap(), i * i);
        }
        let s = server.stats();
        assert_eq!(s.calls, 100);
        // `call` with Always never touches the ring at all.
        assert_eq!(s.fused_runs, 100, "{s:?}");
    }

    #[test]
    fn fused_call_propagates_unknown_id() {
        let (t, _) = table();
        let server = RingServer::spawn(t, 4, HotCallConfig::fused(FusedMode::Always));
        let r = server.requester();
        assert!(matches!(
            r.call(42, 1),
            Err(HotCallError::UnknownCallId(42))
        ));
    }

    #[test]
    fn fused_submit_self_services_and_redeems() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 8, HotCallConfig::fused(FusedMode::Always));
        let r = server.requester();
        let ticket = r.submit(sq, 6).unwrap();
        assert_eq!(r.wait(ticket).unwrap(), 36);
        let mut bundle = Bundle::new();
        bundle.push(sq, 2).push(sq, 3);
        let results = r.call_bundle(bundle).unwrap();
        let values: Vec<u64> = results.into_iter().map(|x| x.unwrap()).collect();
        assert_eq!(values, [4, 9]);
        let s = server.stats();
        // Each envelope either self-serviced (its calls count as fused
        // runs) or lost its race to the responder (one counted fallback) —
        // conservation must be exact either way.
        assert_eq!(s.calls, 3, "{s:?}");
        assert!(s.fused_runs + s.fused_fallbacks >= 1, "{s:?}");
    }

    #[test]
    fn fused_pipelining_redeems_oldest_and_never_wedges_on_wrap() {
        // Regression (same shape as the sharded plane's): first-found
        // `wait_any` redemption starves older DONE tickets when fused
        // submissions complete instantly, and the head's next lap then
        // blocks on a slot only the spinning submitter could redeem.
        // Oldest-first redemption keeps the lap ahead of the in-flight
        // window; this loop wraps the 8-slot ring dozens of times.
        let (t, sq) = table();
        let server = RingServer::spawn(t, 8, HotCallConfig::fused(FusedMode::Always));
        let r = server.requester();
        let mut tickets: Vec<Ticket> = Vec::new();
        let mut submitted = 0u64;
        let mut redeemed = 0u64;
        while redeemed < 500 {
            while tickets.len() < 4 {
                tickets.push(r.submit(sq, submitted).unwrap());
                submitted += 1;
            }
            r.wait_any(&mut tickets).unwrap();
            redeemed += 1;
        }
        while !tickets.is_empty() {
            r.wait_any(&mut tickets).unwrap();
            redeemed += 1;
        }
        assert_eq!(redeemed, submitted);
        assert_eq!(server.stats().calls, submitted);
    }

    #[test]
    fn fused_auto_uses_the_pool_when_responders_are_hot() {
        // Spinning responders (no doze) keep the plane attended: Auto must
        // decline to fuse and count the decline.
        let (t, sq) = table();
        let config = HotCallConfig {
            fused_mode: FusedMode::Auto,
            idle_polls_before_sleep: None,
            ..HotCallConfig::patient()
        };
        let server = RingServer::spawn(t, 4, config);
        let r = server.requester();
        assert_eq!(r.call(sq, 9).unwrap(), 81);
        let s = server.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.fused_runs, 0, "{s:?}");
        assert_eq!(s.fused_fallbacks, 1, "{s:?}");
    }

    #[test]
    fn fused_auto_fuses_once_responders_doze() {
        let (t, sq) = table();
        let config = HotCallConfig {
            fused_mode: FusedMode::Auto,
            idle_polls_before_sleep: Some(64),
            ..HotCallConfig::patient()
        };
        let server = RingServer::spawn_pool(t, 8, 2, config).unwrap();
        let r = server.requester();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while server.shared.doze.sleepers.load(Ordering::SeqCst) < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "responders never slept"
            );
            std::thread::yield_now();
        }
        let before_wakes = server.stats().wakeups;
        // Quiet plane, every responder dozing: the call runs inline and
        // pays no wake.
        assert_eq!(r.call(sq, 12).unwrap(), 144);
        let s = server.stats();
        assert_eq!(s.fused_runs, 1, "{s:?}");
        assert_eq!(s.wakeups, before_wakes, "a fused call paid a wake");
    }

    #[test]
    fn fused_and_pooled_paths_interleave_without_loss() {
        let (t, sq) = table();
        let config = HotCallConfig {
            fused_mode: FusedMode::Auto,
            idle_polls_before_sleep: Some(64),
            ..HotCallConfig::patient()
        };
        let server = RingServer::spawn_pool(t, 8, 2, config).unwrap();
        let r = server.requester();
        // Alternate quiet single calls (fuse once responders doze) with
        // pipelined bursts (occupancy pushes past break-even → pooled).
        for round in 0..50u64 {
            assert_eq!(r.call(sq, round).unwrap(), round * round);
            let mut tickets: Vec<Ticket> = (0..4u64)
                .map(|i| r.submit(sq, round * 10 + i).unwrap())
                .collect();
            while !tickets.is_empty() {
                r.wait_any(&mut tickets).unwrap();
            }
        }
        assert_eq!(server.stats().calls, 250);
    }
}
