//! A queued HotCalls variant: a multi-slot submission ring with a
//! responder pool.
//!
//! The paper's single mailbox serializes requesters; §4.2 observes that
//! responder utilization "can potentially be improved by sharing the
//! responder thread with several requesters". [`RingServer`] realizes
//! that: a fixed ring of request slots lets several requesters have calls
//! in flight simultaneously while one *or more* responders drain them in
//! order. Each slot is its own little mailbox (CLAIM → SUBMIT → DONE) on
//! its own cache lines, so requesters never contend on a single word the
//! way the plain channel does, and payloads move through lock-free
//! `UnsafeCell`s guarded by the slot state machine (see [`super::slot`]).
//!
//! Responders claim work in batches: each scans up to
//! [`HotCallConfig::drain_batch`] contiguous submitted slots from `tail`
//! and takes ownership of the whole run with one CAS on `tail` (see
//! [`super::pool`]), amortizing coordination the way batched switchless
//! draining does in IO-heavy enclave workloads.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::config::{HotCallConfig, HotCallStats};
use crate::error::{HotCallError, Result};

use super::pool;
use super::slot::{Backoff, CachePadded, CallSlot, Doze, StatCell, DONE, EMPTY};
use super::CallTable;

/// Grace polls a waiter grants the shutdown sweep before giving up on a
/// slot that will never complete (its payload is freed by the slot Drop).
const SHUTDOWN_GRACE_POLLS: u32 = 100_000;

pub(super) struct RingShared<Req, Resp> {
    /// Each slot is 64-byte aligned with its state word on its own line,
    /// so neighbouring slots never false-share.
    pub(super) slots: Box<[CallSlot<Req, Resp>]>,
    /// Next slot index a requester claims. Padded: requesters hammer this
    /// line; responders must not.
    pub(super) head: CachePadded<AtomicUsize>,
    /// Next slot index the responders service. Padded likewise.
    pub(super) tail: CachePadded<AtomicUsize>,
    pub(super) shutdown: AtomicBool,
    pub(super) doze: Doze,
    /// One padded statistics cell per responder; each responder writes
    /// only its own (plain stores, no shared RMW on the hot path).
    pub(super) responders: Box<[CachePadded<StatCell>]>,
    // Requester-side event counters; rare, so shared RMWs are fine.
    fallbacks: AtomicU64,
    wakeups: AtomicU64,
}

impl<Req, Resp> RingShared<Req, Resp> {
    /// Slots currently between claim and service. `head` and `tail` are
    /// monotonic with `head >= tail` at every instant, but two separate
    /// loads can still see them "out of order" — the caller must load
    /// `tail` *before* `head` (then the head snapshot can only be newer,
    /// never older, than the tail snapshot) and this subtraction wraps
    /// instead of panicking as a second line of defense.
    pub(super) fn occupancy(head: usize, tail: usize) -> usize {
        head.wrapping_sub(tail)
    }
}

impl<Req, Resp> core::fmt::Debug for RingShared<Req, Resp> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RingShared")
            .field("capacity", &self.slots.len())
            .field("responders", &self.responders.len())
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("tail", &self.tail.load(Ordering::Relaxed))
            .finish()
    }
}

/// A running ring server: a pool of responder threads draining a
/// multi-slot submission ring in batches.
///
/// # Examples
///
/// ```
/// use hotcalls::rt::{CallTable, RingServer};
/// use hotcalls::HotCallConfig;
///
/// let mut table: CallTable<u64, u64> = CallTable::new();
/// let inc = table.register(|x| x + 1);
/// let server = RingServer::spawn(table, 8, HotCallConfig::default());
/// let requester = server.requester();
/// assert_eq!(requester.call(inc, 9).unwrap(), 10);
/// ```
#[derive(Debug)]
pub struct RingServer<Req, Resp> {
    shared: Arc<RingShared<Req, Resp>>,
    config: HotCallConfig,
    joins: Vec<JoinHandle<()>>,
}

impl<Req, Resp> RingServer<Req, Resp>
where
    Req: Send + 'static,
    Resp: Send + 'static,
{
    /// Spawns a single responder over `table` with a ring of `capacity`
    /// slots (the original single-responder configuration).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn spawn(table: CallTable<Req, Resp>, capacity: usize, config: HotCallConfig) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self::spawn_pool(table, capacity, 1, config).expect("capacity and pool size validated")
    }

    /// Spawns a pool of `n_responders` threads draining one shared ring
    /// of `capacity` slots. Each responder claims up to
    /// [`HotCallConfig::drain_batch`] contiguous submissions per tail
    /// advance.
    ///
    /// # Errors
    ///
    /// [`HotCallError::InvalidConfig`] if `capacity` or `n_responders` is
    /// zero.
    pub fn spawn_pool(
        table: CallTable<Req, Resp>,
        capacity: usize,
        n_responders: usize,
        config: HotCallConfig,
    ) -> Result<Self> {
        if capacity == 0 {
            return Err(HotCallError::InvalidConfig(
                "ring capacity must be positive",
            ));
        }
        if n_responders == 0 {
            return Err(HotCallError::InvalidConfig(
                "responder pool must have at least one thread",
            ));
        }
        let shared = Arc::new(RingShared {
            slots: (0..capacity).map(|_| CallSlot::new()).collect(),
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            shutdown: AtomicBool::new(false),
            doze: Doze::new(),
            responders: (0..n_responders)
                .map(|_| CachePadded::new(StatCell::default()))
                .collect(),
            fallbacks: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
        });
        let table = Arc::new(table);
        let joins = (0..n_responders)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let table = Arc::clone(&table);
                std::thread::Builder::new()
                    .name(format!("hotcalls-ring-responder-{index}"))
                    .spawn(move || pool::responder_loop(shared, table, index, config))
                    .expect("spawn ring responder")
            })
            .collect();
        Ok(RingServer {
            shared,
            config,
            joins,
        })
    }

    /// Creates a requester handle.
    pub fn requester(&self) -> RingRequester<Req, Resp> {
        RingRequester {
            shared: Arc::clone(&self.shared),
            config: self.config,
        }
    }

    /// Number of responder threads in the pool.
    pub fn responders(&self) -> usize {
        self.shared.responders.len()
    }

    /// Statistics so far, aggregated over the responder pool.
    pub fn stats(&self) -> HotCallStats {
        let mut s = HotCallStats {
            calls: 0,
            fallbacks: self.shared.fallbacks.load(Ordering::Relaxed),
            wakeups: self.shared.wakeups.load(Ordering::Relaxed),
            idle_polls: 0,
            busy_polls: 0,
        };
        for cell in self.shared.responders.iter() {
            s.calls += cell.calls.load(Ordering::Relaxed);
            s.idle_polls += cell.idle_polls.load(Ordering::Relaxed);
            s.busy_polls += cell.busy_polls.load(Ordering::Relaxed);
        }
        s
    }

    /// Stops the responders and joins them.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }
}

impl<Req, Resp> RingServer<Req, Resp> {
    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.doze.wake_all();
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

impl<Req, Resp> Drop for RingServer<Req, Resp> {
    fn drop(&mut self) {
        if !self.joins.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// A handle submitting calls into the ring.
#[derive(Debug)]
pub struct RingRequester<Req, Resp> {
    shared: Arc<RingShared<Req, Resp>>,
    config: HotCallConfig,
}

impl<Req, Resp> Clone for RingRequester<Req, Resp> {
    fn clone(&self) -> Self {
        RingRequester {
            shared: Arc::clone(&self.shared),
            config: self.config,
        }
    }
}

/// An in-flight call: redeem with [`RingRequester::wait`].
#[derive(Debug)]
#[must_use = "a ticket must be waited on, or its slot stays occupied"]
pub struct Ticket {
    index: usize,
}

impl<Req, Resp> RingRequester<Req, Resp> {
    /// Claims a slot and submits a request without waiting. Returns a
    /// [`Ticket`] to redeem the response.
    ///
    /// # Errors
    ///
    /// [`HotCallError::ResponderTimeout`] if no slot frees up within the
    /// retry budget; [`HotCallError::ResponderGone`] after shutdown.
    pub fn submit(&self, id: u32, req: Req) -> Result<Ticket> {
        let cap = self.shared.slots.len();
        let mut backoff = Backoff::new();
        for _retry in 0..self.config.timeout_retries {
            for _ in 0..self.config.spins_per_retry {
                if self.shared.shutdown.load(Ordering::Acquire) {
                    return Err(HotCallError::ResponderGone);
                }
                // Load `tail` before `head`: both only grow, so the head
                // snapshot cannot lag the tail snapshot and the occupancy
                // subtraction cannot go negative. (The old head-then-tail
                // order let a responder advance `tail` past the stale head
                // snapshot in between, underflowing `head - tail`.)
                let tail = self.shared.tail.load(Ordering::Acquire);
                let head = self.shared.head.load(Ordering::Acquire);
                // Full ring: wait for the responders to drain.
                if RingShared::<Req, Resp>::occupancy(head, tail) >= cap {
                    core::hint::spin_loop();
                    continue;
                }
                // The target slot may still hold an un-redeemed DONE
                // response from the previous lap (a responder advanced
                // `tail` before that requester called `wait`); it only
                // becomes EMPTY when redeemed. Never claim a non-empty
                // slot.
                if self.shared.slots[head % cap].state() != EMPTY {
                    core::hint::spin_loop();
                    continue;
                }
                if self
                    .shared
                    .head
                    .compare_exchange(head, head + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                // Winning the CAS on `head` makes the (empty) slot ours:
                // any other claimant of this physical slot would need
                // `head` to advance a full lap first, which requires this
                // very submission to be serviced and redeemed.
                let slot = &self.shared.slots[head % cap];
                slot.mark_claimed();
                // SAFETY: the head CAS above granted exclusive claim
                // ownership of this slot (see comment); publish once.
                unsafe { slot.publish(id, req) };
                // Wake a sleeping responder (after the SUBMITTED store).
                if self.shared.doze.wake() {
                    self.shared.wakeups.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(Ticket { index: head });
            }
            backoff.snooze();
        }
        self.shared.fallbacks.fetch_add(1, Ordering::Relaxed);
        Err(HotCallError::ResponderTimeout {
            retries: self.config.timeout_retries,
        })
    }

    /// Waits for a submitted call to complete and returns its response.
    ///
    /// # Errors
    ///
    /// [`HotCallError::ResponderGone`] if the server shut down first, or
    /// the handler's own error.
    pub fn wait(&self, ticket: Ticket) -> Result<Resp> {
        let cap = self.shared.slots.len();
        let slot = &self.shared.slots[ticket.index % cap];
        let mut backoff = Backoff::new();
        let mut grace: u32 = 0;
        loop {
            match slot.state() {
                DONE => break,
                _ => {
                    // The pool drains submitted work before exiting, but a
                    // submission that raced the shutdown flag (or sits
                    // behind a neighbour stuck mid-publish) may never be
                    // serviced; give up after a bounded grace. The slot
                    // stays occupied and its payload is freed by Drop.
                    if self.shared.shutdown.load(Ordering::Acquire) {
                        grace += 1;
                        if grace > SHUTDOWN_GRACE_POLLS {
                            return Err(HotCallError::ResponderGone);
                        }
                    }
                    backoff.snooze();
                }
            }
        }
        // SAFETY: this requester submitted the call at `ticket.index` and
        // observed DONE with Acquire; only the submitter redeems a slot,
        // and the previous lap's DONE was redeemed before this slot could
        // be claimed again, so this DONE is ours.
        unsafe { slot.redeem() }
    }

    /// Submit + wait in one step.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::submit`] and [`RingRequester::wait`].
    pub fn call(&self, id: u32, req: Req) -> Result<Resp> {
        let t = self.submit(id, req)?;
        self.wait(t)
    }

    /// Statistics so far, aggregated over the responder pool.
    pub fn stats(&self) -> HotCallStats {
        let mut s = HotCallStats {
            calls: 0,
            fallbacks: self.shared.fallbacks.load(Ordering::Relaxed),
            wakeups: self.shared.wakeups.load(Ordering::Relaxed),
            idle_polls: 0,
            busy_polls: 0,
        };
        for cell in self.shared.responders.iter() {
            s.calls += cell.calls.load(Ordering::Relaxed);
            s.idle_polls += cell.idle_polls.load(Ordering::Relaxed);
            s.busy_polls += cell.busy_polls.load(Ordering::Relaxed);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (CallTable<u64, u64>, u32) {
        let mut t = CallTable::new();
        let sq = t.register(|x| x * x);
        (t, sq)
    }

    fn generous() -> HotCallConfig {
        HotCallConfig::patient()
    }

    #[test]
    fn call_roundtrip() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 4, generous());
        let r = server.requester();
        assert_eq!(r.call(sq, 7).unwrap(), 49);
        assert_eq!(server.stats().calls, 1);
    }

    #[test]
    fn pipelined_submissions_complete_in_order() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 8, generous());
        let r = server.requester();
        let tickets: Vec<Ticket> = (0..8u64).map(|i| r.submit(sq, i).unwrap()).collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(r.wait(t).unwrap(), (i * i) as u64);
        }
    }

    #[test]
    fn ring_wraps_many_times() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 2, generous());
        let r = server.requester();
        for i in 0..5_000u64 {
            assert_eq!(r.call(sq, i).unwrap(), i * i);
        }
        assert_eq!(server.stats().calls, 5_000);
    }

    #[test]
    fn concurrent_requesters_share_the_ring() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 4, generous());
        let mut handles = Vec::new();
        for th in 0..3u64 {
            let r = server.requester();
            handles.push(std::thread::spawn(move || {
                (0..500u64)
                    .map(|i| r.call(sq, th * 1_000 + i).unwrap())
                    .sum::<u64>()
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let want: u64 = (0..3u64)
            .flat_map(|th| (0..500u64).map(move |i| (th * 1_000 + i) * (th * 1_000 + i)))
            .sum();
        assert_eq!(total, want);
        assert_eq!(server.stats().calls, 1_500);
    }

    #[test]
    fn unknown_id_propagates() {
        let (t, _) = table();
        let server = RingServer::spawn(t, 2, generous());
        let r = server.requester();
        assert!(matches!(
            r.call(42, 1),
            Err(HotCallError::UnknownCallId(42))
        ));
    }

    #[test]
    fn shutdown_fails_inflight_and_future_calls() {
        let (t, sq) = table();
        let server = RingServer::spawn(t, 2, generous());
        let r = server.requester();
        assert_eq!(r.call(sq, 3).unwrap(), 9);
        server.shutdown();
        assert!(matches!(r.submit(sq, 1), Err(HotCallError::ResponderGone)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let (t, _) = table();
        let _ = RingServer::spawn(t, 0, generous());
    }

    #[test]
    fn pool_rejects_degenerate_shapes() {
        let (t, _) = table();
        assert!(matches!(
            RingServer::spawn_pool(t, 0, 2, generous()),
            Err(HotCallError::InvalidConfig(_))
        ));
        let (t, _) = table();
        assert!(matches!(
            RingServer::spawn_pool(t, 8, 0, generous()),
            Err(HotCallError::InvalidConfig(_))
        ));
    }

    #[test]
    fn pool_services_concurrent_requesters() {
        let (t, sq) = table();
        let server = RingServer::spawn_pool(t, 16, 3, generous()).unwrap();
        assert_eq!(server.responders(), 3);
        let mut handles = Vec::new();
        for th in 0..4u64 {
            let r = server.requester();
            handles.push(std::thread::spawn(move || {
                (0..400u64)
                    .map(|i| r.call(sq, th * 1_000 + i).unwrap())
                    .sum::<u64>()
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let want: u64 = (0..4u64)
            .flat_map(|th| (0..400u64).map(move |i| (th * 1_000 + i) * (th * 1_000 + i)))
            .sum();
        assert_eq!(total, want);
        assert_eq!(server.stats().calls, 1_600);
    }

    #[test]
    fn pool_batched_drain_handles_bursts() {
        // A tiny drain batch and a large one must both preserve
        // exactly-once results over pipelined bursts.
        for batch in [1u32, 4, 64] {
            let (t, sq) = table();
            let config = HotCallConfig {
                drain_batch: batch,
                ..generous()
            };
            let server = RingServer::spawn_pool(t, 8, 2, config).unwrap();
            let r = server.requester();
            for _ in 0..50 {
                let tickets: Vec<Ticket> = (0..8u64).map(|i| r.submit(sq, i).unwrap()).collect();
                for (i, t) in tickets.into_iter().enumerate() {
                    assert_eq!(r.wait(t).unwrap(), (i * i) as u64, "batch={batch}");
                }
            }
            assert_eq!(server.stats().calls, 400);
        }
    }

    #[test]
    fn pool_idle_sleep_wakes_on_submit() {
        let (t, sq) = table();
        let config = HotCallConfig {
            idle_polls_before_sleep: Some(200),
            ..generous()
        };
        let server = RingServer::spawn_pool(t, 8, 2, config).unwrap();
        let r = server.requester();
        assert_eq!(r.call(sq, 5).unwrap(), 25);
        // Let both responders doze off, then prove a call still lands.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.shared.doze.sleepers.load(Ordering::SeqCst) < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "responders never slept"
            );
            std::thread::yield_now();
        }
        assert_eq!(r.call(sq, 6).unwrap(), 36);
        let stats = server.stats();
        assert!(stats.wakeups >= 1, "wakeups not accounted: {stats:?}");
    }

    #[test]
    fn occupancy_is_underflow_proof() {
        // The regression this fixes: a stale head snapshot paired with a
        // fresher tail snapshot made `head - tail` underflow. The helper
        // must stay a plain difference for in-order snapshots and must not
        // panic for out-of-order ones.
        type R = RingShared<u64, u64>;
        assert_eq!(R::occupancy(5, 3), 2);
        assert_eq!(R::occupancy(7, 7), 0);
        // Out-of-order snapshot (tail "ahead" of head): wraps instead of
        // panicking, and the huge value safely reads as "full" upstream.
        assert!(R::occupancy(3, 5) >= usize::MAX - 1);
    }

    #[test]
    fn stale_head_stress_on_tiny_ring() {
        // Maximize head/tail snapshot races: capacity-1 ring, several
        // requesters, responders constantly advancing tail. With the old
        // head-then-tail load order this underflowed in debug builds.
        let (t, sq) = table();
        let server = RingServer::spawn_pool(t, 1, 2, generous()).unwrap();
        let mut handles = Vec::new();
        for th in 0..4u64 {
            let r = server.requester();
            handles.push(std::thread::spawn(move || {
                for i in 0..300u64 {
                    let x = th * 100 + i % 50;
                    assert_eq!(r.call(sq, x).unwrap(), x * x);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.stats().calls, 1_200);
    }
}
