//! The threaded HotCalls runtime: a real switchless-call channel.
//!
//! This is the artifact a downstream user adopts: a dedicated responder
//! thread polls a shared mailbox in a spin loop (`PAUSE` hints, no
//! syscalls), requesters publish work through an atomic state machine, and
//! the paper's practical considerations — timeout fallback, idle sleep on a
//! condition variable, utilization accounting — are all implemented.
//!
//! The protocol matches Fig. 9 of the paper: requester acquires the
//! (logical) lock by CASing the state word, writes the request, signals
//! "go", and spins for completion; the responder polls, executes via the
//! call table, and signals "done".
//!
//! The data plane is lock-free: payloads live in `UnsafeCell`s whose
//! exclusive access is granted by the state machine's acquire/release
//! edges (see [`slot`]’s `CallSlot`), the state word sits on its own cache
//! line, and hot-path statistics are responder-local counters flushed with
//! plain stores. For a queued, multi-responder variant see [`RingServer`].

pub mod arena;
mod bytes;
mod calltable;
mod pool;
mod ring;
mod shard;
mod slot;
mod stream;

pub use arena::{ArenaStats, HotBuf, SgList, SlabArena, INLINE_CAPACITY};
pub use bytes::{ByteBundle, ByteCallTable, ByteCaller, ByteRing};
pub use calltable::CallTable;
pub use ring::{Bundle, BundleTicket, RingRequester, RingServer, Ticket};
pub use shard::{ShardedRequester, ShardedServer};
pub use stream::{
    SgCallTable, SgRing, StreamCaller, StreamReport, DEFAULT_SEGMENT_BYTES, DEFAULT_STREAM_WINDOW,
};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::thread::JoinHandle;

use crate::config::{HotCallConfig, HotCallStats};
use crate::error::{HotCallError, Result};

use slot::{Backoff, CachePadded, CallSlot, Doze, LocalStats, StatCell, DONE, SUBMITTED};

/// How long (in poll iterations) a requester keeps waiting for `DONE`
/// after it has observed shutdown, in case the responder's final sweep is
/// still completing its call.
const SHUTDOWN_GRACE_POLLS: u32 = 100_000;

struct Shared<Req, Resp> {
    /// The mailbox: state word on its own cache line, then the payload
    /// cells (the paper's lock + go/busy flags collapse into the slot's
    /// atomic state machine).
    slot: CallSlot<Req, Resp>,
    /// Shutdown lives outside the slot state so an in-flight call's phase
    /// is never clobbered (the phase tells `Drop` which payload to free).
    shutdown: AtomicBool,
    doze: Doze,
    /// Responder-owned running totals (padded: readers never dirty the
    /// responder's line).
    stats: CachePadded<StatCell>,
    // Requester-side event counters; rare, so shared RMWs are fine.
    wakeups: AtomicU64,
    fallbacks: AtomicU64,
    /// Set by a [`MailTicket`] dropped unredeemed: the mailbox holds one
    /// call, so the flag always refers to the current occupant. The next
    /// claimant that finds the slot DONE with this flag set reaps the
    /// stale response instead of spinning forever (the single-slot analog
    /// of the ring planes' `AbandonBoard`). `Arc`ed so the non-generic
    /// ticket can carry a handle without the plane's type parameters.
    abandoned: Arc<AtomicBool>,
}

impl<Req, Resp> Shared<Req, Resp> {
    fn snapshot(&self) -> HotCallStats {
        HotCallStats {
            calls: self.stats.calls.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            idle_polls: self.stats.idle_polls.load(Ordering::Relaxed),
            busy_polls: self.stats.busy_polls.load(Ordering::Relaxed),
            // The single mailbox has no fused path: its one responder is
            // the whole plane.
            fused_runs: 0,
            fused_fallbacks: 0,
        }
    }
}

/// A running HotCalls endpoint: owns the responder thread.
///
/// Dropping the server shuts the responder down and joins it.
///
/// # Examples
///
/// ```
/// use hotcalls::rt::{CallTable, HotCallServer};
/// use hotcalls::HotCallConfig;
///
/// let mut table: CallTable<u64, u64> = CallTable::new();
/// let double = table.register(|x| x * 2);
///
/// let server = HotCallServer::spawn(table, HotCallConfig::default());
/// let requester = server.requester();
/// assert_eq!(requester.call(double, 21).unwrap(), 42);
/// ```
#[derive(Debug)]
pub struct HotCallServer<Req, Resp> {
    shared: Arc<Shared<Req, Resp>>,
    config: HotCallConfig,
    join: Option<JoinHandle<()>>,
}

impl<Req, Resp> core::fmt::Debug for Shared<Req, Resp> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Shared")
            .field("slot", &self.slot)
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .finish()
    }
}

impl<Req, Resp> HotCallServer<Req, Resp>
where
    Req: Send + 'static,
    Resp: Send + 'static,
{
    /// Spawns the responder ("On Call") thread over `table`.
    pub fn spawn(table: CallTable<Req, Resp>, config: HotCallConfig) -> Self {
        let shared = Arc::new(Shared {
            slot: CallSlot::new(),
            shutdown: AtomicBool::new(false),
            doze: Doze::new(),
            stats: CachePadded::new(StatCell::default()),
            wakeups: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            abandoned: Arc::new(AtomicBool::new(false)),
        });
        let responder_shared = Arc::clone(&shared);
        let responder_config = config;
        let join = std::thread::Builder::new()
            .name("hotcalls-responder".into())
            .spawn(move || responder_loop(responder_shared, table, responder_config))
            .expect("failed to spawn responder thread");
        HotCallServer {
            shared,
            config,
            join: Some(join),
        }
    }

    /// Creates a requester handle (cloneable, shareable across threads).
    pub fn requester(&self) -> Requester<Req, Resp> {
        Requester {
            shared: Arc::clone(&self.shared),
            config: self.config,
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> HotCallStats {
        self.shared.snapshot()
    }

    /// Stops the responder and joins it.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }
}

impl<Req, Resp> HotCallServer<Req, Resp> {
    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the responder if it sleeps.
        self.shared.doze.wake_all();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl<Req, Resp> Drop for HotCallServer<Req, Resp> {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.shutdown_inner();
        }
    }
}

fn responder_loop<Req, Resp>(
    shared: Arc<Shared<Req, Resp>>,
    table: CallTable<Req, Resp>,
    config: HotCallConfig,
) {
    let mut local = LocalStats::default();
    let mut backoff = Backoff::new();
    let mut idle_streak: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            // Final sweep: fail an in-flight request so its requester
            // unblocks instead of spinning on a dead mailbox.
            if shared.slot.state() == SUBMITTED {
                // SAFETY: SUBMITTED observed with Acquire and this thread
                // is the mailbox's only responder, so it owns servicing.
                let (_, stranded) = unsafe { shared.slot.take_request() };
                drop(stranded);
                // SAFETY: the request was taken by this thread just above.
                unsafe { shared.slot.finish(Err(HotCallError::ResponderGone)) };
            }
            local.flush(&shared.stats);
            return;
        }
        if shared.slot.state() == SUBMITTED {
            idle_streak = 0;
            backoff.reset();
            // SAFETY: SUBMITTED observed with Acquire and this thread is
            // the mailbox's only responder, so it owns servicing.
            let (id, req) = unsafe { shared.slot.take_request() };
            let result = table
                .dispatch(id, req)
                .ok_or(HotCallError::UnknownCallId(id));
            local.calls += 1;
            local.busy_polls += 1;
            // Flush before DONE: the Release below orders these stores, so
            // `stats().calls` is exact the moment the call returns.
            local.flush(&shared.stats);
            // SAFETY: this thread took the request for this call above.
            unsafe { shared.slot.finish(result) };
        } else {
            idle_streak += 1;
            local.idle_polls += 1;
            if local.idle_polls % 1024 == 0 {
                local.flush(&shared.stats);
            }
            if let Some(limit) = config.idle_polls_before_sleep {
                if idle_streak >= limit {
                    // Conserve resources: park on the condvar until a
                    // requester signals (paper §4.2).
                    local.flush(&shared.stats);
                    shared.doze.sleep_unless(|| {
                        shared.slot.state() == SUBMITTED || shared.shutdown.load(Ordering::Acquire)
                    });
                    idle_streak = 0;
                    backoff.reset();
                    continue;
                }
            }
            backoff.snooze();
        }
    }
}

/// The mailbox's in-flight call: redeem with [`Requester::wait`] or
/// [`Requester::try_wait`], or await the future minted by the async
/// submit path (`hotcalls::aio`). Non-clonable: holding it is the proof
/// of submission ownership the redeem path relies on.
///
/// Dropping the ticket unredeemed *abandons* the call: the next claimant
/// that finds the completed response reaps (and discards) it, so a
/// dropped ticket no longer wedges the mailbox.
#[derive(Debug)]
#[must_use = "redeem the response by waiting, or drop to abandon the call"]
pub struct MailTicket {
    /// The plane's abandonment flag; `None` once the ticket has been
    /// defused (redeemed through a wait path, so drop must not mark).
    abandon: Option<Arc<AtomicBool>>,
}

impl MailTicket {
    /// Takes over the redeem obligation from the drop guard: after this,
    /// dropping the ticket is inert.
    fn defuse(&mut self) {
        self.abandon = None;
    }
}

impl Drop for MailTicket {
    fn drop(&mut self) {
        if let Some(flag) = self.abandon.take() {
            flag.store(true, Ordering::Release);
        }
    }
}

/// A handle for issuing HotCalls.
#[derive(Debug)]
pub struct Requester<Req, Resp> {
    shared: Arc<Shared<Req, Resp>>,
    config: HotCallConfig,
}

impl<Req, Resp> Clone for Requester<Req, Resp> {
    fn clone(&self) -> Self {
        Requester {
            shared: Arc::clone(&self.shared),
            config: self.config,
        }
    }
}

impl<Req, Resp> Requester<Req, Resp> {
    /// Issues a call and spins until the response arrives.
    ///
    /// # Errors
    ///
    /// [`HotCallError::ResponderTimeout`] if the responder stayed busy
    /// beyond the configured retries (fall back to your slow path, as the
    /// paper prescribes); [`HotCallError::ResponderGone`] if it shut down;
    /// [`HotCallError::UnknownCallId`] for unregistered ids.
    pub fn call(&self, id: u32, req: Req) -> Result<Resp> {
        let t = self.submit(id, req)?;
        self.wait(t)
    }

    /// Publishes a call into the mailbox without waiting, returning a
    /// [`MailTicket`] to redeem the response later. The mailbox holds one
    /// call, so pipelining depth is 1 — but the requester is free to do
    /// useful work (or issue calls on *other* channels) while the
    /// responder executes. For deep pipelines use
    /// [`RingRequester::submit`].
    ///
    /// # Errors
    ///
    /// As [`Requester::call`]'s claim phase.
    pub fn submit(&self, id: u32, req: Req) -> Result<MailTicket> {
        self.claim_mailbox()?;
        Ok(self.exchange(id, req, false))
    }

    /// [`Requester::submit`] with the mailbox's waker cell armed: the
    /// responder (or the shutdown sweep) fires a waker registered against
    /// the returned ticket — the `hotcalls::aio` completion hook on the
    /// single-slot plane.
    pub(crate) fn submit_async(&self, id: u32, req: Req) -> Result<MailTicket> {
        self.claim_mailbox()?;
        Ok(self.exchange(id, req, true))
    }

    /// The future-side poll: redeem if complete, otherwise register
    /// `cx`'s waker with the mailbox slot and stay pending. Takes the
    /// ticket out of `ticket` exactly when it returns `Ready`.
    pub(crate) fn poll_mail(
        &self,
        ticket: &mut Option<MailTicket>,
        cx: &mut Context<'_>,
    ) -> Poll<Result<Resp>> {
        assert!(ticket.is_some(), "future polled after completion");
        let slot = &self.shared.slot;
        if slot.state() == DONE || slot.register_waker(cx.waker()) {
            ticket.take().expect("present above").defuse();
            // SAFETY: holding the (non-clonable) ticket proves this caller
            // submitted the in-flight call; DONE observed with Acquire.
            return Poll::Ready(unsafe { slot.redeem() });
        }
        if self.shared.shutdown.load(Ordering::Acquire) {
            // The responder's final sweep may have completed the call
            // between the registration above and the flag load.
            if slot.state() == DONE {
                ticket.take().expect("present above").defuse();
                // SAFETY: as above.
                return Poll::Ready(unsafe { slot.redeem() });
            }
            // Abandon the call (the drop marks it reapable) and surface
            // the shutdown.
            drop(ticket.take());
            return Poll::Ready(Err(HotCallError::ResponderGone));
        }
        Poll::Pending
    }

    /// Waits for the in-flight call and returns its response.
    ///
    /// # Errors
    ///
    /// [`HotCallError::ResponderGone`] if the server shut down first, or
    /// the handler's own error.
    pub fn wait(&self, mut ticket: MailTicket) -> Result<Resp> {
        ticket.defuse();
        // Spin for completion with escalating backoff.
        let mut backoff = Backoff::new();
        let mut grace: u32 = 0;
        loop {
            match self.shared.slot.state() {
                DONE => break,
                _ => {
                    if self.shared.shutdown.load(Ordering::Acquire) {
                        // The responder's final sweep fails SUBMITTED
                        // calls; if ours raced past the sweep, give up
                        // after a bounded grace and strand the slot
                        // (Drop frees the payload with the server).
                        grace += 1;
                        if grace > SHUTDOWN_GRACE_POLLS {
                            return Err(HotCallError::ResponderGone);
                        }
                    }
                    backoff.snooze();
                }
            }
        }
        // SAFETY: holding the (non-clonable) ticket proves this caller
        // submitted the in-flight call; DONE observed with Acquire grants
        // exclusive access to take the response.
        unsafe { self.shared.slot.redeem() }
    }

    /// Redeems the response if the call already completed, or hands the
    /// ticket back untouched.
    pub fn try_wait(&self, ticket: MailTicket) -> core::result::Result<Result<Resp>, MailTicket> {
        if self.shared.slot.state() != DONE {
            return Err(ticket);
        }
        let mut ticket = ticket;
        ticket.defuse();
        // SAFETY: as in `wait` — the ticket proves submission ownership
        // and DONE was observed with Acquire.
        Ok(unsafe { self.shared.slot.redeem() })
    }

    /// Claims the mailbox with bounded retries ("Preventing starvation").
    /// On success the caller owns the request cell and **must** follow up
    /// with [`Requester::exchange`].
    fn claim_mailbox(&self) -> Result<()> {
        let mut backoff = Backoff::new();
        for _ in 0..self.config.timeout_retries {
            for _ in 0..self.config.spins_per_retry {
                if self.shared.slot.try_claim() {
                    return Ok(());
                }
                // A completed call whose ticket was dropped unredeemed
                // blocks the claim forever — reap it on the dropper's
                // behalf. DONE is checked before the flag swap, and only
                // one racing claimant wins the swap, so a live call is
                // never redeemed out from under its waiter.
                if self.shared.slot.state() == DONE
                    && self.shared.abandoned.swap(false, Ordering::AcqRel)
                {
                    // SAFETY: the swap transferred the dropping
                    // submitter's redeem ownership to this thread, and
                    // DONE was observed with Acquire above.
                    drop(unsafe { self.shared.slot.redeem() });
                    continue;
                }
                if self.shared.shutdown.load(Ordering::Acquire) {
                    return Err(HotCallError::ResponderGone);
                }
                core::hint::spin_loop();
            }
            backoff.snooze();
        }
        self.shared.fallbacks.fetch_add(1, Ordering::Relaxed);
        Err(HotCallError::ResponderTimeout {
            retries: self.config.timeout_retries,
        })
    }

    /// Publishes a request into the already-claimed mailbox and returns
    /// the in-flight ticket. With `arm`, the slot's waker cell is armed
    /// before publish so the responder fires the future's waker.
    fn exchange(&self, id: u32, req: Req, arm: bool) -> MailTicket {
        if arm {
            // Before publish: the SUBMITTED Release store carries the
            // armed flag to the responder, so its wake cannot be missed.
            self.shared.slot.arm_async();
        }
        // SAFETY: the caller won `claim_mailbox`'s EMPTY→CLAIMED CAS,
        // which grants this thread exclusive write access to the request
        // cell.
        unsafe { self.shared.slot.publish(id, req) };
        // Wake a sleeping responder (ordered after the SUBMITTED store).
        if self.shared.doze.wake() {
            self.shared.wakeups.fetch_add(1, Ordering::Relaxed);
        }
        MailTicket {
            abandon: Some(Arc::clone(&self.shared.abandoned)),
        }
    }

    /// Issues a call, running `fallback` locally if the fast path times
    /// out — the paper's SDK-call fallback, generalized.
    ///
    /// The request is moved into the mailbox only after the claim
    /// succeeds, so the hot path never clones: on timeout the original
    /// request goes to `fallback` as-is. (`Req: Clone` is not required.)
    pub fn call_with_fallback<F>(&self, id: u32, req: Req, fallback: F) -> Result<Resp>
    where
        F: FnOnce(Req) -> Resp,
    {
        match self.claim_mailbox() {
            Ok(()) => {
                let t = self.exchange(id, req, false);
                self.wait(t)
            }
            Err(HotCallError::ResponderTimeout { .. }) => Ok(fallback(req)),
            Err(e) => Err(e),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> HotCallStats {
        self.shared.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn arith_table() -> (CallTable<u64, u64>, u32, u32) {
        let mut t = CallTable::new();
        let inc = t.register(|x| x + 1);
        let dbl = t.register(|x| x * 2);
        (t, inc, dbl)
    }

    #[test]
    fn roundtrip_returns_handler_result() {
        let (t, inc, dbl) = arith_table();
        let server = HotCallServer::spawn(t, HotCallConfig::default());
        let r = server.requester();
        assert_eq!(r.call(inc, 41).unwrap(), 42);
        assert_eq!(r.call(dbl, 21).unwrap(), 42);
        assert_eq!(server.stats().calls, 2);
    }

    #[test]
    fn submit_wait_split_roundtrips() {
        let (t, inc, _) = arith_table();
        let server = HotCallServer::spawn(t, HotCallConfig::default());
        let r = server.requester();
        let ticket = r.submit(inc, 41).unwrap();
        // The requester is free to do local work here while the responder
        // executes; the ticket redeems the response later.
        assert_eq!(r.wait(ticket).unwrap(), 42);
        assert_eq!(server.stats().calls, 1);
    }

    #[test]
    fn try_wait_returns_ticket_until_done() {
        let mut t: CallTable<u64, u64> = CallTable::new();
        let slow = t.register(|x| {
            std::thread::sleep(Duration::from_millis(30));
            x + 1
        });
        let server = HotCallServer::spawn(t, HotCallConfig::default());
        let r = server.requester();
        let mut ticket = r.submit(slow, 1).unwrap();
        let mut polls = 0u32;
        let resp = loop {
            match r.try_wait(ticket) {
                Ok(resp) => break resp.unwrap(),
                Err(t) => {
                    ticket = t;
                    polls += 1;
                    std::thread::yield_now();
                }
            }
        };
        assert_eq!(resp, 2);
        assert!(polls > 0, "a 30ms handler cannot complete instantly");
    }

    #[test]
    fn unknown_id_is_an_error_not_a_hang() {
        let (t, _, _) = arith_table();
        let server = HotCallServer::spawn(t, HotCallConfig::default());
        let r = server.requester();
        assert!(matches!(
            r.call(99, 1),
            Err(HotCallError::UnknownCallId(99))
        ));
    }

    #[test]
    fn many_sequential_calls_are_exactly_once() {
        let (t, inc, _) = arith_table();
        let server = HotCallServer::spawn(t, HotCallConfig::default());
        let r = server.requester();
        for i in 0..10_000u64 {
            assert_eq!(r.call(inc, i).unwrap(), i + 1);
        }
        assert_eq!(server.stats().calls, 10_000);
    }

    #[test]
    fn concurrent_requesters_serialize_correctly() {
        let mut t: CallTable<u64, u64> = CallTable::new();
        let echo = t.register(|x| x);
        let server = HotCallServer::spawn(
            t,
            HotCallConfig {
                timeout_retries: 1_000_000,
                spins_per_retry: 64,
                ..HotCallConfig::default()
            },
        );
        let mut handles = Vec::new();
        for th in 0..4u64 {
            let r = server.requester();
            handles.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                for i in 0..500u64 {
                    sum += r.call(echo, th * 10_000 + i).unwrap();
                }
                sum
            }));
        }
        let mut total = 0u64;
        for h in handles {
            total += h.join().unwrap();
        }
        let expected: u64 = (0..4u64)
            .map(|th| (0..500u64).map(|i| th * 10_000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expected);
        assert_eq!(server.stats().calls, 2_000);
    }

    #[test]
    fn shutdown_unblocks_requesters() {
        let (t, inc, _) = arith_table();
        let server = HotCallServer::spawn(t, HotCallConfig::default());
        let r = server.requester();
        assert_eq!(r.call(inc, 1).unwrap(), 2);
        server.shutdown();
        assert!(matches!(r.call(inc, 1), Err(HotCallError::ResponderGone)));
    }

    #[test]
    fn idle_sleep_and_wakeup() {
        let (t, inc, _) = arith_table();
        let server = HotCallServer::spawn(t, HotCallConfig::with_idle_sleep(1_000));
        let r = server.requester();
        assert_eq!(r.call(inc, 1).unwrap(), 2);
        // Give the responder time to fall asleep.
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.shared.doze.sleepers.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "responder never slept");
            std::thread::yield_now();
        }
        // A call must still succeed (and wake it).
        assert_eq!(r.call(inc, 10).unwrap(), 11);
        assert!(server.stats().wakeups >= 1);
    }

    #[test]
    fn fallback_runs_locally_on_timeout() {
        let mut t: CallTable<u64, u64> = CallTable::new();
        let slow = t.register(|x| {
            std::thread::sleep(Duration::from_millis(200));
            x
        });
        let server = HotCallServer::spawn(
            t,
            HotCallConfig {
                timeout_retries: 2,
                spins_per_retry: 4,
                ..HotCallConfig::default()
            },
        );
        let r1 = server.requester();
        let r2 = server.requester();
        // Occupy the responder with a slow call from another thread.
        let blocker = std::thread::spawn(move || r1.call(slow, 7).unwrap());
        std::thread::sleep(Duration::from_millis(50));
        // The second requester times out and falls back locally.
        let v = r2.call_with_fallback(slow, 5, |x| x + 100).unwrap();
        assert_eq!(v, 105);
        assert!(r2.stats().fallbacks >= 1);
        assert_eq!(blocker.join().unwrap(), 7);
    }

    #[test]
    fn utilization_reflects_load() {
        let (t, inc, _) = arith_table();
        let server = HotCallServer::spawn(t, HotCallConfig::default());
        let r = server.requester();
        for i in 0..100 {
            r.call(inc, i).unwrap();
        }
        let stats = server.stats();
        assert!(stats.busy_polls >= 100);
        assert!(stats.utilization() > 0.0 && stats.utilization() <= 1.0);
    }

    #[test]
    fn shutdown_with_inflight_call_frees_payloads() {
        // A request that is stranded mid-flight at shutdown must be failed
        // (or completed), and its heap payload freed by the slot's Drop.
        for _ in 0..8 {
            let mut t: CallTable<Vec<u8>, u64> = CallTable::new();
            let slow = t.register(|v: Vec<u8>| {
                std::thread::sleep(Duration::from_millis(20));
                v.len() as u64
            });
            let server = HotCallServer::spawn(
                t,
                HotCallConfig {
                    timeout_retries: 1_000_000,
                    spins_per_retry: 64,
                    ..HotCallConfig::default()
                },
            );
            let r = server.requester();
            let h = std::thread::spawn(move || r.call(slow, vec![7u8; 4096]));
            // Race shutdown against the in-flight call.
            server.shutdown();
            match h.join().unwrap() {
                Ok(n) => assert_eq!(n, 4096),
                Err(HotCallError::ResponderGone) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
}
