//! The threaded HotCalls runtime: a real switchless-call channel.
//!
//! This is the artifact a downstream user adopts: a dedicated responder
//! thread polls a shared mailbox in a spin loop (`PAUSE` hints, no
//! syscalls), requesters publish work through an atomic state machine, and
//! the paper's practical considerations — timeout fallback, idle sleep on a
//! condition variable, utilization accounting — are all implemented.
//!
//! The protocol matches Fig. 9 of the paper: requester acquires the
//! (logical) lock by CASing the state word, writes the request, signals
//! "go", and spins for completion; the responder polls, executes via the
//! call table, and signals "done".

mod calltable;
mod ring;

pub use calltable::CallTable;
pub use ring::{RingRequester, RingServer, Ticket};

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::config::{HotCallConfig, HotCallStats};
use crate::error::{HotCallError, Result};

const IDLE: u8 = 0;
const CLAIMED: u8 = 1;
const REQUESTED: u8 = 2;
const DONE: u8 = 3;
const SHUTDOWN: u8 = 4;

struct Shared<Req, Resp> {
    /// Mailbox state word (the paper's lock + go/busy flags collapse into
    /// one atomic state machine).
    state: AtomicU8,
    /// Request slot: (call_ID, payload). The parking_lot mutex is never
    /// contended — the state machine serializes access — so locking it is
    /// a single uncontended CAS, not a syscall.
    req_slot: Mutex<Option<(u32, Req)>>,
    /// Response slot.
    resp_slot: Mutex<Option<Result<Resp>>>,
    /// Set while the responder is parked on the condvar.
    sleeping: AtomicU8,
    wake_lock: Mutex<bool>,
    wake_cv: Condvar,
    // Statistics.
    calls: AtomicU64,
    wakeups: AtomicU64,
    idle_polls: AtomicU64,
    busy_polls: AtomicU64,
    fallbacks: AtomicU64,
}

impl<Req, Resp> Shared<Req, Resp> {
    fn snapshot(&self) -> HotCallStats {
        HotCallStats {
            calls: self.calls.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            idle_polls: self.idle_polls.load(Ordering::Relaxed),
            busy_polls: self.busy_polls.load(Ordering::Relaxed),
        }
    }
}

/// A running HotCalls endpoint: owns the responder thread.
///
/// Dropping the server shuts the responder down and joins it.
///
/// # Examples
///
/// ```
/// use hotcalls::rt::{CallTable, HotCallServer};
/// use hotcalls::HotCallConfig;
///
/// let mut table: CallTable<u64, u64> = CallTable::new();
/// let double = table.register(|x| x * 2);
///
/// let server = HotCallServer::spawn(table, HotCallConfig::default());
/// let requester = server.requester();
/// assert_eq!(requester.call(double, 21).unwrap(), 42);
/// ```
#[derive(Debug)]
pub struct HotCallServer<Req, Resp> {
    shared: Arc<Shared<Req, Resp>>,
    config: HotCallConfig,
    join: Option<JoinHandle<()>>,
}

impl<Req, Resp> core::fmt::Debug for Shared<Req, Resp> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Shared")
            .field("state", &self.state.load(Ordering::Relaxed))
            .finish()
    }
}

impl<Req, Resp> HotCallServer<Req, Resp>
where
    Req: Send + 'static,
    Resp: Send + 'static,
{
    /// Spawns the responder ("On Call") thread over `table`.
    pub fn spawn(table: CallTable<Req, Resp>, config: HotCallConfig) -> Self {
        let shared = Arc::new(Shared {
            state: AtomicU8::new(IDLE),
            req_slot: Mutex::new(None),
            resp_slot: Mutex::new(None),
            sleeping: AtomicU8::new(0),
            wake_lock: Mutex::new(false),
            wake_cv: Condvar::new(),
            calls: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            idle_polls: AtomicU64::new(0),
            busy_polls: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        });
        let responder_shared = Arc::clone(&shared);
        let responder_config = config;
        let join = std::thread::Builder::new()
            .name("hotcalls-responder".into())
            .spawn(move || responder_loop(responder_shared, table, responder_config))
            .expect("failed to spawn responder thread");
        HotCallServer {
            shared,
            config,
            join: Some(join),
        }
    }

    /// Creates a requester handle (cloneable, shareable across threads).
    pub fn requester(&self) -> Requester<Req, Resp> {
        Requester {
            shared: Arc::clone(&self.shared),
            config: self.config,
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> HotCallStats {
        self.shared.snapshot()
    }

    /// Stops the responder and joins it.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }
}

impl<Req, Resp> HotCallServer<Req, Resp> {
    fn shutdown_inner(&mut self) {
        self.shared.state.store(SHUTDOWN, Ordering::Release);
        // Wake the responder if it sleeps.
        {
            let mut flag = self.shared.wake_lock.lock();
            *flag = true;
            self.shared.wake_cv.notify_all();
        }
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl<Req, Resp> Drop for HotCallServer<Req, Resp> {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.shutdown_inner();
        }
    }
}

fn responder_loop<Req, Resp>(
    shared: Arc<Shared<Req, Resp>>,
    table: CallTable<Req, Resp>,
    config: HotCallConfig,
) {
    let mut idle_count: u64 = 0;
    loop {
        match shared.state.load(Ordering::Acquire) {
            SHUTDOWN => return,
            REQUESTED => {
                idle_count = 0;
                shared.busy_polls.fetch_add(1, Ordering::Relaxed);
                let (id, req) = shared
                    .req_slot
                    .lock()
                    .take()
                    .expect("REQUESTED implies a request in the slot");
                let result = table
                    .dispatch(id, req)
                    .ok_or(HotCallError::UnknownCallId(id));
                *shared.resp_slot.lock() = Some(result);
                shared.calls.fetch_add(1, Ordering::Relaxed);
                shared.state.store(DONE, Ordering::Release);
            }
            _ => {
                idle_count += 1;
                shared.idle_polls.fetch_add(1, Ordering::Relaxed);
                if let Some(limit) = config.idle_polls_before_sleep {
                    if idle_count >= limit {
                        // Conserve resources: park on the condvar until a
                        // requester signals (paper §4.2).
                        shared.sleeping.store(1, Ordering::Release);
                        let mut flag = shared.wake_lock.lock();
                        // Lost-wakeup guard: re-check state under the lock.
                        while !*flag
                            && !matches!(
                                shared.state.load(Ordering::Acquire),
                                REQUESTED | SHUTDOWN
                            )
                        {
                            shared.wake_cv.wait(&mut flag);
                        }
                        *flag = false;
                        drop(flag);
                        shared.sleeping.store(0, Ordering::Release);
                        idle_count = 0;
                        continue;
                    }
                }
                // The PAUSE of the paper's polling loop. On a dedicated
                // core this would be a pure `PAUSE` spin; yielding
                // periodically keeps the protocol live when the OS
                // schedules requester and responder on shared cores.
                core::hint::spin_loop();
                if idle_count % 64 == 0 {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// A handle for issuing HotCalls.
#[derive(Debug)]
pub struct Requester<Req, Resp> {
    shared: Arc<Shared<Req, Resp>>,
    config: HotCallConfig,
}

impl<Req, Resp> Clone for Requester<Req, Resp> {
    fn clone(&self) -> Self {
        Requester {
            shared: Arc::clone(&self.shared),
            config: self.config,
        }
    }
}

impl<Req, Resp> Requester<Req, Resp> {
    /// Issues a call and spins until the response arrives.
    ///
    /// # Errors
    ///
    /// [`HotCallError::ResponderTimeout`] if the responder stayed busy
    /// beyond the configured retries (fall back to your slow path, as the
    /// paper prescribes); [`HotCallError::ResponderGone`] if it shut down;
    /// [`HotCallError::UnknownCallId`] for unregistered ids.
    pub fn call(&self, id: u32, req: Req) -> Result<Resp> {
        // Claim the mailbox (bounded retries — "Preventing starvation").
        let mut claimed = false;
        'retries: for _ in 0..self.config.timeout_retries {
            for _ in 0..self.config.spins_per_retry {
                match self.shared.state.compare_exchange(
                    IDLE,
                    CLAIMED,
                    Ordering::Acquire,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        claimed = true;
                        break 'retries;
                    }
                    Err(SHUTDOWN) => return Err(HotCallError::ResponderGone),
                    Err(_) => core::hint::spin_loop(),
                }
            }
            std::thread::yield_now();
        }
        if !claimed {
            self.shared.fallbacks.fetch_add(1, Ordering::Relaxed);
            return Err(HotCallError::ResponderTimeout {
                retries: self.config.timeout_retries,
            });
        }

        *self.shared.req_slot.lock() = Some((id, req));
        self.shared.state.store(REQUESTED, Ordering::Release);

        // Wake a sleeping responder.
        if self.shared.sleeping.load(Ordering::Acquire) == 1 {
            let mut flag = self.shared.wake_lock.lock();
            *flag = true;
            self.shared.wake_cv.notify_one();
            self.shared.wakeups.fetch_add(1, Ordering::Relaxed);
        }

        // Spin for completion (with periodic yields for shared-core
        // schedulers; a dedicated-core deployment would pure-spin).
        let mut spins: u32 = 0;
        loop {
            match self.shared.state.load(Ordering::Acquire) {
                DONE => break,
                SHUTDOWN => return Err(HotCallError::ResponderGone),
                _ => {
                    core::hint::spin_loop();
                    spins = spins.wrapping_add(1);
                    if spins % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            }
        }
        let result = self
            .shared
            .resp_slot
            .lock()
            .take()
            .expect("DONE implies a response in the slot");
        self.shared.state.store(IDLE, Ordering::Release);
        result
    }

    /// Issues a call, running `fallback` locally if the fast path times
    /// out — the paper's SDK-call fallback, generalized.
    pub fn call_with_fallback<F>(&self, id: u32, req: Req, fallback: F) -> Result<Resp>
    where
        F: FnOnce(Req) -> Resp,
        Req: Clone,
    {
        match self.call(id, req.clone()) {
            Err(HotCallError::ResponderTimeout { .. }) => Ok(fallback(req)),
            other => other,
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> HotCallStats {
        self.shared.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn arith_table() -> (CallTable<u64, u64>, u32, u32) {
        let mut t = CallTable::new();
        let inc = t.register(|x| x + 1);
        let dbl = t.register(|x| x * 2);
        (t, inc, dbl)
    }

    #[test]
    fn roundtrip_returns_handler_result() {
        let (t, inc, dbl) = arith_table();
        let server = HotCallServer::spawn(t, HotCallConfig::default());
        let r = server.requester();
        assert_eq!(r.call(inc, 41).unwrap(), 42);
        assert_eq!(r.call(dbl, 21).unwrap(), 42);
        assert_eq!(server.stats().calls, 2);
    }

    #[test]
    fn unknown_id_is_an_error_not_a_hang() {
        let (t, _, _) = arith_table();
        let server = HotCallServer::spawn(t, HotCallConfig::default());
        let r = server.requester();
        assert!(matches!(r.call(99, 1), Err(HotCallError::UnknownCallId(99))));
    }

    #[test]
    fn many_sequential_calls_are_exactly_once() {
        let (t, inc, _) = arith_table();
        let server = HotCallServer::spawn(t, HotCallConfig::default());
        let r = server.requester();
        for i in 0..10_000u64 {
            assert_eq!(r.call(inc, i).unwrap(), i + 1);
        }
        assert_eq!(server.stats().calls, 10_000);
    }

    #[test]
    fn concurrent_requesters_serialize_correctly() {
        let mut t: CallTable<u64, u64> = CallTable::new();
        let echo = t.register(|x| x);
        let server = HotCallServer::spawn(
            t,
            HotCallConfig {
                timeout_retries: 1_000_000,
                spins_per_retry: 64,
                idle_polls_before_sleep: None,
            },
        );
        let mut handles = Vec::new();
        for th in 0..4u64 {
            let r = server.requester();
            handles.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                for i in 0..500u64 {
                    sum += r.call(echo, th * 10_000 + i).unwrap();
                }
                sum
            }));
        }
        let mut total = 0u64;
        for h in handles {
            total += h.join().unwrap();
        }
        let expected: u64 = (0..4u64)
            .map(|th| (0..500u64).map(|i| th * 10_000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expected);
        assert_eq!(server.stats().calls, 2_000);
    }

    #[test]
    fn shutdown_unblocks_requesters() {
        let (t, inc, _) = arith_table();
        let server = HotCallServer::spawn(t, HotCallConfig::default());
        let r = server.requester();
        assert_eq!(r.call(inc, 1).unwrap(), 2);
        server.shutdown();
        assert!(matches!(r.call(inc, 1), Err(HotCallError::ResponderGone)));
    }

    #[test]
    fn idle_sleep_and_wakeup() {
        let (t, inc, _) = arith_table();
        let server = HotCallServer::spawn(t, HotCallConfig::with_idle_sleep(1_000));
        let r = server.requester();
        assert_eq!(r.call(inc, 1).unwrap(), 2);
        // Give the responder time to fall asleep.
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.shared.sleeping.load(Ordering::Acquire) == 0 {
            assert!(Instant::now() < deadline, "responder never slept");
            std::thread::yield_now();
        }
        // A call must still succeed (and wake it).
        assert_eq!(r.call(inc, 10).unwrap(), 11);
        assert!(server.stats().wakeups >= 1);
    }

    #[test]
    fn fallback_runs_locally_on_timeout() {
        let mut t: CallTable<u64, u64> = CallTable::new();
        let slow = t.register(|x| {
            std::thread::sleep(Duration::from_millis(200));
            x
        });
        let server = HotCallServer::spawn(
            t,
            HotCallConfig {
                timeout_retries: 2,
                spins_per_retry: 4,
                idle_polls_before_sleep: None,
            },
        );
        let r1 = server.requester();
        let r2 = server.requester();
        // Occupy the responder with a slow call from another thread.
        let blocker = std::thread::spawn(move || r1.call(slow, 7).unwrap());
        std::thread::sleep(Duration::from_millis(50));
        // The second requester times out and falls back locally.
        let v = r2.call_with_fallback(slow, 5, |x| x + 100).unwrap();
        assert_eq!(v, 105);
        assert!(r2.stats().fallbacks >= 1);
        assert_eq!(blocker.join().unwrap(), 7);
    }

    #[test]
    fn utilization_reflects_load() {
        let (t, inc, _) = arith_table();
        let server = HotCallServer::spawn(t, HotCallConfig::default());
        let r = server.requester();
        for i in 0..100 {
            r.call(inc, i).unwrap();
        }
        let stats = server.stats();
        assert!(stats.busy_polls >= 100);
        assert!(stats.utilization() > 0.0 && stats.utilization() <= 1.0);
    }
}
