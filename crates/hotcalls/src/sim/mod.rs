//! Simulated HotCalls: the paper's architecture (Fig. 9) in the cycle
//! model.
//!
//! A *requester* and a *responder* communicate through a spin-lock-guarded
//! mailbox in **un-encrypted shared memory**: a lock word, a
//! responder-busy/go flag, a `call_ID`, and a `*data` pointer to the
//! marshalled parameters. The responder is a dedicated logical core that
//! polls the mailbox in a `PAUSE` loop. No `EENTER`/`EEXIT` happens on the
//! hot path — that is the entire trick, and why a HotCall costs ~620 cycles
//! where an SDK call costs 8,200+.
//!
//! Marshalling reuses [`sgx_sdk::marshal`] — literally the SDK's staging
//! code, as the paper's implementation does (§4.2, §5).

use sgx_sdk::marshal::{stage, unstage, CallerSide, StagingArea};
use sgx_sdk::sync::{sim_spin_acquire, sim_spin_release};
use sgx_sdk::{BufArg, CallArgs, EnclaveCtx};
use sgx_sim::{Addr, Cycles, Machine};

use crate::config::{HotCallConfig, HotCallStats};
use crate::error::Result;
use crate::telemetry::trace;

/// Bytes of shared (un-encrypted) memory reserved for marshalled data.
const SHARED_BYTES: u64 = 1 << 20;

/// Bytes of secure scratch the in-enclave responder stages hot-ecall
/// buffers into.
const SECURE_BYTES: u64 = 1 << 19;

/// Cost of signalling the sleeping responder's condition variable before a
/// request (a futex wake issued from the requester's side).
const WAKE_COST: u64 = 1_500;

/// Core cost of the responder noticing + dispatching a request once the
/// mailbox is read (call-table index check and jump).
const DISPATCH_COST: u64 = 70;

/// Cost of a cross-core coherence transfer when one side reads a line the
/// other just wrote (the mailbox ping-pongs between two L1 caches).
const COHERENCE_TRANSFER: u64 = 60;

/// Which side of the boundary requests the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// HotEcall: untrusted requester, in-enclave responder thread.
    Ecall,
    /// HotOcall: trusted requester, untrusted responder thread.
    Ocall,
}

/// A simulated HotCalls channel bound to an [`EnclaveCtx`].
///
/// # Examples
///
/// ```
/// use sgx_sim::{Machine, SimConfig, EnclaveBuildOptions};
/// use sgx_sdk::edl::parse_edl;
/// use sgx_sdk::{EnclaveCtx, MarshalOptions};
/// use hotcalls::sim::SimHotCalls;
/// use hotcalls::HotCallConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = Machine::new(SimConfig::default());
/// let eid = m.build_enclave(EnclaveBuildOptions::default())?;
/// let edl = parse_edl("enclave { untrusted { void ocall_tick(); }; };")?;
/// let mut ctx = EnclaveCtx::new(&mut m, eid, &edl, MarshalOptions::default())?;
/// let mut hot = SimHotCalls::new(&mut m, &ctx, HotCallConfig::default())?;
///
/// ctx.enter_main(&mut m)?;
/// hot.hot_ocall(&mut m, &mut ctx, "ocall_tick", &[], |_, _, _| Ok(()))?;
/// assert_eq!(hot.stats().calls, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SimHotCalls {
    /// The spin lock guarding the mailbox (shared, un-encrypted).
    lock_line: Addr,
    /// Mailbox line: responder-busy flag, go flag, call_ID, *data.
    mailbox_line: Addr,
    /// Shared data area for marshalled parameters.
    shared_area: Addr,
    /// Secure scratch the hot-ecall responder stages into.
    secure_area: Addr,
    config: HotCallConfig,
    stats: HotCallStats,
    /// Virtual time the last call completed (drives idle-sleep modelling).
    last_call_end: Cycles,
    /// Probability a retry finds the responder busy (models contention from
    /// other requesters sharing the responder; 0 for a dedicated pair).
    contention: f64,
}

impl SimHotCalls {
    /// Allocates the shared mailbox, data area, and the responder's secure
    /// scratch inside `ctx`'s enclave.
    ///
    /// # Errors
    ///
    /// Fails if the enclave heap cannot hold the secure scratch.
    pub fn new(m: &mut Machine, ctx: &EnclaveCtx, config: HotCallConfig) -> Result<Self> {
        let lock_line = m.alloc_untrusted(64, 64);
        let mailbox_line = m.alloc_untrusted(64, 64);
        let shared_area = m.alloc_untrusted(SHARED_BYTES, 4096);
        let secure_area = m.alloc_enclave_heap(ctx.eid, SECURE_BYTES, 4096)?;
        Ok(SimHotCalls {
            lock_line,
            mailbox_line,
            shared_area,
            secure_area,
            config,
            stats: HotCallStats::default(),
            last_call_end: Cycles::ZERO,
            contention: 0.0,
        })
    }

    /// Statistics so far.
    pub fn stats(&self) -> HotCallStats {
        self.stats
    }

    /// Replaces the configuration (e.g. enabling idle sleep between runs).
    pub fn set_config(&mut self, config: HotCallConfig) {
        self.config = config;
    }

    /// Sets the probability that an availability check finds the responder
    /// busy, to model several requesters sharing one responder.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn set_contention(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.contention = p;
    }

    /// A HotOcall: the enclave requests untrusted work without leaving the
    /// enclave (paper Fig. 9). Falls back to the SDK ocall on timeout.
    ///
    /// # Errors
    ///
    /// Fails on unknown functions, marshalling violations, or if the
    /// fallback SDK path fails.
    pub fn hot_ocall<R, F>(
        &mut self,
        m: &mut Machine,
        ctx: &mut EnclaveCtx,
        name: &str,
        bufs: &[BufArg],
        body: F,
    ) -> Result<R>
    where
        F: FnOnce(&mut EnclaveCtx, &mut Machine, &CallArgs) -> sgx_sdk::Result<R>,
    {
        self.call(m, ctx, name, bufs, body, Kind::Ocall)
    }

    /// A HotEcall: untrusted code requests trusted work; a parked enclave
    /// thread polls the mailbox and executes it without an `EENTER`.
    ///
    /// # Errors
    ///
    /// As [`SimHotCalls::hot_ocall`].
    pub fn hot_ecall<R, F>(
        &mut self,
        m: &mut Machine,
        ctx: &mut EnclaveCtx,
        name: &str,
        bufs: &[BufArg],
        body: F,
    ) -> Result<R>
    where
        F: FnOnce(&mut EnclaveCtx, &mut Machine, &CallArgs) -> sgx_sdk::Result<R>,
    {
        self.call(m, ctx, name, bufs, body, Kind::Ecall)
    }

    fn call<R, F>(
        &mut self,
        m: &mut Machine,
        ctx: &mut EnclaveCtx,
        name: &str,
        bufs: &[BufArg],
        body: F,
        kind: Kind,
    ) -> Result<R>
    where
        F: FnOnce(&mut EnclaveCtx, &mut Machine, &CallArgs) -> sgx_sdk::Result<R>,
    {
        let start = m.now();
        let plan = match kind {
            Kind::Ecall => ctx.proxies().ecall(name)?.clone(),
            Kind::Ocall => ctx.proxies().ocall(name)?.clone(),
        };

        self.wake_if_sleeping(m);

        if !self.acquire_responder(m)? {
            // Timeout: fall back to the regular SDK call (§4.2).
            self.stats.fallbacks += 1;
            trace("sim_fallback", self.stats.fallbacks, m.now().get());
            return match kind {
                Kind::Ecall => ctx.ecall(m, name, bufs, body).map_err(Into::into),
                Kind::Ocall => ctx.ocall(m, name, bufs, body).map_err(Into::into),
            };
        }

        let result = match kind {
            Kind::Ocall => {
                // Trusted requester stages data into shared memory before
                // signalling — the SDK's own staging code.
                let mut area = StagingArea::untrusted(m, self.shared_area, SHARED_BYTES);
                area.reserve(plan.struct_bytes);
                m.write(self.shared_area, plan.struct_bytes)?;
                let (args, staged) = stage(
                    m,
                    &plan,
                    bufs,
                    &mut area,
                    CallerSide::Trusted,
                    ctx.options(),
                )?;
                self.publish(m)?;
                self.responder_pickup(m)?;
                let r = body(ctx, m, &args);
                unstage(m, &staged)?;
                self.complete(m)?;
                r
            }
            Kind::Ecall => {
                // Untrusted requester publishes the raw pointers; the
                // in-enclave responder runs the trusted proxy: boundary
                // checks + secure staging, exactly as an SDK ecall would.
                m.write(self.shared_area, plan.struct_bytes)?;
                self.publish(m)?;
                self.responder_pickup(m)?;
                m.read(self.shared_area, plan.struct_bytes)?;
                let mut area = StagingArea::secure(m, self.secure_area, SECURE_BYTES);
                let (args, staged) = stage(
                    m,
                    &plan,
                    bufs,
                    &mut area,
                    CallerSide::Untrusted,
                    ctx.options(),
                )?;
                let r = body(ctx, m, &args);
                unstage(m, &staged)?;
                self.complete(m)?;
                r
            }
        };

        self.stats.calls += 1;
        self.last_call_end = m.now();
        // Feed the SDK's per-name edge-call ledger, as the regular paths
        // do — the census derives Table 2's cycles-per-call from it, and
        // hot calls would otherwise be invisible there. The fallback path
        // above records through the SDK call itself.
        match kind {
            Kind::Ecall => ctx.record_hot_ecall(name, m.now() - start),
            Kind::Ocall => ctx.record_hot_ocall(name, m.now() - start),
        }
        result.map_err(Into::into)
    }

    /// Signals the sleeping responder if the idle timeout elapsed (§4.2,
    /// "Conserving resources at idle times").
    fn wake_if_sleeping(&mut self, m: &mut Machine) {
        if let Some(polls) = self.config.idle_polls_before_sleep {
            let asleep_after = Cycles::new(polls * self.poll_interval(m));
            if self.last_call_end > Cycles::ZERO
                && m.now().saturating_sub(self.last_call_end) > asleep_after
            {
                m.charge(Cycles::new(WAKE_COST));
                self.stats.wakeups += 1;
                trace("sim_wake", self.stats.wakeups, m.now().get());
            }
        }
    }

    /// The availability loop with timeout (§4.2, "Preventing starvation").
    /// Returns `false` when every retry found the responder busy.
    fn acquire_responder(&mut self, m: &mut Machine) -> Result<bool> {
        for _retry in 0..self.config.timeout_retries {
            sim_spin_acquire(m, self.lock_line)?;
            m.read(self.mailbox_line, 8)?; // responder-busy flag
            let busy = m.sample_bool(self.contention);
            if !busy {
                return Ok(true);
            }
            sim_spin_release(m, self.lock_line)?;
            for _ in 0..self.config.spins_per_retry {
                m.pause();
            }
        }
        Ok(false)
    }

    /// Publishes `*data`, `call_ID` and the "go" flag, then releases the
    /// lock and PAUSEs (minimizing self-contention, §4.2).
    fn publish(&mut self, m: &mut Machine) -> Result<()> {
        m.write(self.mailbox_line, 24)?;
        sim_spin_release(m, self.lock_line)?;
        m.pause();
        Ok(())
    }

    /// The responder polls the mailbox, sees the flag after at most one
    /// poll interval, pulls the lines across cores, and dispatches.
    fn responder_pickup(&mut self, m: &mut Machine) -> Result<()> {
        let poll_delay = m.sample_uniform(self.poll_interval(m));
        m.charge(Cycles::new(
            poll_delay + 2 * COHERENCE_TRANSFER + DISPATCH_COST,
        ));
        self.stats.busy_polls += 1;
        Ok(())
    }

    /// The responder signals completion; the requester notices after its
    /// own poll granularity plus a coherence transfer.
    fn complete(&mut self, m: &mut Machine) -> Result<()> {
        m.write(self.mailbox_line, 8)?;
        let notice = m.sample_uniform(m.config().pause + 30);
        m.charge(Cycles::new(notice + COHERENCE_TRANSFER));
        // Occasional long tail: scheduler interference on the responder
        // core (bounded near the paper's 1,400-cycle p99.97).
        if m.sample_bool(0.004) {
            let extra = m.sample_uniform(650);
            m.charge(Cycles::new(extra));
        }
        Ok(())
    }

    fn poll_interval(&self, m: &Machine) -> u64 {
        // One responder loop iteration: PAUSE + lock check + flag check.
        m.config().pause + 70
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sdk::edl::parse_edl;
    use sgx_sdk::MarshalOptions;
    use sgx_sim::{EnclaveBuildOptions, SimConfig};

    const EDL: &str = "enclave {
        trusted {
            public void ecall_empty();
            public void ecall_in([in, size=n] const uint8_t* b, size_t n);
        };
        untrusted {
            void ocall_empty();
            size_t ocall_read([out, size=cap] uint8_t* buf, size_t cap);
            void ocall_send([in, size=n] const uint8_t* b, size_t n);
        };
    };";

    fn setup() -> (Machine, EnclaveCtx, SimHotCalls) {
        let mut m = Machine::new(SimConfig::builder().deterministic().build());
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        let edl = parse_edl(EDL).unwrap();
        let ctx = EnclaveCtx::new(&mut m, eid, &edl, MarshalOptions::default()).unwrap();
        let hot = SimHotCalls::new(&mut m, &ctx, HotCallConfig::default()).unwrap();
        (m, ctx, hot)
    }

    #[test]
    fn hot_ocall_is_an_order_of_magnitude_cheaper_than_sdk() {
        let (mut m, mut ctx, mut hot) = setup();
        ctx.enter_main(&mut m).unwrap();
        // Warm both paths.
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        ctx.ocall(&mut m, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();

        let s = m.now();
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        let hot_cost = (m.now() - s).get();

        let s = m.now();
        ctx.ocall(&mut m, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        let sdk_cost = (m.now() - s).get();

        assert!(
            sdk_cost as f64 / hot_cost as f64 > 8.0,
            "expected >8x speedup: hot={hot_cost} sdk={sdk_cost}"
        );
        assert!(
            (250..1_500).contains(&hot_cost),
            "hot ocall should be in the paper's ~620-cycle regime: {hot_cost}"
        );
    }

    #[test]
    fn hot_ecall_also_fast() {
        let (mut m, mut ctx, mut hot) = setup();
        hot.hot_ecall(&mut m, &mut ctx, "ecall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        let s = m.now();
        hot.hot_ecall(&mut m, &mut ctx, "ecall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        let cost = (m.now() - s).get();
        assert!(cost < 1_500, "hot ecall too slow: {cost}");
    }

    #[test]
    fn timeout_falls_back_to_sdk_call() {
        let (mut m, mut ctx, mut hot) = setup();
        hot.set_contention(1.0); // responder permanently busy
        ctx.enter_main(&mut m).unwrap();
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        assert_eq!(hot.stats().fallbacks, 1);
        assert_eq!(hot.stats().calls, 0);
        // The SDK path actually ran: the ocall was recorded there.
        assert_eq!(ctx.stats().ocalls()["ocall_empty"].count, 1);
    }

    #[test]
    fn moderate_contention_retries_but_succeeds() {
        let (mut m, mut ctx, mut hot) = setup();
        hot.set_contention(0.5);
        ctx.enter_main(&mut m).unwrap();
        let mut ok = 0;
        for _ in 0..50 {
            hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
                .unwrap();
            ok += 1;
        }
        assert_eq!(ok, 50);
        assert!(
            hot.stats().calls > 40,
            "most calls should take the fast path"
        );
    }

    #[test]
    fn idle_sleep_wakes_on_next_call() {
        let (mut m, mut ctx, mut hot) = setup();
        hot.set_config(HotCallConfig::with_idle_sleep(100));
        ctx.enter_main(&mut m).unwrap();
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        // A long idle gap: the responder goes to sleep.
        m.charge(Cycles::new(10_000_000));
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        assert_eq!(hot.stats().wakeups, 1);
        // Back-to-back call: no wakeup needed.
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        assert_eq!(hot.stats().wakeups, 1);
    }

    #[test]
    fn buffers_transfer_through_shared_memory() {
        let (mut m, mut ctx, mut hot) = setup();
        let secure = m.alloc_enclave_heap(ctx.eid, 2048, 64).unwrap();
        ctx.enter_main(&mut m).unwrap();
        let seen = hot
            .hot_ocall(
                &mut m,
                &mut ctx,
                "ocall_read",
                &[BufArg::new(secure, 2048)],
                |_, m, args| {
                    // The OS body sees an *untrusted* staging buffer.
                    assert!(!m.is_enclave_addr(args.bufs[0]));
                    Ok(args.bufs[0])
                },
            )
            .unwrap();
        assert_ne!(seen, secure);
    }

    #[test]
    fn hot_ecall_stages_into_secure_memory() {
        let (mut m, mut ctx, mut hot) = setup();
        let untrusted = m.alloc_untrusted(1024, 64);
        hot.hot_ecall(
            &mut m,
            &mut ctx,
            "ecall_in",
            &[BufArg::new(untrusted, 1024)],
            |_, m, args| {
                assert!(m.is_enclave_addr(args.bufs[0]));
                Ok(())
            },
        )
        .unwrap();
    }

    #[test]
    fn unknown_function_rejected() {
        let (mut m, mut ctx, mut hot) = setup();
        let err = hot
            .hot_ocall(&mut m, &mut ctx, "nope", &[], |_, _, _| Ok(()))
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::HotCallError::Sdk(sgx_sdk::SdkError::UnknownFunction(_))
        ));
    }
}
