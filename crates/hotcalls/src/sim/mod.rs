//! Simulated HotCalls: the paper's architecture (Fig. 9) in the cycle
//! model.
//!
//! A *requester* and a *responder* communicate through a spin-lock-guarded
//! mailbox in **un-encrypted shared memory**: a lock word, a
//! responder-busy/go flag, a `call_ID`, and a `*data` pointer to the
//! marshalled parameters. The responder is a dedicated logical core that
//! polls the mailbox in a `PAUSE` loop. No `EENTER`/`EEXIT` happens on the
//! hot path — that is the entire trick, and why a HotCall costs ~620 cycles
//! where an SDK call costs 8,200+.
//!
//! Marshalling reuses [`sgx_sdk::marshal`] — literally the SDK's staging
//! code, as the paper's implementation does (§4.2, §5).

use sgx_sdk::marshal::{stage, unstage, CallerSide, StagingArea};
use sgx_sdk::sync::{sim_spin_acquire, sim_spin_release};
use sgx_sdk::{BufArg, CallArgs, EnclaveCtx};
use sgx_sim::{Addr, CycleLedger, Cycles, Machine, Placement, Topology};

use crate::config::{HotCallConfig, HotCallStats};
use crate::error::Result;
use crate::telemetry::trace;

/// Bytes of shared (un-encrypted) memory reserved for marshalled data.
const SHARED_BYTES: u64 = 1 << 20;

/// Bytes of secure scratch the in-enclave responder stages hot-ecall
/// buffers into.
const SECURE_BYTES: u64 = 1 << 19;

/// Cost of signalling the sleeping responder's condition variable before a
/// request (a futex wake issued from the requester's side).
const WAKE_COST: u64 = 1_500;

/// Core cost of the responder noticing + dispatching a request once the
/// mailbox is read (call-table index check and jump).
const DISPATCH_COST: u64 = 70;

/// Which side of the boundary requests the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// HotEcall: untrusted requester, in-enclave responder thread.
    Ecall,
    /// HotOcall: trusted requester, untrusted responder thread.
    Ocall,
}

/// A simulated HotCalls channel bound to an [`EnclaveCtx`].
///
/// # Examples
///
/// ```
/// use sgx_sim::{Machine, SimConfig, EnclaveBuildOptions};
/// use sgx_sdk::edl::parse_edl;
/// use sgx_sdk::{EnclaveCtx, MarshalOptions};
/// use hotcalls::sim::SimHotCalls;
/// use hotcalls::HotCallConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = Machine::new(SimConfig::default());
/// let eid = m.build_enclave(EnclaveBuildOptions::default())?;
/// let edl = parse_edl("enclave { untrusted { void ocall_tick(); }; };")?;
/// let mut ctx = EnclaveCtx::new(&mut m, eid, &edl, MarshalOptions::default())?;
/// let mut hot = SimHotCalls::new(&mut m, &ctx, HotCallConfig::default())?;
///
/// ctx.enter_main(&mut m)?;
/// hot.hot_ocall(&mut m, &mut ctx, "ocall_tick", &[], |_, _, _| Ok(()))?;
/// assert_eq!(hot.stats().calls, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SimHotCalls {
    /// The spin lock guarding the mailbox (shared, un-encrypted).
    lock_line: Addr,
    /// Mailbox line: responder-busy flag, go flag, call_ID, *data.
    mailbox_line: Addr,
    /// Shared data area for marshalled parameters.
    shared_area: Addr,
    /// Secure scratch the hot-ecall responder stages into.
    secure_area: Addr,
    config: HotCallConfig,
    stats: HotCallStats,
    /// Virtual time the last call completed (drives idle-sleep modelling).
    last_call_end: Cycles,
    /// Probability a retry finds the responder busy (models contention from
    /// other requesters sharing the responder; 0 for a dedicated pair).
    contention: f64,
    /// Core layout + handoff cost table the channel is placed on.
    topology: Topology,
    /// Where the requester thread runs.
    requester: Placement,
    /// Where the polling responder thread runs.
    responder: Placement,
    /// Cycles burned on mailbox handoffs, filed per placement regime
    /// (`handoff-same-core` / `handoff-cross-core` / `handoff-cross-node`).
    placement_ledger: CycleLedger,
}

impl SimHotCalls {
    /// Allocates the shared mailbox, data area, and the responder's secure
    /// scratch inside `ctx`'s enclave.
    ///
    /// # Errors
    ///
    /// Fails if the enclave heap cannot hold the secure scratch.
    pub fn new(m: &mut Machine, ctx: &EnclaveCtx, config: HotCallConfig) -> Result<Self> {
        let lock_line = m.alloc_untrusted(64, 64);
        let mailbox_line = m.alloc_untrusted(64, 64);
        let shared_area = m.alloc_untrusted(SHARED_BYTES, 4096);
        let secure_area = m.alloc_enclave_heap(ctx.eid, SECURE_BYTES, 4096)?;
        // The paper's deployment: requester and responder are sibling
        // cores on one socket, so every handoff is the 60-cycle LLC
        // coherence transfer the ~620-cycle round trip was fitted with.
        let topology = Topology::default();
        Ok(SimHotCalls {
            lock_line,
            mailbox_line,
            shared_area,
            secure_area,
            config,
            stats: HotCallStats::default(),
            last_call_end: Cycles::ZERO,
            contention: 0.0,
            requester: topology.place(0),
            responder: topology.place(1),
            topology,
            placement_ledger: CycleLedger::new(),
        })
    }

    /// Statistics so far.
    pub fn stats(&self) -> HotCallStats {
        self.stats
    }

    /// Replaces the configuration (e.g. enabling idle sleep between runs).
    pub fn set_config(&mut self, config: HotCallConfig) {
        self.config = config;
    }

    /// Sets the probability that an availability check finds the responder
    /// busy, to model several requesters sharing one responder.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn set_contention(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.contention = p;
    }

    /// Replaces the machine layout the channel's endpoints are placed on.
    /// Existing placements are re-derived on the new layout.
    pub fn set_topology(&mut self, topology: Topology) {
        self.topology = topology;
        self.requester = topology.place(self.requester.core);
        self.responder = topology.place(self.responder.core);
    }

    /// Pins the requester and responder to logical cores; the NUMA node of
    /// each follows from the topology. The next call is charged under the
    /// new regime — same-core handoffs are free, cross-node ones ride the
    /// interconnect.
    pub fn set_placement(&mut self, requester_core: usize, responder_core: usize) {
        self.requester = self.topology.place(requester_core);
        self.responder = self.topology.place(responder_core);
    }

    /// The current (requester, responder) placements.
    pub fn placements(&self) -> (Placement, Placement) {
        (self.requester, self.responder)
    }

    /// Cycles burned moving the mailbox and data lines between the two
    /// endpoints, filed per placement regime. Zero-cost same-core handoffs
    /// still appear (at zero), so the account names double as a census of
    /// which regime the channel ran in.
    pub fn placement_ledger(&self) -> &CycleLedger {
        &self.placement_ledger
    }

    /// Charges `hops` cache-line handoffs between the endpoints and files
    /// them in the placement ledger.
    fn charge_handoff(&mut self, m: &mut Machine, hops: u64) {
        let cost = self.topology.transfer_cost(self.requester, self.responder) * hops;
        self.placement_ledger.credit(
            self.topology
                .transfer_account(self.requester, self.responder),
            cost,
        );
        m.charge(cost);
    }

    /// A HotOcall: the enclave requests untrusted work without leaving the
    /// enclave (paper Fig. 9). Falls back to the SDK ocall on timeout.
    ///
    /// # Errors
    ///
    /// Fails on unknown functions, marshalling violations, or if the
    /// fallback SDK path fails.
    pub fn hot_ocall<R, F>(
        &mut self,
        m: &mut Machine,
        ctx: &mut EnclaveCtx,
        name: &str,
        bufs: &[BufArg],
        body: F,
    ) -> Result<R>
    where
        F: FnOnce(&mut EnclaveCtx, &mut Machine, &CallArgs) -> sgx_sdk::Result<R>,
    {
        self.call(m, ctx, name, bufs, body, Kind::Ocall)
    }

    /// A HotEcall: untrusted code requests trusted work; a parked enclave
    /// thread polls the mailbox and executes it without an `EENTER`.
    ///
    /// # Errors
    ///
    /// As [`SimHotCalls::hot_ocall`].
    pub fn hot_ecall<R, F>(
        &mut self,
        m: &mut Machine,
        ctx: &mut EnclaveCtx,
        name: &str,
        bufs: &[BufArg],
        body: F,
    ) -> Result<R>
    where
        F: FnOnce(&mut EnclaveCtx, &mut Machine, &CallArgs) -> sgx_sdk::Result<R>,
    {
        self.call(m, ctx, name, bufs, body, Kind::Ecall)
    }

    fn call<R, F>(
        &mut self,
        m: &mut Machine,
        ctx: &mut EnclaveCtx,
        name: &str,
        bufs: &[BufArg],
        body: F,
        kind: Kind,
    ) -> Result<R>
    where
        F: FnOnce(&mut EnclaveCtx, &mut Machine, &CallArgs) -> sgx_sdk::Result<R>,
    {
        let start = m.now();
        let plan = match kind {
            Kind::Ecall => ctx.proxies().ecall(name)?.clone(),
            Kind::Ocall => ctx.proxies().ocall(name)?.clone(),
        };

        self.wake_if_sleeping(m);

        if !self.acquire_responder(m)? {
            // Timeout: fall back to the regular SDK call (§4.2).
            self.stats.fallbacks += 1;
            trace("sim_fallback", self.stats.fallbacks, m.now().get());
            return match kind {
                Kind::Ecall => ctx.ecall(m, name, bufs, body).map_err(Into::into),
                Kind::Ocall => ctx.ocall(m, name, bufs, body).map_err(Into::into),
            };
        }

        let result = match kind {
            Kind::Ocall => {
                // Trusted requester stages data into shared memory before
                // signalling — the SDK's own staging code.
                let mut area = StagingArea::untrusted(m, self.shared_area, SHARED_BYTES);
                area.reserve(plan.struct_bytes);
                m.write(self.shared_area, plan.struct_bytes)?;
                let (args, staged) = stage(
                    m,
                    &plan,
                    bufs,
                    &mut area,
                    CallerSide::Trusted,
                    ctx.options(),
                )?;
                self.publish(m)?;
                self.responder_pickup(m)?;
                let r = body(ctx, m, &args);
                unstage(m, &staged)?;
                self.complete(m)?;
                r
            }
            Kind::Ecall => {
                // Untrusted requester publishes the raw pointers; the
                // in-enclave responder runs the trusted proxy: boundary
                // checks + secure staging, exactly as an SDK ecall would.
                m.write(self.shared_area, plan.struct_bytes)?;
                self.publish(m)?;
                self.responder_pickup(m)?;
                m.read(self.shared_area, plan.struct_bytes)?;
                let mut area = StagingArea::secure(m, self.secure_area, SECURE_BYTES);
                let (args, staged) = stage(
                    m,
                    &plan,
                    bufs,
                    &mut area,
                    CallerSide::Untrusted,
                    ctx.options(),
                )?;
                let r = body(ctx, m, &args);
                unstage(m, &staged)?;
                self.complete(m)?;
                r
            }
        };

        self.stats.calls += 1;
        self.last_call_end = m.now();
        // Feed the SDK's per-name edge-call ledger, as the regular paths
        // do — the census derives Table 2's cycles-per-call from it, and
        // hot calls would otherwise be invisible there. The fallback path
        // above records through the SDK call itself.
        match kind {
            Kind::Ecall => ctx.record_hot_ecall(name, m.now() - start),
            Kind::Ocall => ctx.record_hot_ocall(name, m.now() - start),
        }
        result.map_err(Into::into)
    }

    /// Signals the sleeping responder if the idle timeout elapsed (§4.2,
    /// "Conserving resources at idle times").
    fn wake_if_sleeping(&mut self, m: &mut Machine) {
        if let Some(polls) = self.config.idle_polls_before_sleep {
            let asleep_after = Cycles::new(polls * self.poll_interval(m));
            if self.last_call_end > Cycles::ZERO
                && m.now().saturating_sub(self.last_call_end) > asleep_after
            {
                m.charge(Cycles::new(WAKE_COST));
                self.stats.wakeups += 1;
                trace("sim_wake", self.stats.wakeups, m.now().get());
            }
        }
    }

    /// The availability loop with timeout (§4.2, "Preventing starvation").
    /// Returns `false` when every retry found the responder busy.
    fn acquire_responder(&mut self, m: &mut Machine) -> Result<bool> {
        for _retry in 0..self.config.timeout_retries {
            sim_spin_acquire(m, self.lock_line)?;
            m.read(self.mailbox_line, 8)?; // responder-busy flag
            let busy = m.sample_bool(self.contention);
            if !busy {
                return Ok(true);
            }
            sim_spin_release(m, self.lock_line)?;
            for _ in 0..self.config.spins_per_retry {
                m.pause();
            }
        }
        Ok(false)
    }

    /// Publishes `*data`, `call_ID` and the "go" flag, then releases the
    /// lock and PAUSEs (minimizing self-contention, §4.2).
    fn publish(&mut self, m: &mut Machine) -> Result<()> {
        m.write(self.mailbox_line, 24)?;
        sim_spin_release(m, self.lock_line)?;
        m.pause();
        Ok(())
    }

    /// The responder polls the mailbox, sees the flag after at most one
    /// poll interval, pulls the mailbox and data lines over from the
    /// requester's cache (two handoffs, costed by placement), and
    /// dispatches.
    fn responder_pickup(&mut self, m: &mut Machine) -> Result<()> {
        let poll_delay = m.sample_uniform(self.poll_interval(m));
        m.charge(Cycles::new(poll_delay + DISPATCH_COST));
        self.charge_handoff(m, 2);
        self.stats.busy_polls += 1;
        Ok(())
    }

    /// The responder signals completion; the requester notices after its
    /// own poll granularity plus one handoff pulling the line back.
    fn complete(&mut self, m: &mut Machine) -> Result<()> {
        m.write(self.mailbox_line, 8)?;
        let notice = m.sample_uniform(m.config().pause + 30);
        m.charge(Cycles::new(notice));
        self.charge_handoff(m, 1);
        // Occasional long tail: scheduler interference on the responder
        // core (bounded near the paper's 1,400-cycle p99.97).
        if m.sample_bool(0.004) {
            let extra = m.sample_uniform(650);
            m.charge(Cycles::new(extra));
        }
        Ok(())
    }

    fn poll_interval(&self, m: &Machine) -> u64 {
        // One responder loop iteration: PAUSE + lock check + flag check.
        m.config().pause + 70
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sdk::edl::parse_edl;
    use sgx_sdk::MarshalOptions;
    use sgx_sim::{EnclaveBuildOptions, SimConfig};

    const EDL: &str = "enclave {
        trusted {
            public void ecall_empty();
            public void ecall_in([in, size=n] const uint8_t* b, size_t n);
        };
        untrusted {
            void ocall_empty();
            size_t ocall_read([out, size=cap] uint8_t* buf, size_t cap);
            void ocall_send([in, size=n] const uint8_t* b, size_t n);
        };
    };";

    fn setup() -> (Machine, EnclaveCtx, SimHotCalls) {
        let mut m = Machine::new(SimConfig::builder().deterministic().build());
        let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
        let edl = parse_edl(EDL).unwrap();
        let ctx = EnclaveCtx::new(&mut m, eid, &edl, MarshalOptions::default()).unwrap();
        let hot = SimHotCalls::new(&mut m, &ctx, HotCallConfig::default()).unwrap();
        (m, ctx, hot)
    }

    #[test]
    fn hot_ocall_is_an_order_of_magnitude_cheaper_than_sdk() {
        let (mut m, mut ctx, mut hot) = setup();
        ctx.enter_main(&mut m).unwrap();
        // Warm both paths.
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        ctx.ocall(&mut m, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();

        let s = m.now();
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        let hot_cost = (m.now() - s).get();

        let s = m.now();
        ctx.ocall(&mut m, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        let sdk_cost = (m.now() - s).get();

        assert!(
            sdk_cost as f64 / hot_cost as f64 > 8.0,
            "expected >8x speedup: hot={hot_cost} sdk={sdk_cost}"
        );
        assert!(
            (250..1_500).contains(&hot_cost),
            "hot ocall should be in the paper's ~620-cycle regime: {hot_cost}"
        );
    }

    #[test]
    fn hot_ecall_also_fast() {
        let (mut m, mut ctx, mut hot) = setup();
        hot.hot_ecall(&mut m, &mut ctx, "ecall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        let s = m.now();
        hot.hot_ecall(&mut m, &mut ctx, "ecall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        let cost = (m.now() - s).get();
        assert!(cost < 1_500, "hot ecall too slow: {cost}");
    }

    #[test]
    fn timeout_falls_back_to_sdk_call() {
        let (mut m, mut ctx, mut hot) = setup();
        hot.set_contention(1.0); // responder permanently busy
        ctx.enter_main(&mut m).unwrap();
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        assert_eq!(hot.stats().fallbacks, 1);
        assert_eq!(hot.stats().calls, 0);
        // The SDK path actually ran: the ocall was recorded there.
        assert_eq!(ctx.stats().ocalls()["ocall_empty"].count, 1);
    }

    #[test]
    fn moderate_contention_retries_but_succeeds() {
        let (mut m, mut ctx, mut hot) = setup();
        hot.set_contention(0.5);
        ctx.enter_main(&mut m).unwrap();
        let mut ok = 0;
        for _ in 0..50 {
            hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
                .unwrap();
            ok += 1;
        }
        assert_eq!(ok, 50);
        assert!(
            hot.stats().calls > 40,
            "most calls should take the fast path"
        );
    }

    #[test]
    fn idle_sleep_wakes_on_next_call() {
        let (mut m, mut ctx, mut hot) = setup();
        hot.set_config(HotCallConfig::with_idle_sleep(100));
        ctx.enter_main(&mut m).unwrap();
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        // A long idle gap: the responder goes to sleep.
        m.charge(Cycles::new(10_000_000));
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        assert_eq!(hot.stats().wakeups, 1);
        // Back-to-back call: no wakeup needed.
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        assert_eq!(hot.stats().wakeups, 1);
    }

    #[test]
    fn buffers_transfer_through_shared_memory() {
        let (mut m, mut ctx, mut hot) = setup();
        let secure = m.alloc_enclave_heap(ctx.eid, 2048, 64).unwrap();
        ctx.enter_main(&mut m).unwrap();
        let seen = hot
            .hot_ocall(
                &mut m,
                &mut ctx,
                "ocall_read",
                &[BufArg::new(secure, 2048)],
                |_, m, args| {
                    // The OS body sees an *untrusted* staging buffer.
                    assert!(!m.is_enclave_addr(args.bufs[0]));
                    Ok(args.bufs[0])
                },
            )
            .unwrap();
        assert_ne!(seen, secure);
    }

    #[test]
    fn hot_ecall_stages_into_secure_memory() {
        let (mut m, mut ctx, mut hot) = setup();
        let untrusted = m.alloc_untrusted(1024, 64);
        hot.hot_ecall(
            &mut m,
            &mut ctx,
            "ecall_in",
            &[BufArg::new(untrusted, 1024)],
            |_, m, args| {
                assert!(m.is_enclave_addr(args.bufs[0]));
                Ok(())
            },
        )
        .unwrap();
    }

    #[test]
    fn placement_ledger_files_handoffs_per_regime() {
        let (mut m, mut ctx, mut hot) = setup();
        ctx.enter_main(&mut m).unwrap();

        // Default placement: sibling cores on one socket. Each hot call is
        // three handoffs (mailbox + data over, completion back) at the
        // 60-cycle coherence cost.
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        assert_eq!(
            hot.placement_ledger().get("handoff-cross-core"),
            Cycles::new(3 * 60)
        );

        // Fused regime: both endpoints on one core — handoffs are free but
        // still censused, so the ledger shows which regime ran.
        hot.set_placement(2, 2);
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        assert_eq!(
            hot.placement_ledger().get("handoff-same-core"),
            Cycles::ZERO
        );
        assert!(hot
            .placement_ledger()
            .entries()
            .any(|(name, _)| name == "handoff-same-core"));

        // Worst case: the responder lives on the other socket.
        hot.set_placement(0, 4);
        assert_ne!(hot.placements().0.node, hot.placements().1.node);
        hot.hot_ocall(&mut m, &mut ctx, "ocall_empty", &[], |_, _, _| Ok(()))
            .unwrap();
        assert_eq!(
            hot.placement_ledger().get("handoff-cross-node"),
            Cycles::new(3 * 180)
        );
    }

    #[test]
    fn same_core_placement_beats_cross_node() {
        let (mut m, mut ctx, mut hot) = setup();
        ctx.enter_main(&mut m).unwrap();
        let run = |m: &mut Machine, ctx: &mut EnclaveCtx, hot: &mut SimHotCalls| {
            let s = m.now();
            for _ in 0..20 {
                hot.hot_ocall(m, ctx, "ocall_empty", &[], |_, _, _| Ok(()))
                    .unwrap();
            }
            (m.now() - s).get()
        };
        hot.set_placement(3, 3);
        let fused = run(&mut m, &mut ctx, &mut hot);
        hot.set_placement(0, 4);
        let remote = run(&mut m, &mut ctx, &mut hot);
        // 20 calls × 3 handoffs × 180 cycles of deterministic gap dwarfs
        // the sampled poll/notice jitter.
        assert!(
            remote > fused + 5_000,
            "cross-node should cost more: fused={fused} remote={remote}"
        );
    }

    #[test]
    fn set_topology_rederives_existing_placements() {
        let (_m, _ctx, mut hot) = setup();
        hot.set_placement(0, 5); // node 1 under the default layout
        hot.set_topology(Topology {
            cores_per_node: 8,
            nodes: 1,
            costs: sgx_sim::TransferCosts::default(),
        });
        let (req, resp) = hot.placements();
        assert_eq!((req.node, resp.node), (0, 0), "one-node layout");
        assert_eq!(resp.core, 5);
    }

    #[test]
    fn unknown_function_rejected() {
        let (mut m, mut ctx, mut hot) = setup();
        let err = hot
            .hot_ocall(&mut m, &mut ctx, "nope", &[], |_, _, _| Ok(()))
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::HotCallError::Sdk(sgx_sdk::SdkError::UnknownFunction(_))
        ));
    }
}
