//! Error types for the HotCalls interfaces.

use core::fmt;

/// Errors surfaced by HotCalls (both the simulated and threaded variants).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HotCallError {
    /// The responder stayed busy beyond the configured retry budget.
    ///
    /// The paper's starvation mitigation (§4.2): "the requester can set a
    /// timeout … If the timeout expires, the requester can fall back to
    /// using regular SDK calls."
    ResponderTimeout {
        /// Retries attempted before giving up.
        retries: u32,
    },
    /// The responder thread has shut down (threaded runtime only).
    ResponderGone,
    /// No function is registered at the requested call id.
    UnknownCallId(u32),
    /// A server constructor was given an unusable parameter (zero ring
    /// capacity, empty responder pool).
    InvalidConfig(&'static str),
    /// The underlying SDK layer failed (simulated variant only).
    Sdk(sgx_sdk::SdkError),
}

impl fmt::Display for HotCallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HotCallError::ResponderTimeout { retries } => {
                write!(f, "responder still busy after {retries} retries")
            }
            HotCallError::ResponderGone => write!(f, "responder thread has shut down"),
            HotCallError::UnknownCallId(id) => write!(f, "no call registered with id {id}"),
            HotCallError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            HotCallError::Sdk(e) => write!(f, "sdk: {e}"),
        }
    }
}

impl std::error::Error for HotCallError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HotCallError::Sdk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sgx_sdk::SdkError> for HotCallError {
    fn from(e: sgx_sdk::SdkError) -> Self {
        HotCallError::Sdk(e)
    }
}

impl From<sgx_sim::SgxError> for HotCallError {
    fn from(e: sgx_sim::SgxError) -> Self {
        HotCallError::Sdk(sgx_sdk::SdkError::Sgx(e))
    }
}

/// Convenience alias for HotCalls results.
pub type Result<T> = core::result::Result<T, HotCallError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        assert!(HotCallError::ResponderTimeout { retries: 10 }
            .to_string()
            .contains("10"));
        assert!(HotCallError::UnknownCallId(3).to_string().contains('3'));
    }
}
