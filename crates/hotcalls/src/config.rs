//! HotCalls tuning knobs.

use serde::{Deserialize, Serialize};

/// When a requester may run a handler inline (run-to-completion) instead
/// of publishing the call to the responder pool.
///
/// The fused path skips the slot-publish handoff, the doze wake, and the
/// cross-core cache-line transfer entirely — the requester's core executes
/// the handler and keeps the data hot. That wins exactly when no second
/// core is already spinning on the ring; the moment responders are active,
/// handing off and pipelining wins instead. `Auto` makes that break-even
/// decision per call.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FusedMode {
    /// Never fuse: every call goes through the responder pool (the
    /// pre-fused behaviour; the default).
    #[default]
    Off,
    /// Fuse synchronous `call`s when the home responder set is quiescent
    /// (parked or dozing) and the ring occupancy is below
    /// [`HotCallConfig::fused_below_occupancy`]; fall back to the pooled
    /// path the moment responders are active. Pipelined `submit`s never
    /// fuse under `Auto` — the caller chose the async API to overlap
    /// work, which inline execution would forfeit.
    Auto,
    /// Always attempt the fused path (benchmarks and the zero-alloc gate;
    /// `submit` still falls back when it loses the service race).
    Always,
}

/// Configuration shared by the simulated and threaded HotCalls variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotCallConfig {
    /// Maximum attempts to find the responder available before falling back
    /// to a regular SDK call. The paper sets this to 10 and reports it
    /// "never expired" in their experiments, while calling the mechanism
    /// "vital for producing reliable code".
    pub timeout_retries: u32,
    /// Spin iterations between availability checks (each ends in a `PAUSE`).
    pub spins_per_retry: u32,
    /// Consecutive empty polls after which the responder sets its `sleep`
    /// flag and blocks on a condition variable to conserve CPU (§4.2,
    /// "Conserving resources at idle times"). `None` polls forever.
    pub idle_polls_before_sleep: Option<u64>,
    /// Maximum submitted ring slots a responder claims per tail advance
    /// (batched drain). Larger batches amortize the tail CAS and the
    /// wake/schedule cost under bursty load; `1` reproduces the original
    /// one-at-a-time drain. Zero is treated as `1`.
    pub drain_batch: u32,
    /// When the requester may execute handlers inline instead of handing
    /// them to the responder pool. See [`FusedMode`].
    pub fused_mode: FusedMode,
    /// Break-even occupancy for [`FusedMode::Auto`]: the fused path is
    /// only considered while the (home) ring holds fewer than this many
    /// in-flight submissions. Deeper backlogs mean pipelining through the
    /// pool wins. Zero disables auto-fusing outright.
    pub fused_below_occupancy: usize,
}

impl Default for HotCallConfig {
    fn default() -> Self {
        HotCallConfig {
            timeout_retries: 10,
            spins_per_retry: 16,
            idle_polls_before_sleep: None,
            drain_batch: 8,
            fused_mode: FusedMode::Off,
            fused_below_occupancy: 2,
        }
    }
}

impl HotCallConfig {
    /// A configuration with the idle-sleep optimization enabled.
    pub fn with_idle_sleep(polls: u64) -> Self {
        HotCallConfig {
            idle_polls_before_sleep: Some(polls),
            ..Self::default()
        }
    }

    /// A configuration with a generous retry budget, for callers that
    /// prefer waiting over the timeout fallback (tests, benchmarks,
    /// saturated pools).
    pub fn patient() -> Self {
        HotCallConfig {
            timeout_retries: 1_000_000,
            spins_per_retry: 64,
            ..Self::default()
        }
    }

    /// A configuration with the fused run-to-completion path enabled in
    /// the given mode (otherwise [`Self::patient`]).
    pub fn fused(mode: FusedMode) -> Self {
        HotCallConfig {
            fused_mode: mode,
            ..Self::patient()
        }
    }

    /// The zero-config configuration the control plane starts from: a
    /// patient retry budget, idle-sleeping responders, and the fused
    /// break-even left to [`FusedMode::Auto`]. The `ctl` controller then
    /// tunes the rest online.
    pub fn auto() -> Self {
        HotCallConfig {
            idle_polls_before_sleep: Some(256),
            fused_mode: FusedMode::Auto,
            ..Self::patient()
        }
    }

    /// The effective drain batch (zero-proofed).
    pub(crate) fn drain_batch_clamped(&self) -> usize {
        self.drain_batch.max(1) as usize
    }

    /// Rejects contradictory knob combinations before a plane is built on
    /// them. Called at plane construction, so a controller mutating knobs
    /// online can never hand the data plane a config that silently
    /// misbehaves.
    ///
    /// # Errors
    ///
    /// [`crate::HotCallError::InvalidConfig`] when the retry or spin
    /// budget is zero (the availability handshake would never be
    /// attempted), when idle-sleep is enabled with a zero poll budget
    /// (responders would sleep before ever polling), or when a fused mode
    /// is enabled with `fused_below_occupancy == 0` (auto-fusing would be
    /// requested and simultaneously disabled).
    pub fn validate(&self) -> crate::error::Result<()> {
        use crate::error::HotCallError::InvalidConfig;
        if self.timeout_retries == 0 {
            return Err(InvalidConfig(
                "timeout_retries must be positive: zero retries never attempts the call",
            ));
        }
        if self.spins_per_retry == 0 {
            return Err(InvalidConfig(
                "spins_per_retry must be positive: zero spins never checks availability",
            ));
        }
        if self.idle_polls_before_sleep == Some(0) {
            return Err(InvalidConfig(
                "idle_polls_before_sleep of zero would sleep responders before they poll once",
            ));
        }
        if self.fused_mode != FusedMode::Off && self.fused_below_occupancy == 0 {
            return Err(InvalidConfig(
                "a fused mode with fused_below_occupancy of zero both requests and forbids fusing",
            ));
        }
        Ok(())
    }
}

/// Sizing policy for an adaptive responder pool (the configless-worker
/// idea applied to the paper's "On Call" threads): instead of a fixed
/// `n_responders`, the pool holds `max` threads of which between `min` and
/// `max` are *active* at any moment. Requesters raise the active target
/// when the ring backs up; the top active responder demotes itself and
/// parks after a long useful-work drought. Parked responders cost nothing
/// — per-call wakeups never reach them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponderPolicy {
    /// Responders that are never parked (at least 1).
    pub min: usize,
    /// Total responder threads spawned (the scale-up ceiling).
    pub max: usize,
    /// Queued-submission count above which a requester raises the active
    /// target (at least 1). The paper's responder has no queue; this is
    /// the ring generalization: backlog deeper than this means the active
    /// responders are not keeping up.
    pub target_occupancy: usize,
    /// Consecutive polls without useful work after which the top active
    /// responder demotes itself and parks. Counted across idle-doze
    /// wakeups, so a responder that is woken per-call but never wins work
    /// (the oversubscription churn) still accumulates toward parking.
    pub park_after_idle_polls: u64,
}

impl Default for ResponderPolicy {
    fn default() -> Self {
        ResponderPolicy {
            min: 1,
            max: 2,
            target_occupancy: 2,
            park_after_idle_polls: 2_048,
        }
    }
}

impl ResponderPolicy {
    /// A static pool of exactly `n` always-active responders (the governor
    /// is disabled; this reproduces the old `spawn_pool` behaviour).
    pub fn fixed(n: usize) -> Self {
        ResponderPolicy {
            min: n,
            max: n,
            ..Self::default()
        }
    }

    /// An elastic pool between `min` and `max` active responders.
    pub fn elastic(min: usize, max: usize) -> Self {
        ResponderPolicy {
            min,
            max,
            ..Self::default()
        }
    }

    /// The zero-config pool: elastic between one responder and the host's
    /// available parallelism, leaving the active target to the governor
    /// and the `ctl` sizer.
    pub fn auto() -> Self {
        let max = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::elastic(1, max.max(1))
    }

    /// Does this policy ever park a responder?
    pub fn is_adaptive(&self) -> bool {
        self.max > self.min
    }

    /// The effective backlog threshold (zero-proofed).
    pub(crate) fn target_occupancy_clamped(&self) -> usize {
        self.target_occupancy.max(1)
    }

    /// Rejects contradictory pool bounds before threads are spawned on
    /// them.
    ///
    /// # Errors
    ///
    /// [`crate::HotCallError::InvalidConfig`] when `min` is zero (the pool
    /// would keep no thread alive), `max < min` (an empty active range),
    /// or an adaptive policy would park after zero idle polls (the top
    /// responder would demote itself on every empty poll).
    pub fn validate(&self) -> crate::error::Result<()> {
        use crate::error::HotCallError::InvalidConfig;
        if self.min == 0 {
            return Err(InvalidConfig(
                "responder pool must keep at least one active thread",
            ));
        }
        if self.max < self.min {
            return Err(InvalidConfig("responder policy max must be at least min"));
        }
        if self.is_adaptive() && self.park_after_idle_polls == 0 {
            return Err(InvalidConfig(
                "an adaptive responder policy must allow at least one idle poll before parking",
            ));
        }
        Ok(())
    }
}

/// Sizing policy for a sharded data plane: N independent rings, each with
/// its own responder, requesters pinned to a home shard by the router.
/// Like [`ResponderPolicy`] but the unit of elasticity is a whole shard —
/// parking a shard stops the router from assigning new requesters to it
/// and leaves its residual submissions to the stealing responders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPolicy {
    /// Number of shards (= responder threads). `0` means "auto": resolve
    /// to the host's available parallelism at spawn time.
    pub shards: usize,
    /// Shards that are never parked (at least 1).
    pub min_active: usize,
    /// Per-shard queued-submission count above which a requester raises
    /// the active-shard target (at least 1).
    pub target_occupancy: usize,
    /// Consecutive polls without useful work after which the top active
    /// shard's responder demotes itself and parks the shard.
    pub park_after_idle_polls: u64,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy {
            shards: 0,
            min_active: 1,
            target_occupancy: 2,
            park_after_idle_polls: 2_048,
        }
    }
}

impl ShardPolicy {
    /// A static plane of exactly `n` always-active shards (the governor is
    /// disabled).
    pub fn fixed(n: usize) -> Self {
        ShardPolicy {
            shards: n,
            min_active: n,
            ..Self::default()
        }
    }

    /// An elastic plane of `shards` shards, between `min_active` and
    /// `shards` of them active.
    pub fn elastic(min_active: usize, shards: usize) -> Self {
        ShardPolicy {
            shards,
            min_active,
            ..Self::default()
        }
    }

    /// An elastic plane sized to the host: one shard per hardware thread,
    /// parking down to one when idle.
    pub fn auto() -> Self {
        ShardPolicy::default()
    }

    /// The shard count this policy resolves to (auto = available
    /// parallelism, never zero).
    pub fn resolved_shards(&self) -> usize {
        if self.shards != 0 {
            return self.shards;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Does this policy ever park a shard?
    pub fn is_adaptive(&self) -> bool {
        self.resolved_shards() > self.min_active
    }

    /// Rejects contradictory shard bounds before the plane is built on
    /// them.
    ///
    /// # Errors
    ///
    /// [`crate::HotCallError::InvalidConfig`] when `min_active` is zero,
    /// exceeds the resolved shard count, or an adaptive policy would park
    /// a shard after zero idle polls.
    pub fn validate(&self) -> crate::error::Result<()> {
        use crate::error::HotCallError::InvalidConfig;
        if self.min_active == 0 {
            return Err(InvalidConfig(
                "a sharded plane must keep at least one active shard",
            ));
        }
        if self.min_active > self.resolved_shards() {
            return Err(InvalidConfig(
                "shard policy min_active must not exceed the shard count",
            ));
        }
        if self.is_adaptive() && self.park_after_idle_polls == 0 {
            return Err(InvalidConfig(
                "an adaptive shard policy must allow at least one idle poll before parking",
            ));
        }
        Ok(())
    }
}

// The stats snapshot structs historically lived here as ad-hoc counter
// bags; their canonical definitions moved into [`crate::telemetry`], the
// unified snapshot layer. These re-exports are kept as thin shims so the
// long-standing `hotcalls::{RingStats, ShardStats, …}` paths (and every
// existing test) keep working unchanged. Prefer importing from
// `hotcalls::telemetry` in new code.
pub use crate::telemetry::{GovernorStats, HotCallStats, RingStats, ShardStats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = HotCallConfig::default();
        assert_eq!(c.timeout_retries, 10);
        assert!(c.idle_polls_before_sleep.is_none());
        assert!(c.drain_batch >= 1);
        // The fused path is strictly opt-in.
        assert_eq!(c.fused_mode, FusedMode::Off);
        assert!(c.fused_below_occupancy >= 1);
    }

    #[test]
    fn fused_constructor_only_flips_the_mode() {
        let c = HotCallConfig::fused(FusedMode::Auto);
        assert_eq!(c.fused_mode, FusedMode::Auto);
        assert_eq!(c.timeout_retries, HotCallConfig::patient().timeout_retries);
    }

    #[test]
    fn drain_batch_zero_is_clamped() {
        let c = HotCallConfig {
            drain_batch: 0,
            ..HotCallConfig::default()
        };
        assert_eq!(c.drain_batch_clamped(), 1);
    }

    #[test]
    fn responder_policy_shapes() {
        assert!(!ResponderPolicy::fixed(4).is_adaptive());
        assert!(ResponderPolicy::elastic(1, 4).is_adaptive());
        let p = ResponderPolicy {
            target_occupancy: 0,
            ..ResponderPolicy::default()
        };
        assert_eq!(p.target_occupancy_clamped(), 1);
    }

    #[test]
    fn shard_policy_shapes() {
        assert!(!ShardPolicy::fixed(4).is_adaptive());
        assert!(ShardPolicy::elastic(1, 4).is_adaptive());
        assert_eq!(ShardPolicy::fixed(4).resolved_shards(), 4);
        // Auto resolves to the host's parallelism, never zero.
        assert!(ShardPolicy::auto().resolved_shards() >= 1);
    }

    #[test]
    fn validate_rejects_contradictory_configs() {
        assert!(HotCallConfig::default().validate().is_ok());
        assert!(HotCallConfig::auto().validate().is_ok());
        for bad in [
            HotCallConfig {
                timeout_retries: 0,
                ..HotCallConfig::default()
            },
            HotCallConfig {
                spins_per_retry: 0,
                ..HotCallConfig::default()
            },
            HotCallConfig {
                idle_polls_before_sleep: Some(0),
                ..HotCallConfig::default()
            },
            HotCallConfig {
                fused_mode: FusedMode::Auto,
                fused_below_occupancy: 0,
                ..HotCallConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        // fused_below_occupancy of zero is fine while fusing is off.
        assert!(HotCallConfig {
            fused_below_occupancy: 0,
            ..HotCallConfig::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn validate_rejects_contradictory_policies() {
        assert!(ResponderPolicy::default().validate().is_ok());
        assert!(ResponderPolicy::auto().validate().is_ok());
        assert!(ResponderPolicy::auto().max >= 1);
        assert!(ResponderPolicy::fixed(0).validate().is_err());
        assert!(ResponderPolicy::elastic(3, 2).validate().is_err());
        assert!(ResponderPolicy {
            park_after_idle_polls: 0,
            ..ResponderPolicy::elastic(1, 4)
        }
        .validate()
        .is_err());
        // A fixed pool never parks, so a zero park budget is harmless.
        assert!(ResponderPolicy {
            park_after_idle_polls: 0,
            ..ResponderPolicy::fixed(2)
        }
        .validate()
        .is_ok());

        assert!(ShardPolicy::auto().validate().is_ok());
        assert!(ShardPolicy {
            min_active: 0,
            ..ShardPolicy::fixed(2)
        }
        .validate()
        .is_err());
        assert!(ShardPolicy {
            min_active: 5,
            ..ShardPolicy::fixed(4)
        }
        .validate()
        .is_err());
        assert!(ShardPolicy {
            park_after_idle_polls: 0,
            ..ShardPolicy::elastic(1, 4)
        }
        .validate()
        .is_err());
    }

    #[test]
    fn ring_stats_aggregates_over_shards() {
        let stats = RingStats {
            shards: vec![
                ShardStats {
                    shard: 0,
                    steals: 3,
                    steal_hits: 1,
                    cross_shard_wakes: 2,
                    ..ShardStats::default()
                },
                ShardStats {
                    shard: 1,
                    steals: 4,
                    steal_hits: 2,
                    ..ShardStats::default()
                },
            ],
            ..RingStats::default()
        };
        assert_eq!(stats.steals(), 7);
        assert_eq!(stats.steal_hits(), 3);
        assert_eq!(stats.cross_shard_wakes(), 2);
    }

    #[test]
    fn utilization_bounds() {
        let mut s = HotCallStats::default();
        assert_eq!(s.utilization(), 0.0);
        s.busy_polls = 25;
        s.idle_polls = 75;
        assert!((s.utilization() - 0.25).abs() < 1e-12);
    }
}
