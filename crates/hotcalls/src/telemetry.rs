//! The unified telemetry plane: cycle histograms, event tracing, and the
//! snapshot registry every layer reports into.
//!
//! The paper's entire argument is measurement — Table 1 latencies, Table 2
//! per-application call frequencies, Figures 10/11 core-cycle fractions —
//! and this module is the reproduction's measurement substrate:
//!
//! * [`CycleHist`] / [`AtomicHist`] — HDR-style log-bucketed cycle
//!   histograms (power-of-two buckets with [`SUB_COUNT`] sub-buckets per
//!   octave, ~12.5% relative resolution), mergeable, with
//!   p50/p90/p99/p999 extraction. The data planes record them at the
//!   submit→dispatch→complete→reap stage edges so **queueing delay** and
//!   **service time** are separable — the distinction behind the paper's
//!   p78 vs p99.97 HotCall latency split (§4.3).
//! * [`Tracer`] — a bounded ring-buffer event tracer (governor park and
//!   raise decisions, steal hits, doze wake redirects, arena slab grows,
//!   bundle sizes) with a `chrome://tracing`-compatible JSON exporter and
//!   the cheap [`trace`] hook that compiles out under the `telemetry-off`
//!   feature.
//! * [`TelemetryRegistry`] — merges every plane (single ring, pool,
//!   sharded, byte lanes), arena counters, the simulator's cycle ledger,
//!   and per-application [`ApiCensus`] tables into one serializable
//!   [`Snapshot`], exposed as Prometheus-style text.
//!
//! Everything on the hot path follows the responder-local discipline of
//! the data plane: histogram cells are single-writer (stolen work is
//! attributed to the *stealing* responder's cell) and updated with plain
//! `Relaxed` load/store pairs — no shared read-modify-write on the call
//! path. Only the reap-stage histogram, written by arbitrary requester
//! threads after the call has already completed, uses `fetch_add`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Build-mode switches
// ---------------------------------------------------------------------------

/// Whether this build carries telemetry instrumentation. `false` when the
/// crate was compiled with the `telemetry-off` feature — the build the
/// overhead gate compares against.
pub const TELEMETRY_ENABLED: bool = cfg!(not(feature = "telemetry-off"));

/// Schema version of the serialized telemetry [`Snapshot`]. Bumped when a
/// field is renamed or its meaning changes. v4 added the `paging` section
/// (EPC eviction/reload counters and cycles).
pub const TELEMETRY_SCHEMA_VERSION: u32 = 4;

/// Reads the current cycle counter (`RDTSC` on x86-64, a monotonic
/// nanosecond clock elsewhere). Returns 0 under `telemetry-off` so stage
/// stamps vanish from the instruction stream together with the records.
#[inline]
pub fn now_cycles() -> u64 {
    #[cfg(feature = "telemetry-off")]
    {
        0
    }
    #[cfg(not(feature = "telemetry-off"))]
    {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: RDTSC is unprivileged and universally available on
        // x86-64.
        unsafe {
            core::arch::x86_64::_rdtsc()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            use std::sync::OnceLock;
            static START: OnceLock<Instant> = OnceLock::new();
            START.get_or_init(Instant::now).elapsed().as_nanos() as u64
        }
    }
}

// ---------------------------------------------------------------------------
// Log-bucketed histograms
// ---------------------------------------------------------------------------

/// log2 of the sub-buckets per power-of-two octave.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave: each octave above the linear range splits into
/// this many equal-width buckets, bounding relative error at
/// `1 / SUB_COUNT` (12.5%).
pub const SUB_COUNT: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
pub const HIST_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_COUNT;

/// Bucket index of a value (monotone in the value).
#[inline]
fn bucket_index(v: u64) -> usize {
    let exp = 63 - (v | 1).leading_zeros();
    if exp <= SUB_BITS {
        // Linear range: values below 2^(SUB_BITS+1) get exact buckets.
        v as usize
    } else {
        let block = (exp - SUB_BITS + 1) as usize;
        let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUB_COUNT - 1);
        block * SUB_COUNT + sub
    }
}

/// Lowest value mapping into bucket `i`.
#[inline]
fn bucket_low(i: usize) -> u64 {
    if i < 2 * SUB_COUNT {
        i as u64
    } else {
        let block = i / SUB_COUNT;
        let sub = (i % SUB_COUNT) as u64;
        (SUB_COUNT as u64 + sub) << (block - 1)
    }
}

/// Highest value mapping into bucket `i` — what percentile queries report
/// (the HDR "highest equivalent value" convention, so exact small values
/// round-trip unchanged through the linear range).
#[inline]
fn bucket_high(i: usize) -> u64 {
    if i < 2 * SUB_COUNT {
        i as u64
    } else {
        let width = 1u64 << (i / SUB_COUNT - 1);
        bucket_low(i) + (width - 1)
    }
}

/// A mergeable log-bucketed cycle histogram (plain, single-threaded).
///
/// Power-of-two octaves with [`SUB_COUNT`] sub-buckets each: the relative
/// quantile error is bounded at 12.5% while the whole `u64` range fits in
/// [`HIST_BUCKETS`] buckets. Merging two histograms is element-wise
/// addition, so per-responder histograms combine into per-shard and
/// plane-wide views without losing quantile fidelity.
///
/// # Examples
///
/// ```
/// use hotcalls::telemetry::CycleHist;
///
/// let mut h = CycleHist::new();
/// for v in [3, 3, 7, 1_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.percentile(0.50), 3);
/// assert!(h.percentile(0.999) >= 1_000);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleHist {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for CycleHist {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for CycleHist {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CycleHist")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.percentile(0.50))
            .field("p99", &self.percentile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

impl CycleHist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        CycleHist {
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Adds all of `other`'s samples into `self`. Merge is associative
    /// and commutative: any merge order yields the histogram of the
    /// concatenated sample streams.
    pub fn merge(&mut self, other: &CycleHist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples (exact sum over exact count).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` — the highest value of the
    /// first bucket at which the cumulative count reaches `q * count`.
    /// Returns 0 for an empty histogram. The true max is reported exactly
    /// for `q = 1`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Never report beyond the exactly-tracked max.
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// The p50/p90/p99/p999 summary row the registry serializes.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            mean: self.mean(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
            max: self.max,
        }
    }
}

/// The serialized percentile summary of one histogram.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean cycles.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Exact maximum.
    pub max: u64,
}

/// The shared-memory histogram cell the data planes record into.
///
/// Bucket updates come in two flavors matching the plane's ownership
/// discipline: [`AtomicHist::record`] is **single-writer** (plain
/// `Relaxed` load + store, no RMW — the responder owns its cell, exactly
/// like `LocalStats` counter flushes), and [`AtomicHist::record_shared`]
/// uses `fetch_add` for the reap stage, where arbitrary requester threads
/// record after their call already completed (off the critical path).
///
/// Under the `telemetry-off` feature the cell allocates no buckets and
/// both record paths are empty.
#[derive(Debug)]
pub struct AtomicHist {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHist {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHist {
    /// Creates an empty cell (bucket-free under `telemetry-off`).
    pub fn new() -> Self {
        let buckets = if TELEMETRY_ENABLED { HIST_BUCKETS } else { 0 };
        AtomicHist {
            counts: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. **Single-writer**: only the cell's owning
    /// thread may call this (plain load+store, no RMW).
    #[inline]
    pub fn record(&self, v: u64) {
        if !TELEMETRY_ENABLED {
            return;
        }
        let b = &self.counts[bucket_index(v)];
        b.store(b.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.count
            .store(self.count.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.sum.store(
            self.sum.load(Ordering::Relaxed).saturating_add(v),
            Ordering::Relaxed,
        );
        if v > self.max.load(Ordering::Relaxed) {
            self.max.store(v, Ordering::Relaxed);
        }
    }

    /// Records one sample from any thread (`fetch_add`; reap stage only —
    /// never on the submit/service critical path).
    #[inline]
    pub fn record_shared(&self, v: u64) {
        if !TELEMETRY_ENABLED {
            return;
        }
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copies the cell into a plain mergeable histogram.
    pub fn snapshot(&self) -> CycleHist {
        let mut h = CycleHist::new();
        for (dst, src) in h.counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

// ---------------------------------------------------------------------------
// Stats snapshot types (the canonical homes — the old `config.rs` /
// `rt::arena` names re-export these)
// ---------------------------------------------------------------------------

/// Runtime statistics of one call plane — total calls serviced, timeout
/// fallbacks taken, responder wakeups, and the responder poll split that
/// yields [`HotCallStats::utilization`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotCallStats {
    /// Completed calls.
    pub calls: u64,
    /// Requester timeouts that fell back to the slow path.
    pub fallbacks: u64,
    /// Times a requester had to wake a sleeping responder.
    pub wakeups: u64,
    /// Responder poll iterations that found no work.
    pub idle_polls: u64,
    /// Responder poll iterations that serviced a call.
    pub busy_polls: u64,
    /// Calls the requester executed inline on its own core (the fused
    /// run-to-completion path — no handoff, no wake). Included in
    /// [`HotCallStats::calls`].
    pub fused_runs: u64,
    /// Calls that were eligible for the fused path but went through the
    /// responder pool instead (responders active, backlog over the
    /// break-even occupancy, or a lost service race).
    pub fused_fallbacks: u64,
}

impl HotCallStats {
    /// Fraction of responder polls that did useful work.
    pub fn utilization(&self) -> f64 {
        let total = self.idle_polls + self.busy_polls;
        if total == 0 {
            0.0
        } else {
            self.busy_polls as f64 / total as f64
        }
    }
}

/// A snapshot of the adaptive governor: how many responders (or shards)
/// are currently active vs parked, and the lifetime park/wake decision
/// counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GovernorStats {
    /// Responders currently in the active set.
    pub active: usize,
    /// Responders currently parked by the governor.
    pub parked: usize,
    /// Lifetime park (demote) decisions.
    pub parks: u64,
    /// Lifetime unpark (raise) decisions.
    pub wakes: u64,
    /// Policy floor.
    pub min: usize,
    /// Policy ceiling.
    pub max: usize,
}

/// Per-shard statistics of the sharded data plane.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Calls serviced by this shard's home responder (including stolen
    /// work it drained from siblings).
    pub serviced: u64,
    /// Polls the home responder spent on its own ring.
    pub home_polls: u64,
    /// Steal probes into sibling shards.
    pub steals: u64,
    /// Steal probes that found work.
    pub steal_hits: u64,
    /// Wakes redirected to this shard's responder for another shard's
    /// submission.
    pub cross_shard_wakes: u64,
    /// Is this shard currently parked by the governor?
    pub parked: bool,
    /// Submitted-but-unserviced entries at snapshot time.
    pub occupancy: usize,
}

/// A full snapshot of a (possibly sharded) ring plane: plane-wide totals,
/// the governor's state, and one [`ShardStats`] row per shard.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingStats {
    /// Plane-wide call/poll totals.
    pub totals: HotCallStats,
    /// Governor snapshot.
    pub governor: GovernorStats,
    /// Per-shard rows (a single-ring plane reports one degenerate row).
    pub shards: Vec<ShardStats>,
}

impl RingStats {
    /// Total steal probes across all shards.
    pub fn steals(&self) -> u64 {
        self.shards.iter().map(|s| s.steals).sum()
    }

    /// Total successful steals across all shards.
    pub fn steal_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.steal_hits).sum()
    }

    /// Total cross-shard wake redirects.
    pub fn cross_shard_wakes(&self) -> u64 {
        self.shards.iter().map(|s| s.cross_shard_wakes).sum()
    }

    /// The degenerate snapshot of a single-ring plane: one shard row
    /// carrying the whole plane's totals (no stealing, no cross-shard
    /// wakes by construction).
    pub fn from_single(totals: HotCallStats, governor: GovernorStats) -> Self {
        RingStats {
            totals,
            governor,
            shards: vec![ShardStats {
                shard: 0,
                serviced: totals.calls,
                home_polls: totals.busy_polls + totals.idle_polls,
                steals: 0,
                steal_hits: 0,
                cross_shard_wakes: 0,
                parked: false,
                occupancy: 0,
            }],
        }
    }
}

/// Counters of one slab arena: where payload buffers came from and where
/// they went back to.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArenaStats {
    /// Fresh slab allocations (cold path).
    pub allocs: u64,
    /// Buffers returned into the free list and reused.
    pub recycles: u64,
    /// Acquisitions satisfied inline in the slot (no buffer at all).
    pub inline_hits: u64,
    /// Recycle attempts rejected by the generation check.
    pub stale_recycles: u64,
}

impl ArenaStats {
    /// Total acquisitions (inline + slab).
    pub fn acquires(&self) -> u64 {
        self.inline_hits + self.allocs + self.recycles
    }

    /// Fraction of acquisitions served inline in the slot.
    pub fn inline_hit_rate(&self) -> f64 {
        let total = self.acquires();
        if total == 0 {
            0.0
        } else {
            self.inline_hits as f64 / total as f64
        }
    }

    /// Fraction of *slab* acquisitions served by recycling.
    pub fn recycle_rate(&self) -> f64 {
        let slab = self.allocs + self.recycles;
        if slab == 0 {
            0.0
        } else {
            self.recycles as f64 / slab as f64
        }
    }

    /// Fresh allocations per acquisition — the steady-state zero-alloc
    /// claim is `allocs_per_op -> 0`.
    pub fn allocs_per_op(&self) -> f64 {
        let total = self.acquires();
        if total == 0 {
            0.0
        } else {
            self.allocs as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Event tracer
// ---------------------------------------------------------------------------

/// One traced event: a cycle timestamp, a static kind tag, and two
/// free-form arguments (indices, sizes — whatever the site records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// [`now_cycles`] at the event site.
    pub ts: u64,
    /// Static event tag (e.g. `"governor_park"`, `"steal_hit"`,
    /// `"arena_grow"`, `"bundle_submit"`).
    pub kind: &'static str,
    /// First argument (site-specific).
    pub a: u64,
    /// Second argument (site-specific).
    pub b: u64,
}

/// A bounded event buffer that drops **oldest-first** under overflow,
/// counting every dropped event.
///
/// # Examples
///
/// ```
/// use hotcalls::telemetry::{TraceBuffer, TraceEvent};
///
/// let mut b = TraceBuffer::with_capacity(2);
/// for i in 0..3 {
///     b.push(TraceEvent { ts: i, kind: "e", a: i, b: 0 });
/// }
/// let (events, dropped) = b.drain();
/// assert_eq!(dropped, 1);
/// assert_eq!(events[0].ts, 1); // the oldest event (ts 0) was dropped
/// ```
#[derive(Debug)]
pub struct TraceBuffer {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// An empty buffer holding at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        TraceBuffer {
            buf: VecDeque::with_capacity(cap.min(1 << 20)),
            cap,
            dropped: 0,
        }
    }

    /// Appends one event, evicting the oldest if the buffer is full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() >= self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Takes all buffered events (oldest first) and the lifetime dropped
    /// count, leaving the buffer empty (the dropped counter persists).
    pub fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        (self.buf.drain(..).collect(), self.dropped)
    }

    /// Events dropped so far (oldest-first eviction).
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cycle→wall-clock calibration captured when tracing starts, so the
/// exporter can place cycle timestamps on `chrome://tracing`'s
/// microsecond axis.
#[derive(Debug, Clone, Copy)]
struct Calibration {
    t0_cycles: u64,
    t0_wall: Instant,
}

/// The process-wide tracer behind the [`trace`] hook: an enable flag the
/// hot path checks with one `Relaxed` load, and a mutex-guarded
/// [`TraceBuffer`] touched only when tracing is actually on.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    inner: Mutex<TracerInner>,
}

#[derive(Debug)]
struct TracerInner {
    buf: TraceBuffer,
    calib: Option<Calibration>,
}

/// Default event capacity used by [`Tracer::enable`] callers that take
/// the default (e.g. the bench `--trace-out` flag).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

static TRACER: Tracer = Tracer {
    enabled: AtomicBool::new(false),
    inner: Mutex::new(TracerInner {
        buf: TraceBuffer {
            buf: VecDeque::new(),
            cap: 0,
            dropped: 0,
        },
        calib: None,
    }),
};

/// The process-wide tracer instance.
pub fn tracer() -> &'static Tracer {
    &TRACER
}

impl Tracer {
    /// Turns tracing on with a buffer of at most `cap` events, capturing
    /// the cycle↔wall-clock calibration pair for the exporter. Resets any
    /// previously buffered events.
    pub fn enable(&self, cap: usize) {
        let mut inner = self.inner.lock().expect("tracer lock");
        inner.buf = TraceBuffer::with_capacity(cap);
        inner.calib = Some(Calibration {
            t0_cycles: now_cycles(),
            t0_wall: Instant::now(),
        });
        self.enabled.store(true, Ordering::Release);
    }

    /// Turns tracing off (buffered events stay until drained).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Is tracing currently on?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one event (called by [`trace`] after the enabled check).
    pub fn record(&self, kind: &'static str, a: u64, b: u64) {
        let ev = TraceEvent {
            ts: now_cycles(),
            kind,
            a,
            b,
        };
        if let Ok(mut inner) = self.inner.lock() {
            inner.buf.push(ev);
        }
    }

    /// Takes all buffered events and the dropped count.
    pub fn drain(&self) -> (Vec<TraceEvent>, u64) {
        self.inner.lock().expect("tracer lock").buf.drain()
    }

    /// Events dropped so far.
    pub fn dropped_events(&self) -> u64 {
        self.inner.lock().expect("tracer lock").buf.dropped_events()
    }

    /// Drains the buffer and renders it as a `chrome://tracing` JSON
    /// document (instant events on the microsecond axis, calibrated from
    /// the enable-time cycle↔wall pair). Loadable in `chrome://tracing`
    /// or Perfetto.
    pub fn export_chrome_json(&self) -> String {
        let (events, dropped, calib) = {
            let mut inner = self.inner.lock().expect("tracer lock");
            let calib = inner.calib;
            let (events, dropped) = inner.buf.drain();
            (events, dropped, calib)
        };
        let cycles_per_us = calib
            .map(|c| {
                let wall_us = c.t0_wall.elapsed().as_micros() as f64;
                let cycles = now_cycles().saturating_sub(c.t0_cycles) as f64;
                if wall_us > 0.0 && cycles > 0.0 {
                    cycles / wall_us
                } else {
                    1_000.0
                }
            })
            .unwrap_or(1_000.0);
        let t0 = calib.map(|c| c.t0_cycles).unwrap_or(0);
        let mut out = String::from("{\n\"displayTimeUnit\": \"ns\",\n");
        out.push_str(&format!("\"droppedEvents\": {dropped},\n"));
        out.push_str("\"traceEvents\": [\n");
        for (i, ev) in events.iter().enumerate() {
            let ts_us = ev.ts.saturating_sub(t0) as f64 / cycles_per_us;
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"g\", \"pid\": 1, \"tid\": 1, \
                 \"ts\": {ts_us:.3}, \"args\": {{\"a\": {}, \"b\": {}}}}}",
                ev.kind, ev.a, ev.b
            ));
        }
        out.push_str("\n]\n}\n");
        out
    }
}

/// The cheap trace hook the data planes call: one `Relaxed` flag load
/// when tracing is off, nothing at all under `telemetry-off`.
#[inline]
pub fn trace(kind: &'static str, a: u64, b: u64) {
    if !TELEMETRY_ENABLED {
        return;
    }
    if TRACER.is_enabled() {
        TRACER.record(kind, a, b);
    }
}

// ---------------------------------------------------------------------------
// Snapshot / registry
// ---------------------------------------------------------------------------

/// Per-lane stage histograms. A *lane* is one responder's histogram cell;
/// on the sharded plane responder index equals shard index (one home
/// responder per shard), so lane rows double as the per-shard view. Work
/// a responder *stole* from a sibling shard is attributed to the stealing
/// responder's lane (the cell stays single-writer).
#[derive(Debug, Clone)]
pub struct LaneTelemetry {
    /// Responder (== shard, on the sharded plane) index.
    pub lane: usize,
    /// Cycles from submit to responder pickup (queueing delay).
    pub queue: CycleHist,
    /// Cycles from pickup to completion (service time).
    pub service: CycleHist,
}

/// One plane's full telemetry: counter snapshot plus per-lane stage
/// histograms and the plane-wide reap histogram.
#[derive(Debug, Clone)]
pub struct PlaneTelemetry {
    /// Registered plane name.
    pub name: String,
    /// Plane kind: `"single"`, `"pool"`, `"sharded"`, `"byte-single"`,
    /// or `"byte-sharded"`.
    pub kind: &'static str,
    /// Counter snapshot (totals, governor, per-shard rows).
    pub stats: RingStats,
    /// Per-lane queue/service histograms.
    pub lanes: Vec<LaneTelemetry>,
    /// Cycles from completion to the requester reaping the response,
    /// recorded by requester threads (shared cell, off the hot path).
    pub reap: CycleHist,
}

impl PlaneTelemetry {
    /// All lanes' queueing histograms merged into one.
    pub fn merged_queue(&self) -> CycleHist {
        let mut h = CycleHist::new();
        for lane in &self.lanes {
            h.merge(&lane.queue);
        }
        h
    }

    /// All lanes' service histograms merged into one.
    pub fn merged_service(&self) -> CycleHist {
        let mut h = CycleHist::new();
        for lane in &self.lanes {
            h.merge(&lane.service);
        }
        h
    }
}

/// One named arena's counters in the snapshot.
#[derive(Debug, Clone)]
pub struct ArenaTelemetry {
    /// Registered arena name (e.g. the owning lane).
    pub name: String,
    /// Counter snapshot.
    pub stats: ArenaStats,
}

/// One named simulator cycle-ledger entry (virtual cycles from
/// `sgx-sim`'s clock — e.g. total machine time, interface time).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimLedgerEntry {
    /// Account name.
    pub name: String,
    /// Virtual cycles accrued.
    pub cycles: u64,
}

/// One API's row in the Table-2-style census.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApiCensusRow {
    /// API (edge function) name.
    pub name: String,
    /// Invocations.
    pub calls: u64,
    /// Calls per (virtual) second.
    pub calls_per_sec: f64,
    /// Mean interface cycles per call.
    pub cycles_per_call: f64,
    /// This API's share of all interface cycles, in `[0, 1]`.
    pub share_of_interface: f64,
}

/// A Table-2-style census of one application under one interface mode:
/// which APIs were called, how often, at what per-call cycle cost, and
/// what fraction of core time the interface consumed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApiCensus {
    /// Application name (`memcached`, `lighttpd`, `openvpn`).
    pub app: String,
    /// Interface mode label (`sdk`, `hot`, `sharded`).
    pub mode: String,
    /// Virtual seconds the measured window spanned.
    pub elapsed_secs: f64,
    /// Total API calls issued.
    pub total_calls: u64,
    /// Total cycles spent inside the call interface.
    pub interface_cycles: u64,
    /// Fraction of elapsed core time spent in the interface (Table 2's
    /// "Core Time" column).
    pub core_time_fraction: f64,
    /// Per-API rows, most frequent first.
    pub rows: Vec<ApiCensusRow>,
}

/// EPC paging counters from one simulated machine — what the paging
/// cliff costs, made visible. Mirrors `sgx_sim::EpcStats` in
/// telemetry-neutral terms (an eviction is an EWB, a reload an ELDU).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PagingStats {
    /// Pages evicted from the EPC (EWB executions).
    pub evictions: u64,
    /// Pages reloaded into the EPC (ELDU executions).
    pub reloads: u64,
    /// Total cycles charged to paging (fault overhead + ELDU + EWB).
    pub cycles: u64,
}

impl From<sgx_sim::EpcStats> for PagingStats {
    fn from(s: sgx_sim::EpcStats) -> Self {
        PagingStats {
            evictions: s.ewb,
            reloads: s.eldu,
            cycles: s.paging_cycles,
        }
    }
}

/// One named machine's paging counters in a snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PagingTelemetry {
    /// Machine / workload label.
    pub name: String,
    /// The counters.
    pub stats: PagingStats,
}

/// The merged, serializable view of everything the registry knows.
#[derive(Debug)]
pub struct Snapshot {
    /// [`TELEMETRY_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Was this build instrumented ([`TELEMETRY_ENABLED`])?
    pub enabled: bool,
    /// Every registered plane's telemetry.
    pub planes: Vec<PlaneTelemetry>,
    /// Every registered arena's counters.
    pub arenas: Vec<ArenaTelemetry>,
    /// Per-app API censuses.
    pub censuses: Vec<ApiCensus>,
    /// Simulator cycle-ledger entries.
    pub sim: Vec<SimLedgerEntry>,
    /// EPC paging counters per simulated machine (schema v4).
    pub paging: Vec<PagingTelemetry>,
    /// Every registered control plane's decision counters and routing
    /// table (schema v3).
    pub ctl: Vec<crate::ctl::CtlTelemetry>,
    /// Events the process tracer has dropped so far.
    pub tracer_dropped: u64,
}

fn prom_hist(out: &mut String, metric: &str, labels: &str, h: &CycleHist) {
    let s = h.summary();
    for (q, v) in [
        ("0.5", s.p50),
        ("0.9", s.p90),
        ("0.99", s.p99),
        ("0.999", s.p999),
    ] {
        out.push_str(&format!("{metric}{{{labels},quantile=\"{q}\"}} {v}\n"));
    }
    out.push_str(&format!("{metric}_count{{{labels}}} {}\n", s.count));
    out.push_str(&format!("{metric}_max{{{labels}}} {}\n", s.max));
}

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (counters as `_total`, histogram percentiles as quantile-labelled
    /// gauges — a summary-style exposition).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# HELP hotcalls_telemetry_enabled 1 when the build is instrumented\n\
             hotcalls_telemetry_enabled {}\n",
            u8::from(self.enabled)
        ));
        out.push_str(&format!(
            "hotcalls_tracer_dropped_events_total {}\n",
            self.tracer_dropped
        ));
        for p in &self.planes {
            let pl = format!("plane=\"{}\",kind=\"{}\"", p.name, p.kind);
            out.push_str(&format!(
                "hotcalls_calls_total{{{pl}}} {}\n",
                p.stats.totals.calls
            ));
            out.push_str(&format!(
                "hotcalls_fallbacks_total{{{pl}}} {}\n",
                p.stats.totals.fallbacks
            ));
            out.push_str(&format!(
                "hotcalls_wakeups_total{{{pl}}} {}\n",
                p.stats.totals.wakeups
            ));
            out.push_str(&format!(
                "hotcalls_fused_runs_total{{{pl}}} {}\n",
                p.stats.totals.fused_runs
            ));
            out.push_str(&format!(
                "hotcalls_fused_fallbacks_total{{{pl}}} {}\n",
                p.stats.totals.fused_fallbacks
            ));
            out.push_str(&format!(
                "hotcalls_governor_active{{{pl}}} {}\n",
                p.stats.governor.active
            ));
            out.push_str(&format!(
                "hotcalls_governor_parks_total{{{pl}}} {}\n",
                p.stats.governor.parks
            ));
            for s in &p.stats.shards {
                out.push_str(&format!(
                    "hotcalls_shard_serviced_total{{{pl},shard=\"{}\"}} {}\n",
                    s.shard, s.serviced
                ));
                out.push_str(&format!(
                    "hotcalls_shard_steal_hits_total{{{pl},shard=\"{}\"}} {}\n",
                    s.shard, s.steal_hits
                ));
            }
            for lane in &p.lanes {
                let ll = format!("{pl},lane=\"{}\"", lane.lane);
                prom_hist(&mut out, "hotcalls_queue_cycles", &ll, &lane.queue);
                prom_hist(&mut out, "hotcalls_service_cycles", &ll, &lane.service);
            }
            prom_hist(&mut out, "hotcalls_reap_cycles", &pl, &p.reap);
        }
        for a in &self.arenas {
            let al = format!("arena=\"{}\"", a.name);
            out.push_str(&format!(
                "hotcalls_arena_allocs_total{{{al}}} {}\n",
                a.stats.allocs
            ));
            out.push_str(&format!(
                "hotcalls_arena_recycles_total{{{al}}} {}\n",
                a.stats.recycles
            ));
            out.push_str(&format!(
                "hotcalls_arena_inline_hits_total{{{al}}} {}\n",
                a.stats.inline_hits
            ));
        }
        for e in &self.sim {
            out.push_str(&format!(
                "hotcalls_sim_cycles_total{{account=\"{}\"}} {}\n",
                e.name, e.cycles
            ));
        }
        for p in &self.paging {
            let pl = format!("epc=\"{}\"", p.name);
            out.push_str(&format!(
                "hotcalls_epc_evictions_total{{{pl}}} {}\n",
                p.stats.evictions
            ));
            out.push_str(&format!(
                "hotcalls_epc_reloads_total{{{pl}}} {}\n",
                p.stats.reloads
            ));
            out.push_str(&format!(
                "hotcalls_epc_paging_cycles_total{{{pl}}} {}\n",
                p.stats.cycles
            ));
        }
        for c in &self.ctl {
            let cl = format!("ctl=\"{}\"", c.name);
            out.push_str(&format!(
                "hotcalls_ctl_decisions_total{{{cl}}} {}\n",
                c.stats.decisions
            ));
            out.push_str(&format!(
                "hotcalls_ctl_route_flips_total{{{cl}}} {}\n",
                c.stats.flips
            ));
            out.push_str(&format!(
                "hotcalls_ctl_sdk_demotions_total{{{cl}}} {}\n",
                c.stats.sdk_demotions
            ));
            out.push_str(&format!(
                "hotcalls_ctl_promotions_total{{{cl}}} {}\n",
                c.stats.promotions
            ));
            out.push_str(&format!(
                "hotcalls_ctl_explore_probes_total{{{cl}}} {}\n",
                c.stats.explore_probes
            ));
            out.push_str(&format!(
                "hotcalls_ctl_resizes_total{{{cl},direction=\"grow\"}} {}\n",
                c.stats.grows
            ));
            out.push_str(&format!(
                "hotcalls_ctl_resizes_total{{{cl},direction=\"shrink\"}} {}\n",
                c.stats.shrinks
            ));
            out.push_str(&format!(
                "hotcalls_ctl_bundle_resizes_total{{{cl}}} {}\n",
                c.stats.bundle_resizes
            ));
            out.push_str(&format!(
                "hotcalls_ctl_bundle_flush{{{cl}}} {}\n",
                c.bundle_flush
            ));
            out.push_str(&format!(
                "hotcalls_ctl_chunk_bytes{{{cl}}} {}\n",
                c.chunk_bytes
            ));
            out.push_str(&format!(
                "hotcalls_ctl_chunk_resizes_total{{{cl},direction=\"shrink\"}} {}\n",
                c.stats.chunk_shrinks
            ));
            out.push_str(&format!(
                "hotcalls_ctl_chunk_resizes_total{{{cl},direction=\"grow\"}} {}\n",
                c.stats.chunk_grows
            ));
            for r in &c.routes {
                out.push_str(&format!(
                    "hotcalls_ctl_api_transport{{{cl},api=\"{}\",transport=\"{}\"}} 1\n",
                    r.api, r.transport
                ));
                out.push_str(&format!(
                    "hotcalls_ctl_api_flips_total{{{cl},api=\"{}\"}} {}\n",
                    r.api, r.flips
                ));
            }
        }
        for c in &self.censuses {
            let cl = format!("app=\"{}\",mode=\"{}\"", c.app, c.mode);
            out.push_str(&format!(
                "hotcalls_census_core_time_fraction{{{cl}}} {:.6}\n",
                c.core_time_fraction
            ));
            for row in &c.rows {
                out.push_str(&format!(
                    "hotcalls_api_calls_total{{{cl},api=\"{}\"}} {}\n",
                    row.name, row.calls
                ));
                out.push_str(&format!(
                    "hotcalls_api_cycles_per_call{{{cl},api=\"{}\"}} {:.1}\n",
                    row.name, row.cycles_per_call
                ));
            }
        }
        out
    }
}

/// A plane-telemetry provider: a closure the registry polls at snapshot
/// time (servers hand these out; they capture the plane's shared state).
pub type PlaneProvider = Box<dyn Fn() -> PlaneTelemetry + Send + Sync>;

/// An arena-counter provider polled at snapshot time.
pub type ArenaProvider = Box<dyn Fn() -> ArenaStats + Send + Sync>;

/// A control-plane provider polled at snapshot time (see
/// [`crate::ctl::Controller::provider`]).
pub type CtlProvider = Box<dyn Fn() -> crate::ctl::CtlTelemetry + Send + Sync>;

#[derive(Default)]
struct RegistryInner {
    planes: Vec<PlaneProvider>,
    arenas: Vec<(String, ArenaProvider)>,
    censuses: Vec<ApiCensus>,
    sim: Vec<SimLedgerEntry>,
    paging: Vec<PagingTelemetry>,
    ctl: Vec<CtlProvider>,
}

/// The registry that merges every telemetry source into one
/// [`Snapshot`].
///
/// Planes and arenas register pull-style providers (polled at snapshot
/// time, so the snapshot is always current); censuses and simulator
/// ledger entries are pushed once their runs finish.
///
/// # Examples
///
/// ```
/// use hotcalls::rt::{CallTable, RingServer};
/// use hotcalls::telemetry::TelemetryRegistry;
/// use hotcalls::HotCallConfig;
///
/// let mut table: CallTable<u64, u64> = CallTable::new();
/// let inc = table.register(|x| x + 1);
/// let server = RingServer::spawn(table, 8, HotCallConfig::default());
/// let reg = TelemetryRegistry::new();
/// reg.register_plane(server.telemetry_provider("rt"));
/// server.requester().call(inc, 1).unwrap();
/// let snap = reg.snapshot();
/// assert_eq!(snap.planes.len(), 1);
/// assert_eq!(snap.planes[0].stats.totals.calls, 1);
/// ```
#[derive(Default)]
pub struct TelemetryRegistry {
    inner: Mutex<RegistryInner>,
}

impl core::fmt::Debug for TelemetryRegistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let inner = self.inner.lock().expect("registry lock");
        f.debug_struct("TelemetryRegistry")
            .field("planes", &inner.planes.len())
            .field("arenas", &inner.arenas.len())
            .field("censuses", &inner.censuses.len())
            .finish()
    }
}

impl TelemetryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a plane provider (see `telemetry_provider` on
    /// `RingServer`, `ShardedServer`, and `ByteRing`).
    pub fn register_plane(&self, provider: PlaneProvider) {
        self.inner
            .lock()
            .expect("registry lock")
            .planes
            .push(provider);
    }

    /// Registers a named arena-counter provider.
    pub fn register_arena(
        &self,
        name: impl Into<String>,
        provider: impl Fn() -> ArenaStats + Send + Sync + 'static,
    ) {
        self.inner
            .lock()
            .expect("registry lock")
            .arenas
            .push((name.into(), Box::new(provider)));
    }

    /// Registers a control-plane provider (see
    /// [`crate::ctl::Controller::provider`]).
    pub fn register_ctl(&self, provider: CtlProvider) {
        self.inner.lock().expect("registry lock").ctl.push(provider);
    }

    /// Adds a finished application census.
    pub fn add_census(&self, census: ApiCensus) {
        self.inner
            .lock()
            .expect("registry lock")
            .censuses
            .push(census);
    }

    /// Adds one simulator cycle-ledger account.
    pub fn add_sim_cycles(&self, name: impl Into<String>, cycles: u64) {
        self.inner
            .lock()
            .expect("registry lock")
            .sim
            .push(SimLedgerEntry {
                name: name.into(),
                cycles,
            });
    }

    /// Adds one machine's EPC paging counters (push-style, like
    /// [`TelemetryRegistry::add_sim_cycles`]: the simulated `Machine` is
    /// `&mut`-owned by its driver, so there is nothing for a pull provider
    /// to capture). Accepts `sgx_sim::EpcStats` directly via `Into`.
    pub fn add_paging(&self, name: impl Into<String>, stats: impl Into<PagingStats>) {
        self.inner
            .lock()
            .expect("registry lock")
            .paging
            .push(PagingTelemetry {
                name: name.into(),
                stats: stats.into(),
            });
    }

    /// Polls every provider and merges everything into one snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry lock");
        Snapshot {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            enabled: TELEMETRY_ENABLED,
            planes: inner.planes.iter().map(|p| p()).collect(),
            arenas: inner
                .arenas
                .iter()
                .map(|(name, p)| ArenaTelemetry {
                    name: name.clone(),
                    stats: p(),
                })
                .collect(),
            censuses: inner.censuses.clone(),
            sim: inner.sim.clone(),
            paging: inner.paging.clone(),
            ctl: inner.ctl.iter().map(|p| p()).collect(),
            tracer_dropped: tracer().dropped_events(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1..10_000u64 {
            let i = bucket_index(v);
            assert!(i >= prev, "index regressed at {v}");
            assert!(i <= prev + 1, "index skipped a bucket at {v}");
            prev = i;
        }
        assert!(bucket_index(u64::MAX) < HIST_BUCKETS);
    }

    #[test]
    fn bucket_edges_roundtrip() {
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_low(i)), i, "low edge of {i}");
            assert_eq!(bucket_index(bucket_high(i)), i, "high edge of {i}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = CycleHist::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(1.0 / 16.0), 0);
        assert_eq!(h.percentile(0.5), 7);
        assert_eq!(h.percentile(1.0), 15);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut h = CycleHist::new();
        for v in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            for _ in 0..10 {
                h.record(v);
            }
        }
        let s = h.summary();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
        assert!(s.p999 <= s.max);
        assert_eq!(s.count, 60);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = CycleHist::new();
        for v in [620u64, 1_400, 8_640, 1_000_000] {
            h.record(v);
            let p = h.percentile(1.0);
            // p == max is exact; check the bucket itself is within 12.5%.
            assert_eq!(p, v);
            let hi = bucket_high(bucket_index(v));
            assert!(
                (hi - bucket_low(bucket_index(v))) as f64 <= v as f64 / 8.0 + 1.0,
                "bucket too wide at {v}"
            );
            h = CycleHist::new();
        }
    }

    #[test]
    fn atomic_hist_matches_plain() {
        let a = AtomicHist::new();
        let mut p = CycleHist::new();
        for v in [0u64, 1, 63, 64, 65, 4_095, 1 << 40] {
            a.record(v);
            a.record_shared(v);
            p.record(v);
            p.record(v);
        }
        if TELEMETRY_ENABLED {
            let s = a.snapshot();
            assert_eq!(s.count(), p.count());
            assert_eq!(s.percentile(0.5), p.percentile(0.5));
            assert_eq!(s.max(), p.max());
        }
    }

    #[test]
    fn trace_buffer_drops_oldest_first() {
        let mut b = TraceBuffer::with_capacity(3);
        for i in 0..5u64 {
            b.push(TraceEvent {
                ts: i,
                kind: "e",
                a: i,
                b: 0,
            });
        }
        assert_eq!(b.dropped_events(), 2);
        let (events, dropped) = b.drain();
        assert_eq!(dropped, 2);
        assert_eq!(
            events.iter().map(|e| e.ts).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "survivors are the newest, oldest were evicted first"
        );
        assert!(b.is_empty());
    }

    #[test]
    fn chrome_export_is_balanced_json() {
        let t = Tracer {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(TracerInner {
                buf: TraceBuffer::with_capacity(0),
                calib: None,
            }),
        };
        t.enable(16);
        t.record("governor_park", 1, 0);
        t.record("steal_hit", 2, 7);
        let json = t.export_chrome_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("governor_park"));
    }

    #[test]
    fn registry_merges_push_sources() {
        let reg = TelemetryRegistry::new();
        reg.add_census(ApiCensus {
            app: "memcached".into(),
            mode: "sdk".into(),
            elapsed_secs: 1.0,
            total_calls: 10,
            interface_cycles: 83_000,
            core_time_fraction: 0.4,
            rows: vec![ApiCensusRow {
                name: "read".into(),
                calls: 10,
                calls_per_sec: 10.0,
                cycles_per_call: 8_300.0,
                share_of_interface: 1.0,
            }],
        });
        reg.add_sim_cycles("machine", 123);
        reg.register_arena("lane0", ArenaStats::default);
        reg.add_paging(
            "machine",
            PagingStats {
                evictions: 7,
                reloads: 9,
                cycles: 140_000,
            },
        );
        let snap = reg.snapshot();
        assert_eq!(snap.schema_version, TELEMETRY_SCHEMA_VERSION);
        assert_eq!(snap.censuses.len(), 1);
        assert_eq!(snap.sim[0].cycles, 123);
        assert_eq!(snap.paging[0].stats.reloads, 9);
        let prom = snap.to_prometheus();
        assert!(prom.contains("hotcalls_api_calls_total"));
        assert!(prom.contains("app=\"memcached\""));
        assert!(prom.contains("hotcalls_sim_cycles_total{account=\"machine\"} 123"));
        assert!(prom.contains("hotcalls_epc_evictions_total{epc=\"machine\"} 7"));
        assert!(prom.contains("hotcalls_epc_reloads_total{epc=\"machine\"} 9"));
        assert!(prom.contains("hotcalls_epc_paging_cycles_total{epc=\"machine\"} 140000"));
    }

    #[test]
    fn paging_stats_mirror_sim_counters() {
        let from: PagingStats = sgx_sim::EpcStats {
            ewb: 3,
            eldu: 5,
            resident_hits: 100,
            paging_cycles: 60_000,
        }
        .into();
        assert_eq!(
            from,
            PagingStats {
                evictions: 3,
                reloads: 5,
                cycles: 60_000,
            }
        );
    }

    #[test]
    fn ring_stats_from_single_is_one_degenerate_shard() {
        let totals = HotCallStats {
            calls: 5,
            busy_polls: 5,
            idle_polls: 3,
            ..Default::default()
        };
        let rs = RingStats::from_single(totals, GovernorStats::default());
        assert_eq!(rs.shards.len(), 1);
        assert_eq!(rs.shards[0].serviced, 5);
        assert_eq!(rs.steals(), 0);
    }
}
