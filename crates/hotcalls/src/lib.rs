//! # hotcalls — a fast, switchless call interface for SGX enclaves
//!
//! Reproduction of the primary contribution of *"Regaining Lost Cycles with
//! HotCalls: A Fast Interface for SGX Secure Enclaves"* (Weisse, Bertacco,
//! Austin — ISCA 2017).
//!
//! SGX ecalls and ocalls cost 8,200–17,000 cycles because each one is a
//! secure context switch. HotCalls replace the switch with a spin-lock-
//! synchronized mailbox in un-encrypted shared memory, polled by a
//! dedicated responder thread — ~620 cycles per call, a 13–27× speedup.
//!
//! Two implementations live here:
//!
//! * [`sim`] — HotCalls inside the `sgx-sim` cycle model, used to reproduce
//!   the paper's Fig. 3 CDF and the application studies (Figs. 10, 11).
//! * [`rt`] — a **real threaded runtime**: [`rt::HotCallServer`] spawns the
//!   polling responder, [`rt::Requester`] issues calls, with the paper's
//!   timeout-fallback and idle-sleep mechanisms. The data plane is
//!   lock-free (payloads in `UnsafeCell` slots guarded by the atomic state
//!   machine, cache-line-padded hot words), and [`rt::RingServer`] scales
//!   it out: a multi-slot submission ring served by a pool of responders
//!   ([`rt::RingServer::spawn_pool`]) that drain submitted slots in
//!   batches. The ring is *pipelined*: [`rt::RingRequester::submit`] /
//!   [`rt::RingRequester::wait_any`] keep many calls in flight per
//!   requester, [`rt::Bundle`] packs N small calls into one submission,
//!   and [`rt::RingServer::spawn_adaptive`] replaces the static pool size
//!   with a [`ResponderPolicy`] governor that parks idle responders and
//!   wakes them on backlog. This is usable as a general low-latency
//!   inter-thread call primitive.
//! * [`ctl`] — the **configless control plane**: a per-API break-even
//!   router and an online worker-efficiency sizer that close the loop
//!   from [`telemetry`] back into the data plane's knobs, so the three
//!   demo apps run with zero explicit configuration.
//!
//! ## Threaded quick start
//!
//! ```
//! use hotcalls::rt::{CallTable, HotCallServer};
//! use hotcalls::HotCallConfig;
//!
//! let mut table: CallTable<Vec<u8>, usize> = CallTable::new();
//! let write_id = table.register(|buf: Vec<u8>| buf.len()); // the "ocall"
//!
//! let server = HotCallServer::spawn(table, HotCallConfig::default());
//! let requester = server.requester();
//! assert_eq!(requester.call(write_id, vec![0; 128]).unwrap(), 128);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aio;
mod config;
pub mod ctl;
mod error;
pub mod rt;
pub mod sim;
pub mod telemetry;

pub use aio::{block_on, Reactor, ReapPlane};
pub use config::{
    FusedMode, GovernorStats, HotCallConfig, HotCallStats, ResponderPolicy, RingStats, ShardPolicy,
    ShardStats,
};
pub use ctl::{
    ApiRouter, ChunkPolicy, ChunkSizer, Controller, CtlPolicy, CtlStats, SizerPolicy, Transport,
};
pub use error::{HotCallError, Result};
pub use telemetry::{PagingStats, Snapshot, TelemetryRegistry, TELEMETRY_ENABLED};
