//! Executor-agnostic async front end for the HotCalls planes.
//!
//! The call futures here give [`Ticket`](crate::rt::Ticket) /
//! [`MailTicket`](crate::rt::MailTicket) real `Future` semantics: each
//! ring slot carries a waker-registration cell, the async submit paths
//! *arm* it before publishing, and whichever thread completes the call —
//! a pooled responder, a work stealer, the fused inline path on the
//! submitting core, or the shutdown sweep — fires the stored waker. An
//! awaiting task therefore never busy-polls: it parks in its executor and
//! is woken exactly once, when its response is DONE.
//!
//! The waker cell is a five-state machine (`IDLE → ARMED → {SET ↔ BUSY} →
//! FIRED`) whose transitions are all read-modify-writes on one atomic, so
//! registration (the future's `poll`) and firing (the completer) are
//! race-free without locks: a completion that beats the registration
//! parks the cell in `FIRED` and `poll` observes it immediately; a
//! registration that beats the completion leaves a waker the completer
//! takes and wakes. The terminal `FIRED` state is cleared by the
//! *redeemer*, closing the slot-reuse race where a descheduled completer
//! could otherwise fire into the next call's arming.
//!
//! Two consumption styles are provided:
//!
//! * **Futures** — [`RingRequester::call_async`],
//!   [`ShardedRequester::call_async`] and [`Requester::call_async`]
//!   return one future per call; drive them with any executor, or with
//!   the bundled [`block_on`] for executor-free tests and tools.
//! * **Reactor** — [`Reactor`] keeps a set of in-flight tickets on a
//!   [`ReapPlane`] and batch-reaps them through the deadline-bounded
//!   `wait_any` variants, the shape an event loop (one thread, many
//!   thousands of logical connections) wants: submissions are never gated
//!   on completions, and one reap sweep retires everything that finished.
//!
//! No executor dependency, no allocation per call on the steady state:
//! registering a waker clones it (a refcount bump for `Arc`-backed
//! wakers), and the ticket's abandonment guard is an `Arc` clone of a
//! board the plane already owns.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;
use std::time::{Duration, Instant};

use crate::error::Result;
use crate::rt::{MailTicket, Requester, RingRequester, ShardedRequester, Ticket};

/// A park/unpark waker for [`block_on`]: `wake` sets the flag and unparks
/// the blocked thread. The flag absorbs wakes that land before the park,
/// so a completion between `poll` and `park` is never lost.
struct ThreadWaker {
    thread: Thread,
    notified: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.notified.swap(true, Ordering::Release) {
            self.thread.unpark();
        }
    }
}

/// Drives `future` to completion on the current thread, parking between
/// polls. The minimal executor: enough to await HotCall futures from
/// synchronous code (tests, benches, the load harness) without pulling in
/// a runtime.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = std::pin::pin!(future);
    let waker_state = Arc::new(ThreadWaker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&waker_state));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => {
                // Consume one notification; park until it arrives. A wake
                // that raced ahead already set the flag and this loop
                // falls straight through to the next poll.
                while !waker_state.notified.swap(false, Ordering::Acquire) {
                    std::thread::park();
                }
            }
        }
    }
}

/// An in-flight call on a [`RingRequester`], awaiting its response.
///
/// Dropping the future before completion abandons the call (see
/// [`Ticket`]): the response is discarded and the slot reaped, never
/// wedged.
#[must_use = "futures do nothing unless you `.await` or poll them"]
pub struct RingCallFuture<'r, Req, Resp> {
    requester: &'r RingRequester<Req, Resp>,
    ticket: Option<Ticket>,
}

impl<Req, Resp> core::fmt::Debug for RingCallFuture<'_, Req, Resp> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RingCallFuture")
            .field("ticket", &self.ticket)
            .finish_non_exhaustive()
    }
}

impl<Req, Resp> Future for RingCallFuture<'_, Req, Resp> {
    type Output = Result<Resp>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        this.requester.poll_ticket(&mut this.ticket, cx)
    }
}

impl<Req, Resp> RingRequester<Req, Resp> {
    /// Submits a call and returns a future resolving to its response.
    ///
    /// The submission happens *now* (open-loop: issuing is never gated on
    /// anything completing); only the wait is deferred to the `await`.
    ///
    /// # Errors
    ///
    /// As [`RingRequester::submit`] — claim-phase failures surface here,
    /// completion-phase errors resolve through the future.
    pub fn call_async(&self, id: u32, req: Req) -> Result<RingCallFuture<'_, Req, Resp>> {
        let ticket = self.submit_async(id, req)?;
        Ok(RingCallFuture {
            requester: self,
            ticket: Some(ticket),
        })
    }
}

/// An in-flight call on a [`ShardedRequester`], awaiting its response.
///
/// Dropping the future before completion abandons the call (see
/// [`Ticket`]).
#[must_use = "futures do nothing unless you `.await` or poll them"]
pub struct ShardCallFuture<'r, Req, Resp> {
    requester: &'r ShardedRequester<Req, Resp>,
    ticket: Option<Ticket>,
}

impl<Req, Resp> core::fmt::Debug for ShardCallFuture<'_, Req, Resp> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardCallFuture")
            .field("ticket", &self.ticket)
            .finish_non_exhaustive()
    }
}

impl<Req, Resp> Future for ShardCallFuture<'_, Req, Resp> {
    type Output = Result<Resp>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        this.requester.poll_ticket(&mut this.ticket, cx)
    }
}

impl<Req, Resp> ShardedRequester<Req, Resp> {
    /// Submits a call on the home shard and returns a future resolving to
    /// its response.
    ///
    /// # Errors
    ///
    /// As [`ShardedRequester::submit`] — claim-phase failures surface
    /// here, completion-phase errors resolve through the future.
    pub fn call_async(&self, id: u32, req: Req) -> Result<ShardCallFuture<'_, Req, Resp>> {
        let ticket = self.submit_async(id, req)?;
        Ok(ShardCallFuture {
            requester: self,
            ticket: Some(ticket),
        })
    }
}

/// An in-flight call on the single-slot mailbox plane, awaiting its
/// response.
///
/// Dropping the future before completion abandons the call (see
/// [`MailTicket`]).
#[must_use = "futures do nothing unless you `.await` or poll them"]
pub struct MailCallFuture<'r, Req, Resp> {
    requester: &'r Requester<Req, Resp>,
    ticket: Option<MailTicket>,
}

impl<Req, Resp> core::fmt::Debug for MailCallFuture<'_, Req, Resp> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MailCallFuture")
            .field("ticket", &self.ticket)
            .finish_non_exhaustive()
    }
}

impl<Req, Resp> Future for MailCallFuture<'_, Req, Resp> {
    type Output = Result<Resp>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        this.requester.poll_mail(&mut this.ticket, cx)
    }
}

impl<Req, Resp> Requester<Req, Resp> {
    /// Submits a call into the mailbox and returns a future resolving to
    /// its response. The mailbox holds one call, so at most one such
    /// future can be in flight per plane.
    ///
    /// # Errors
    ///
    /// As [`Requester::submit`] — claim-phase failures surface here,
    /// completion-phase errors resolve through the future.
    pub fn call_async(&self, id: u32, req: Req) -> Result<MailCallFuture<'_, Req, Resp>> {
        let ticket = self.submit_async(id, req)?;
        Ok(MailCallFuture {
            requester: self,
            ticket: Some(ticket),
        })
    }
}

/// A plane the [`Reactor`] can submit to and batch-reap from: the ring
/// and sharded requesters, unified over their pipelined submit and
/// deadline-bounded `wait_any` primitives.
pub trait ReapPlane {
    /// Request payload type.
    type Req;
    /// Response payload type.
    type Resp;

    /// Pipelined submit: claim a slot, publish, return the ticket.
    ///
    /// # Errors
    ///
    /// Claim-phase failures (timeout, shutdown), per the plane's `submit`.
    fn submit_open(&self, id: u32, req: Self::Req) -> Result<Ticket>;

    /// Reap one completion, waiting at most until `deadline`; `Ok(None)`
    /// if nothing completed in time (or the set is empty).
    ///
    /// # Errors
    ///
    /// Per the plane's `wait_any_until`.
    fn reap_any_until(
        &self,
        tickets: &mut Vec<Ticket>,
        deadline: Instant,
    ) -> Result<Option<(u64, Self::Resp)>>;
}

impl<Req, Resp> ReapPlane for RingRequester<Req, Resp> {
    type Req = Req;
    type Resp = Resp;

    fn submit_open(&self, id: u32, req: Req) -> Result<Ticket> {
        self.submit(id, req)
    }

    fn reap_any_until(
        &self,
        tickets: &mut Vec<Ticket>,
        deadline: Instant,
    ) -> Result<Option<(u64, Resp)>> {
        self.wait_any_until(tickets, deadline)
    }
}

impl<Req, Resp> ReapPlane for ShardedRequester<Req, Resp> {
    type Req = Req;
    type Resp = Resp;

    fn submit_open(&self, id: u32, req: Req) -> Result<Ticket> {
        self.submit(id, req)
    }

    fn reap_any_until(
        &self,
        tickets: &mut Vec<Ticket>,
        deadline: Instant,
    ) -> Result<Option<(u64, Resp)>> {
        self.wait_any_until(tickets, deadline)
    }
}

/// A batching reap loop over one requester: the event-loop front end.
///
/// Where one future tracks one call, the reactor tracks *many* — an
/// open-loop generator submits at its offered rate through
/// [`Reactor::submit`] and the loop retires whatever completed with one
/// [`Reactor::poll_completions`] sweep per iteration (or parks in
/// [`Reactor::drain_until`] when it has nothing else to do). Reaping is
/// batched through the plane's deadline-bounded `wait_any`, so a sweep
/// costs one oldest-first scan regardless of how many tickets finish.
pub struct Reactor<'p, P: ReapPlane> {
    plane: &'p P,
    inflight: Vec<Ticket>,
}

impl<P: ReapPlane> core::fmt::Debug for Reactor<'_, P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Reactor")
            .field("inflight", &self.inflight.len())
            .finish_non_exhaustive()
    }
}

impl<'p, P: ReapPlane> Reactor<'p, P> {
    /// A reactor over `plane` with no calls in flight.
    pub fn new(plane: &'p P) -> Self {
        Reactor {
            plane,
            inflight: Vec::new(),
        }
    }

    /// Submits a call and tracks its ticket, returning the sequence
    /// number completions will report.
    ///
    /// # Errors
    ///
    /// As the plane's submit; on error nothing is tracked.
    pub fn submit(&mut self, id: u32, req: P::Req) -> Result<u64> {
        let ticket = self.plane.submit_open(id, req)?;
        let seq = ticket.seq();
        self.inflight.push(ticket);
        Ok(seq)
    }

    /// Number of calls currently in flight.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Reaps completions until `deadline` (or until the in-flight set is
    /// empty), feeding each `(seq, response)` to `sink`. Returns how many
    /// calls were retired.
    ///
    /// # Errors
    ///
    /// A per-call failure is returned as-is; the offending ticket is
    /// consumed and the rest stay tracked, so the loop can continue after
    /// handling it.
    pub fn drain_until(
        &mut self,
        deadline: Instant,
        mut sink: impl FnMut(u64, P::Resp),
    ) -> Result<usize> {
        let mut reaped = 0;
        while !self.inflight.is_empty() {
            match self.plane.reap_any_until(&mut self.inflight, deadline)? {
                Some((seq, resp)) => {
                    sink(seq, resp);
                    reaped += 1;
                }
                None => break,
            }
        }
        Ok(reaped)
    }

    /// One non-blocking sweep: retires every call that is already
    /// complete, never waits for more. Returns how many were retired.
    ///
    /// # Errors
    ///
    /// As [`Reactor::drain_until`].
    pub fn poll_completions(&mut self, sink: impl FnMut(u64, P::Resp)) -> Result<usize> {
        // An already-expired deadline still gets exactly one scan per
        // reap, which is precisely the non-blocking semantic.
        self.drain_until(Instant::now(), sink)
    }

    /// Blocks until everything in flight has completed (bounded per-reap
    /// by `step` so shutdown can't park forever), feeding completions to
    /// `sink`. Returns how many calls were retired.
    ///
    /// # Errors
    ///
    /// As [`Reactor::drain_until`].
    pub fn drain_all(
        &mut self,
        step: Duration,
        mut sink: impl FnMut(u64, P::Resp),
    ) -> Result<usize> {
        let mut reaped = 0;
        while !self.inflight.is_empty() {
            reaped += self.drain_until(Instant::now() + step, &mut sink)?;
        }
        Ok(reaped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::{CallTable, HotCallServer, RingServer};
    use crate::{HotCallConfig, ResponderPolicy};

    fn inc_table() -> (CallTable<u64, u64>, u32) {
        let mut t = CallTable::new();
        let inc = t.register(|x| x + 1);
        (t, inc)
    }

    #[test]
    fn ring_future_resolves() {
        let (t, inc) = inc_table();
        let server = RingServer::spawn(t, 8, HotCallConfig::default());
        let r = server.requester();
        assert_eq!(block_on(r.call_async(inc, 41).unwrap()).unwrap(), 42);
    }

    #[test]
    fn mailbox_future_resolves() {
        let (t, inc) = inc_table();
        let server = HotCallServer::spawn(t, HotCallConfig::default());
        let r = server.requester();
        assert_eq!(block_on(r.call_async(inc, 41).unwrap()).unwrap(), 42);
    }

    #[test]
    fn many_futures_resolve_in_any_order() {
        let (t, inc) = inc_table();
        let server =
            RingServer::spawn_adaptive(t, 16, ResponderPolicy::fixed(2), HotCallConfig::default())
                .unwrap();
        let r = server.requester();
        let futures: Vec<_> = (0..8u64).map(|i| r.call_async(inc, i).unwrap()).collect();
        let got = block_on(async {
            let mut got = Vec::new();
            for f in futures {
                got.push(f.await.unwrap());
            }
            got
        });
        assert_eq!(got, (1..=8u64).collect::<Vec<_>>());
    }

    #[test]
    fn dropped_future_abandons_not_wedges() {
        let (t, inc) = inc_table();
        let server = RingServer::spawn(t, 4, HotCallConfig::default());
        let r = server.requester();
        // Drop more futures than the ring holds; the slots must recycle.
        for i in 0..64u64 {
            drop(r.call_async(inc, i).unwrap());
        }
        // And the plane still answers.
        assert_eq!(r.call(inc, 1).unwrap(), 2);
    }

    #[test]
    fn reactor_retires_everything() {
        let (t, inc) = inc_table();
        let server = RingServer::spawn(t, 16, HotCallConfig::default());
        let r = server.requester();
        let mut reactor = Reactor::new(&r);
        for i in 0..8u64 {
            reactor.submit(inc, i).unwrap();
        }
        assert_eq!(reactor.inflight(), 8);
        let mut sum = 0u64;
        let n = reactor
            .drain_all(Duration::from_millis(50), |_seq, resp| sum += resp)
            .unwrap();
        assert_eq!(n, 8);
        assert_eq!(sum, (1..=8u64).sum());
        assert_eq!(reactor.inflight(), 0);
    }

    #[test]
    fn reactor_poll_is_nonblocking_when_idle() {
        let (t, _inc) = inc_table();
        let server = RingServer::spawn(t, 8, HotCallConfig::default());
        let r = server.requester();
        let mut reactor = Reactor::new(&r);
        let start = Instant::now();
        assert_eq!(reactor.poll_completions(|_, _| {}).unwrap(), 0);
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
