//! The configless control plane: per-API break-even routing and online
//! responder/shard/bundle autosizing.
//!
//! After PRs 1–6 every lever that decides where a call's break-even point
//! falls — responder pool bounds, shard counts, bundle sizes,
//! `fused_below_occupancy`, hot-vs-SDK routing — is a hand-set constant.
//! This module closes the loop the way *SGX Switchless Calls Made
//! Configless* does: the telemetry the data plane already produces (per-API
//! cycles/call, useful-work poll ratios, steal rates, doze wake counts)
//! feeds two controllers that move those knobs online.
//!
//! * [`ApiRouter`] — measures each API's observed cycles/call under the
//!   transports it may ride ([`Transport::Sdk`], [`Transport::Hot`],
//!   [`Transport::Bundled`], [`Transport::Fused`]) and routes each call
//!   site to whichever side of its measured break-even it sits on. The
//!   paper's break-even argument is priced directly into the score: every
//!   switchless transport pays a *standby tax* proportional to the API's
//!   observed inter-arrival gap (a dedicated responder core burns cycles
//!   between calls), so a low-rate API demotes itself back to the SDK
//!   fallback exactly when `rate x (sdk - hot) cycles` stops covering the
//!   core it keeps busy.
//! * [`AutoSizer`] — resizes the responder pool / active-shard target and
//!   the bundle flush threshold from a worker-efficiency metric (the
//!   useful-work poll ratio the governor already exports), replacing the
//!   static `ResponderPolicy` / `ShardPolicy` numbers with
//!   [`crate::ResponderPolicy::auto`]-style bounds.
//!
//! Both halves are **hysteretic** — flips require a margin, a minimum
//! sample count, and a cooldown, so a stationary workload converges to a
//! stable routing table with a bounded number of flips — and **observable**:
//! every decision bumps a [`CtlStats`] counter, emits a `ctl_*` trace
//! event, and is exported as `hotcalls_ctl_*` Prometheus lines through the
//! telemetry snapshot's `ctl` section.
//!
//! Under the `telemetry-off` feature the cycle feeds the router needs are
//! compiled out; the controller still compiles and [`ApiRouter::route`]
//! falls back to each API's registered default transport while
//! [`Controller::tick`] stops issuing resize decisions — static policies,
//! zero overhead.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::config::RingStats;
use crate::error::{HotCallError, Result};
use crate::telemetry::{trace, TELEMETRY_ENABLED};

/// The transports a call site can ride, in break-even order of the
/// paper's Table 1: the SDK fallback costs thousands of cycles but keeps
/// no core busy; the switchless transports cost hundreds but stand a
/// responder up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Transport {
    /// The plain SDK ocall/ecall — no responder core on standby.
    Sdk = 0,
    /// A per-call switchless submission through the ring.
    Hot = 1,
    /// Calls packed into bundles of the sizer's flush threshold — one
    /// slot claim and one dispatch per bundle.
    Bundled = 2,
    /// Requester-inline run-to-completion (the fused fast path).
    Fused = 3,
}

impl Transport {
    /// Every transport, in enum order.
    pub const ALL: [Transport; 4] = [
        Transport::Sdk,
        Transport::Hot,
        Transport::Bundled,
        Transport::Fused,
    ];

    /// Census/Prometheus label.
    pub fn label(&self) -> &'static str {
        match self {
            Transport::Sdk => "sdk",
            Transport::Hot => "hot",
            Transport::Bundled => "bundled",
            Transport::Fused => "fused",
        }
    }

    fn from_u8(v: u8) -> Transport {
        Transport::ALL[v as usize & 3]
    }
}

/// Tuning of the per-API router's decision rule. [`CtlPolicy::auto`] is
/// the zero-config shape; every field exists so tests can compress the
/// controller's time constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CtlPolicy {
    /// Observations a transport needs before its estimate is trusted in a
    /// routing decision.
    pub min_samples: u64,
    /// A challenger transport must beat the incumbent's score by this
    /// factor to win a flip (hysteresis: 1.0 flips on any delta and
    /// oscillates on noise).
    pub flip_margin: f64,
    /// Routing decisions are evaluated every this many observations of an
    /// API (decisions off the hot path).
    pub decide_every: u64,
    /// Minimum observations between two flips of the same API — the
    /// bounded-flip-rate guarantee.
    pub cooldown: u64,
    /// Every this many calls, one call is routed over a non-current
    /// transport so estimates of the roads not taken stay fresh. Zero
    /// disables exploration (estimates freeze at their priors).
    pub explore_every: u64,
    /// EWMA smoothing factor for cycles/call and inter-arrival estimates,
    /// in `(0, 1]` (1.0 = last sample wins).
    pub ewma_alpha: f64,
    /// The standby tax: the fraction of an API's inter-arrival gap charged
    /// to every switchless transport's score, pricing the responder core
    /// the transport keeps on call. The break-even this induces is the
    /// paper's: switchless wins iff `sdk - hot > standby_fraction x
    /// inter-arrival`, i.e. iff the call rate is high enough to pay for
    /// the standing core.
    pub standby_fraction: f64,
}

impl Default for CtlPolicy {
    fn default() -> Self {
        CtlPolicy {
            min_samples: 8,
            flip_margin: 1.15,
            decide_every: 32,
            cooldown: 128,
            explore_every: 64,
            ewma_alpha: 0.125,
            standby_fraction: 0.05,
        }
    }
}

impl CtlPolicy {
    /// The zero-config policy (the defaults).
    pub fn auto() -> Self {
        Self::default()
    }

    /// Rejects contradictory knob combinations before a controller starts
    /// acting on them.
    ///
    /// # Errors
    ///
    /// [`HotCallError::InvalidConfig`] on a non-positive margin or alpha,
    /// an alpha above 1, or a zero decision period.
    pub fn validate(&self) -> Result<()> {
        if self.flip_margin < 1.0 {
            return Err(HotCallError::InvalidConfig(
                "ctl flip margin below 1.0 would flip toward worse transports",
            ));
        }
        if !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(HotCallError::InvalidConfig(
                "ctl ewma alpha must be in (0, 1]",
            ));
        }
        if self.decide_every == 0 {
            return Err(HotCallError::InvalidConfig(
                "ctl decide_every must be positive",
            ));
        }
        if self.standby_fraction < 0.0 {
            return Err(HotCallError::InvalidConfig(
                "ctl standby fraction must not be negative",
            ));
        }
        Ok(())
    }
}

/// Tuning of the EPC-aware streaming chunk sizer. The rule is the
/// bandwidth analog of the router's break-even: a streamed chunk that
/// fits the resident EPC costs only its marshalling, while one that
/// pushes the enclave's working set past the paging cliff pays EWB/ELDU
/// per byte. The sizer watches *paging cycles per streamed byte* and
/// halves the chunk when the rate crosses [`ChunkPolicy::shrink_above`]
/// (smaller chunks keep the enclave-side working set resident), doubling
/// back once the rate falls under [`ChunkPolicy::grow_below`] (bigger
/// chunks amortize per-chunk call overhead).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkPolicy {
    /// Smallest chunk the sizer will issue — one EPC page, the paging
    /// granularity below which shrinking cannot help.
    pub min_chunk: usize,
    /// Largest chunk (per-chunk call overhead is fully amortized well
    /// before this).
    pub max_chunk: usize,
    /// Where a stream starts before any paging feedback exists.
    pub start_chunk: usize,
    /// Paging cycles per streamed byte above which the chunk halves.
    pub shrink_above: f64,
    /// Paging cycles per streamed byte below which the chunk doubles.
    pub grow_below: f64,
    /// Observations to hold still after a resize (the paging counters
    /// need a window at the new size before they mean anything).
    pub cooldown_ticks: u32,
}

impl Default for ChunkPolicy {
    fn default() -> Self {
        ChunkPolicy {
            min_chunk: 4 << 10,
            max_chunk: 4 << 20,
            start_chunk: 256 << 10,
            shrink_above: 1.0,
            grow_below: 0.125,
            cooldown_ticks: 1,
        }
    }
}

impl ChunkPolicy {
    /// The zero-config policy (the defaults).
    pub fn auto() -> Self {
        Self::default()
    }

    /// Rejects contradictory knob combinations.
    ///
    /// # Errors
    ///
    /// [`HotCallError::InvalidConfig`] when the bounds are empty, the
    /// start chunk falls outside them, or the watermarks cross.
    pub fn validate(&self) -> Result<()> {
        if self.min_chunk == 0 || self.max_chunk < self.min_chunk {
            return Err(HotCallError::InvalidConfig(
                "chunk bounds must satisfy 1 <= min <= max",
            ));
        }
        if self.start_chunk < self.min_chunk || self.start_chunk > self.max_chunk {
            return Err(HotCallError::InvalidConfig(
                "chunk start must sit inside the bounds",
            ));
        }
        if self.grow_below >= self.shrink_above {
            return Err(HotCallError::InvalidConfig(
                "chunk grow watermark must sit below the shrink watermark",
            ));
        }
        Ok(())
    }
}

/// The online chunk sizer: fed each chunk's paging-cycle delta and byte
/// count, it moves the next chunk size by powers of two inside the
/// policy bounds. Single-owner by design; the [`Controller`] wraps it in
/// a mutex for shared use.
#[derive(Debug)]
pub struct ChunkSizer {
    policy: ChunkPolicy,
    chunk: usize,
    cooldown: u32,
    observes: u64,
    shrinks: u64,
    grows: u64,
}

impl ChunkSizer {
    /// A sizer under `policy`, starting at [`ChunkPolicy::start_chunk`].
    ///
    /// # Errors
    ///
    /// As [`ChunkPolicy::validate`].
    pub fn new(policy: ChunkPolicy) -> Result<Self> {
        policy.validate()?;
        Ok(ChunkSizer {
            policy,
            chunk: policy.start_chunk,
            cooldown: 0,
            observes: 0,
            shrinks: 0,
            grows: 0,
        })
    }

    /// The chunk size the next submission should use.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk
    }

    /// Reports one streamed window: `paging_cycles` charged by the EPC
    /// while `bytes` moved. Returns the new chunk size if the observation
    /// crossed a watermark, `None` on hold. Zero-byte windows are
    /// ignored (no rate to read).
    pub fn observe(&mut self, paging_cycles: u64, bytes: u64) -> Option<usize> {
        if bytes == 0 {
            return None;
        }
        self.observes += 1;
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        let rate = paging_cycles as f64 / bytes as f64;
        if rate > self.policy.shrink_above && self.chunk > self.policy.min_chunk {
            self.chunk = (self.chunk / 2).max(self.policy.min_chunk);
            self.shrinks += 1;
            self.cooldown = self.policy.cooldown_ticks;
            Some(self.chunk)
        } else if rate < self.policy.grow_below && self.chunk < self.policy.max_chunk {
            self.chunk = (self.chunk * 2).min(self.policy.max_chunk);
            self.grows += 1;
            self.cooldown = self.policy.cooldown_ticks;
            Some(self.chunk)
        } else {
            None
        }
    }
}

/// Handle to one registered API in the router's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApiId(usize);

/// Atomic f64 cell (bit-cast storage). Updates are plain load/store —
/// concurrent observers may lose an EWMA step, which only delays
/// convergence; the decision layer re-reads under its own cadence.
#[derive(Debug, Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }
}

/// One API's routing state: per-transport cycle estimates plus the flip
/// bookkeeping.
#[derive(Debug)]
struct ApiSlot {
    name: String,
    /// Where calls go before any measurement exists (and always, under
    /// `telemetry-off`).
    default: Transport,
    allowed: Vec<Transport>,
    current: AtomicU8,
    /// Observations so far (drives the decide/explore cadences).
    observes: AtomicU64,
    /// `observes` value at the last flip (cooldown baseline).
    last_flip_at: AtomicU64,
    flips: AtomicU64,
    /// EWMA cycles/call per transport, indexed by `Transport as u8`.
    ewma: [AtomicF64; 4],
    samples: [AtomicU64; 4],
    /// EWMA of the cycle gap between consecutive observations — the
    /// inverse call rate the standby tax prices.
    interarrival: AtomicF64,
    /// Stamp of the previous observation (0 = none yet).
    last_stamp: AtomicU64,
}

impl ApiSlot {
    fn current(&self) -> Transport {
        Transport::from_u8(self.current.load(Ordering::Relaxed))
    }
}

/// Counter snapshot of everything the controller has decided so far.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtlStats {
    /// Routing decisions evaluated (most conclude "stay").
    pub decisions: u64,
    /// Transport flips taken across all APIs.
    pub flips: u64,
    /// Flips *to* [`Transport::Sdk`] — low-rate APIs priced off the
    /// switchless path.
    pub sdk_demotions: u64,
    /// Flips *from* [`Transport::Sdk`] back onto a switchless transport.
    pub promotions: u64,
    /// Calls deliberately routed off the current transport to refresh a
    /// stale estimate.
    pub explore_probes: u64,
    /// Sizer ticks evaluated.
    pub ticks: u64,
    /// Responder/shard target raises issued by the sizer.
    pub grows: u64,
    /// Responder/shard target cuts issued by the sizer.
    pub shrinks: u64,
    /// Bundle flush-threshold changes issued by the sizer.
    pub bundle_resizes: u64,
    /// Streaming-chunk halvings issued by the chunk sizer (paging cost
    /// per byte crossed the shrink watermark).
    #[serde(default)]
    pub chunk_shrinks: u64,
    /// Streaming-chunk doublings issued by the chunk sizer.
    #[serde(default)]
    pub chunk_grows: u64,
}

/// One API's row in the control plane's telemetry export.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CtlRoute {
    /// API name as registered.
    pub api: String,
    /// Transport currently routed to (label form).
    pub transport: String,
    /// EWMA cycles/call on the current transport (0 before any sample).
    pub ewma_cycles: f64,
    /// Observations of this API so far.
    pub observes: u64,
    /// Flips this API has taken.
    pub flips: u64,
}

/// The control plane's section of a telemetry snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CtlTelemetry {
    /// Registered controller name.
    pub name: String,
    /// Decision counters.
    pub stats: CtlStats,
    /// Current routing table, one row per API.
    pub routes: Vec<CtlRoute>,
    /// The sizer's current bundle flush threshold.
    pub bundle_flush: usize,
    /// The chunk sizer's current streaming chunk size, bytes.
    #[serde(default)]
    pub chunk_bytes: usize,
}

/// The per-API break-even router.
///
/// Register each API once with its default transport and the set it may
/// ride; on the hot path, ask [`ApiRouter::route`] where this call goes
/// and report what it cost with [`ApiRouter::observe`]. Decisions run
/// every [`CtlPolicy::decide_every`] observations, off the per-call path.
///
/// # Examples
///
/// ```
/// use hotcalls::ctl::{ApiRouter, CtlPolicy, Transport};
///
/// let mut router = ApiRouter::new(CtlPolicy::auto()).unwrap();
/// let read = router.register("read", Transport::Hot, &[Transport::Sdk, Transport::Hot]);
/// let t = router.route(read);
/// router.observe(read, t, 620, 1_000);
/// assert_eq!(router.current(read), Transport::Hot);
/// ```
#[derive(Debug)]
pub struct ApiRouter {
    policy: CtlPolicy,
    slots: Vec<ApiSlot>,
    decisions: AtomicU64,
    flips: AtomicU64,
    sdk_demotions: AtomicU64,
    promotions: AtomicU64,
    explore_probes: AtomicU64,
}

impl ApiRouter {
    /// An empty router under `policy`.
    ///
    /// # Errors
    ///
    /// As [`CtlPolicy::validate`].
    pub fn new(policy: CtlPolicy) -> Result<Self> {
        policy.validate()?;
        Ok(ApiRouter {
            policy,
            slots: Vec::new(),
            decisions: AtomicU64::new(0),
            flips: AtomicU64::new(0),
            sdk_demotions: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            explore_probes: AtomicU64::new(0),
        })
    }

    /// Registers an API with its starting transport and the transports the
    /// router may move it between. `default` is added to `allowed` if
    /// missing. Registration happens at setup time, before the router is
    /// shared.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        default: Transport,
        allowed: &[Transport],
    ) -> ApiId {
        let mut allowed = allowed.to_vec();
        if !allowed.contains(&default) {
            allowed.insert(0, default);
        }
        self.slots.push(ApiSlot {
            name: name.into(),
            default,
            allowed,
            current: AtomicU8::new(default as u8),
            observes: AtomicU64::new(0),
            last_flip_at: AtomicU64::new(0),
            flips: AtomicU64::new(0),
            ewma: Default::default(),
            samples: Default::default(),
            interarrival: AtomicF64::default(),
            last_stamp: AtomicU64::new(0),
        });
        ApiId(self.slots.len() - 1)
    }

    /// Number of registered APIs.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Where this call goes: the API's current transport, except for the
    /// periodic exploration probe that keeps the other transports'
    /// estimates fresh. Uninstrumented builds always answer the registered
    /// default — the static-policy fallback.
    pub fn route(&self, api: ApiId) -> Transport {
        let slot = &self.slots[api.0];
        if !TELEMETRY_ENABLED {
            return slot.default;
        }
        let cur = slot.current();
        if slot.allowed.len() > 1 && self.policy.explore_every > 0 {
            let n = slot.observes.load(Ordering::Relaxed);
            if n % self.policy.explore_every == self.policy.explore_every - 1 {
                let probe =
                    slot.allowed[(n / self.policy.explore_every) as usize % slot.allowed.len()];
                if probe != cur {
                    self.explore_probes.fetch_add(1, Ordering::Relaxed);
                    return probe;
                }
            }
        }
        cur
    }

    /// Reports one completed call: it rode `transport`, cost `cycles`, and
    /// finished at monotonic stamp `now` (any cycle base works — RDTSC or
    /// a simulator clock — as long as one caller is consistent). Every
    /// [`CtlPolicy::decide_every`]-th observation re-evaluates the API's
    /// route.
    pub fn observe(&self, api: ApiId, transport: Transport, cycles: u64, now: u64) {
        if !TELEMETRY_ENABLED {
            return;
        }
        let slot = &self.slots[api.0];
        let alpha = self.policy.ewma_alpha;
        let t = transport as usize;
        let prev = slot.ewma[t].get();
        let n = slot.samples[t].fetch_add(1, Ordering::Relaxed);
        slot.ewma[t].set(if n == 0 {
            cycles as f64
        } else {
            prev + alpha * (cycles as f64 - prev)
        });
        let last = slot.last_stamp.swap(now, Ordering::Relaxed);
        if last != 0 && now > last {
            let gap = (now - last) as f64;
            let prev_ia = slot.interarrival.get();
            slot.interarrival.set(if prev_ia == 0.0 {
                gap
            } else {
                prev_ia + alpha * (gap - prev_ia)
            });
        }
        let observes = slot.observes.fetch_add(1, Ordering::Relaxed) + 1;
        if observes.is_multiple_of(self.policy.decide_every) {
            self.decide(api.0, observes);
        }
    }

    /// A transport's routing score: EWMA cycles/call, plus the standby tax
    /// on switchless transports. Lower is better; `None` until the
    /// transport has enough samples to be trusted.
    fn score(&self, slot: &ApiSlot, t: Transport) -> Option<f64> {
        if slot.samples[t as usize].load(Ordering::Relaxed) < self.policy.min_samples {
            return None;
        }
        let standby = if t == Transport::Sdk {
            0.0
        } else {
            self.policy.standby_fraction * slot.interarrival.get()
        };
        Some(slot.ewma[t as usize].get() + standby)
    }

    fn decide(&self, index: usize, observes: u64) {
        let slot = &self.slots[index];
        self.decisions.fetch_add(1, Ordering::Relaxed);
        let cur = slot.current();
        let best = slot
            .allowed
            .iter()
            .filter_map(|&t| self.score(slot, t).map(|s| (t, s)))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        let Some((best, best_score)) = best else {
            return;
        };
        if best == cur {
            return;
        }
        if observes.saturating_sub(slot.last_flip_at.load(Ordering::Relaxed)) < self.policy.cooldown
        {
            return;
        }
        // An unmeasured incumbent loses to any measured challenger; a
        // measured one must be beaten by the margin.
        if let Some(cur_score) = self.score(slot, cur) {
            if cur_score <= best_score * self.policy.flip_margin {
                return;
            }
        }
        if slot
            .current
            .compare_exchange(cur as u8, best as u8, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        slot.last_flip_at.store(observes, Ordering::Relaxed);
        slot.flips.fetch_add(1, Ordering::Relaxed);
        self.flips.fetch_add(1, Ordering::Relaxed);
        if best == Transport::Sdk {
            self.sdk_demotions.fetch_add(1, Ordering::Relaxed);
        }
        if cur == Transport::Sdk {
            self.promotions.fetch_add(1, Ordering::Relaxed);
        }
        trace("ctl_flip", index as u64, best as u8 as u64);
    }

    /// The API's current transport (no exploration).
    pub fn current(&self, api: ApiId) -> Transport {
        if !TELEMETRY_ENABLED {
            return self.slots[api.0].default;
        }
        self.slots[api.0].current()
    }

    /// Total flips taken by one API (the convergence-test observable).
    pub fn flips_of(&self, api: ApiId) -> u64 {
        self.slots[api.0].flips.load(Ordering::Relaxed)
    }

    /// The current routing table, one row per registered API.
    pub fn routes(&self) -> Vec<CtlRoute> {
        self.slots
            .iter()
            .map(|slot| {
                let cur = if TELEMETRY_ENABLED {
                    slot.current()
                } else {
                    slot.default
                };
                CtlRoute {
                    api: slot.name.clone(),
                    transport: cur.label().to_string(),
                    ewma_cycles: slot.ewma[cur as usize].get(),
                    observes: slot.observes.load(Ordering::Relaxed),
                    flips: slot.flips.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

/// Tuning of the online sizer's worker-efficiency rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizerPolicy {
    /// Useful-work poll ratio above which the active set grows (the
    /// workers are all earning their keep and backlog is building).
    pub eff_high: f64,
    /// Ratio below which the active set shrinks (workers mostly poll
    /// empty — the Configless paper's "worker not efficient" rule).
    pub eff_low: f64,
    /// Ticks to hold still after a resize (hysteresis: the plane needs a
    /// window at the new size before its efficiency means anything).
    pub cooldown_ticks: u32,
    /// Bundle flush threshold floor (1 = unbundled).
    pub bundle_min: usize,
    /// Bundle flush threshold ceiling.
    pub bundle_max: usize,
}

impl Default for SizerPolicy {
    fn default() -> Self {
        SizerPolicy {
            eff_high: 0.75,
            eff_low: 0.20,
            cooldown_ticks: 2,
            bundle_min: 1,
            bundle_max: 32,
        }
    }
}

impl SizerPolicy {
    /// The zero-config policy (the defaults).
    pub fn auto() -> Self {
        Self::default()
    }

    /// Rejects contradictory knob combinations.
    ///
    /// # Errors
    ///
    /// [`HotCallError::InvalidConfig`] when the watermarks cross or the
    /// bundle bounds are empty.
    pub fn validate(&self) -> Result<()> {
        if self.eff_low >= self.eff_high {
            return Err(HotCallError::InvalidConfig(
                "sizer low watermark must sit below the high watermark",
            ));
        }
        if self.bundle_min == 0 || self.bundle_max < self.bundle_min {
            return Err(HotCallError::InvalidConfig(
                "sizer bundle bounds must satisfy 1 <= min <= max",
            ));
        }
        Ok(())
    }
}

/// What one sizer tick asks the plane to change. `None` means "hold".
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SizeDecision {
    /// New active responder/shard target to push into the governor.
    pub responders: Option<usize>,
    /// New bundle flush threshold for batching call sites.
    pub bundle_flush: Option<usize>,
}

/// Window counters one tick compares against the last.
#[derive(Debug, Default, Clone, Copy)]
struct SizerWindow {
    busy: u64,
    idle: u64,
    calls: u64,
}

/// The online sizer: periodically fed a [`RingStats`] snapshot, it
/// returns resize decisions derived from the delta since its previous
/// tick. Single-owner by design (the driver loop that ticks it); the
/// [`Controller`] wraps it in a mutex for shared use.
#[derive(Debug)]
pub struct AutoSizer {
    policy: SizerPolicy,
    prev: Option<SizerWindow>,
    cooldown: u32,
    bundle_flush: usize,
    ticks: u64,
    grows: u64,
    shrinks: u64,
    bundle_resizes: u64,
}

impl AutoSizer {
    /// A sizer under `policy`, starting unbundled.
    ///
    /// # Errors
    ///
    /// As [`SizerPolicy::validate`].
    pub fn new(policy: SizerPolicy) -> Result<Self> {
        policy.validate()?;
        Ok(AutoSizer {
            policy,
            prev: None,
            cooldown: 0,
            bundle_flush: policy.bundle_min,
            ticks: 0,
            grows: 0,
            shrinks: 0,
            bundle_resizes: 0,
        })
    }

    /// The current bundle flush threshold.
    pub fn bundle_flush(&self) -> usize {
        self.bundle_flush
    }

    /// One control tick over the plane's current [`RingStats`]. The first
    /// tick only establishes the baseline window.
    pub fn tick(&mut self, rs: &RingStats) -> SizeDecision {
        self.ticks += 1;
        let window = SizerWindow {
            busy: rs.totals.busy_polls,
            idle: rs.totals.idle_polls,
            calls: rs.totals.calls,
        };
        let Some(prev) = self.prev.replace(window) else {
            return SizeDecision::default();
        };
        let busy = window.busy.saturating_sub(prev.busy);
        let idle = window.idle.saturating_sub(prev.idle);
        let calls = window.calls.saturating_sub(prev.calls);
        let polls = busy + idle;
        let backlog: usize = rs.shards.iter().map(|s| s.occupancy).sum();
        let active = rs.governor.active;

        let mut decision = SizeDecision::default();
        if self.cooldown > 0 {
            self.cooldown -= 1;
        } else if polls > 0 {
            let efficiency = busy as f64 / polls as f64;
            if efficiency > self.policy.eff_high && backlog > active && active < rs.governor.max {
                decision.responders = Some(active + 1);
                self.grows += 1;
                self.cooldown = self.policy.cooldown_ticks;
            } else if efficiency < self.policy.eff_low && backlog == 0 && active > rs.governor.min {
                // Low poll efficiency alone is not idleness: responders
                // blocked inside io-bound handlers poll nothing while the
                // ring holds work, and shrinking then thrashes against the
                // governor's raise path. Only a drained plane shrinks.
                decision.responders = Some(active - 1);
                self.shrinks += 1;
                self.cooldown = self.policy.cooldown_ticks;
            }
        }

        // Bundle sizing follows backlog: a window that keeps more calls
        // queued than one flush carries amortizes better with bigger
        // bundles; a quiet window pays latency for nothing and halves
        // back toward unbundled.
        let flush = self.bundle_flush;
        let target = if calls > 0 && backlog > flush {
            (flush * 2).min(self.policy.bundle_max)
        } else if backlog == 0 && idle > busy {
            (flush / 2).max(self.policy.bundle_min)
        } else {
            flush
        };
        if target != flush {
            self.bundle_flush = target;
            self.bundle_resizes += 1;
            decision.bundle_flush = Some(target);
        }
        decision
    }
}

/// The control plane: one [`ApiRouter`] plus one [`AutoSizer`], sharable
/// across threads, exporting a [`CtlTelemetry`] section.
///
/// Build it at setup time ([`Controller::new`] + [`Controller::register`]),
/// then share it (`Arc`) with the call sites: `route`/`observe` per call,
/// [`Controller::tick`] periodically from whichever thread drives the
/// plane, with the returned [`SizeDecision`] pushed into the server's
/// `set_active_*` surface.
#[derive(Debug)]
pub struct Controller {
    router: ApiRouter,
    sizer: Mutex<AutoSizer>,
    chunker: Mutex<ChunkSizer>,
}

impl Controller {
    /// A controller under the given routing and pool-sizing policies,
    /// with the zero-config chunk policy (see
    /// [`Controller::with_chunker`] to override it).
    ///
    /// # Errors
    ///
    /// As [`CtlPolicy::validate`] / [`SizerPolicy::validate`].
    pub fn new(router: CtlPolicy, sizer: SizerPolicy) -> Result<Self> {
        Ok(Controller {
            router: ApiRouter::new(router)?,
            sizer: Mutex::new(AutoSizer::new(sizer)?),
            chunker: Mutex::new(ChunkSizer::new(ChunkPolicy::auto()).expect("auto chunks valid")),
        })
    }

    /// Replaces the chunk-sizing policy (builder style, setup time).
    ///
    /// # Errors
    ///
    /// As [`ChunkPolicy::validate`].
    pub fn with_chunker(mut self, policy: ChunkPolicy) -> Result<Self> {
        self.chunker = Mutex::new(ChunkSizer::new(policy)?);
        Ok(self)
    }

    /// A controller under the zero-config policies.
    pub fn auto() -> Self {
        Self::new(CtlPolicy::auto(), SizerPolicy::auto()).expect("auto policies are valid")
    }

    /// Registers an API (setup time — see [`ApiRouter::register`]).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        default: Transport,
        allowed: &[Transport],
    ) -> ApiId {
        self.router.register(name, default, allowed)
    }

    /// The router half, for per-call `route`/`observe`.
    pub fn router(&self) -> &ApiRouter {
        &self.router
    }

    /// Routes one call (see [`ApiRouter::route`]).
    pub fn route(&self, api: ApiId) -> Transport {
        self.router.route(api)
    }

    /// Reports one call's cost (see [`ApiRouter::observe`]).
    pub fn observe(&self, api: ApiId, transport: Transport, cycles: u64, now: u64) {
        self.router.observe(api, transport, cycles, now);
    }

    /// One sizer tick over the plane's stats. Uninstrumented builds hold
    /// every knob still — the static-policy fallback.
    pub fn tick(&self, rs: &RingStats) -> SizeDecision {
        if !TELEMETRY_ENABLED {
            return SizeDecision::default();
        }
        let decision = self.sizer.lock().expect("sizer lock").tick(rs);
        if let Some(n) = decision.responders {
            trace("ctl_resize", n as u64, rs.governor.active as u64);
        }
        if let Some(f) = decision.bundle_flush {
            trace("ctl_bundle_flush", f as u64, 0);
        }
        decision
    }

    /// The current bundle flush threshold for batching call sites.
    pub fn bundle_flush(&self) -> usize {
        self.sizer.lock().expect("sizer lock").bundle_flush()
    }

    /// The streaming chunk size the next submission should use.
    pub fn chunk_bytes(&self) -> usize {
        self.chunker.lock().expect("chunker lock").chunk_bytes()
    }

    /// Reports one streamed window's paging bill (see
    /// [`ChunkSizer::observe`]). Uninstrumented builds hold the chunk
    /// still — the static-policy fallback, same as [`Controller::tick`].
    pub fn observe_paging(&self, paging_cycles: u64, bytes: u64) -> Option<usize> {
        if !TELEMETRY_ENABLED {
            return None;
        }
        let resized = self
            .chunker
            .lock()
            .expect("chunker lock")
            .observe(paging_cycles, bytes);
        if let Some(n) = resized {
            trace("ctl_chunk_resize", n as u64, paging_cycles);
        }
        resized
    }

    /// Decision counters so far.
    pub fn stats(&self) -> CtlStats {
        let sizer = self.sizer.lock().expect("sizer lock");
        let chunker = self.chunker.lock().expect("chunker lock");
        CtlStats {
            decisions: self.router.decisions.load(Ordering::Relaxed),
            flips: self.router.flips.load(Ordering::Relaxed),
            sdk_demotions: self.router.sdk_demotions.load(Ordering::Relaxed),
            promotions: self.router.promotions.load(Ordering::Relaxed),
            explore_probes: self.router.explore_probes.load(Ordering::Relaxed),
            ticks: sizer.ticks,
            grows: sizer.grows,
            shrinks: sizer.shrinks,
            bundle_resizes: sizer.bundle_resizes,
            chunk_shrinks: chunker.shrinks,
            chunk_grows: chunker.grows,
        }
    }

    /// This controller's telemetry section right now.
    pub fn telemetry(&self, name: &str) -> CtlTelemetry {
        CtlTelemetry {
            name: name.to_string(),
            stats: self.stats(),
            routes: self.router.routes(),
            bundle_flush: self.bundle_flush(),
            chunk_bytes: self.chunk_bytes(),
        }
    }

    /// A provider for [`crate::TelemetryRegistry::register_ctl`], holding
    /// the controller alive.
    pub fn provider(self: &Arc<Self>, name: impl Into<String>) -> crate::telemetry::CtlProvider {
        let ctl = Arc::clone(self);
        let name = name.into();
        Box::new(move || ctl.telemetry(&name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_way_router(policy: CtlPolicy) -> (ApiRouter, ApiId) {
        let mut r = ApiRouter::new(policy).unwrap();
        let id = r.register("read", Transport::Hot, &[Transport::Sdk, Transport::Hot]);
        (r, id)
    }

    /// Feed `n` observations with fixed per-transport costs at a fixed
    /// inter-arrival gap, honoring the router's own routing choices.
    fn drive(r: &ApiRouter, id: ApiId, n: u64, gap: u64, cost: impl Fn(Transport) -> u64) {
        let mut now = 1;
        for _ in 0..n {
            let t = r.route(id);
            now += gap;
            r.observe(id, t, cost(t), now);
        }
    }

    #[test]
    fn policy_validation_rejects_contradictions() {
        assert!(CtlPolicy::auto().validate().is_ok());
        for bad in [
            CtlPolicy {
                flip_margin: 0.5,
                ..CtlPolicy::auto()
            },
            CtlPolicy {
                ewma_alpha: 0.0,
                ..CtlPolicy::auto()
            },
            CtlPolicy {
                ewma_alpha: 1.5,
                ..CtlPolicy::auto()
            },
            CtlPolicy {
                decide_every: 0,
                ..CtlPolicy::auto()
            },
            CtlPolicy {
                standby_fraction: -0.1,
                ..CtlPolicy::auto()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        assert!(SizerPolicy::auto().validate().is_ok());
        assert!(SizerPolicy {
            eff_low: 0.9,
            eff_high: 0.5,
            ..SizerPolicy::auto()
        }
        .validate()
        .is_err());
        assert!(SizerPolicy {
            bundle_min: 4,
            bundle_max: 2,
            ..SizerPolicy::auto()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn fast_transport_wins_and_stays() {
        if !TELEMETRY_ENABLED {
            return;
        }
        let (r, id) = two_way_router(CtlPolicy::auto());
        // Hot is 600 cycles, SDK 8_200, calls arrive every 2_000 cycles:
        // the standby tax (5% of 2_000 = 100) nowhere near closes the gap.
        drive(&r, id, 2_000, 2_000, |t| match t {
            Transport::Sdk => 8_200,
            _ => 600,
        });
        assert_eq!(r.current(id), Transport::Hot);
        assert_eq!(r.flips_of(id), 0, "stationary workload must not flip");
    }

    #[test]
    fn low_rate_api_demotes_to_sdk_and_promotes_back() {
        if !TELEMETRY_ENABLED {
            return;
        }
        let (r, id) = two_way_router(CtlPolicy::auto());
        // Sparse calls: one every 400_000 cycles. The standby tax is
        // 20_000 cycles/call — far more than the 7_600 the hot path saves,
        // so the router prices this API back onto the SDK. (Exploration
        // probes the SDK arm every ~2·explore_every calls, so it takes
        // ~min_samples·128 observations to trust the estimate.)
        drive(&r, id, 2_000, 400_000, |t| match t {
            Transport::Sdk => 8_200,
            _ => 600,
        });
        assert_eq!(r.current(id), Transport::Sdk);
        let stats_flips = r.flips_of(id);
        assert!(stats_flips >= 1);
        // The rate recovers: calls every 2_000 cycles again. Exploration
        // keeps refreshing the hot estimate, so the router promotes back.
        drive(&r, id, 4_000, 2_000, |t| match t {
            Transport::Sdk => 8_200,
            _ => 600,
        });
        assert_eq!(r.current(id), Transport::Hot);
    }

    #[test]
    fn flip_count_is_bounded_under_stationary_load() {
        if !TELEMETRY_ENABLED {
            return;
        }
        let (r, id) = two_way_router(CtlPolicy::auto());
        drive(&r, id, 50_000, 3_000, |t| match t {
            Transport::Sdk => 8_200,
            Transport::Hot => 620,
            _ => 620,
        });
        // Hysteresis (margin + cooldown) bounds flips to the initial
        // settling, never an oscillation.
        assert!(r.flips_of(id) <= 2, "flips: {}", r.flips_of(id));
    }

    #[test]
    fn exploration_probes_are_periodic_and_counted() {
        if !TELEMETRY_ENABLED {
            return;
        }
        let (r, id) = two_way_router(CtlPolicy::auto());
        drive(&r, id, 1_000, 2_000, |_| 600);
        let stats_probes = r.explore_probes.load(Ordering::Relaxed);
        assert!(stats_probes > 0, "exploration must sample the other road");
        // Both transports accumulated samples.
        assert!(r.slots[0].samples[Transport::Sdk as usize].load(Ordering::Relaxed) > 0);
        assert!(r.slots[0].samples[Transport::Hot as usize].load(Ordering::Relaxed) > 0);
    }

    fn stats_with(busy: u64, idle: u64, occupancy: usize, active: usize) -> RingStats {
        use crate::telemetry::{GovernorStats, HotCallStats, ShardStats};
        RingStats {
            totals: HotCallStats {
                calls: busy,
                busy_polls: busy,
                idle_polls: idle,
                ..HotCallStats::default()
            },
            governor: GovernorStats {
                active,
                min: 1,
                max: 4,
                ..GovernorStats::default()
            },
            shards: vec![ShardStats {
                occupancy,
                ..ShardStats::default()
            }],
        }
    }

    #[test]
    fn sizer_grows_on_saturation_and_shrinks_on_idle() {
        let mut sizer = AutoSizer::new(SizerPolicy::auto()).unwrap();
        // First tick is the baseline.
        assert_eq!(sizer.tick(&stats_with(0, 0, 0, 2)), SizeDecision::default());
        // Saturated window: all polls busy, backlog beyond the active set.
        let d = sizer.tick(&stats_with(10_000, 10, 8, 2));
        assert_eq!(d.responders, Some(3));
        // Cooldown holds the next two ticks still even under saturation.
        assert_eq!(sizer.tick(&stats_with(30_000, 20, 8, 3)).responders, None);
        assert_eq!(sizer.tick(&stats_with(60_000, 30, 8, 3)).responders, None);
        // Idle window: polls overwhelmingly empty -> shrink.
        let d = sizer.tick(&stats_with(60_010, 1_000_000, 0, 3));
        assert_eq!(d.responders, Some(2));
    }

    #[test]
    fn sizer_bundle_flush_tracks_backlog() {
        let mut sizer = AutoSizer::new(SizerPolicy::auto()).unwrap();
        sizer.tick(&stats_with(0, 0, 0, 1));
        // Backlog beyond the current flush doubles it...
        let d = sizer.tick(&stats_with(100, 0, 6, 1));
        assert_eq!(d.bundle_flush, Some(2));
        let d = sizer.tick(&stats_with(200, 0, 6, 1));
        assert_eq!(d.bundle_flush, Some(4));
        // ...and an idle, drained window halves it back.
        let d = sizer.tick(&stats_with(201, 10_000, 0, 1));
        assert_eq!(d.bundle_flush, Some(2));
        assert!(sizer.bundle_flush() == 2);
    }

    #[test]
    fn chunk_policy_validation_rejects_contradictions() {
        assert!(ChunkPolicy::auto().validate().is_ok());
        for bad in [
            ChunkPolicy {
                min_chunk: 0,
                ..ChunkPolicy::auto()
            },
            ChunkPolicy {
                min_chunk: 1 << 20,
                max_chunk: 1 << 16,
                start_chunk: 1 << 18,
                ..ChunkPolicy::auto()
            },
            ChunkPolicy {
                start_chunk: 1 << 30,
                ..ChunkPolicy::auto()
            },
            ChunkPolicy {
                grow_below: 2.0,
                shrink_above: 1.0,
                ..ChunkPolicy::auto()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn chunk_sizer_shrinks_past_cliff_and_grows_back() {
        let policy = ChunkPolicy {
            cooldown_ticks: 0,
            ..ChunkPolicy::auto()
        };
        let mut sizer = ChunkSizer::new(policy).unwrap();
        let start = sizer.chunk_bytes();
        // Thrashing: 5 paging cycles per byte, far over the watermark.
        let shrunk = sizer.observe(5 * 1_000_000, 1_000_000).unwrap();
        assert_eq!(shrunk, start / 2);
        // Keep thrashing: halves to the floor and then holds.
        for _ in 0..32 {
            sizer.observe(5 * 1_000_000, 1_000_000);
        }
        assert_eq!(sizer.chunk_bytes(), policy.min_chunk);
        assert!(sizer.observe(5 * 4096, 4096).is_none(), "floor holds");
        // Resident again: zero paging cycles per byte, grows to the cap.
        for _ in 0..32 {
            sizer.observe(0, 1_000_000);
        }
        assert_eq!(sizer.chunk_bytes(), policy.max_chunk);
        // Zero-byte windows are ignored entirely.
        assert!(sizer.observe(10_000, 0).is_none());
    }

    #[test]
    fn chunk_sizer_cooldown_bounds_resize_rate() {
        let mut sizer = ChunkSizer::new(ChunkPolicy {
            cooldown_ticks: 2,
            ..ChunkPolicy::auto()
        })
        .unwrap();
        assert!(sizer.observe(5_000_000, 1_000_000).is_some());
        assert!(sizer.observe(5_000_000, 1_000_000).is_none(), "cooldown 1");
        assert!(sizer.observe(5_000_000, 1_000_000).is_none(), "cooldown 2");
        assert!(sizer.observe(5_000_000, 1_000_000).is_some());
    }

    #[test]
    fn controller_exports_chunk_decisions() {
        let ctl = Controller::auto();
        let start = ctl.chunk_bytes();
        assert_eq!(start, ChunkPolicy::auto().start_chunk);
        let resized = ctl.observe_paging(10 * (1 << 20), 1 << 20);
        let tel = ctl.telemetry("unit");
        if TELEMETRY_ENABLED {
            assert_eq!(resized, Some(start / 2));
            assert_eq!(tel.stats.chunk_shrinks, 1);
            assert_eq!(tel.chunk_bytes, start / 2);
        } else {
            // Static fallback: the chunk never moves.
            assert_eq!(resized, None);
            assert_eq!(tel.chunk_bytes, start);
        }
    }

    #[test]
    fn controller_counts_decisions_and_exports_routes() {
        let mut ctl = Controller::auto();
        let id = ctl.register("read", Transport::Hot, &[Transport::Sdk, Transport::Hot]);
        let t = ctl.route(id);
        ctl.observe(id, t, 620, 1_000);
        ctl.tick(&stats_with(0, 0, 0, 1));
        let tel = ctl.telemetry("unit");
        assert_eq!(tel.name, "unit");
        assert_eq!(tel.routes.len(), 1);
        assert_eq!(tel.routes[0].api, "read");
        if TELEMETRY_ENABLED {
            assert_eq!(tel.stats.ticks, 1);
            assert_eq!(tel.routes[0].observes, 1);
        } else {
            // The static fallback: no ticks counted, default transport.
            assert_eq!(tel.stats.ticks, 0);
            assert_eq!(tel.routes[0].transport, "hot");
        }
    }
}
