//! Application-level runners for Table 2 and Figures 10/11.

use apps::lighttpd::{self, Lighttpd};
use apps::memcached::{self, Memcached};
use apps::openvpn::{self, OpenVpn};
use apps::{AppEnv, IfaceMode, RtTransport};
use hotcalls::telemetry::ApiCensus;
use sgx_sim::SimConfig;
use workloads::{http_load, iperf, memtier, ping, RunResult};

/// The paper's "each ocall … takes roughly 8,300 cycles" estimate used in
/// Table 2's Core Time column.
const TABLE2_CYCLES_PER_CALL: f64 = 8_300.0;

/// Workload scale knobs (smaller than the paper's multi-million-request
/// runs so the full harness finishes quickly; rates are insensitive to
/// duration).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// memtier requests.
    pub memcached_requests: u64,
    /// http_load fetches.
    pub lighttpd_fetches: u64,
    /// iperf packet events.
    pub openvpn_packets: u64,
    /// flood-ping echoes.
    pub ping_count: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            memcached_requests: 3_000,
            lighttpd_fetches: 1_500,
            openvpn_packets: 1_500,
            ping_count: 800,
        }
    }
}

fn sim_config(seed: u64) -> SimConfig {
    SimConfig::builder().seed(seed).build()
}

/// One application measurement under one interface mode.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Interface configuration.
    pub mode: IfaceMode,
    /// Workload outcome.
    pub result: RunResult,
}

/// Runs memtier against memcached under `mode`.
pub fn run_memcached(mode: IfaceMode, requests: u64) -> AppRun {
    let mut env = AppEnv::new(sim_config(101), mode, &memcached::api_table(), 64 << 20)
        .expect("memcached env");
    let mut server = Memcached::new(&mut env, 8_192, 2_048).expect("server");
    let result = memtier::run(
        &mut env,
        &mut server,
        memtier::MemtierConfig {
            requests,
            keyspace: 2_048,
            ..memtier::MemtierConfig::default()
        },
    )
    .expect("memtier run");
    AppRun { mode, result }
}

/// Runs http_load against lighttpd under `mode`.
pub fn run_lighttpd(mode: IfaceMode, fetches: u64) -> AppRun {
    let mut env =
        AppEnv::new(sim_config(102), mode, &lighttpd::api_table(), 64 << 20).expect("lighttpd env");
    env.enter_main().expect("enter");
    let mut server = Lighttpd::new(&mut env).expect("server");
    let result = http_load::run(
        &mut env,
        &mut server,
        http_load::HttpLoadConfig {
            fetches,
            pages: 32,
            ..http_load::HttpLoadConfig::default()
        },
    )
    .expect("http_load run");
    AppRun { mode, result }
}

fn vpn_pair(mode: IfaceMode, seed: u64) -> (AppEnv, OpenVpn, AppEnv, OpenVpn) {
    let secret = [0x5Au8; 32];
    let mut env =
        AppEnv::new(sim_config(seed), mode, &openvpn::api_table(), 16 << 20).expect("vpn env");
    env.enter_main().expect("enter");
    let endpoint = OpenVpn::new(&mut env, &secret).expect("endpoint");
    let mut peer_env = AppEnv::new(
        sim_config(seed + 1),
        IfaceMode::Native,
        &openvpn::api_table(),
        1 << 20,
    )
    .expect("peer env");
    let peer = OpenVpn::new(&mut peer_env, &secret).expect("peer");
    (env, endpoint, peer_env, peer)
}

/// Runs iperf through the tunnel under `mode`; returns the run plus the
/// achieved bandwidth in Mbit/s.
pub fn run_openvpn_iperf(mode: IfaceMode, packets: u64) -> (AppRun, f64) {
    let (mut env, mut endpoint, _peer_env, mut peer) = vpn_pair(mode, 103);
    let cfg = iperf::IperfConfig {
        packets,
        ..iperf::IperfConfig::default()
    };
    let result = iperf::run(&mut env, &mut endpoint, &mut peer, cfg).expect("iperf run");
    let mbps = iperf::bandwidth_mbps(&result, cfg.payload_bytes);
    (AppRun { mode, result }, mbps)
}

/// Runs the flood ping through the tunnel under `mode`.
pub fn run_openvpn_ping(mode: IfaceMode, count: u64) -> AppRun {
    let (mut env, mut endpoint, _peer_env, mut peer) = vpn_pair(mode, 105);
    let result = ping::run(
        &mut env,
        &mut endpoint,
        &mut peer,
        ping::PingConfig {
            count,
            ..ping::PingConfig::default()
        },
    )
    .expect("ping run");
    AppRun { mode, result }
}

/// One application's Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Application name.
    pub app: &'static str,
    /// (call name, thousands of calls per second), most frequent first.
    pub frequent: Vec<(String, f64)>,
    /// Total calls ×1000/s.
    pub total_kcalls: f64,
    /// Fraction of core time spent facilitating calls, by the paper's
    /// `N_calls × 8,300 / 4 GHz` estimate.
    pub core_time: f64,
}

fn table2_row(app: &'static str, env: &AppEnv, elapsed_secs: f64, top: usize) -> Table2Row {
    let mut frequent: Vec<(String, f64)> = env
        .api_counts()
        .iter()
        .map(|(&name, &count)| (name.to_owned(), count as f64 / elapsed_secs / 1e3))
        .filter(|(_, k)| *k > 0.0)
        .collect();
    frequent.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite rates"));
    let total_kcalls: f64 = frequent.iter().map(|(_, k)| k).sum();
    frequent.truncate(top);
    let core_time = total_kcalls * 1e3 * TABLE2_CYCLES_PER_CALL / 4e9;
    Table2Row {
        app,
        frequent,
        total_kcalls,
        core_time,
    }
}

/// Reproduces Table 2: API-call frequencies of the three *unoptimized*
/// SGX ports at peak load.
pub fn table2(scale: Scale) -> Vec<Table2Row> {
    let mut rows = Vec::new();

    {
        let mut env = AppEnv::new(
            sim_config(201),
            IfaceMode::Sdk,
            &memcached::api_table(),
            64 << 20,
        )
        .expect("env");
        let mut server = Memcached::new(&mut env, 8_192, 2_048).expect("server");
        let before = env.elapsed_secs();
        memtier::run(
            &mut env,
            &mut server,
            memtier::MemtierConfig {
                requests: scale.memcached_requests,
                keyspace: 1_024,
                ..memtier::MemtierConfig::default()
            },
        )
        .expect("memtier");
        rows.push(table2_row(
            "Memcached",
            &env,
            env.elapsed_secs() - before,
            3,
        ));
    }
    {
        let (mut env, mut endpoint, _pe, mut peer) = vpn_pair(IfaceMode::Sdk, 202);
        let before = env.elapsed_secs();
        iperf::run(
            &mut env,
            &mut endpoint,
            &mut peer,
            iperf::IperfConfig {
                packets: scale.openvpn_packets,
                ..iperf::IperfConfig::default()
            },
        )
        .expect("iperf");
        rows.push(table2_row("OpenVPN", &env, env.elapsed_secs() - before, 7));
    }
    {
        let mut env = AppEnv::new(
            sim_config(203),
            IfaceMode::Sdk,
            &lighttpd::api_table(),
            64 << 20,
        )
        .expect("env");
        env.enter_main().expect("enter");
        let mut server = Lighttpd::new(&mut env).expect("server");
        let before = env.elapsed_secs();
        http_load::run(
            &mut env,
            &mut server,
            http_load::HttpLoadConfig {
                fetches: scale.lighttpd_fetches,
                pages: 32,
                ..http_load::HttpLoadConfig::default()
            },
        )
        .expect("http_load");
        rows.push(table2_row(
            "Lighttpd",
            &env,
            env.elapsed_secs() - before,
            14,
        ));
    }
    rows
}

/// The interface configurations the census compares, as
/// `(IfaceMode, RtTransport)` pairs: the plain SDK port, HotCalls over
/// the single ring ("hot"), HotCalls over the sharded plane, and HotCalls
/// with the fused run-to-completion fast path ("fused").
pub const CENSUS_MODES: [(IfaceMode, RtTransport); 4] = [
    (IfaceMode::Sdk, RtTransport::Sharded), // transport unused in sdk mode
    (IfaceMode::HotCalls, RtTransport::Single),
    (IfaceMode::HotCalls, RtTransport::Sharded),
    (IfaceMode::HotCalls, RtTransport::Fused),
];

/// Drives memtier against memcached under one (mode, transport) pair and
/// returns the environment's Table-2-style census.
pub fn census_memcached(mode: IfaceMode, transport: RtTransport, requests: u64) -> ApiCensus {
    let mut env = AppEnv::with_transport(
        sim_config(301),
        mode,
        &memcached::api_table(),
        64 << 20,
        transport,
    )
    .expect("memcached env");
    let mut server = Memcached::new(&mut env, 8_192, 2_048).expect("server");
    memtier::run(
        &mut env,
        &mut server,
        memtier::MemtierConfig {
            requests,
            keyspace: 1_024,
            ..memtier::MemtierConfig::default()
        },
    )
    .expect("memtier run");
    env.api_census(memcached::NAME)
}

/// Drives http_load against lighttpd under one (mode, transport) pair.
pub fn census_lighttpd(mode: IfaceMode, transport: RtTransport, fetches: u64) -> ApiCensus {
    let mut env = AppEnv::with_transport(
        sim_config(302),
        mode,
        &lighttpd::api_table(),
        64 << 20,
        transport,
    )
    .expect("lighttpd env");
    env.enter_main().expect("enter");
    let mut server = Lighttpd::new(&mut env).expect("server");
    http_load::run(
        &mut env,
        &mut server,
        http_load::HttpLoadConfig {
            fetches,
            pages: 32,
            ..http_load::HttpLoadConfig::default()
        },
    )
    .expect("http_load run");
    env.api_census(lighttpd::NAME)
}

/// Drives iperf through the openVPN tunnel under one (mode, transport)
/// pair.
pub fn census_openvpn(mode: IfaceMode, transport: RtTransport, packets: u64) -> ApiCensus {
    let secret = [0x5Au8; 32];
    let mut env = AppEnv::with_transport(
        sim_config(303),
        mode,
        &openvpn::api_table(),
        16 << 20,
        transport,
    )
    .expect("vpn env");
    env.enter_main().expect("enter");
    let mut endpoint = OpenVpn::new(&mut env, &secret).expect("endpoint");
    let mut peer_env = AppEnv::new(
        sim_config(304),
        IfaceMode::Native,
        &openvpn::api_table(),
        1 << 20,
    )
    .expect("peer env");
    let mut peer = OpenVpn::new(&mut peer_env, &secret).expect("peer");
    iperf::run(
        &mut env,
        &mut endpoint,
        &mut peer,
        iperf::IperfConfig {
            packets,
            ..iperf::IperfConfig::default()
        },
    )
    .expect("iperf run");
    env.api_census(openvpn::NAME)
}

/// The full API census: all three applications under each of
/// [`CENSUS_MODES`] — twelve Table-2-style reports.
pub fn api_census_all(scale: Scale) -> Vec<ApiCensus> {
    let mut out = Vec::with_capacity(CENSUS_MODES.len() * 3);
    for (mode, transport) in CENSUS_MODES {
        out.push(census_memcached(mode, transport, scale.memcached_requests));
        out.push(census_openvpn(mode, transport, scale.openvpn_packets));
        out.push(census_lighttpd(mode, transport, scale.lighttpd_fetches));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::paper;

    #[test]
    fn fig10_shape_memcached() {
        let rps: Vec<f64> = IfaceMode::ALL
            .iter()
            .map(|&mode| run_memcached(mode, 800).result.ops_per_sec)
            .collect();
        // Normalized shape: native 1.0 > nrz >= hot > sdk.
        assert!(
            rps[0] > rps[3] && rps[3] >= rps[2] && rps[2] > rps[1],
            "ordering violated: {rps:?}"
        );
        let sdk_frac = rps[1] / rps[0];
        assert!(
            (0.1..0.45).contains(&sdk_frac),
            "paper: SGX memcached at ~0.21 of native; got {sdk_frac}"
        );
        let hot_gain = rps[2] / rps[1];
        assert!(
            (1.7..3.8).contains(&hot_gain),
            "paper: 2.4x HotCalls gain; got {hot_gain}"
        );
    }

    #[test]
    fn census_covers_three_modes_with_separable_interface_cost() {
        let censuses: Vec<ApiCensus> = CENSUS_MODES
            .iter()
            .map(|&(mode, transport)| census_memcached(mode, transport, 400))
            .collect();
        assert_eq!(
            censuses.iter().map(|c| c.mode.as_str()).collect::<Vec<_>>(),
            ["sdk", "hot", "sharded", "fused"]
        );
        for c in &censuses {
            assert_eq!(c.app, "memcached");
            assert!(c.total_calls > 0, "{}: no calls", c.mode);
            assert!(c.interface_cycles > 0, "{}: no interface cost", c.mode);
            assert!(!c.rows.is_empty());
            // Rows are sorted most-frequent first.
            assert!(c.rows.windows(2).all(|w| w[0].calls >= w[1].calls));
        }
        // The same workload pays far more interface cycles per call under
        // the SDK than over either HotCalls plane — Table 2's point.
        let per_call = |c: &ApiCensus| c.interface_cycles as f64 / c.total_calls as f64;
        assert!(
            per_call(&censuses[0]) > 3.0 * per_call(&censuses[1]),
            "sdk {} vs hot {}",
            per_call(&censuses[0]),
            per_call(&censuses[1])
        );
        assert!(
            per_call(&censuses[0]) > 3.0 * per_call(&censuses[2]),
            "sdk {} vs sharded {}",
            per_call(&censuses[0]),
            per_call(&censuses[2])
        );
        assert!(
            per_call(&censuses[0]) > 3.0 * per_call(&censuses[3]),
            "sdk {} vs fused {}",
            per_call(&censuses[0]),
            per_call(&censuses[3])
        );
    }

    #[test]
    fn table2_totals_and_core_time_in_band() {
        let rows = table2(Scale {
            memcached_requests: 1_000,
            lighttpd_fetches: 600,
            openvpn_packets: 600,
            ping_count: 0,
        });
        assert_eq!(rows.len(), 3);
        for (row, (&paper_total, &paper_core)) in rows.iter().zip(
            paper::TABLE2_TOTAL_KCALLS
                .iter()
                .zip(paper::TABLE2_CORE_TIME.iter()),
        ) {
            assert!(
                row.total_kcalls > paper_total * 0.4 && row.total_kcalls < paper_total * 2.5,
                "{}: total {}k vs paper {}k",
                row.app,
                row.total_kcalls,
                paper_total
            );
            assert!(
                row.core_time > paper_core * 0.4 && row.core_time < paper_core.min(1.0) * 2.0,
                "{}: core time {} vs paper {}",
                row.app,
                row.core_time,
                paper_core
            );
        }
    }
}
