//! Microbenchmark runners for Table 1 and Figures 2, 4, 5, 6, 7.
//!
//! Each runner rebuilds the machine + enclave + SDK context, warms the
//! relevant paths, and then measures `n` iterations with the paper's
//! RDTSCP methodology (AEX-contaminated runs discarded). The paper used
//! 200,000 measurements per microbenchmark; the defaults here are smaller
//! so the whole suite finishes quickly — pass a larger `n` to match the
//! paper exactly.

use sgx_sdk::edl::parse_edl;
use sgx_sdk::{BufArg, EnclaveCtx, MarshalOptions};
use sgx_sim::{Addr, EnclaveBuildOptions, Machine, SgxError, SimConfig};

use crate::stats::Samples;

/// EDL used by the call microbenchmarks: empty calls plus one buffered
/// variant per transfer mode.
const MICRO_EDL: &str = "enclave {
    trusted {
        public void ecall_empty();
        public void ecall_in([in, size=n] const uint8_t* b, size_t n);
        public void ecall_out([out, size=n] uint8_t* b, size_t n);
        public void ecall_inout([in, out, size=n] uint8_t* b, size_t n);
        public void ecall_uc([user_check] void* p);
    };
    untrusted {
        void ocall_empty();
        void ocall_in([in, size=n] const uint8_t* b, size_t n);
        void ocall_out([out, size=n] uint8_t* b, size_t n);
        void ocall_inout([in, out, size=n] uint8_t* b, size_t n);
        void ocall_uc([user_check] void* p);
    };
};";

/// Buffer transfer mode under test (paper's EDL attribute names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMode {
    /// `[in]`
    In,
    /// `[out]`
    Out,
    /// `[in, out]`
    InOut,
    /// `[user_check]` (zero copy)
    UserCheck,
}

impl TransferMode {
    /// The three copying modes of Figs. 4/5, in plot order.
    pub const COPYING: [TransferMode; 3] =
        [TransferMode::In, TransferMode::Out, TransferMode::InOut];

    fn ecall_name(&self) -> &'static str {
        match self {
            TransferMode::In => "ecall_in",
            TransferMode::Out => "ecall_out",
            TransferMode::InOut => "ecall_inout",
            TransferMode::UserCheck => "ecall_uc",
        }
    }

    fn ocall_name(&self) -> &'static str {
        match self {
            TransferMode::In => "ocall_in",
            TransferMode::Out => "ocall_out",
            TransferMode::InOut => "ocall_inout",
            TransferMode::UserCheck => "ocall_uc",
        }
    }

    /// Label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            TransferMode::In => "in",
            TransferMode::Out => "out",
            TransferMode::InOut => "in&out",
            TransferMode::UserCheck => "user_check",
        }
    }
}

fn setup(seed: u64) -> (Machine, EnclaveCtx) {
    let mut m = Machine::new(SimConfig::builder().seed(seed).build());
    let eid = m
        .build_enclave(EnclaveBuildOptions::default())
        .expect("enclave build");
    let edl = parse_edl(MICRO_EDL).expect("micro EDL parses");
    let ctx = EnclaveCtx::new(&mut m, eid, &edl, MarshalOptions::default()).expect("ctx");
    (m, ctx)
}

fn collect<F>(m: &mut Machine, n: usize, mut iteration: F) -> Samples
where
    F: FnMut(&mut Machine) -> Result<(), SgxError>,
{
    let mut samples = Samples::default();
    for _ in 0..n {
        let measured = m.measure(|m| iteration(m)).expect("measurement");
        if measured.aex {
            samples.discarded_aex += 1;
        } else {
            samples.values.push(measured.cycles.get());
        }
    }
    samples
}

/// Microbenchmarks 1 & 2: empty ecall latency, warm or cold cache.
pub fn ecall_latency(cold: bool, n: usize, seed: u64) -> Samples {
    let (mut m, mut ctx) = setup(seed);
    for _ in 0..10 {
        ctx.ecall(&mut m, "ecall_empty", &[], |_, _, _| Ok(()))
            .expect("warmup");
    }
    collect(&mut m, n, |m| {
        if cold {
            m.flush_all_caches();
        }
        ctx.ecall(m, "ecall_empty", &[], |_, _, _| Ok(()))
            .map_err(|_| SgxError::NotEntered)?;
        Ok(())
    })
}

/// Microbenchmarks 4 & 5: empty ocall latency, warm or cold cache.
pub fn ocall_latency(cold: bool, n: usize, seed: u64) -> Samples {
    let (mut m, mut ctx) = setup(seed);
    ctx.enter_main(&mut m).expect("enter");
    for _ in 0..10 {
        ctx.ocall(&mut m, "ocall_empty", &[], |_, _, _| Ok(()))
            .expect("warmup");
    }
    collect(&mut m, n, |m| {
        if cold {
            m.flush_all_caches();
        }
        ctx.ocall(m, "ocall_empty", &[], |_, _, _| Ok(()))
            .map_err(|_| SgxError::NotEntered)?;
        Ok(())
    })
}

/// Microbenchmark 3 / Fig. 4: ecall + buffer transfer of `bytes` under
/// `mode`. The transferred buffers are flushed from the cache before every
/// measurement (§3.2.1), while the call structures stay warm.
pub fn ecall_buffer(mode: TransferMode, bytes: u64, n: usize, seed: u64) -> Samples {
    let (mut m, mut ctx) = setup(seed);
    let buf = m.alloc_untrusted(bytes.max(64), 64);
    let args = [BufArg::new(buf, bytes)];
    for _ in 0..10 {
        ctx.ecall(&mut m, mode.ecall_name(), &args, |_, _, _| Ok(()))
            .expect("warmup");
    }
    let mut samples = Samples::default();
    for _ in 0..n {
        // Evict the transferred buffer outside the timed window (§3.2.1).
        m.clflush_span(buf, bytes);
        m.mfence();
        m.reset_stream_detector();
        let measured = m
            .measure(|m| {
                ctx.ecall(m, mode.ecall_name(), &args, |_, _, _| Ok(()))
                    .map_err(|_| SgxError::NotEntered)?;
                Ok(())
            })
            .expect("measure");
        if measured.aex {
            samples.discarded_aex += 1;
        } else {
            samples.values.push(measured.cycles.get());
        }
    }
    samples
}

/// Microbenchmark 6 / Fig. 5: ocall + buffer transfer of `bytes`. The
/// source buffers stay warm (the enclave just produced them), matching the
/// paper's lower `to`-mode numbers.
pub fn ocall_buffer(mode: TransferMode, bytes: u64, n: usize, seed: u64) -> Samples {
    let (mut m, mut ctx) = setup(seed);
    let buf = m
        .alloc_enclave_heap(ctx.eid, bytes.max(64), 64)
        .expect("secure buffer");
    let args = [BufArg::new(buf, bytes)];
    ctx.enter_main(&mut m).expect("enter");
    for _ in 0..10 {
        ctx.ocall(&mut m, mode.ocall_name(), &args, |_, _, _| Ok(()))
            .expect("warmup");
    }
    collect(&mut m, n, |m| {
        ctx.ocall(m, mode.ocall_name(), &args, |_, _, _| Ok(()))
            .map_err(|_| SgxError::NotEntered)?;
        Ok(())
    })
}

/// Where a memory microbenchmark's buffer lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Ordinary plaintext memory.
    Plain,
    /// Encrypted enclave memory.
    Encrypted,
}

impl Region {
    /// Both regions in the order the paper tabulates (encrypted first).
    pub const BOTH: [Region; 2] = [Region::Encrypted, Region::Plain];

    /// Label for output.
    pub fn label(&self) -> &'static str {
        match self {
            Region::Plain => "plaintext",
            Region::Encrypted => "encrypted",
        }
    }
}

fn region_buffer(m: &mut Machine, region: Region, bytes: u64) -> Addr {
    match region {
        Region::Plain => m.alloc_untrusted(bytes, 64),
        Region::Encrypted => {
            let eid = m
                .build_enclave(EnclaveBuildOptions {
                    heap_bytes: bytes + (1 << 20),
                    ..EnclaveBuildOptions::default()
                })
                .expect("enclave");
            m.alloc_enclave_heap(eid, bytes, 64).expect("heap")
        }
    }
}

/// Microbenchmark 7 / Fig. 6: consecutive 64-bit reads over a buffer of
/// `bytes`. The buffer is evicted from the cache before each measurement
/// (outside the timed window), and an `mfence` precedes the closing
/// RDTSCP, as in §3.4.
pub fn memory_read_windowed(region: Region, bytes: u64, n: usize, seed: u64) -> Samples {
    let mut m = Machine::new(SimConfig::builder().seed(seed).build());
    let buf = region_buffer(&mut m, region, bytes);
    m.read(buf, bytes).expect("warm");
    let mut samples = Samples::default();
    for _ in 0..n {
        m.clflush_span(buf, bytes);
        m.mfence();
        m.reset_stream_detector();
        let measured = m
            .measure(|m| {
                m.read(buf, bytes)?;
                m.mfence();
                Ok(())
            })
            .expect("measure");
        if measured.aex {
            samples.discarded_aex += 1;
        } else {
            samples.values.push(measured.cycles.get());
        }
    }
    samples
}

/// Microbenchmark 8 / Fig. 7: consecutive 64-bit writes; the measurement
/// is completed by `clflush`ing the buffer + `mfence` (§3.4), so the
/// forced write-backs are inside the timed window.
pub fn memory_write_windowed(region: Region, bytes: u64, n: usize, seed: u64) -> Samples {
    let mut m = Machine::new(SimConfig::builder().seed(seed).build());
    let buf = region_buffer(&mut m, region, bytes);
    m.write(buf, bytes).expect("warm");
    m.clflush_span(buf, bytes);
    let mut samples = Samples::default();
    for _ in 0..n {
        m.reset_stream_detector();
        let measured = m
            .measure(|m| {
                m.write(buf, bytes)?;
                m.clflush_span(buf, bytes);
                m.mfence();
                Ok(())
            })
            .expect("measure");
        if measured.aex {
            samples.discarded_aex += 1;
        } else {
            samples.values.push(measured.cycles.get());
        }
    }
    samples
}

/// Microbenchmark 9: one 8-byte load from a line evicted from the LLC.
pub fn cache_load_miss(region: Region, n: usize, seed: u64) -> Samples {
    let mut m = Machine::new(SimConfig::builder().seed(seed).build());
    let buf = region_buffer(&mut m, region, 64);
    m.read(buf, 8).expect("warm");
    let mut samples = Samples::default();
    for _ in 0..n {
        m.clflush(buf);
        m.mfence();
        m.reset_stream_detector();
        let measured = m
            .measure(|m| {
                m.read(buf, 8)?;
                m.mfence();
                Ok(())
            })
            .expect("measure");
        if measured.aex {
            samples.discarded_aex += 1;
        } else {
            samples.values.push(measured.cycles.get());
        }
    }
    samples
}

/// Microbenchmark 10: one 8-byte store, completed by `clflush` + `mfence`
/// inside the timed window.
pub fn cache_store_miss(region: Region, n: usize, seed: u64) -> Samples {
    let mut m = Machine::new(SimConfig::builder().seed(seed).build());
    let buf = region_buffer(&mut m, region, 64);
    m.write(buf, 8).expect("warm");
    m.clflush(buf);
    let mut samples = Samples::default();
    for _ in 0..n {
        m.reset_stream_detector();
        let measured = m
            .measure(|m| {
                m.write(buf, 8)?;
                m.clflush(buf);
                m.mfence();
                Ok(())
            })
            .expect("measure");
        if measured.aex {
            samples.discarded_aex += 1;
        } else {
            samples.values.push(measured.cycles.get());
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::paper;

    const N: usize = 400;

    #[test]
    fn ecall_warm_matches_paper_band() {
        let s = ecall_latency(false, N, 1);
        let med = s.median();
        assert!(
            (paper::ECALL_WARM * 80 / 100..paper::ECALL_WARM * 120 / 100).contains(&med),
            "warm ecall median {med} vs paper {}",
            paper::ECALL_WARM
        );
    }

    #[test]
    fn ecall_cold_is_substantially_slower() {
        let warm = ecall_latency(false, N, 2).median();
        let cold = ecall_latency(true, N, 3).median();
        assert!(
            cold as f64 > warm as f64 * 1.35,
            "cold {cold} vs warm {warm}"
        );
    }

    #[test]
    fn ocall_warm_close_to_ecall_warm() {
        let e = ecall_latency(false, N, 4).median();
        let o = ocall_latency(false, N, 5).median();
        let ratio = o as f64 / e as f64;
        assert!((0.8..1.1).contains(&ratio), "ocall/ecall ratio {ratio}");
    }

    #[test]
    fn out_mode_is_most_expensive_for_ecalls() {
        let t_in = ecall_buffer(TransferMode::In, 2048, N, 6).median();
        let t_out = ecall_buffer(TransferMode::Out, 2048, N, 7).median();
        let t_inout = ecall_buffer(TransferMode::InOut, 2048, N, 8).median();
        let t_uc = ecall_buffer(TransferMode::UserCheck, 2048, N, 9).median();
        assert!(
            t_out > t_inout && t_inout > t_in && t_in > t_uc,
            "expected uc < in < in&out < out, got uc={t_uc} in={t_in} inout={t_inout} out={t_out}"
        );
    }

    #[test]
    fn encrypted_reads_cost_more_and_overhead_grows() {
        let small_plain = memory_read_windowed(Region::Plain, 2048, N, 10).median();
        let small_enc = memory_read_windowed(Region::Encrypted, 2048, N, 11).median();
        let big_plain = memory_read_windowed(Region::Plain, 32 * 1024, 60, 12).median();
        let big_enc = memory_read_windowed(Region::Encrypted, 32 * 1024, 60, 13).median();
        let small_ov = small_enc as f64 / small_plain as f64 - 1.0;
        let big_ov = big_enc as f64 / big_plain as f64 - 1.0;
        assert!(small_ov > 0.25, "2KB read overhead {small_ov}");
        assert!(
            big_ov > small_ov,
            "overhead must grow with footprint: {small_ov} -> {big_ov}"
        );
    }

    #[test]
    fn write_overhead_is_small() {
        let plain = memory_write_windowed(Region::Plain, 2048, N, 14).median();
        let enc = memory_write_windowed(Region::Encrypted, 2048, N, 15).median();
        let ov = enc as f64 / plain as f64 - 1.0;
        assert!((0.0..0.25).contains(&ov), "write overhead {ov}");
    }

    #[test]
    fn miss_penalties_match_paper_bands() {
        let lp = cache_load_miss(Region::Plain, N, 16).median();
        let le = cache_load_miss(Region::Encrypted, N, 17).median();
        let sp = cache_store_miss(Region::Plain, N, 18).median();
        let se = cache_store_miss(Region::Encrypted, N, 19).median();
        assert!(le > lp, "encrypted load miss {le} vs plain {lp}");
        assert!(se > sp, "encrypted store miss {se} vs plain {sp}");
        assert!((200..600).contains(&lp), "plain load miss {lp}");
        assert!((300..800).contains(&se), "encrypted store miss {se}");
    }
}
