//! Regenerates Figure 7: consecutive-write latency, encrypted vs plaintext.

use bench::micro::{memory_write_windowed, Region};
use bench::report::banner;

const SIZES: [u64; 6] = [1024, 2048, 4096, 8192, 16384, 32768];

fn main() {
    let n = bench::arg_count(1_500);
    banner("Figure 7: consecutive memory writes (median cycles)");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "bytes", "encrypted", "plaintext", "overhead%"
    );
    for size in SIZES {
        let iters = n.min(60_000_000 / size as usize);
        let enc = memory_write_windowed(Region::Encrypted, size, iters, 81).median();
        let plain = memory_write_windowed(Region::Plain, size, iters, 82).median();
        let ov = (enc as f64 / plain as f64 - 1.0) * 100.0;
        println!("{size:>8} {enc:>12} {plain:>12} {ov:>11.1}%");
    }
    println!("\npaper: ~6% overhead for all sizes above 1 KB (encryption hides behind eviction)");
}
