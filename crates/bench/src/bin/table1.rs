//! Regenerates Table 1: the ten SGX microbenchmarks.

use bench::micro::{
    cache_load_miss, cache_store_miss, ecall_buffer, ecall_latency, memory_read_windowed,
    memory_write_windowed, ocall_buffer, ocall_latency, Region, TransferMode,
};
use bench::report::{banner, compare_cycles, paper};

fn main() {
    let n = bench::arg_count(4_000);
    banner("Table 1: microbenchmarks of fundamental SGX operations");
    println!("({n} measurements per benchmark; paper used 200,000)");

    let ecall_warm = ecall_latency(false, n, 1);
    compare_cycles(
        "1  ecall (warm cache)",
        paper::ECALL_WARM,
        ecall_warm.median(),
    );

    let ecall_cold = ecall_latency(true, n, 2);
    compare_cycles(
        "2  ecall (cold cache)",
        paper::ECALL_COLD,
        ecall_cold.median(),
    );

    for (mode, reference) in TransferMode::COPYING.iter().zip(paper::ECALL_BUF_2K) {
        let s = ecall_buffer(*mode, 2048, n, 3);
        compare_cycles(
            &format!("3  ecall 2KB buffer [{}]", mode.label()),
            reference,
            s.median(),
        );
    }

    let ocall_warm = ocall_latency(false, n, 4);
    compare_cycles(
        "4  ocall (warm cache)",
        paper::OCALL_WARM,
        ocall_warm.median(),
    );

    let ocall_cold = ocall_latency(true, n, 5);
    compare_cycles(
        "5  ocall (cold cache)",
        paper::OCALL_COLD,
        ocall_cold.median(),
    );

    for (mode, reference) in TransferMode::COPYING.iter().zip(paper::OCALL_BUF_2K) {
        let s = ocall_buffer(*mode, 2048, n, 6);
        compare_cycles(
            &format!("6  ocall 2KB buffer [{}]", mode.label()),
            reference,
            s.median(),
        );
    }

    for (region, reference) in Region::BOTH.iter().zip(paper::READ_2K) {
        let s = memory_read_windowed(*region, 2048, n, 7);
        compare_cycles(
            &format!("7  read 2KB ({})", region.label()),
            reference,
            s.median(),
        );
    }

    for (region, reference) in Region::BOTH.iter().zip(paper::WRITE_2K) {
        let s = memory_write_windowed(*region, 2048, n, 8);
        compare_cycles(
            &format!("8  write 2KB ({})", region.label()),
            reference,
            s.median(),
        );
    }

    for (region, reference) in Region::BOTH.iter().zip(paper::LOAD_MISS) {
        let s = cache_load_miss(*region, n, 9);
        compare_cycles(
            &format!("9  cache load miss ({})", region.label()),
            reference,
            s.median(),
        );
    }

    for (region, reference) in Region::BOTH.iter().zip(paper::STORE_MISS) {
        let s = cache_store_miss(*region, n, 10);
        compare_cycles(
            &format!("10 cache store miss ({})", region.label()),
            reference,
            s.median(),
        );
    }
}
