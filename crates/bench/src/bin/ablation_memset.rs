//! Ablation: the paper's §3.5 "further optimization" — replacing the
//! SDK's byte-wise `memset` with a word-wise one for the zeroing that is
//! actually required (ecall `out` staging on the secure heap), composed
//! against No-Redundant-Zeroing for the zeroing that is not.

use bench::micro::{ecall_buffer, TransferMode};
use bench::report::banner;
use sgx_sdk::edl::parse_edl;
use sgx_sdk::{BufArg, EnclaveCtx, MarshalOptions};
use sgx_sim::{EnclaveBuildOptions, Machine, SimConfig};

fn ocall_out_cost(bytes: u64, options: MarshalOptions, seed: u64, n: usize) -> u64 {
    let mut m = Machine::new(SimConfig::builder().seed(seed).build());
    let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
    let edl = parse_edl("enclave { untrusted { void o([out, size=n] uint8_t* b, size_t n); }; };")
        .unwrap();
    let mut ctx = EnclaveCtx::new(&mut m, eid, &edl, options).unwrap();
    let buf = m.alloc_enclave_heap(eid, bytes, 64).unwrap();
    ctx.enter_main(&mut m).unwrap();
    let args = [BufArg::new(buf, bytes)];
    for _ in 0..5 {
        ctx.ocall(&mut m, "o", &args, |_, _, _| Ok(())).unwrap();
    }
    let mut total = 0;
    for _ in 0..n {
        let s = m.now();
        ctx.ocall(&mut m, "o", &args, |_, _, _| Ok(())).unwrap();
        total += (m.now() - s).get();
    }
    total / n as u64
}

fn main() {
    let n = bench::arg_count(800);

    banner("Ablation: memset strategy for `out` buffers (median cycles)");
    println!("-- ecall out (secure staging: zeroing is REQUIRED; only its width is optional)");
    println!(
        "{:>8} {:>16} {:>16} {:>9}",
        "bytes", "byte-wise", "word-wise", "saved"
    );
    for bytes in [1024u64, 2048, 8192, 32768] {
        let slow = ecall_buffer(TransferMode::Out, bytes, n, 31).median();
        // Re-run with the optimized memset.
        let fast = {
            let mut m = Machine::new(SimConfig::builder().seed(32).build());
            let eid = m.build_enclave(EnclaveBuildOptions::default()).unwrap();
            let edl = parse_edl(
                "enclave { trusted { public void e([out, size=n] uint8_t* b, size_t n); }; };",
            )
            .unwrap();
            let mut ctx = EnclaveCtx::new(
                &mut m,
                eid,
                &edl,
                MarshalOptions {
                    optimized_memset: true,
                    no_redundant_zeroing: false,
                },
            )
            .unwrap();
            let buf = m.alloc_untrusted(bytes, 64);
            let args = [BufArg::new(buf, bytes)];
            for _ in 0..5 {
                ctx.ecall(&mut m, "e", &args, |_, _, _| Ok(())).unwrap();
            }
            let mut total = 0;
            for _ in 0..n {
                let s = m.now();
                ctx.ecall(&mut m, "e", &args, |_, _, _| Ok(())).unwrap();
                total += (m.now() - s).get();
            }
            total / n as u64
        };
        println!(
            "{bytes:>8} {slow:>16} {fast:>16} {:>9}",
            slow.saturating_sub(fast)
        );
    }

    println!("\n-- ocall out (untrusted staging: the zeroing is REDUNDANT; NRZ removes it)");
    println!(
        "{:>8} {:>12} {:>14} {:>10} {:>9}",
        "bytes", "byte-wise", "word-wise", "NRZ", "NRZ saves"
    );
    for bytes in [1024u64, 2048, 8192, 32768] {
        let byte_wise = ocall_out_cost(bytes, MarshalOptions::default(), 41, n);
        let word_wise = ocall_out_cost(
            bytes,
            MarshalOptions {
                optimized_memset: true,
                no_redundant_zeroing: false,
            },
            42,
            n,
        );
        let nrz = ocall_out_cost(
            bytes,
            MarshalOptions {
                optimized_memset: false,
                no_redundant_zeroing: true,
            },
            43,
            n,
        );
        println!(
            "{bytes:>8} {byte_wise:>12} {word_wise:>14} {nrz:>10} {:>9}",
            byte_wise.saturating_sub(nrz)
        );
    }
    println!("\n(word-wise memset recovers most of NRZ's gain without the semantic change —");
    println!(" the paper suggests Intel adopt it; NRZ remains strictly better for ocalls)");
}
