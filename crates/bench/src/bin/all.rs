//! Runs every table/figure harness in sequence (the output behind
//! EXPERIMENTS.md).

use std::process::Command;

fn main() {
    let bins = [
        "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table2", "fig10",
        "fig11",
    ];
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in bins {
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
