//! Regenerates Figure 8: normalized memory-encryption overhead, including
//! the SPEC-2006-like kernels (mcf / libquantum / astar).

use bench::micro::{
    cache_load_miss, cache_store_miss, memory_read_windowed, memory_write_windowed, Region,
};
use bench::report::{banner, paper};
use sgx_sim::SimConfig;
use workloads::spec::{
    machine_with_region, run_astar, run_libquantum, run_mcf, AstarConfig, LibquantumConfig,
    McfConfig, Placement,
};

fn kernel_slowdown<F>(bytes: u64, run: F) -> f64
where
    F: Fn(&mut sgx_sim::Machine, sgx_sim::Addr) -> workloads::KernelResult,
{
    let cfg = SimConfig::builder().seed(91).build();
    let (mut m, r) = machine_with_region(cfg.clone(), Placement::Plain, bytes).expect("plain");
    let plain = run(&mut m, r);
    let (mut m, r) = machine_with_region(cfg, Placement::Enclave, bytes).expect("enclave");
    let enc = run(&mut m, r);
    enc.slowdown_vs(&plain)
}

fn main() {
    let n = bench::arg_count(1_500);
    banner("Figure 8: encrypted-memory slowdown, normalized to plaintext");

    let bar = |label: &str, value: f64, reference: Option<f64>| match reference {
        Some(r) => println!("{label:<28} x{value:<8.2} (paper: x{r:.2})"),
        None => println!("{label:<28} x{value:<8.2} (paper: see Fig. 8 bar)"),
    };

    let lm = cache_load_miss(Region::Encrypted, n, 92).median() as f64
        / cache_load_miss(Region::Plain, n, 93).median() as f64;
    bar("L: cache load miss", lm, Some(400.0 / 308.0));

    let sm = cache_store_miss(Region::Encrypted, n, 94).median() as f64
        / cache_store_miss(Region::Plain, n, 95).median() as f64;
    bar("S: cache store miss", sm, Some(575.0 / 481.0));

    let rd = memory_read_windowed(Region::Encrypted, 2048, n, 96).median() as f64
        / memory_read_windowed(Region::Plain, 2048, n, 97).median() as f64;
    bar("L: 2KB consecutive read", rd, Some(1124.0 / 727.0));

    let wr = memory_write_windowed(Region::Encrypted, 2048, n, 98).median() as f64
        / memory_write_windowed(Region::Plain, 2048, n, 99).median() as f64;
    bar("S: 2KB consecutive write", wr, Some(6875.0 / 6458.0));

    let mcf = kernel_slowdown(40 << 20, |m, r| {
        run_mcf(
            m,
            r,
            McfConfig {
                nodes: 393_216,
                ops: 120_000,
                ..McfConfig::default()
            },
        )
        .expect("mcf")
    });
    bar("mcf (pointer chasing)", mcf, Some(paper::MCF_SLOWDOWN));

    // libquantum: the 96 MB register vs the 93 MB EPC => paging collapse.
    let libq = kernel_slowdown(100 << 20, |m, r| {
        run_libquantum(
            m,
            r,
            LibquantumConfig {
                register_bytes: 96 << 20,
                sweeps: 1,
                ..LibquantumConfig::default()
            },
        )
        .expect("libquantum")
    });
    bar(
        "libquantum (96MB streaming)",
        libq,
        Some(paper::LIBQUANTUM_SLOWDOWN),
    );

    let astar = kernel_slowdown(56 << 20, |m, r| {
        run_astar(
            m,
            r,
            AstarConfig {
                width: 1_024,
                height: 1_024,
                searches: 6,
                ..AstarConfig::default()
            },
        )
        .expect("astar")
    });
    bar("astar (grid search)", astar, None);
}
